// Differential suite pinning the batched walk engine to the per-walker one:
// for a fixed seed the two must emit byte-identical corpora and visit counts
// at every thread count, across uniform and weighted transitions, visit
// limits, and balanced restarts. This is the contract that makes
// WalkOptions::engine a pure performance knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "embed/walks.h"
#include "embed/walks_batched.h"
#include "graph/graph.h"

namespace leva {
namespace {

LevaGraph PowerLawGraph(bool weighted, size_t nodes = 512,
                        size_t edges = 4000) {
  PowerLawGraphConfig config;
  config.nodes = nodes;
  config.target_edges = edges;
  config.weighted = weighted;
  config.seed = 7;
  auto g = GeneratePowerLawGraph(config);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

// Hand-built CSR exercising the awkward cases: an isolated node (walks die
// immediately), a node whose edges all weigh zero (the "empty alias table"
// dead end), and a pendant chain.
LevaGraph EdgeCaseGraph() {
  // 0 -- 1 -- 2 (triangle with 0-2), 3 isolated, 4 -- 5 with zero weights.
  std::vector<NodeKind> kinds(6, NodeKind::kValue);
  std::vector<uint64_t> offsets = {0, 2, 4, 6, 6, 7, 8};
  std::vector<NodeId> targets = {1, 2, 0, 2, 0, 1, 5, 4};
  std::vector<float> weights = {1.f, 2.f, 1.f, 0.5f, 2.f, 0.5f, 0.f, 0.f};
  auto g = GraphFromCsr(std::move(kinds), {}, std::move(offsets),
                        std::move(targets), std::move(weights));
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

void ExpectIdenticalCorpora(const LevaGraph& g, WalkOptions options,
                            uint64_t seed) {
  options.engine = WalkEngine::kWalker;
  WalkGenerator walker(&g, options);
  Rng r1(seed);
  const auto reference = walker.Generate(&r1);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    WalkOptions batched_options = options;
    batched_options.threads = threads;
    batched_options.engine = WalkEngine::kBatched;
    BatchedWalkGenerator batched(&g, batched_options);
    Rng r2(seed);
    const auto corpus = batched.Generate(&r2);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    ASSERT_EQ(corpus->tokens(), reference->tokens()) << threads << " threads";
    ASSERT_EQ(corpus->offsets(), reference->offsets())
        << threads << " threads";
    EXPECT_EQ(batched.visit_counts(), walker.visit_counts())
        << threads << " threads";
  }
}

TEST(BatchedWalksTest, BitIdenticalToWalkerUniform) {
  const LevaGraph g = PowerLawGraph(/*weighted=*/false);
  WalkOptions options;
  options.epochs = 4;
  options.walk_length = 20;
  options.weighted = false;
  ExpectIdenticalCorpora(g, options, 2024);
}

TEST(BatchedWalksTest, BitIdenticalToWalkerWeighted) {
  const LevaGraph g = PowerLawGraph(/*weighted=*/true);
  WalkOptions options;
  options.epochs = 4;
  options.walk_length = 20;
  options.weighted = true;
  ExpectIdenticalCorpora(g, options, 99);
}

TEST(BatchedWalksTest, BitIdenticalWithVisitLimit) {
  const LevaGraph g = PowerLawGraph(/*weighted=*/true);
  WalkOptions options;
  options.epochs = 4;
  options.walk_length = 20;
  options.weighted = true;
  options.visit_limit = 30;
  ExpectIdenticalCorpora(g, options, 5);
}

TEST(BatchedWalksTest, BitIdenticalWithBalancedRestarts) {
  for (const bool weighted : {false, true}) {
    const LevaGraph g = PowerLawGraph(weighted);
    WalkOptions options;
    options.epochs = 6;
    options.walk_length = 15;
    options.weighted = weighted;
    options.balanced_restarts = true;
    options.restart_epochs = 2;
    ExpectIdenticalCorpora(g, options, 17);
  }
}

TEST(BatchedWalksTest, BitIdenticalOnDeadEndsAndZeroWeights) {
  const LevaGraph g = EdgeCaseGraph();
  for (const bool weighted : {false, true}) {
    WalkOptions options;
    options.epochs = 5;
    options.walk_length = 12;
    options.weighted = weighted;
    ExpectIdenticalCorpora(g, options, 333);
  }
}

TEST(BatchedWalksTest, Node2vecFallsBackBitIdentically) {
  const LevaGraph g = PowerLawGraph(/*weighted=*/false, 128, 600);
  WalkOptions options;
  options.epochs = 3;
  options.walk_length = 10;
  options.weighted = false;
  options.p = 2.0;
  options.q = 0.5;
  ExpectIdenticalCorpora(g, options, 11);
}

TEST(BatchedWalksTest, EmptyGraphAndZeroEpochs) {
  const LevaGraph g = PowerLawGraph(/*weighted=*/false, 16, 40);
  WalkOptions options;
  options.weighted = false;
  options.epochs = 0;
  BatchedWalkGenerator gen(&g, options);
  Rng rng(1);
  const uint64_t before = Rng(1).Next();
  auto corpus = gen.Generate(&rng);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->size(), 0u);
  // The zero-epoch early-out must not consume the caller's RNG (the
  // per-walker engine does not either).
  EXPECT_EQ(rng.Next(), before);
  EXPECT_FALSE(gen.Generate(nullptr).ok());
}

TEST(BatchedWalksTest, WorkingSetBytesCountsAliasStorage) {
  const LevaGraph g = PowerLawGraph(/*weighted=*/true, 64, 300);
  const size_t unweighted = WalkWorkingSetBytes(g, false);
  const size_t weighted = WalkWorkingSetBytes(g, true);
  const size_t slots = g.targets().size();
  EXPECT_EQ(unweighted,
            (g.NumNodes() + 1) * sizeof(uint64_t) + slots * sizeof(NodeId));
  EXPECT_EQ(weighted, unweighted +
                          slots * (sizeof(double) + sizeof(uint32_t)) +
                          g.NumNodes());
}

TEST(BatchedWalksTest, ResolveWalkEngineRules) {
  const LevaGraph g = PowerLawGraph(/*weighted=*/true, 64, 300);
  WalkOptions options;
  options.weighted = true;

  options.engine = WalkEngine::kWalker;
  EXPECT_EQ(ResolveWalkEngine(g, options), WalkEngine::kWalker);
  options.engine = WalkEngine::kBatched;
  EXPECT_EQ(ResolveWalkEngine(g, options), WalkEngine::kBatched);

  // kAuto: threshold decides.
  options.engine = WalkEngine::kAuto;
  options.batched_auto_threshold_bytes = size_t{1} << 40;
  EXPECT_EQ(ResolveWalkEngine(g, options), WalkEngine::kWalker);
  options.batched_auto_threshold_bytes = 1;
  EXPECT_EQ(ResolveWalkEngine(g, options), WalkEngine::kBatched);

  // Node2vec bias always forces the per-walker engine.
  options.engine = WalkEngine::kBatched;
  options.q = 0.5;
  EXPECT_EQ(ResolveWalkEngine(g, options), WalkEngine::kWalker);
}

TEST(BatchedWalksTest, BlockGeometryIsPureFunctionOfGraph) {
  const LevaGraph g = PowerLawGraph(/*weighted=*/true, 512, 4000);
  WalkOptions options;
  options.weighted = true;
  options.threads = 1;
  BatchedWalkGenerator a(&g, options);
  options.threads = 8;
  BatchedWalkGenerator b(&g, options);
  EXPECT_EQ(a.block_shift(), b.block_shift());
  EXPECT_EQ(a.num_blocks(), b.num_blocks());
  EXPECT_GE(a.num_blocks(), 1u);
  EXPECT_EQ(((g.NumNodes() - 1) >> a.block_shift()) + 1, a.num_blocks());
}

// End to end: two Fits differing only in the walk engine must produce the
// exact same embedding store (Word2Vec's deterministic mode trains on the
// corpus bytes, which the engines agree on).
TEST(BatchedWalksTest, PipelineFitIsEngineInvariant) {
  SyntheticConfig data;
  data.base_rows = 120;
  data.dims.push_back({});
  data.dims.back().name = "d1";
  data.dims.back().rows = 40;
  auto ds = GenerateSynthetic(data);
  ASSERT_TRUE(ds.ok());

  LevaConfig config;
  config.method = EmbeddingMethod::kRandomWalk;
  config.embedding_dim = 8;
  config.walks.epochs = 3;
  config.walks.walk_length = 10;
  config.word2vec.epochs = 1;
  config.seed = 5;

  config.walks.engine = WalkEngine::kWalker;
  LevaPipeline walker_pipeline(config);
  ASSERT_TRUE(walker_pipeline.Fit(ds->db).ok());
  config.walks.engine = WalkEngine::kBatched;
  LevaPipeline batched_pipeline(config);
  ASSERT_TRUE(batched_pipeline.Fit(ds->db).ok());

  EXPECT_EQ(walker_pipeline.profile().annotation("walk_generation"),
            "engine=walker");
  EXPECT_EQ(batched_pipeline.profile().annotation("walk_generation"),
            "engine=batched");

  const Embedding& w = walker_pipeline.embedding();
  const Embedding& b = batched_pipeline.embedding();
  ASSERT_EQ(w.size(), b.size());
  ASSERT_EQ(w.dim(), b.dim());
  for (const std::string& key : w.keys()) {
    const auto wv = w.Get(key);
    const auto bv = b.Get(key);
    ASSERT_EQ(wv.size(), bv.size()) << key;
    EXPECT_TRUE(std::equal(wv.begin(), wv.end(), bv.begin())) << key;
  }
}

}  // namespace
}  // namespace leva
