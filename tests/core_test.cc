#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"

namespace leva {
namespace {

// Small, fast settings for unit tests.
LevaConfig TestConfig(EmbeddingMethod method) {
  LevaConfig config;
  config.method = method;
  config.embedding_dim = 8;
  config.walks.epochs = 3;
  config.walks.walk_length = 10;
  config.word2vec.epochs = 1;
  config.seed = 5;
  return config;
}

SyntheticDataset Student() {
  auto ds = GenerateStudent(120, 0, 3);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(PipelineTest, FitMfProducesEmbeddingForAllNodes) {
  const SyntheticDataset ds = Student();
  LevaPipeline pipeline(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(pipeline.Fit(ds.db).ok());
  EXPECT_EQ(pipeline.chosen_method(), EmbeddingMethod::kMatrixFactorization);
  EXPECT_EQ(pipeline.embedding().size(), pipeline.graph().NumNodes());
  // Row nodes of every table are embedded.
  EXPECT_TRUE(pipeline.embedding().Has("expenses:0"));
  EXPECT_TRUE(pipeline.embedding().Has("order_info:0"));
  EXPECT_TRUE(pipeline.embedding().Has("price_info:0"));
}

TEST(PipelineTest, FitRwWorks) {
  const SyntheticDataset ds = Student();
  LevaPipeline pipeline(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(pipeline.Fit(ds.db).ok());
  EXPECT_EQ(pipeline.chosen_method(), EmbeddingMethod::kRandomWalk);
  EXPECT_EQ(pipeline.embedding().dim(), 8u);
}

TEST(PipelineTest, AutoSelectionHonorsMemoryBudget) {
  const SyntheticDataset ds = Student();
  LevaConfig config = TestConfig(EmbeddingMethod::kAuto);
  config.memory_budget_bytes = size_t{4} << 30;  // plenty -> MF
  LevaPipeline big(config);
  ASSERT_TRUE(big.Fit(ds.db).ok());
  EXPECT_EQ(big.chosen_method(), EmbeddingMethod::kMatrixFactorization);

  config.memory_budget_bytes = 1024;  // tiny -> RW
  LevaPipeline small(config);
  ASSERT_TRUE(small.Fit(ds.db).ok());
  EXPECT_EQ(small.chosen_method(), EmbeddingMethod::kRandomWalk);
}

TEST(PipelineTest, ProfileRecordsStages) {
  const SyntheticDataset ds = Student();
  LevaPipeline mf(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(mf.Fit(ds.db).ok());
  std::vector<std::string> names;
  for (const auto& [name, secs] : mf.profile().stages()) names.push_back(name);
  EXPECT_TRUE(std::find(names.begin(), names.end(), "textify") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "graph") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "factorization") !=
              names.end());

  LevaPipeline rw(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(rw.Fit(ds.db).ok());
  names.clear();
  for (const auto& [name, secs] : rw.profile().stages()) names.push_back(name);
  EXPECT_TRUE(std::find(names.begin(), names.end(), "walk_generation") !=
              names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "embedding_training") !=
              names.end());
}

TEST(PipelineTest, FeaturizeTrainRowsUsesRowNodes) {
  const SyntheticDataset ds = Student();
  LevaPipeline pipeline(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(pipeline.Fit(ds.db).ok());

  const Table* base = ds.db.FindTable("expenses");
  TargetEncoder encoder;
  ASSERT_TRUE(
      encoder.Fit(*base->FindColumn("total_expenses"), false).ok());
  const auto features =
      pipeline.Featurize(*base, "total_expenses", encoder, true);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->NumRows(), base->NumRows());
  // Default featurization is Row + Value: twice the embedding dim.
  EXPECT_EQ(features->NumFeatures(), 16u);
  EXPECT_FALSE(features->classification);
}

TEST(PipelineTest, RowOnlyHalvesWidth) {
  const SyntheticDataset ds = Student();
  LevaConfig config = TestConfig(EmbeddingMethod::kMatrixFactorization);
  config.featurization = Featurization::kRowOnly;
  LevaPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Fit(ds.db).ok());
  const Table* base = ds.db.FindTable("expenses");
  TargetEncoder encoder;
  ASSERT_TRUE(encoder.Fit(*base->FindColumn("total_expenses"), false).ok());
  const auto features =
      pipeline.Featurize(*base, "total_expenses", encoder, true);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->NumFeatures(), 8u);
}

TEST(PipelineTest, FeaturizeUnseenRowsComposesFromTokens) {
  // Fit on the first 100 students; featurize the held-out 20 as unseen.
  auto full = GenerateStudent(120, 0, 3);
  ASSERT_TRUE(full.ok());
  const Table* base = full->db.FindTable("expenses");
  std::vector<size_t> train_rows;
  std::vector<size_t> test_rows;
  for (size_t r = 0; r < base->NumRows(); ++r) {
    (r < 100 ? train_rows : test_rows).push_back(r);
  }
  Table train_table = base->SubsetRows(train_rows);
  Table test_table = base->SubsetRows(test_rows);
  train_table.set_name("expenses");
  test_table.set_name("expenses");

  Database fit_db;
  ASSERT_TRUE(fit_db.AddTable(train_table).ok());
  ASSERT_TRUE(fit_db.AddTable(*full->db.FindTable("order_info")).ok());
  ASSERT_TRUE(fit_db.AddTable(*full->db.FindTable("price_info")).ok());

  LevaPipeline pipeline(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(pipeline.Fit(fit_db).ok());

  TargetEncoder encoder;
  ASSERT_TRUE(encoder.Fit(*base->FindColumn("total_expenses"), false).ok());
  const auto test_features =
      pipeline.Featurize(test_table, "total_expenses", encoder, false);
  ASSERT_TRUE(test_features.ok());
  EXPECT_EQ(test_features->NumRows(), 20u);
  // At least one feature should be non-zero: the held-out students' tokens
  // (gender, school) were seen during Fit.
  bool any_nonzero = false;
  for (const double v : test_features->x.data()) {
    if (v != 0.0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(PipelineTest, FeaturizeBeforeFitFails) {
  LevaPipeline pipeline;
  Table t("t");
  TargetEncoder encoder;
  EXPECT_EQ(pipeline.Featurize(t, "y", encoder, true).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, RowVectorSkipsTargetTokens) {
  // Two pipelines fitted identically must produce identical features
  // regardless of the target values in the featurized table: the target
  // column must not leak into the row vector.
  const SyntheticDataset ds = Student();
  LevaPipeline pipeline(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(pipeline.Fit(ds.db).ok());
  const Table* base = ds.db.FindTable("expenses");

  Table mutated = *base;
  mutated.set_name("expenses");
  const size_t target_idx = *mutated.ColumnIndex("total_expenses");
  mutated.mutable_column(target_idx).values[0] = Value(99999.0);

  const auto v1 = pipeline.RowVector(*base, 0, "total_expenses", true);
  const auto v2 = pipeline.RowVector(mutated, 0, "total_expenses", true);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v1, *v2);
}

TEST(PipelineTest, WeightedConfigPropagates) {
  const SyntheticDataset ds = Student();
  LevaConfig config = TestConfig(EmbeddingMethod::kRandomWalk);
  config.graph.weighted = false;
  LevaPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Fit(ds.db).ok());
  // Unweighted graph: all stored edge weights are 1.
  const LevaGraph& g = pipeline.graph();
  for (NodeId n = 0; n < g.NumNodes() && n < 50; ++n) {
    for (const float w : g.Weights(n)) EXPECT_FLOAT_EQ(w, 1.0f);
  }
}

TEST(PipelineTest, LineMethodPlugsIn) {
  const SyntheticDataset ds = Student();
  LevaConfig config = TestConfig(EmbeddingMethod::kLine);
  config.line.samples_per_edge = 10;
  LevaPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Fit(ds.db).ok());
  EXPECT_EQ(pipeline.chosen_method(), EmbeddingMethod::kLine);
  EXPECT_EQ(pipeline.embedding().dim(), 8u);
  bool has_stage = false;
  for (const auto& [name, secs] : pipeline.profile().stages()) {
    if (name == "edge_sampling") has_stage = true;
  }
  EXPECT_TRUE(has_stage);
}

}  // namespace
}  // namespace leva
