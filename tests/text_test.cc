#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "table/table.h"
#include "text/histogram.h"
#include "text/textifier.h"

namespace leva {
namespace {

TEST(KurtosisTest, NormalIsAboutThree) {
  Rng rng(5);
  std::vector<double> values(20000);
  for (double& v : values) v = rng.Normal();
  EXPECT_NEAR(Kurtosis(values), 3.0, 0.3);
}

TEST(KurtosisTest, HeavyTailExceedsThree) {
  Rng rng(6);
  std::vector<double> values(20000);
  for (double& v : values) {
    // Mixture: mostly small, occasionally huge -> heavy tail.
    v = rng.Bernoulli(0.02) ? rng.Normal() * 50.0 : rng.Normal();
  }
  EXPECT_GT(Kurtosis(values), kHeavyTailKurtosis);
}

TEST(KurtosisTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(Kurtosis({}), 0.0);
  EXPECT_DOUBLE_EQ(Kurtosis({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Kurtosis({2.0, 2.0, 2.0}), 0.0);  // zero variance
}

TEST(HistogramTest, EquiWidthBinsAreUniformWidth) {
  std::vector<double> values;
  for (int i = 0; i <= 100; ++i) values.push_back(static_cast<double>(i));
  const Histogram h = Histogram::Fit(values, 10, HistogramType::kEquiWidth);
  EXPECT_EQ(h.num_bins(), 10u);
  EXPECT_EQ(h.BinOf(0.0), 0u);
  EXPECT_EQ(h.BinOf(100.0), 9u);
  EXPECT_EQ(h.BinOf(55.0), 5u);
}

TEST(HistogramTest, OutOfRangeClamps) {
  const Histogram h =
      Histogram::Fit({0.0, 10.0}, 5, HistogramType::kEquiWidth);
  EXPECT_EQ(h.BinOf(-100.0), 0u);
  EXPECT_EQ(h.BinOf(1e9), h.num_bins() - 1);
}

TEST(HistogramTest, EquiDepthBalancesCounts) {
  Rng rng(7);
  std::vector<double> values(10000);
  for (double& v : values) v = std::exp(rng.Normal() * 2.0);  // skewed
  const Histogram h = Histogram::Fit(values, 10, HistogramType::kEquiDepth);
  std::vector<size_t> counts(h.num_bins(), 0);
  for (const double v : values) ++counts[h.BinOf(v)];
  const size_t expected = values.size() / h.num_bins();
  for (const size_t c : counts) {
    EXPECT_GT(c, expected / 3);
    EXPECT_LT(c, expected * 3);
  }
}

TEST(HistogramTest, ConstantColumnOneBin) {
  const Histogram h =
      Histogram::Fit({5.0, 5.0, 5.0}, 10, HistogramType::kEquiWidth);
  EXPECT_EQ(h.num_bins(), 1u);
  EXPECT_EQ(h.BinOf(5.0), 0u);
  EXPECT_EQ(h.BinOf(99.0), 0u);
}

TEST(HistogramTest, EmptyInputOneBin) {
  const Histogram h = Histogram::Fit({}, 10, HistogramType::kEquiWidth);
  EXPECT_EQ(h.num_bins(), 1u);
}

TEST(HistogramTest, FitAutoPicksEquiDepthForHeavyTails) {
  Rng rng(8);
  std::vector<double> heavy(5000);
  for (double& v : heavy) {
    v = rng.Bernoulli(0.02) ? rng.Normal() * 100.0 : rng.Normal();
  }
  EXPECT_EQ(Histogram::FitAuto(heavy, 10).type(), HistogramType::kEquiDepth);

  std::vector<double> uniform(5000);
  for (double& v : uniform) v = rng.Uniform();
  EXPECT_EQ(Histogram::FitAuto(uniform, 10).type(),
            HistogramType::kEquiWidth);
}

// Property sweep: monotone bin assignment for all histogram configurations.
class HistogramPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, HistogramType>> {};

TEST_P(HistogramPropertyTest, BinAssignmentIsMonotone) {
  const auto [bins, type] = GetParam();
  Rng rng(static_cast<uint64_t>(bins) * 31 + 1);
  std::vector<double> values(3000);
  for (double& v : values) v = rng.Normal() * 10.0;
  const Histogram h = Histogram::Fit(values, bins, type);

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  size_t prev = 0;
  for (const double v : sorted) {
    const size_t bin = h.BinOf(v);
    EXPECT_GE(bin, prev);
    EXPECT_LT(bin, h.num_bins());
    prev = bin;
  }
}

TEST_P(HistogramPropertyTest, EffectiveBinCountBounded) {
  const auto [bins, type] = GetParam();
  Rng rng(static_cast<uint64_t>(bins) * 17 + 3);
  std::vector<double> values(500);
  for (double& v : values) v = rng.Uniform(0, 100);
  const Histogram h = Histogram::Fit(values, bins, type);
  EXPECT_LE(h.num_bins(), bins == 0 ? 1 : bins);
  EXPECT_GE(h.num_bins(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistogramPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(2, 5, 10, 50, 160),
                       ::testing::Values(HistogramType::kEquiWidth,
                                         HistogramType::kEquiDepth)));

Database MakeTypedDb() {
  Database db;
  Table t("t");
  Column key;
  key.name = "id";
  key.type = DataType::kString;
  Column num;
  num.name = "amount";
  num.type = DataType::kDouble;
  Column cat;
  cat.name = "color";
  cat.type = DataType::kString;
  Column list;
  list.name = "tags";
  list.type = DataType::kString;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    key.values.push_back(Value("id_" + std::to_string(i)));
    num.values.push_back(Value(rng.Uniform(0, 100)));
    cat.values.push_back(Value(i % 2 == 0 ? std::string("red") : std::string("blue")));
    list.values.push_back(Value("tag" + std::to_string(i % 3) + ",tag" +
                                std::to_string(i % 5)));
  }
  EXPECT_TRUE(t.AddColumn(key).ok());
  EXPECT_TRUE(t.AddColumn(num).ok());
  EXPECT_TRUE(t.AddColumn(cat).ok());
  EXPECT_TRUE(t.AddColumn(list).ok());
  EXPECT_TRUE(db.AddTable(t).ok());
  return db;
}

TEST(TextifierTest, ClassifiesColumnTypes) {
  const Database db = MakeTypedDb();
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  EXPECT_EQ(*tx.ClassOf("t", "id"), ColumnClass::kKey);
  EXPECT_EQ(*tx.ClassOf("t", "amount"), ColumnClass::kNumeric);
  EXPECT_EQ(*tx.ClassOf("t", "color"), ColumnClass::kStringAtomic);
  EXPECT_EQ(*tx.ClassOf("t", "tags"), ColumnClass::kStringList);
  EXPECT_FALSE(tx.ClassOf("t", "nope").ok());
}

TEST(TextifierTest, FloatColumnIsNeverKey) {
  Database db;
  Table t("t");
  Column c;
  c.name = "f";
  c.type = DataType::kDouble;
  for (int i = 0; i < 50; ++i) c.values.push_back(Value(i + 0.5));
  ASSERT_TRUE(t.AddColumn(c).ok());
  ASSERT_TRUE(db.AddTable(t).ok());
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  EXPECT_EQ(*tx.ClassOf("t", "f"), ColumnClass::kNumeric);
}

TEST(TextifierTest, NumericTokensAreBinned) {
  const Database db = MakeTypedDb();
  TextifyOptions options;
  options.bin_count = 10;
  Textifier tx(options);
  ASSERT_TRUE(tx.Fit(db).ok());
  const auto tokens = tx.TransformCell("t", "amount", Value(50.0));
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_TRUE(tokens->front().starts_with("amount#bin"));
}

TEST(TextifierTest, UnseenNumericFallsIntoExistingBin) {
  const Database db = MakeTypedDb();
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  // Way outside the fitted range: clamps to the last bin rather than failing.
  const auto tokens = tx.TransformCell("t", "amount", Value(1e9));
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
}

TEST(TextifierTest, NullEmitsNothing) {
  const Database db = MakeTypedDb();
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  const auto tokens = tx.TransformCell("t", "amount", Value::Null());
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens->empty());
}

TEST(TextifierTest, ListsSplitIntoElements) {
  const Database db = MakeTypedDb();
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  const auto tokens = tx.TransformCell("t", "tags", Value("a, b ,c"));
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[1], "b");
}

TEST(TextifierTest, MissingStringTokenPassesThrough) {
  // Literal "?" must reach the graph so the voting mechanism can remove it.
  const Database db = MakeTypedDb();
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  const auto tokens = tx.TransformCell("t", "color", Value("?"));
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ(tokens->front(), "?");
}

TEST(TextifierTest, TransformWholeTable) {
  const Database db = MakeTypedDb();
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  const auto tt = tx.Transform(db.tables()[0]);
  ASSERT_TRUE(tt.ok());
  EXPECT_EQ(tt->rows.size(), 100u);
  // id + amount + color + 2 list elements = 5 tokens per row.
  EXPECT_EQ(tt->rows[0].size(), 5u);
}

TEST(TextifierTest, TransformColumnMatchesTransformCell) {
  Database db = MakeTypedDb();
  // Sprinkle in nulls and a dirty numeric cell so every EmitTokens branch is
  // exercised by the column-batch path.
  Table& t = db.mutable_tables()[0];
  t.mutable_column(1).values[3] = Value::Null();
  t.mutable_column(1).values[4] = Value("  ? ");
  t.mutable_column(2).values[5] = Value::Null();
  t.mutable_column(3).values[6] = Value(" a ,, b ");
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    const Column& col = t.column(c);
    const auto batched = tx.TransformColumn("t", col);
    ASSERT_TRUE(batched.ok()) << col.name;
    ASSERT_EQ(batched->NumRows(), col.size());
    for (size_t r = 0; r < col.size(); ++r) {
      const auto cell = tx.TransformCell("t", col.name, col.values[r]);
      ASSERT_TRUE(cell.ok());
      std::vector<std::string> got;
      for (size_t i = batched->offsets[r]; i < batched->offsets[r + 1]; ++i) {
        got.emplace_back(batched->tokens[i]);
      }
      EXPECT_EQ(got, *cell) << col.name << " row " << r;
    }
  }
}

TEST(TextifierTest, TransformColumnRowRange) {
  const Database db = MakeTypedDb();
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  const Column& col = db.tables()[0].column(3);  // tags: 2 tokens per row
  const auto batched = tx.TransformColumn("t", col, 10, 15);
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(batched->NumRows(), 5u);
  EXPECT_EQ(batched->tokens.size(), 10u);
  const auto full = tx.TransformColumn("t", col);
  ASSERT_TRUE(full.ok());
  // Local offsets of the slice line up with the matching span of the full
  // transform.
  for (size_t i = 0; i < batched->tokens.size(); ++i) {
    EXPECT_EQ(batched->tokens[i], full->tokens[full->offsets[10] + i]);
  }
  EXPECT_FALSE(tx.TransformColumn("t", col, 5, 200).ok());
  EXPECT_FALSE(tx.TransformColumn("nope", col).ok());
}

TEST(TextifierTest, UnknownTableFails) {
  const Database db = MakeTypedDb();
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  Table other("other");
  Column c;
  c.name = "x";
  ASSERT_TRUE(other.AddColumn(c).ok());
  EXPECT_FALSE(tx.Transform(other).ok());
}

TEST(TextifierTest, AttributeRegistry) {
  const Database db = MakeTypedDb();
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  EXPECT_EQ(tx.NumAttributes(), 4u);
  EXPECT_EQ(tx.AttributeName(0), "t.id");
}

TEST(TextifierTest, SpaceSeparatedStringsSplit) {
  Database db;
  Table t("p");
  Column name;
  name.name = "title";
  name.type = DataType::kString;
  for (int i = 0; i < 30; ++i) {
    name.values.push_back(Value("alpha beta gamma"));
  }
  ASSERT_TRUE(t.AddColumn(name).ok());
  ASSERT_TRUE(db.AddTable(t).ok());
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  const auto tokens = tx.TransformCell("p", "title", Value("alpha beta"));
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 2u);
}

// Bin-count sweep: every configuration produces at most bin_count distinct
// numeric tokens for a column.
class TextifierBinSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TextifierBinSweep, TokenCardinalityBounded) {
  const size_t bins = GetParam();
  const Database db = MakeTypedDb();
  TextifyOptions options;
  options.bin_count = bins;
  Textifier tx(options);
  ASSERT_TRUE(tx.Fit(db).ok());
  std::set<std::string> distinct;
  for (const Value& v : db.tables()[0].column(1).values) {
    const auto tokens = tx.TransformCell("t", "amount", v);
    ASSERT_TRUE(tokens.ok());
    for (const auto& t : *tokens) distinct.insert(t);
  }
  EXPECT_LE(distinct.size(), bins);
  EXPECT_GE(distinct.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TextifierBinSweep,
                         ::testing::Values<size_t>(2, 10, 20, 40, 80, 160));

}  // namespace
}  // namespace leva
