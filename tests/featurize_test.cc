// Differential suite for the batched featurization fast path: the batched
// Featurize (column-wise textify + token interning + blocked parallel
// gather) must be bitwise identical to the row-at-a-time FeaturizeLegacy
// across featurization modes, in-graph vs held-out rows, unseen tokens,
// thread counts, and serving batch sizes.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/token_resolver.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"

namespace leva {
namespace {

LevaConfig TestConfig(Featurization featurization, bool weighted = true) {
  LevaConfig config;
  config.method = EmbeddingMethod::kMatrixFactorization;
  config.embedding_dim = 8;
  config.featurization = featurization;
  config.graph.weighted = weighted;
  config.seed = 5;
  return config;
}

struct StudentSplit {
  Database fit_db;
  Table train_table;  // first 100 rows of expenses, in the fitted graph
  Table test_table;   // held-out 20 rows, unseen by Fit
  TargetEncoder encoder;
};

StudentSplit MakeSplit() {
  auto full = GenerateStudent(120, 0, 3);
  EXPECT_TRUE(full.ok());
  const Table* base = full->db.FindTable("expenses");
  std::vector<size_t> train_rows;
  std::vector<size_t> test_rows;
  for (size_t r = 0; r < base->NumRows(); ++r) {
    (r < 100 ? train_rows : test_rows).push_back(r);
  }
  StudentSplit split;
  split.train_table = base->SubsetRows(train_rows);
  split.test_table = base->SubsetRows(test_rows);
  split.train_table.set_name("expenses");
  split.test_table.set_name("expenses");
  EXPECT_TRUE(split.fit_db.AddTable(split.train_table).ok());
  EXPECT_TRUE(split.fit_db.AddTable(*full->db.FindTable("order_info")).ok());
  EXPECT_TRUE(split.fit_db.AddTable(*full->db.FindTable("price_info")).ok());
  EXPECT_TRUE(
      split.encoder.Fit(*base->FindColumn("total_expenses"), false).ok());
  return split;
}

void ExpectBitIdentical(const MLDataset& batched, const MLDataset& legacy) {
  ASSERT_EQ(batched.NumRows(), legacy.NumRows());
  ASSERT_EQ(batched.NumFeatures(), legacy.NumFeatures());
  EXPECT_EQ(batched.feature_names, legacy.feature_names);
  EXPECT_EQ(batched.y, legacy.y);
  EXPECT_EQ(batched.classification, legacy.classification);
  EXPECT_EQ(batched.num_classes, legacy.num_classes);
  // Bitwise, not approximate: the batched gather must reproduce the exact
  // floating-point accumulation order of the legacy path.
  const auto& a = batched.x.data();
  const auto& b = legacy.x.data();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "element " << i;
  }
}

TEST(BatchedFeaturizeTest, MatchesLegacyAcrossModesThreadsAndBatches) {
  StudentSplit split = MakeSplit();
  for (const Featurization mode :
       {Featurization::kRowOnly, Featurization::kRowPlusValue}) {
    LevaPipeline pipeline(TestConfig(mode));
    ASSERT_TRUE(pipeline.Fit(split.fit_db).ok());
    for (const bool rows_in_graph : {true, false}) {
      const Table& table =
          rows_in_graph ? split.train_table : split.test_table;
      const auto legacy = pipeline.FeaturizeLegacy(table, "total_expenses",
                                                   split.encoder,
                                                   rows_in_graph);
      ASSERT_TRUE(legacy.ok());
      for (const size_t threads : {size_t{1}, size_t{4}}) {
        for (const size_t batch : {size_t{0}, size_t{7}}) {
          pipeline.set_serving_options(threads, batch);
          const auto batched = pipeline.Featurize(table, "total_expenses",
                                                  split.encoder,
                                                  rows_in_graph);
          ASSERT_TRUE(batched.ok())
              << batched.status().ToString() << " mode="
              << (mode == Featurization::kRowOnly ? "row" : "row+value")
              << " rows_in_graph=" << rows_in_graph << " threads=" << threads
              << " batch=" << batch;
          ExpectBitIdentical(*batched, *legacy);
        }
      }
    }
  }
}

TEST(BatchedFeaturizeTest, MatchesLegacyOnUnweightedGraph) {
  StudentSplit split = MakeSplit();
  LevaPipeline pipeline(
      TestConfig(Featurization::kRowPlusValue, /*weighted=*/false));
  ASSERT_TRUE(pipeline.Fit(split.fit_db).ok());
  const auto legacy = pipeline.FeaturizeLegacy(
      split.test_table, "total_expenses", split.encoder, false);
  const auto batched = pipeline.Featurize(split.test_table, "total_expenses",
                                          split.encoder, false);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(batched.ok());
  ExpectBitIdentical(*batched, *legacy);
}

TEST(BatchedFeaturizeTest, UnseenTokensMatchLegacy) {
  StudentSplit split = MakeSplit();
  LevaPipeline pipeline(TestConfig(Featurization::kRowPlusValue));
  ASSERT_TRUE(pipeline.Fit(split.fit_db).ok());

  // Corrupt the held-out slice with strings and numbers never seen at Fit
  // time: unseen strings must contribute nothing, unseen numbers must
  // quantize into existing bins — identically on both paths.
  Table mutated = split.test_table;
  mutated.set_name("expenses");
  for (size_t c = 0; c < mutated.NumColumns(); ++c) {
    Column& col = mutated.mutable_column(c);
    if (col.name == "total_expenses") continue;
    if (!col.values.empty() && col.values[0].is_string()) {
      col.values[0] = Value(std::string("utterly-unseen-token"));
    }
    if (col.values.size() > 1 && col.values[1].is_numeric()) {
      col.values[1] = Value(1e12);  // far outside every fitted bin range
    }
  }
  const auto legacy = pipeline.FeaturizeLegacy(mutated, "total_expenses",
                                               split.encoder, false);
  const auto batched =
      pipeline.Featurize(mutated, "total_expenses", split.encoder, false);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(batched.ok());
  ExpectBitIdentical(*batched, *legacy);
}

TEST(BatchedFeaturizeTest, ResolverStatsShowPerDistinctTokenLookups) {
  StudentSplit split = MakeSplit();
  LevaPipeline pipeline(TestConfig(Featurization::kRowPlusValue));
  ASSERT_TRUE(pipeline.Fit(split.fit_db).ok());
  ASSERT_TRUE(pipeline
                  .Featurize(split.train_table, "total_expenses",
                             split.encoder, true)
                  .ok());
  const FeaturizeStats& stats = pipeline.featurize_stats();
  EXPECT_EQ(stats.rows, split.train_table.NumRows());
  EXPECT_EQ(stats.batches, 1u);
  // Gender/school/item tokens repeat heavily across the 100 rows, so the
  // distinct count must be far below the occurrence count, and store hash
  // lookups must track distinct tokens, not (row, token) occurrences.
  EXPECT_GT(stats.token_occurrences, stats.distinct_tokens);
  EXPECT_EQ(stats.store_lookups, stats.distinct_tokens);
}

TEST(BatchedFeaturizeTest, WarmResolverCacheSkipsStoreLookups) {
  StudentSplit split = MakeSplit();
  LevaPipeline pipeline(TestConfig(Featurization::kRowPlusValue));
  ASSERT_TRUE(pipeline.Fit(split.fit_db).ok());
  const auto cold = pipeline.Featurize(split.train_table, "total_expenses",
                                       split.encoder, true);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(pipeline.featurize_stats().store_lookups, 0u);

  // The resolver cache persists across calls, so a repeat over the same
  // vocabulary resolves every token from the cache — zero store probes —
  // and still reproduces the exact same bits.
  const auto warm = pipeline.Featurize(split.train_table, "total_expenses",
                                       split.encoder, true);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(pipeline.featurize_stats().distinct_tokens, 0u);
  EXPECT_EQ(pipeline.featurize_stats().store_lookups, 0u);
  EXPECT_GT(pipeline.featurize_stats().token_occurrences, 0u);
  ExpectBitIdentical(*warm, *cold);

  // Re-Fit invalidates the cache: the next call resolves from scratch.
  ASSERT_TRUE(pipeline.Fit(split.fit_db).ok());
  ASSERT_TRUE(pipeline
                  .Featurize(split.train_table, "total_expenses",
                             split.encoder, true)
                  .ok());
  EXPECT_GT(pipeline.featurize_stats().store_lookups, 0u);
}

TEST(BatchedFeaturizeTest, RowOnlyInGraphSkipsTextification) {
  StudentSplit split = MakeSplit();
  LevaPipeline pipeline(TestConfig(Featurization::kRowOnly));
  ASSERT_TRUE(pipeline.Fit(split.fit_db).ok());
  ASSERT_TRUE(pipeline
                  .Featurize(split.train_table, "total_expenses",
                             split.encoder, true)
                  .ok());
  // The row-node gather never consults tokens, so none are interned.
  EXPECT_EQ(pipeline.featurize_stats().token_occurrences, 0u);
  EXPECT_EQ(pipeline.featurize_stats().store_lookups, 0u);
}

TEST(BatchedFeaturizeTest, MissingRowNodeFailsLikeLegacy) {
  StudentSplit split = MakeSplit();
  LevaPipeline pipeline(TestConfig(Featurization::kRowOnly));
  ASSERT_TRUE(pipeline.Fit(split.fit_db).ok());
  // The held-out table claims rows_in_graph but rows 100..119 were never
  // fitted... the train slice has only 100 row nodes, so a longer table
  // must report the first missing row node, exactly like the legacy path.
  Table longer = split.train_table;
  longer.set_name("expenses");
  for (size_t r = 0; r < split.test_table.NumRows(); ++r) {
    ASSERT_TRUE(longer.AddRow(split.test_table.Row(r)).ok());
  }
  const auto legacy = pipeline.FeaturizeLegacy(longer, "total_expenses",
                                               split.encoder, true);
  const auto batched =
      pipeline.Featurize(longer, "total_expenses", split.encoder, true);
  ASSERT_FALSE(legacy.ok());
  ASSERT_FALSE(batched.ok());
  EXPECT_EQ(batched.status().code(), legacy.status().code());
  EXPECT_EQ(batched.status().ToString(), legacy.status().ToString());
}

TEST(BatchedFeaturizeTest, RecordsFeaturizeStage) {
  StudentSplit split = MakeSplit();
  LevaPipeline pipeline(TestConfig(Featurization::kRowPlusValue));
  ASSERT_TRUE(pipeline.Fit(split.fit_db).ok());
  ASSERT_TRUE(pipeline
                  .Featurize(split.train_table, "total_expenses",
                             split.encoder, true)
                  .ok());
  bool has_stage = false;
  for (const auto& [name, secs] : pipeline.profile().stages()) {
    if (name == "featurize") has_stage = true;
  }
  EXPECT_TRUE(has_stage);
}

TEST(TokenResolverTest, InternsOncePerDistinctToken) {
  Embedding embedding(2);
  ASSERT_TRUE(embedding.Put("red", std::vector<double>{1, 2}).ok());
  TokenResolver resolver(&embedding, nullptr, /*weighted=*/false);
  const uint32_t red = resolver.Intern("red");
  EXPECT_EQ(resolver.Intern("red"), red);
  const uint32_t unseen = resolver.Intern("unseen");
  EXPECT_NE(unseen, red);
  EXPECT_EQ(resolver.NumDistinct(), 2u);
  EXPECT_EQ(resolver.stats().occurrences, 3u);
  EXPECT_EQ(resolver.stats().distinct, 2u);
  EXPECT_EQ(resolver.stats().store_lookups, 2u);
  EXPECT_EQ(resolver.entry(red).embedding_id, embedding.IdOf("red"));
  EXPECT_DOUBLE_EQ(resolver.entry(red).weight, 1.0);
  EXPECT_EQ(resolver.entry(unseen).embedding_id, Embedding::kInvalidId);

  resolver.Clear();
  EXPECT_EQ(resolver.NumDistinct(), 0u);
  // Stats persist across Clear so multi-batch calls report call totals.
  EXPECT_EQ(resolver.stats().occurrences, 3u);
}

}  // namespace
}  // namespace leva
