// Coverage for the experiment harness and option paths not exercised
// elsewhere: task preparation invariants, grid-search helpers, forced
// histogram types, featurizer options, and walk-option clamping.
#include <gtest/gtest.h>

#include <set>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "datagen/synthetic.h"
#include "la/decomp.h"
#include "ml/gridsearch.h"
#include "ml/linear.h"
#include "ml/metrics.h"

namespace leva {
namespace {

SyntheticDataset TinyTask() {
  SyntheticConfig c;
  c.base_rows = 120;
  c.dims = {
      {.name = "d", .rows = 20, .predictive_numeric = 1,
       .predictive_categorical = 1, .noise_numeric = 0,
       .noise_categorical = 0, .categories = 4, .parent = ""},
  };
  c.seed = 2;
  auto ds = GenerateSynthetic(c);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(PrepareTaskTest, SplitIsDisjointAndComplete) {
  auto task = PrepareTask(TinyTask(), 0.25, 5);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->test_rows.size(), 30u);
  EXPECT_EQ(task->train_rows.size(), 90u);
  std::set<size_t> all(task->train_rows.begin(), task->train_rows.end());
  all.insert(task->test_rows.begin(), task->test_rows.end());
  EXPECT_EQ(all.size(), 120u);
}

TEST(PrepareTaskTest, FitDbDropsTargetButKeepsAllRows) {
  auto task = PrepareTask(TinyTask(), 0.25, 5);
  ASSERT_TRUE(task.ok());
  const Table* fit_base = task->fit_db.FindTable("base");
  ASSERT_NE(fit_base, nullptr);
  // Transductive protocol: every row's features, no label column.
  EXPECT_EQ(fit_base->NumRows(), 120u);
  EXPECT_EQ(fit_base->FindColumn("target"), nullptr);
  // Foreign keys carried over for the Full baseline.
  EXPECT_EQ(task->fit_db.foreign_keys().size(),
            task->data.db.foreign_keys().size());
}

TEST(PrepareTaskTest, MissingBaseTableFails) {
  SyntheticDataset broken = TinyTask();
  broken.base_table = "nope";
  EXPECT_FALSE(PrepareTask(std::move(broken), 0.25, 5).ok());
}

TEST(PrepareTaskTest, EncoderSharedAcrossSlices) {
  auto task = PrepareTask(TinyTask(), 0.25, 5);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->encoder.num_classes(), 2u);
  EXPECT_TRUE(task->encoder.Encode(Value("class_0")).ok());
  EXPECT_TRUE(task->encoder.Encode(Value("class_1")).ok());
}

TEST(HarnessTest, TrainAndScoreAllModelKinds) {
  auto task = PrepareTask(TinyTask(), 0.25, 6);
  ASSERT_TRUE(task.ok());
  LevaModel model(FastLevaConfig(EmbeddingMethod::kMatrixFactorization, 7, 16));
  ASSERT_TRUE(model.Fit(task->fit_db).ok());
  const auto datasets = FeaturizeTask(model, *task);
  ASSERT_TRUE(datasets.ok());
  for (const ModelKind kind :
       {ModelKind::kRandomForest, ModelKind::kLogistic, ModelKind::kMlp}) {
    const auto score =
        TrainAndScore(kind, datasets->first, datasets->second, 1);
    ASSERT_TRUE(score.ok()) << ModelKindName(kind);
    EXPECT_GE(*score, 0.0);
    EXPECT_LE(*score, 1.0);
  }
}

TEST(HarnessTest, ModelKindNamesDistinct) {
  std::set<std::string> names;
  for (const ModelKind kind :
       {ModelKind::kRandomForest, ModelKind::kLogistic, ModelKind::kLinear,
        ModelKind::kElasticNet, ModelKind::kMlp}) {
    names.insert(ModelKindName(kind));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(GridSearchTest, EmptyAxesYieldSingleEmptyAssignment) {
  const auto grid = BuildParamGrid({});
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid[0].empty());
}

TEST(GridSearchTest, FitAndScoreUsesGivenParams) {
  Rng rng(3);
  MLDataset ds;
  ds.classification = false;
  ds.x = Matrix(100, 1);
  ds.y.resize(100);
  for (size_t i = 0; i < 100; ++i) {
    ds.x(i, 0) = rng.Normal();
    ds.y[i] = 4.0 * ds.x(i, 0);
  }
  const ModelFactory factory = [](const ParamSet&) {
    ElasticNetOptions options;
    options.epochs = 100;
    return std::make_unique<LinearRegressor>(options);
  };
  const auto mae =
      FitAndScore(factory, {}, ds, ds, MeanAbsoluteError, &rng);
  ASSERT_TRUE(mae.ok());
  EXPECT_LT(*mae, 0.2);
}

TEST(PcaTest, ExplainedVarianceDescending) {
  Rng rng(4);
  Matrix x(200, 5);
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      x(i, j) = rng.Normal() * static_cast<double>(5 - j);
    }
  }
  const auto pca = PCA::Fit(x, 5);
  ASSERT_TRUE(pca.ok());
  for (size_t j = 1; j < 5; ++j) {
    EXPECT_GE(pca->explained_variance()[j - 1],
              pca->explained_variance()[j]);
  }
}

TEST(TextifierOptionsTest, ForcedHistogramType) {
  Database db;
  Table t("t");
  Column c;
  c.name = "x";
  c.type = DataType::kDouble;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    // Heavy-tailed data would normally pick equi-depth.
    c.values.push_back(
        Value(rng.Bernoulli(0.05) ? rng.Normal() * 100 : rng.Normal()));
  }
  ASSERT_TRUE(t.AddColumn(c).ok());
  ASSERT_TRUE(db.AddTable(t).ok());

  TextifyOptions options;
  options.force_histogram_type = true;
  options.forced_type = HistogramType::kEquiWidth;
  options.bin_count = 10;
  Textifier tx(options);
  ASSERT_TRUE(tx.Fit(db).ok());
  // With forced equi-width bins on heavy-tailed data, almost everything
  // lands in a couple of central bins.
  std::set<std::string> tokens;
  for (const Value& v : db.tables()[0].column(0).values) {
    const auto cell = tx.TransformCell("t", "x", v);
    ASSERT_TRUE(cell.ok());
    for (const auto& tok : *cell) tokens.insert(tok);
  }
  EXPECT_LE(tokens.size(), 10u);
}

TEST(WalkOptionsTest, RestartEpochsClampedToTotal) {
  auto data = GenerateStudent(30, 0, 8);
  ASSERT_TRUE(data.ok());
  LevaConfig config;
  config.embedding_dim = 4;
  config.method = EmbeddingMethod::kRandomWalk;
  config.walks.epochs = 2;
  config.walks.balanced_restarts = true;
  config.walks.restart_epochs = 10;  // > epochs: must clamp, not underflow
  config.word2vec.epochs = 1;
  LevaPipeline pipeline(config);
  EXPECT_TRUE(pipeline.Fit(data->db).ok());
}

TEST(EvaluateTabularTest, FullFeSelectsSubset) {
  auto task = PrepareTask(TinyTask(), 0.25, 9);
  ASSERT_TRUE(task.ok());
  const auto with_fe = EvaluateTabularBaseline(
      *task, TabularBaseline::kFull, 3, ModelKind::kLogistic, 1);
  ASSERT_TRUE(with_fe.ok());
  EXPECT_GE(*with_fe, 0.0);
}

}  // namespace
}  // namespace leva
