// Differential and determinism suites for the embedding-training fast path:
// the sequential fast trainer is pinned bit-identical to TrainLegacy, the
// deterministic-parallel merge trainer is pinned thread-count invariant, and
// flat walk-corpus generation is pinned equivalent to the legacy nested
// generator. These tests carry the `determinism` ctest label and are run
// under TSan (LEVA_SANITIZE=thread) to keep the parallel paths race-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "embed/corpus.h"
#include "embed/walks.h"
#include "embed/word2vec.h"
#include "graph/graph.h"

namespace leva {
namespace {

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.data().size(), b.data().size());
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.data().size() * sizeof(double)),
            0);
}

// Random corpus with a skewed unigram distribution so frequent-token
// subsampling actually draws from the RNG (keep probability < 1 for the
// head tokens).
std::vector<std::vector<uint32_t>> RandomCorpus(size_t sentences,
                                                size_t max_len, uint32_t vocab,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> corpus(sentences);
  for (auto& sentence : corpus) {
    const size_t len = 2 + rng.UniformInt(max_len - 1);
    sentence.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      // min of two uniforms skews mass toward small token ids.
      const uint32_t a = static_cast<uint32_t>(rng.UniformInt(vocab));
      const uint32_t b = static_cast<uint32_t>(rng.UniformInt(vocab));
      sentence.push_back(std::min(a, b));
    }
  }
  return corpus;
}

TEST(FlatCorpusTest, BuildAndIndex) {
  FlatCorpus c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.num_tokens(), 0u);
  c.PushToken(3);
  c.PushToken(1);
  EXPECT_TRUE(c.EndSentence());
  EXPECT_FALSE(c.EndSentence());  // nothing pushed: dropped
  const std::vector<uint32_t> one = {7};
  c.AppendSentence(one);
  c.AppendSentence({});  // empty: dropped
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.num_tokens(), 3u);
  ASSERT_EQ(c[0].size(), 2u);
  EXPECT_EQ(c[0][0], 3u);
  EXPECT_EQ(c[0][1], 1u);
  ASSERT_EQ(c[1].size(), 1u);
  EXPECT_EQ(c[1][0], 7u);
  EXPECT_EQ(c.offsets().front(), 0u);
  EXPECT_EQ(c.offsets().back(), c.num_tokens());
}

TEST(FlatCorpusTest, FlattenMatchesNested) {
  const std::vector<std::vector<uint32_t>> nested = {{1, 2, 3}, {}, {4}};
  const FlatCorpus flat = Flatten(nested);
  ASSERT_EQ(flat.size(), 2u);  // empty sentence dropped
  EXPECT_EQ(flat.tokens(), (std::vector<uint32_t>{1, 2, 3, 4}));
  EXPECT_EQ(flat.offsets(), (std::vector<size_t>{0, 3, 4}));
}

// The sequential fast path (SIMD kernels, batched lr counter, reused
// gradient buffer) must reproduce the reference trainer bit-for-bit.
TEST(Word2VecTest, SequentialFastMatchesLegacyBitwise) {
  const auto nested = RandomCorpus(300, 12, 50, 42);
  const FlatCorpus flat = Flatten(nested);

  Word2VecOptions options;
  options.dim = 24;
  options.window = 3;
  options.negative = 4;
  options.epochs = 2;
  options.threads = 1;

  Word2Vec fast(options);
  Word2Vec legacy(options);
  Rng r1(99);
  Rng r2(99);
  ASSERT_TRUE(fast.Train(flat, 50, &r1).ok());
  ASSERT_TRUE(legacy.TrainLegacy(nested, 50, &r2).ok());
  ExpectBitIdentical(fast.node_vectors(), legacy.node_vectors());
  ExpectBitIdentical(fast.context_vectors(), legacy.context_vectors());
}

// The nested-corpus Train overload is a flatten-then-train shim.
TEST(Word2VecTest, NestedOverloadMatchesFlat) {
  const auto nested = RandomCorpus(100, 8, 30, 5);
  Word2VecOptions options;
  options.dim = 8;
  options.epochs = 1;
  Word2Vec a(options);
  Word2Vec b(options);
  Rng r1(17);
  Rng r2(17);
  ASSERT_TRUE(a.Train(nested, 30, &r1).ok());
  ASSERT_TRUE(b.Train(Flatten(nested), 30, &r2).ok());
  ExpectBitIdentical(a.node_vectors(), b.node_vectors());
}

// Deterministic-parallel training is a pure function of the seed at any
// thread count. 9000 sentences is enough for full-width (16-shard) merge
// rounds with several round barriers per epoch, and 2 epochs cover the
// epoch loop.
TEST(Word2VecTest, DeterministicParallelThreadInvariance) {
  const FlatCorpus flat = Flatten(RandomCorpus(9000, 8, 80, 7));

  Word2VecOptions options;
  options.dim = 12;
  options.window = 3;
  options.negative = 3;
  options.epochs = 2;
  options.deterministic = true;

  Matrix reference_node;
  Matrix reference_ctx;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    Word2VecOptions o = options;
    o.threads = threads;
    Word2Vec model(o);
    Rng rng(123);
    ASSERT_TRUE(model.Train(flat, 80, &rng).ok());
    if (threads == 1) {
      reference_node = model.node_vectors();
      reference_ctx = model.context_vectors();
    } else {
      ExpectBitIdentical(model.node_vectors(), reference_node);
      ExpectBitIdentical(model.context_vectors(), reference_ctx);
    }
  }
}

double Cosine(const Matrix& vecs, size_t a, size_t b) {
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (size_t j = 0; j < vecs.cols(); ++j) {
    dot += vecs(a, j) * vecs(b, j);
    na += vecs(a, j) * vecs(a, j);
    nb += vecs(b, j) * vecs(b, j);
  }
  return dot / std::sqrt(na * nb);
}

// Two-cluster corpus: tokens 0/1 always co-occur and 2/3 always co-occur.
std::vector<std::vector<uint32_t>> ClusterCorpus(size_t sentences) {
  std::vector<std::vector<uint32_t>> corpus;
  corpus.reserve(sentences);
  for (size_t i = 0; i < sentences; ++i) {
    if (i % 2 == 0) {
      corpus.push_back({0, 1, 0, 1, 0, 1});
    } else {
      corpus.push_back({2, 3, 2, 3, 2, 3});
    }
  }
  return corpus;
}

// Hogwild training is not bit-reproducible, but its statistical quality must
// hold: co-occurring tokens end up far more similar than cross-cluster ones.
// Subsampling is off — with a 4-token vocab every token is "frequent" and
// the subsampler would (correctly) discard ~93% of the corpus.
TEST(Word2VecTest, HogwildQualityFloor) {
  const FlatCorpus flat = Flatten(ClusterCorpus(400));
  Word2VecOptions options;
  options.dim = 16;
  options.epochs = 4;
  options.threads = 4;
  options.subsample = 0;
  Word2Vec model(options);
  Rng rng(31);
  ASSERT_TRUE(model.Train(flat, 4, &rng).ok());
  const Matrix& vecs = model.node_vectors();
  EXPECT_GT(Cosine(vecs, 0, 1), 0.5);
  EXPECT_GT(Cosine(vecs, 2, 3), 0.5);
  EXPECT_GT(Cosine(vecs, 0, 1), Cosine(vecs, 0, 2));
  EXPECT_GT(Cosine(vecs, 2, 3), Cosine(vecs, 1, 3));
}

// The deterministic merge path must match that quality floor too — frozen
// round-start weights may slow convergence but must not break it.
TEST(Word2VecTest, DeterministicParallelQualityFloor) {
  const FlatCorpus flat = Flatten(ClusterCorpus(400));
  Word2VecOptions options;
  options.dim = 16;
  options.epochs = 4;
  options.threads = 4;
  options.subsample = 0;
  options.deterministic = true;
  Word2Vec model(options);
  Rng rng(31);
  ASSERT_TRUE(model.Train(flat, 4, &rng).ok());
  const Matrix& vecs = model.node_vectors();
  EXPECT_GT(Cosine(vecs, 0, 1), 0.5);
  EXPECT_GT(Cosine(vecs, 2, 3), 0.5);
  EXPECT_GT(Cosine(vecs, 0, 1), Cosine(vecs, 0, 2));
  EXPECT_GT(Cosine(vecs, 2, 3), Cosine(vecs, 1, 3));
}

LevaGraph WalkGraph() {
  TextifiedTable t;
  t.table_name = "t";
  t.rows = {
      {{0, "a"}},
      {{0, "a"}, {1, "b"}},
      {{1, "b"}, {2, "c"}},
      {{2, "c"}, {0, "a"}},
      {{0, "a"}, {1, "b"}, {2, "c"}},
  };
  auto g = BuildGraph({t}, 3);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// Generate (flat) and GenerateNested (legacy) consume identical RNG streams,
// so for the same seed they must emit identical walks, sentence by sentence —
// across plain, visit-limited, balanced-restart, and weighted configs.
TEST(WalksTest, FlatGenerationMatchesNested) {
  const LevaGraph g = WalkGraph();
  WalkOptions base;
  base.epochs = 5;
  base.walk_length = 15;

  WalkOptions limited = base;
  limited.visit_limit = 12;
  WalkOptions balanced = base;
  balanced.balanced_restarts = true;
  balanced.restart_epochs = 2;
  WalkOptions weighted = base;
  weighted.weighted = true;

  for (const WalkOptions& options : {base, limited, balanced, weighted}) {
    WalkGenerator flat_gen(&g, options);
    WalkGenerator nested_gen(&g, options);
    Rng r1(2024);
    Rng r2(2024);
    const auto flat = flat_gen.Generate(&r1);
    const auto nested = nested_gen.GenerateNested(&r2);
    ASSERT_TRUE(flat.ok());
    ASSERT_TRUE(nested.ok());
    ASSERT_EQ(flat->size(), nested->size());
    for (size_t i = 0; i < flat->size(); ++i) {
      const auto walk = (*flat)[i];
      ASSERT_EQ(walk.size(), (*nested)[i].size()) << "walk " << i;
      EXPECT_TRUE(std::equal(walk.begin(), walk.end(), (*nested)[i].begin()))
          << "walk " << i;
    }
    EXPECT_EQ(flat_gen.visit_counts(), nested_gen.visit_counts());
  }
}

}  // namespace
}  // namespace leva
