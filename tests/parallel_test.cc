// Tests for the shared execution layer (common/parallel.h): ThreadPool /
// ParallelFor mechanics, counter-based RNG streams, and the cross-module
// determinism contract — every parallel stage must produce bit-identical
// output at any thread count for a fixed seed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "embed/mf.h"
#include "embed/walks.h"
#include "embed/word2vec.h"
#include "graph/graph.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "ml/gridsearch.h"
#include "ml/metrics.h"
#include "ml/model.h"
#include "ml/tree.h"

namespace leva {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor mechanics
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (count.load() < 64 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool joins after draining the queue.
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(threads, 0, hits.size(), 7, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  ParallelFor(4, 10, 10, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ChunkBoundariesRespectGrain) {
  // Chunk boundaries must be a pure function of (begin, end, grain) — they
  // are what makes per-chunk RNG streams thread-count invariant.
  std::mutex mu;
  std::set<std::pair<size_t, size_t>> chunks;
  ParallelFor(4, 0, 103, 10, [&](size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.insert({b, e});
  });
  std::set<std::pair<size_t, size_t>> expected;
  for (size_t b = 0; b < 103; b += 10) expected.insert({b, std::min<size_t>(b + 10, 103)});
  EXPECT_EQ(chunks, expected);
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(ParallelFor(4, 0, 100, 1,
                           [&](size_t b, size_t) {
                             if (b == 57) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The pool must still be usable after an exception.
  std::atomic<int> count{0};
  ParallelFor(4, 0, 16, 1, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ParallelForTest, ResolveThreadsNeverReturnsZero) {
  EXPECT_GE(ResolveThreads(0), 1u);
  EXPECT_EQ(ResolveThreads(3), 3u);
}

// ---------------------------------------------------------------------------
// NUMA-aware primitives. These must behave (and pass) identically on
// single-node machines, where every primitive degrades to its plain
// counterpart.
// ---------------------------------------------------------------------------

TEST(NumaTest, TopologyReportsAtLeastOneNode) {
  const NumaTopology& topo = NumaTopology::Get();
  ASSERT_GE(topo.num_nodes(), 1u);
  size_t cpus = 0;
  for (size_t node = 0; node < topo.num_nodes(); ++node) {
    cpus += topo.cpus(node).size();
  }
  EXPECT_GE(cpus, 1u);
  EXPECT_EQ(topo.multi_node(), topo.num_nodes() > 1);
}

TEST(NumaTest, ParseCpuListHandlesRangesAndSingles) {
  EXPECT_EQ(NumaTopology::ParseCpuList("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(NumaTopology::ParseCpuList("5"), (std::vector<int>{5}));
  EXPECT_EQ(NumaTopology::ParseCpuList("0-0"), (std::vector<int>{0}));
  EXPECT_EQ(NumaTopology::ParseCpuList(""), (std::vector<int>{}));
  EXPECT_EQ(NumaTopology::ParseCpuList("garbage"), (std::vector<int>{}));
  EXPECT_EQ(NumaTopology::ParseCpuList("3-1"), (std::vector<int>{}));
}

TEST(NumaTest, FirstTouchBytesAllocatesReadWriteMemory) {
  NumaFirstTouchBytes mem(size_t{1} << 20);
  ASSERT_NE(mem.data(), nullptr);
  ASSERT_GE(mem.size(), size_t{1} << 20);
  unsigned char* p = static_cast<unsigned char*>(mem.data());
  for (size_t i = 0; i < (size_t{1} << 20); i += 4096) p[i] = 0xAB;
  for (size_t i = 0; i < (size_t{1} << 20); i += 4096) EXPECT_EQ(p[i], 0xAB);
  // Move transfers ownership and empties the source.
  NumaFirstTouchBytes moved = std::move(mem);
  EXPECT_NE(moved.data(), nullptr);
  EXPECT_EQ(mem.data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(NumaTest, NumaArrayEnsureSizeGrowsAndIsWritable) {
  NumaArray<uint64_t> arr;
  EXPECT_EQ(arr.data(), nullptr);
  arr.EnsureSize(100);
  ASSERT_GE(arr.capacity(), 100u);
  for (size_t i = 0; i < 100; ++i) arr.data()[i] = i * 3;
  // Never shrinks; growing reallocates.
  uint64_t* before = arr.data();
  arr.EnsureSize(10);
  EXPECT_EQ(arr.data(), before);
  arr.EnsureSize(100000);
  ASSERT_GE(arr.capacity(), 100000u);
  for (size_t i = 0; i < 100000; ++i) arr.data()[i] = i;
  for (size_t i = 0; i < 100000; ++i) ASSERT_EQ(arr.data()[i], i);
}

TEST(NumaTest, ParallelForNumaMatchesParallelFor) {
  // Same coverage and (since the body writes i -> f(i)) same results as the
  // plain version, at several thread counts and grains.
  for (const size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
    for (const size_t grain : {size_t{1}, size_t{64}, size_t{1000}}) {
      std::vector<uint64_t> out_plain(5000, 0);
      std::vector<uint64_t> out_numa(5000, 0);
      ParallelFor(threads, 0, out_plain.size(), grain, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) out_plain[i] = i * i + 1;
      });
      ParallelForNuma(threads, 0, out_numa.size(), grain,
                      [&](size_t b, size_t e) {
                        for (size_t i = b; i < e; ++i) out_numa[i] = i * i + 1;
                      });
      EXPECT_EQ(out_plain, out_numa);
    }
  }
}

TEST(NumaTest, ParallelForNumaEmptyRangeAndExceptions) {
  std::atomic<int> calls{0};
  ParallelForNuma(4, 10, 10, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_THROW(ParallelForNuma(4, 0, 100, 1,
                               [&](size_t b, size_t) {
                                 if (b == 57) throw std::runtime_error("boom");
                               }),
               std::runtime_error);
  // Usable after an exception.
  std::atomic<int> count{0};
  ParallelForNuma(4, 0, 16, 1, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(StreamRngTest, StreamsAreStableAndDistinct) {
  const uint64_t s1 = DeriveStreamSeed(42, rngdomain::kWalk, 7);
  EXPECT_EQ(s1, DeriveStreamSeed(42, rngdomain::kWalk, 7));
  EXPECT_NE(s1, DeriveStreamSeed(42, rngdomain::kWalk, 8));
  EXPECT_NE(s1, DeriveStreamSeed(42, rngdomain::kForest, 7));
  EXPECT_NE(s1, DeriveStreamSeed(43, rngdomain::kWalk, 7));
  // Neighboring streams must not be correlated in their first draws.
  std::set<uint64_t> first_draws;
  for (uint64_t i = 0; i < 100; ++i) {
    Rng r = StreamRng(42, rngdomain::kWalk, i);
    first_draws.insert(r.Next());
  }
  EXPECT_EQ(first_draws.size(), 100u);
}

// ---------------------------------------------------------------------------
// Determinism contract: threads=1 vs threads=4, same seed, bitwise equality
// ---------------------------------------------------------------------------

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << "mismatch at (" << i << ", " << j << ")";
    }
  }
}

TEST(DeterminismTest, DenseMatMul) {
  Rng rng(11);
  const Matrix a = Matrix::GaussianRandom(65, 33, &rng);
  const Matrix b = Matrix::GaussianRandom(33, 21, &rng);
  ExpectBitIdentical(MatMul(a, b, 1), MatMul(a, b, 4));
  const Matrix c = Matrix::GaussianRandom(65, 21, &rng);
  ExpectBitIdentical(MatTMul(a, c, 1), MatTMul(a, c, 4));
}

TEST(DeterminismTest, SparseMultiply) {
  // 600 rows so TransposeMultiply uses more than one merge chunk.
  Rng rng(12);
  std::vector<Triplet> triplets;
  for (size_t i = 0; i < 4000; ++i) {
    triplets.push_back({static_cast<uint32_t>(rng.UniformInt(600)),
                        static_cast<uint32_t>(rng.UniformInt(80)),
                        rng.Normal()});
  }
  const SparseMatrix s = SparseMatrix::FromTriplets(600, 80, triplets);
  const Matrix x = Matrix::GaussianRandom(80, 16, &rng);
  ExpectBitIdentical(s.Multiply(x, 1), s.Multiply(x, 4));
  const Matrix y = Matrix::GaussianRandom(600, 16, &rng);
  ExpectBitIdentical(s.TransposeMultiply(y, 1), s.TransposeMultiply(y, 4));
}

LevaGraph TestGraph() {
  TextifiedTable t;
  t.table_name = "t";
  t.rows = {
      {{0, "v1"}},
      {{0, "v1"}, {1, "v2"}},
      {{1, "v2"}, {2, "v3"}},
      {{2, "v3"}, {0, "v1"}},
      {{1, "v2"}},
  };
  auto g = BuildGraph({t}, 3);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(DeterminismTest, WalkCorpus) {
  const LevaGraph g = TestGraph();
  for (const bool balanced : {false, true}) {
    WalkOptions o1;
    o1.epochs = 6;
    o1.balanced_restarts = balanced;
    o1.restart_epochs = 2;
    WalkOptions o4 = o1;
    o1.threads = 1;
    o4.threads = 4;
    Rng r1(77);
    Rng r4(77);
    WalkGenerator g1(&g, o1);
    WalkGenerator g4(&g, o4);
    const auto c1 = g1.Generate(&r1);
    const auto c4 = g4.Generate(&r4);
    ASSERT_TRUE(c1.ok());
    ASSERT_TRUE(c4.ok());
    ASSERT_EQ(c1->size(), c4->size());
    EXPECT_EQ(c1->tokens(), c4->tokens());
    EXPECT_EQ(c1->offsets(), c4->offsets());
    EXPECT_EQ(g1.visit_counts(), g4.visit_counts());
  }
}

TEST(DeterminismTest, MatrixFactorizationEmbedding) {
  const LevaGraph g = TestGraph();
  MfOptions o1;
  o1.dim = 8;
  MfOptions o4 = o1;
  o1.threads = 1;
  o4.threads = 4;
  Rng r1(13);
  Rng r4(13);
  const auto e1 = MatrixFactorizationEmbed(g, o1, &r1);
  const auto e4 = MatrixFactorizationEmbed(g, o4, &r4);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e4.ok());
  ExpectBitIdentical(*e1, *e4);
}

TEST(DeterminismTest, Word2VecDeterministicMode) {
  const LevaGraph g = TestGraph();
  WalkOptions wo;
  wo.epochs = 4;
  wo.walk_length = 20;
  Rng wr(9);
  WalkGenerator gen(&g, wo);
  const auto corpus = gen.Generate(&wr);
  ASSERT_TRUE(corpus.ok());

  Word2VecOptions o1;
  o1.dim = 8;
  o1.epochs = 2;
  o1.deterministic = true;
  Word2VecOptions o4 = o1;
  o1.threads = 1;
  o4.threads = 4;
  Rng r1(31);
  Rng r4(31);
  Word2Vec m1(o1);
  Word2Vec m4(o4);
  ASSERT_TRUE(m1.Train(*corpus, g.NumNodes(), &r1).ok());
  ASSERT_TRUE(m4.Train(*corpus, g.NumNodes(), &r4).ok());
  ExpectBitIdentical(m1.node_vectors(), m4.node_vectors());
}

MLDataset BlobData(size_t n, Rng* rng) {
  MLDataset ds;
  ds.classification = true;
  ds.num_classes = 2;
  ds.x = Matrix(n, 2);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool pos = i % 2 == 0;
    ds.x(i, 0) = rng->Normal() + (pos ? 2.0 : -2.0);
    ds.x(i, 1) = rng->Normal() + (pos ? 2.0 : -2.0);
    ds.y[i] = pos ? 1.0 : 0.0;
  }
  return ds;
}

TEST(DeterminismTest, RandomForestFit) {
  Rng data_rng(55);
  const MLDataset ds = BlobData(120, &data_rng);
  ForestOptions o1;
  o1.num_trees = 12;
  ForestOptions o4 = o1;
  o1.threads = 1;
  o4.threads = 4;
  Rng r1(21);
  Rng r4(21);
  RandomForest f1(o1);
  RandomForest f4(o4);
  ASSERT_TRUE(f1.Fit(ds.x, ds.y, &r1).ok());
  ASSERT_TRUE(f4.Fit(ds.x, ds.y, &r4).ok());
  const auto p1 = f1.Predict(ds.x);
  const auto p4 = f4.Predict(ds.x);
  ASSERT_EQ(p1.size(), p4.size());
  for (size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p4[i]);
  // The caller rng must also advance identically (one base-seed draw).
  EXPECT_EQ(r1.Next(), r4.Next());
}

TEST(DeterminismTest, GridSearchWinner) {
  Rng data_rng(66);
  const MLDataset ds = BlobData(90, &data_rng);
  const ModelFactory factory = [](const ParamSet& p) {
    ForestOptions o;
    o.num_trees = static_cast<size_t>(p.at("trees"));
    return std::make_unique<RandomForest>(o);
  };
  const auto grid = BuildParamGrid({{"trees", {2, 4, 8}}});
  Rng r1(47);
  Rng r4(47);
  const auto g1 = GridSearchCV(factory, grid, ds, 3, Accuracy,
                               /*higher_is_better=*/true, &r1, /*threads=*/1);
  const auto g4 = GridSearchCV(factory, grid, ds, 3, Accuracy,
                               /*higher_is_better=*/true, &r4, /*threads=*/4);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g4.ok());
  EXPECT_EQ(g1->best_params, g4->best_params);
  EXPECT_EQ(g1->best_score, g4->best_score);
}

}  // namespace
}  // namespace leva
