#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/decomp.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace leva {
namespace {

TEST(MatrixTest, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, IdentityAndTranspose) {
  const Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  Matrix m(2, 3);
  m(0, 2) = 5.0;
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
}

TEST(MatrixTest, MatMulCorrect) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, MatTMulEqualsTransposeThenMul) {
  Rng rng(4);
  const Matrix a = Matrix::GaussianRandom(5, 3, &rng);
  const Matrix b = Matrix::GaussianRandom(5, 2, &rng);
  const Matrix direct = MatTMul(a, b);
  const Matrix expected = MatMul(a.Transposed(), b);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(direct(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(MatrixTest, AddScaledAndNorm) {
  Matrix a(1, 2);
  a(0, 0) = 3;
  a(0, 1) = 4;
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  Matrix b(1, 2, 1.0);
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 5.0);
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
}

SparseMatrix SmallSparse() {
  // [[1, 0, 2], [0, 3, 0]]
  return SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
}

TEST(SparseTest, FromTripletsAndAt) {
  const SparseMatrix m = SmallSparse();
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 3.0);
}

TEST(SparseTest, DuplicateTripletsSum) {
  const SparseMatrix m =
      SparseMatrix::FromTriplets(1, 1, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.5);
}

TEST(SparseTest, MultiplyMatchesDense) {
  const SparseMatrix m = SmallSparse();
  Matrix x(3, 2);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) x(i, j) = static_cast<double>(i + j + 1);
  }
  const Matrix y = m.Multiply(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 1.0 * 1 + 2.0 * 3);  // 7
  EXPECT_DOUBLE_EQ(y(1, 1), 3.0 * 3);            // 9
}

TEST(SparseTest, TransposeMultiplyMatchesDense) {
  const SparseMatrix m = SmallSparse();
  Rng rng(5);
  const Matrix x = Matrix::GaussianRandom(2, 4, &rng);
  const Matrix y = m.TransposeMultiply(x);
  EXPECT_EQ(y.rows(), 3u);
  // row 2 of y = 2.0 * x row 0.
  for (size_t j = 0; j < 4; ++j) EXPECT_NEAR(y(2, j), 2.0 * x(0, j), 1e-12);
}

TEST(DecompTest, GramSchmidtOrthonormal) {
  Rng rng(6);
  const Matrix a = Matrix::GaussianRandom(20, 5, &rng);
  const Matrix q = GramSchmidtQ(a);
  const Matrix gram = MatTMul(q, q);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(DecompTest, GramSchmidtRankDeficient) {
  Matrix a(4, 2);
  for (size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // linearly dependent
  }
  const Matrix q = GramSchmidtQ(a);
  double norm1 = 0;
  for (size_t i = 0; i < 4; ++i) norm1 += q(i, 1) * q(i, 1);
  EXPECT_NEAR(norm1, 0.0, 1e-9);  // dependent column zeroed
}

TEST(DecompTest, SymmetricEigenDiagonal) {
  Matrix d(3, 3);
  d(0, 0) = 1;
  d(1, 1) = 5;
  d(2, 2) = 3;
  const auto eig = SymmetricEigen(d);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 5.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[2], 1.0, 1e-10);
}

TEST(DecompTest, SymmetricEigenReconstructs) {
  Rng rng(7);
  const Matrix b = Matrix::GaussianRandom(6, 6, &rng);
  const Matrix a = MatTMul(b, b);  // symmetric PSD
  const auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  // A = V diag(L) V^T.
  Matrix vl = eig->eigenvectors;
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) vl(i, j) *= eig->eigenvalues[j];
  }
  const Matrix recon = MatMul(vl, eig->eigenvectors.Transposed());
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-7);
    }
  }
}

TEST(DecompTest, SymmetricEigenRequiresSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
}

TEST(DecompTest, ThinSVDReconstructs) {
  Rng rng(8);
  const Matrix a = Matrix::GaussianRandom(12, 4, &rng);
  const auto svd = ThinSVD(a);
  ASSERT_TRUE(svd.ok());
  // A = U diag(S) V^T.
  Matrix us = svd->u;
  for (size_t i = 0; i < us.rows(); ++i) {
    for (size_t j = 0; j < us.cols(); ++j) us(i, j) *= svd->singular_values[j];
  }
  const Matrix recon = MatMul(us, svd->v.Transposed());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-7);
    }
  }
}

TEST(DecompTest, SingularValuesDescending) {
  Rng rng(9);
  const auto svd = ThinSVD(Matrix::GaussianRandom(10, 5, &rng));
  ASSERT_TRUE(svd.ok());
  for (size_t i = 1; i < svd->singular_values.size(); ++i) {
    EXPECT_GE(svd->singular_values[i - 1], svd->singular_values[i]);
  }
}

TEST(DecompTest, RandomizedSvdApproximatesLowRank) {
  // Build an exactly rank-3 sparse matrix and recover it.
  Rng rng(10);
  const size_t n = 60;
  const Matrix u = Matrix::GaussianRandom(n, 3, &rng);
  const Matrix v = Matrix::GaussianRandom(n, 3, &rng);
  std::vector<Triplet> triplets;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      double val = 0;
      for (size_t k = 0; k < 3; ++k) val += u(i, k) * v(j, k);
      triplets.push_back({i, j, val});
    }
  }
  const SparseMatrix a = SparseMatrix::FromTriplets(n, n, triplets);
  RandomizedSvdOptions options;
  options.rank = 3;
  options.oversample = 8;
  options.power_iterations = 3;
  const auto svd = RandomizedSVD(a, options, &rng);
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd->singular_values.size(), 3u);

  // Reconstruction error should be tiny relative to the matrix norm.
  Matrix us = svd->u;
  for (size_t i = 0; i < us.rows(); ++i) {
    for (size_t j = 0; j < us.cols(); ++j) us(i, j) *= svd->singular_values[j];
  }
  const Matrix recon = MatMul(us, svd->v.Transposed());
  double err = 0;
  double norm = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      const double d = recon(i, j) - a.At(i, j);
      err += d * d;
      norm += a.At(i, j) * a.At(i, j);
    }
  }
  EXPECT_LT(std::sqrt(err / norm), 1e-4);
}

TEST(DecompTest, RandomizedSvdRequiresRng) {
  const SparseMatrix a = SmallSparse();
  EXPECT_FALSE(RandomizedSVD(a, {}, nullptr).ok());
}

TEST(PcaTest, RecoversDominantDirection) {
  Rng rng(11);
  // Points stretched along (1, 1) direction.
  Matrix x(500, 2);
  for (size_t i = 0; i < 500; ++i) {
    const double t = rng.Normal() * 10.0;
    const double noise = rng.Normal() * 0.1;
    x(i, 0) = t + noise;
    x(i, 1) = t - noise;
  }
  const auto pca = PCA::Fit(x, 1);
  ASSERT_TRUE(pca.ok());
  const Matrix projected = pca->Transform(x);
  EXPECT_EQ(projected.cols(), 1u);
  // Nearly all variance captured in one component.
  EXPECT_GT(pca->explained_variance()[0], 90.0);
}

TEST(PcaTest, TransformPreservesRowCount) {
  Rng rng(12);
  const Matrix x = Matrix::GaussianRandom(30, 8, &rng);
  const auto pca = PCA::Fit(x, 3);
  ASSERT_TRUE(pca.ok());
  const Matrix y = pca->Transform(x);
  EXPECT_EQ(y.rows(), 30u);
  EXPECT_EQ(y.cols(), 3u);
}

TEST(PcaTest, ComponentsClampedToDim) {
  Rng rng(13);
  const auto pca = PCA::Fit(Matrix::GaussianRandom(10, 3, &rng), 50);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca->components(), 3u);
}

TEST(PcaTest, EmptyFails) {
  EXPECT_FALSE(PCA::Fit(Matrix(), 2).ok());
}

// Property sweep: randomized SVD error decreases with rank on a fixed
// random sparse matrix.
class RandomizedSvdSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(RandomizedSvdSweep, RankBoundsRespected) {
  const size_t rank = GetParam();
  Rng rng(200);
  std::vector<Triplet> triplets;
  for (uint32_t i = 0; i < 40; ++i) {
    for (int k = 0; k < 5; ++k) {
      triplets.push_back({i, static_cast<uint32_t>(rng.UniformInt(40)),
                          rng.Normal()});
    }
  }
  const SparseMatrix a = SparseMatrix::FromTriplets(40, 40, triplets);
  RandomizedSvdOptions options;
  options.rank = rank;
  const auto svd = RandomizedSVD(a, options, &rng);
  ASSERT_TRUE(svd.ok());
  EXPECT_LE(svd->singular_values.size(), rank);
  EXPECT_EQ(svd->u.rows(), 40u);
  EXPECT_EQ(svd->u.cols(), svd->singular_values.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedSvdSweep,
                         ::testing::Values<size_t>(1, 2, 5, 10, 20));

}  // namespace
}  // namespace leva
