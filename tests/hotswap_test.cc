// Hot-swap concurrency suite: Featurize from several threads while
// ReloadSnapshot keeps swapping the served model underneath them. Every call
// must see exactly one internally consistent model — its output bit-matches
// the old model or the new one, never a blend — and the whole dance must be
// clean under TSan (this binary carries the robustness + determinism labels
// CI's sanitizer jobs key on).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"

namespace leva {
namespace {

std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string unique = info == nullptr
                           ? std::string("unknown")
                           : std::string(info->test_suite_name()) + "_" +
                                 info->name();
  for (char& c : unique) {
    if (c == '/') c = '_';
  }
  return ::testing::TempDir() + "leva_hotswap_" + unique + "_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + name;
}

LevaConfig TestConfig(uint64_t seed) {
  LevaConfig config;
  config.method = EmbeddingMethod::kMatrixFactorization;
  config.embedding_dim = 8;
  config.word2vec.deterministic = true;
  config.seed = seed;
  return config;
}

struct Fixture {
  SyntheticDataset ds;
  const Table* base = nullptr;
  TargetEncoder encoder;
};

Fixture MakeFixture() {
  Fixture f;
  auto ds = GenerateStudent(120, 0, 3);
  EXPECT_TRUE(ds.ok());
  f.ds = std::move(ds).value();
  f.base = f.ds.db.FindTable(f.ds.base_table);
  EXPECT_NE(f.base, nullptr);
  EXPECT_TRUE(
      f.encoder.Fit(*f.base->FindColumn(f.ds.target_column), true).ok());
  return f;
}

MLDataset Featurized(const LevaPipeline& p, const Fixture& f) {
  auto r = p.Featurize(*f.base, f.ds.target_column, f.encoder,
                       /*rows_in_graph=*/true);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

bool SameBits(const MLDataset& a, const MLDataset& b) {
  return a.x.rows() == b.x.rows() && a.x.cols() == b.x.cols() &&
         std::memcmp(a.x.data().data(), b.x.data().data(),
                     a.x.data().size() * sizeof(double)) == 0;
}

// Two genuinely different models over the same schema, both snapshotted, and
// their expected Featurize outputs. Shared by every test below.
struct TwoModels {
  Fixture f;
  std::string path_a, path_b;
  MLDataset out_a, out_b;
};

TwoModels MakeTwoModels() {
  TwoModels t;
  t.f = MakeFixture();
  LevaPipeline a(TestConfig(5));
  EXPECT_TRUE(a.Fit(t.f.ds.db).ok());
  LevaPipeline b(TestConfig(77));
  EXPECT_TRUE(b.Fit(t.f.ds.db).ok());
  t.out_a = Featurized(a, t.f);
  t.out_b = Featurized(b, t.f);
  // The "old xor new" oracle is vacuous if the models coincide.
  EXPECT_FALSE(SameBits(t.out_a, t.out_b));
  t.path_a = TempPath("a.leva");
  t.path_b = TempPath("b.leva");
  EXPECT_TRUE(a.SaveSnapshot(t.path_a).ok());
  EXPECT_TRUE(b.SaveSnapshot(t.path_b).ok());
  return t;
}

// The core guarantee: with reloads raging, each Featurize call still serves
// one whole model. Four caller threads race a reloader that alternates the
// two snapshots (heap and mmap loads alternate too, so a mapped model can be
// retired while calls that pinned it are mid-flight).
TEST(HotSwapTest, FeaturizeAlwaysSeesOneConsistentModel) {
  const TwoModels t = MakeTwoModels();
  LevaPipeline serving;
  ASSERT_TRUE(serving.LoadSnapshot(t.path_a).ok());

  constexpr int kCallers = 4;
  constexpr int kCallsPerThread = 12;
  constexpr int kReloads = 24;
  std::atomic<bool> stop{false};
  std::atomic<int> blends{0};

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const MLDataset out = Featurized(serving, t.f);
        if (!SameBits(out, t.out_a) && !SameBits(out, t.out_b)) {
          blends.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::thread reloader([&] {
    SnapshotLoadOptions mmap_opts;
    mmap_opts.use_mmap = true;
    for (int i = 0; i < kReloads && !stop.load(std::memory_order_relaxed);
         ++i) {
      const std::string& path = (i % 2 == 0) ? t.path_b : t.path_a;
      const SnapshotLoadOptions opts =
          (i % 4 < 2) ? mmap_opts : SnapshotLoadOptions{};
      const Status s = serving.ReloadSnapshot(path, nullptr, opts);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
  });

  for (std::thread& th : callers) th.join();
  stop.store(true, std::memory_order_relaxed);
  reloader.join();

  EXPECT_EQ(blends.load(), 0)
      << "a Featurize call observed a blend of two models";
  // After the dust settles the pipeline serves whichever model won, and it
  // is still fully functional.
  const MLDataset final_out = Featurized(serving, t.f);
  EXPECT_TRUE(SameBits(final_out, t.out_a) || SameBits(final_out, t.out_b));
}

// Serving-knob retunes (thread count, batch size) race Featurize and reloads
// without perturbing results: outputs are documented to be knob-invariant,
// which makes them a sharp oracle here.
TEST(HotSwapTest, ServingOptionRetunesRaceCleanly) {
  const TwoModels t = MakeTwoModels();
  LevaPipeline serving;
  ASSERT_TRUE(serving.LoadSnapshot(t.path_a).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> blends{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        const MLDataset out = Featurized(serving, t.f);
        if (!SameBits(out, t.out_a) && !SameBits(out, t.out_b)) {
          blends.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread tuner([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      serving.set_serving_options(/*threads=*/1 + (i % 3),
                                  /*featurize_batch_size=*/(i % 2) * 17);
      ++i;
    }
  });
  std::thread reloader([&] {
    for (int i = 0; i < 16; ++i) {
      const Status s = serving.ReloadSnapshot((i % 2 == 0) ? t.path_b
                                                           : t.path_a);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
  });

  for (std::thread& th : callers) th.join();
  reloader.join();
  stop.store(true, std::memory_order_relaxed);
  tuner.join();
  EXPECT_EQ(blends.load(), 0);
}

// A reload that fails (missing file, corrupt bytes) must leave concurrent
// and subsequent Featurize calls on the incumbent model.
TEST(HotSwapTest, FailedReloadKeepsServingIncumbent) {
  const TwoModels t = MakeTwoModels();
  LevaPipeline serving;
  ASSERT_TRUE(serving.LoadSnapshot(t.path_a).ok());

  std::atomic<int> blends{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 2; ++c) {
    callers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        const MLDataset out = Featurized(serving, t.f);
        if (!SameBits(out, t.out_a)) {
          blends.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread reloader([&] {
    const std::string missing = TempPath("missing.leva");
    for (int i = 0; i < 8; ++i) {
      EXPECT_FALSE(serving.ReloadSnapshot(missing).ok());
    }
  });
  for (std::thread& th : callers) th.join();
  reloader.join();

  EXPECT_EQ(blends.load(), 0) << "a failed reload perturbed serving";
  EXPECT_TRUE(SameBits(Featurized(serving, t.f), t.out_a));
}

// Mixed-tier swaps: the reloader alternates an fp64 snapshot and an int8
// snapshot of the same fitted model (heap and mmap loads alternating too).
// Quantization makes the two outputs differ, so they form a sharp oracle:
// every concurrent Featurize call must bit-match exactly one tier's output —
// a caller pinned to the retiring fp64 model keeps its fp64 vectors even as
// the int8 store replaces it, and vice versa. Must be TSan-clean.
TEST(HotSwapTest, MixedTierReloadsServeOneWholeTierPerCall) {
  Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(5));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const std::string path_fp64 = TempPath("fp64.leva");
  const std::string path_int8 = TempPath("int8.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path_fp64, StorageTier::kFp64).ok());
  ASSERT_TRUE(fitted.SaveSnapshot(path_int8, StorageTier::kInt8).ok());

  LevaPipeline ref_fp64, ref_int8;
  ASSERT_TRUE(ref_fp64.LoadSnapshot(path_fp64).ok());
  ASSERT_TRUE(ref_int8.LoadSnapshot(path_int8).ok());
  ASSERT_EQ(ref_fp64.embedding().tier(), StorageTier::kFp64);
  ASSERT_EQ(ref_int8.embedding().tier(), StorageTier::kInt8);
  const MLDataset out_fp64 = Featurized(ref_fp64, f);
  const MLDataset out_int8 = Featurized(ref_int8, f);
  // Quantization error must actually show up for the oracle to bite.
  ASSERT_FALSE(SameBits(out_fp64, out_int8));

  LevaPipeline serving;
  ASSERT_TRUE(serving.LoadSnapshot(path_fp64).ok());

  constexpr int kCallers = 4;
  constexpr int kCallsPerThread = 12;
  constexpr int kReloads = 24;
  std::atomic<int> blends{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const MLDataset out = Featurized(serving, f);
        if (!SameBits(out, out_fp64) && !SameBits(out, out_int8)) {
          blends.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread reloader([&] {
    SnapshotLoadOptions mmap_opts;
    mmap_opts.use_mmap = true;
    for (int i = 0; i < kReloads; ++i) {
      const std::string& path = (i % 2 == 0) ? path_int8 : path_fp64;
      const SnapshotLoadOptions opts =
          (i % 4 < 2) ? mmap_opts : SnapshotLoadOptions{};
      const Status s = serving.ReloadSnapshot(path, nullptr, opts);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
  });

  for (std::thread& th : callers) th.join();
  reloader.join();

  EXPECT_EQ(blends.load(), 0)
      << "a Featurize call observed a cross-tier blend";
  const MLDataset final_out = Featurized(serving, f);
  EXPECT_TRUE(SameBits(final_out, out_fp64) || SameBits(final_out, out_int8));
}

// The operator guard: with require_same_tier set, a reload whose snapshot
// stores a different tier is refused with an error naming both tiers, and
// the incumbent keeps serving untouched.
TEST(HotSwapTest, SameTierGuardRejectsCrossTierReload) {
  Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(5));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const std::string path_fp64 = TempPath("guard_fp64.leva");
  const std::string path_int8 = TempPath("guard_int8.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path_fp64, StorageTier::kFp64).ok());
  ASSERT_TRUE(fitted.SaveSnapshot(path_int8, StorageTier::kInt8).ok());

  LevaPipeline serving;
  ASSERT_TRUE(serving.LoadSnapshot(path_fp64).ok());
  const MLDataset incumbent = Featurized(serving, f);

  SnapshotLoadOptions strict;
  strict.require_same_tier = true;
  const Status s = serving.ReloadSnapshot(path_int8, nullptr, strict);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("int8"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("fp64"), std::string::npos) << s.ToString();
  EXPECT_EQ(serving.embedding().tier(), StorageTier::kFp64);
  EXPECT_TRUE(SameBits(Featurized(serving, f), incumbent));

  // The same guard admits a same-tier swap...
  ASSERT_TRUE(serving.ReloadSnapshot(path_fp64, nullptr, strict).ok());
  // ...and without the guard the cross-tier swap is a deliberate choice.
  ASSERT_TRUE(serving.ReloadSnapshot(path_int8).ok());
  EXPECT_EQ(serving.embedding().tier(), StorageTier::kInt8);
}

}  // namespace
}  // namespace leva
