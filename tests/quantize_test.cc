// Differential suite for quantized embedding serving: every tier must load
// from its snapshot and serve Featurize within the documented per-element
// error bound of the fp64 model, the fused dequant gather must be
// bit-identical to the legacy scalar path at every tier / thread count /
// batch size, and the quantization loss must not move downstream model
// quality by more than noise. Carries both sanitizer labels: the fused
// kernels run under ASan here and the thread sweeps under TSan.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"
#include "ml/linear.h"
#include "ml/metrics.h"

namespace leva {
namespace {

std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string unique = info == nullptr
                           ? std::string("unknown")
                           : std::string(info->test_suite_name()) + "_" +
                                 info->name();
  for (char& c : unique) {
    if (c == '/') c = '_';
  }
  return ::testing::TempDir() + "leva_quantize_" + unique + "_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + name;
}

LevaConfig TestConfig() {
  LevaConfig config;
  config.method = EmbeddingMethod::kMatrixFactorization;
  config.embedding_dim = 8;
  config.word2vec.deterministic = true;
  config.seed = 5;
  return config;
}

struct Fixture {
  SyntheticDataset ds;
  const Table* base = nullptr;
  TargetEncoder encoder;
};

Fixture MakeFixture() {
  Fixture f;
  auto ds = GenerateStudent(120, 0, 3);
  EXPECT_TRUE(ds.ok());
  f.ds = std::move(ds).value();
  f.base = f.ds.db.FindTable(f.ds.base_table);
  EXPECT_NE(f.base, nullptr);
  EXPECT_TRUE(
      f.encoder.Fit(*f.base->FindColumn(f.ds.target_column), true).ok());
  return f;
}

MLDataset Featurized(const LevaPipeline& p, const Fixture& f,
                     bool rows_in_graph) {
  auto r = p.Featurize(*f.base, f.ds.target_column, f.encoder, rows_in_graph);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

MLDataset FeaturizedLegacy(const LevaPipeline& p, const Fixture& f,
                           bool rows_in_graph) {
  auto r =
      p.FeaturizeLegacy(*f.base, f.ds.target_column, f.encoder, rows_in_graph);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

void ExpectBitIdentical(const MLDataset& a, const MLDataset& b) {
  ASSERT_EQ(a.x.rows(), b.x.rows());
  ASSERT_EQ(a.x.cols(), b.x.cols());
  EXPECT_EQ(0, std::memcmp(a.x.data().data(), b.x.data().data(),
                           a.x.data().size() * sizeof(double)));
  EXPECT_EQ(a.y, b.y);
}

// A fitted pipeline plus one loaded serving pipeline per tier, all from
// snapshots of the same model.
struct TieredModels {
  Fixture f;
  LevaPipeline fitted{TestConfig()};
  LevaPipeline fp64, bf16, int8;
  std::string path_fp64, path_bf16, path_int8;
};

void MakeTieredModels(TieredModels* t) {
  t->f = MakeFixture();
  ASSERT_TRUE(t->fitted.Fit(t->f.ds.db).ok());
  t->path_fp64 = TempPath("fp64.leva");
  t->path_bf16 = TempPath("bf16.leva");
  t->path_int8 = TempPath("int8.leva");
  ASSERT_TRUE(t->fitted.SaveSnapshot(t->path_fp64, StorageTier::kFp64).ok());
  ASSERT_TRUE(t->fitted.SaveSnapshot(t->path_bf16, StorageTier::kBf16).ok());
  ASSERT_TRUE(t->fitted.SaveSnapshot(t->path_int8, StorageTier::kInt8).ok());
  ASSERT_TRUE(t->fp64.LoadSnapshot(t->path_fp64).ok());
  ASSERT_TRUE(t->bf16.LoadSnapshot(t->path_bf16).ok());
  ASSERT_TRUE(t->int8.LoadSnapshot(t->path_int8).ok());
  ASSERT_EQ(t->fp64.embedding().tier(), StorageTier::kFp64);
  ASSERT_EQ(t->bf16.embedding().tier(), StorageTier::kBf16);
  ASSERT_EQ(t->int8.embedding().tier(), StorageTier::kInt8);
}

// --- vector-level error bounds ----------------------------------------------

// Every dequantized int8 row must sit within scale/2 of the fp64 row, per
// element, using the scale the loaded store actually serves — the bound
// DESIGN.md documents. The epsilon absorbs the fp32 rounding of the scale
// itself (|scale_fp32 - scale_exact| <= ulp) amplified by |q| <= 127.
TEST(QuantizeTest, Int8RowsWithinHalfScaleOfFp64) {
  TieredModels t;
  MakeTieredModels(&t);
  const Embedding& ref = t.fp64.embedding();
  const Embedding& q = t.int8.embedding();
  ASSERT_EQ(ref.keys(), q.keys());
  const size_t dim = ref.dim();
  std::vector<double> ref_row(dim), q_row(dim);
  for (size_t id = 0; id < ref.size(); ++id) {
    ref.DequantizeRow(id, ref_row.data());
    q.DequantizeRow(id, q_row.data());
    const double scale = static_cast<double>(q.RowScale(id));
    const double bound =
        scale / 2.0 + 127.0 * std::ldexp(std::fabs(scale), -24) + 1e-300;
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_LE(std::fabs(ref_row[j] - q_row[j]), bound)
          << "row " << id << " elem " << j;
    }
  }
}

// Every dequantized bf16 element must be within 2^-8 relative of the fp64
// value (bf16 keeps 7 explicit mantissa bits, so the RNE half-step is 2^-8
// of the binade; the intermediate double->float rounding is negligible next
// to it).
TEST(QuantizeTest, Bf16RowsWithinRelativeBoundOfFp64) {
  TieredModels t;
  MakeTieredModels(&t);
  const Embedding& ref = t.fp64.embedding();
  const Embedding& b = t.bf16.embedding();
  ASSERT_EQ(ref.keys(), b.keys());
  const size_t dim = ref.dim();
  std::vector<double> ref_row(dim), b_row(dim);
  for (size_t id = 0; id < ref.size(); ++id) {
    ref.DequantizeRow(id, ref_row.data());
    b.DequantizeRow(id, b_row.data());
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_LE(std::fabs(ref_row[j] - b_row[j]),
                std::ldexp(std::fabs(ref_row[j]), -8) + 1e-300)
          << "row " << id << " elem " << j;
    }
  }
}

// QuantizeRowInt8 itself honours its contract on adversarial rows: zero
// rows, single-spike rows, and sign-symmetric rows.
TEST(QuantizeTest, QuantizeRowInt8EdgeCases) {
  {
    const double zeros[4] = {0, 0, 0, 0};
    int8_t q[4];
    float scale = 1.0f;
    QuantizeRowInt8(zeros, 4, q, &scale);
    EXPECT_EQ(scale, 0.0f);
    for (int j = 0; j < 4; ++j) EXPECT_EQ(q[j], 0);
  }
  {
    const double spike[4] = {0.0, -3.5, 0.0, 0.25};
    int8_t q[4];
    float scale = 0.0f;
    QuantizeRowInt8(spike, 4, q, &scale);
    EXPECT_FLOAT_EQ(scale, static_cast<float>(3.5 / 127.0));
    EXPECT_EQ(q[1], -127);  // maxabs element always lands exactly on +-127
    for (int j = 0; j < 4; ++j) {
      EXPECT_LE(std::fabs(spike[j] - scale * q[j]), scale / 2.0 + 1e-9);
    }
  }
}

// --- featurize-level differential -------------------------------------------

// Serving at a quantized tier must track the fp64 output within the
// accumulated per-row bound: each feature is a weighted combination of
// dequantized rows, so its error is bounded by the worst per-element row
// error times the gather's weight mass. The fixture's compositions are
// convex-ish (weight mass per output element stays small); a 16x margin on
// the worst row error makes the bound robust without going vacuous.
TEST(QuantizeTest, QuantizedFeaturizeTracksFp64WithinBound) {
  TieredModels t;
  MakeTieredModels(&t);
  const MLDataset ref = Featurized(t.fp64, t.f, /*rows_in_graph=*/true);

  struct Case {
    const char* name;
    const LevaPipeline* p;
  };
  const Case cases[] = {{"bf16", &t.bf16}, {"int8", &t.int8}};
  const size_t dim = t.fp64.embedding().dim();
  std::vector<double> a(dim), b(dim);
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    // Worst per-element row error of this tier's store vs fp64.
    double worst = 0.0;
    for (size_t id = 0; id < t.fp64.embedding().size(); ++id) {
      t.fp64.embedding().DequantizeRow(id, a.data());
      c.p->embedding().DequantizeRow(id, b.data());
      for (size_t j = 0; j < dim; ++j) {
        worst = std::max(worst, std::fabs(a[j] - b[j]));
      }
    }
    const MLDataset out = Featurized(*c.p, t.f, /*rows_in_graph=*/true);
    ASSERT_EQ(out.x.rows(), ref.x.rows());
    ASSERT_EQ(out.x.cols(), ref.x.cols());
    double worst_feature = 0.0;
    for (size_t i = 0; i < out.x.data().size(); ++i) {
      worst_feature =
          std::max(worst_feature,
                   std::fabs(out.x.data()[i] - ref.x.data()[i]));
    }
    EXPECT_LE(worst_feature, 16.0 * worst + 1e-12);
    // The quantized tiers really are lossy on this fixture — the bound
    // above would be vacuously satisfied by a broken loader that served
    // fp64 bits everywhere, so pin the loss too.
    EXPECT_GT(worst_feature, 0.0);
  }
}

// The fused SIMD dequant gather (Featurize) and the scalar legacy path
// (FeaturizeLegacy) must be bit-identical at every tier, thread count, and
// batch size, for in-graph and held-out rows alike: both sides dequantize
// element-wise and accumulate in the same order, so there is no tolerance —
// any divergence is a kernel bug, not rounding.
TEST(QuantizeTest, FusedGatherBitIdenticalToLegacyAtEveryTier) {
  TieredModels t;
  MakeTieredModels(&t);
  struct Case {
    const char* name;
    LevaPipeline* p;
  };
  const Case cases[] = {
      {"fp64", &t.fp64}, {"bf16", &t.bf16}, {"int8", &t.int8}};
  for (const Case& c : cases) {
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      for (const size_t batch : {size_t{0}, size_t{7}}) {
        SCOPED_TRACE(std::string(c.name) + " threads=" +
                     std::to_string(threads) + " batch=" +
                     std::to_string(batch));
        c.p->set_serving_options(threads, batch);
        ExpectBitIdentical(Featurized(*c.p, t.f, true),
                           FeaturizedLegacy(*c.p, t.f, true));
        ExpectBitIdentical(Featurized(*c.p, t.f, false),
                           FeaturizedLegacy(*c.p, t.f, false));
      }
    }
  }
}

// --- exactness on representable values ---------------------------------------

// bf16 decode is exact (pure widening), so a model whose values are all
// bf16-representable serves bit-identically at bf16 and fp64. Such a model
// is minted by the requantize workflow itself: save at bf16, reload, and
// re-save at fp64 — the fp64 snapshot now holds exactly the widened bf16
// values.
TEST(QuantizeTest, Bf16ServesBitIdenticallyOnRepresentableModel) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig());
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());

  const std::string bf16_path = TempPath("repr_bf16.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(bf16_path, StorageTier::kBf16).ok());
  LevaPipeline bf16_serving;
  ASSERT_TRUE(bf16_serving.LoadSnapshot(bf16_path).ok());

  // Requantize up: the fp64 snapshot of a bf16-serving pipeline stores the
  // dequantized (= exactly representable) values.
  const std::string fp64_path = TempPath("repr_fp64.leva");
  ASSERT_TRUE(
      bf16_serving.SaveSnapshot(fp64_path, StorageTier::kFp64).ok());
  LevaPipeline fp64_serving;
  ASSERT_TRUE(fp64_serving.LoadSnapshot(fp64_path).ok());
  ASSERT_EQ(fp64_serving.embedding().tier(), StorageTier::kFp64);

  ExpectBitIdentical(Featurized(bf16_serving, f, true),
                     Featurized(fp64_serving, f, true));
  ExpectBitIdentical(Featurized(bf16_serving, f, false),
                     Featurized(fp64_serving, f, false));
}

// Load-then-save with no explicit tier keeps the served tier (the restored
// config carries it), and re-encoding a store at its own tier is lossless:
// the second snapshot serves bit-identically to the first.
TEST(QuantizeTest, ResaveRoundTripsTierLosslessly) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig());
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  for (const StorageTier tier :
       {StorageTier::kFp64, StorageTier::kBf16, StorageTier::kInt8}) {
    SCOPED_TRACE(StorageTierName(tier));
    const std::string first = TempPath(std::string("first_") +
                                       StorageTierName(tier) + ".leva");
    ASSERT_TRUE(fitted.SaveSnapshot(first, tier).ok());
    LevaPipeline gen1;
    ASSERT_TRUE(gen1.LoadSnapshot(first).ok());
    ASSERT_EQ(gen1.embedding().tier(), tier);

    const std::string second = TempPath(std::string("second_") +
                                        StorageTierName(tier) + ".leva");
    ASSERT_TRUE(gen1.SaveSnapshot(second).ok());  // tier comes from config
    LevaPipeline gen2;
    ASSERT_TRUE(gen2.LoadSnapshot(second).ok());
    EXPECT_EQ(gen2.embedding().tier(), tier);
    ExpectBitIdentical(Featurized(gen2, f, true), Featurized(gen1, f, true));
  }
}

// --- footprint ----------------------------------------------------------------

// The tiers must actually shrink the artifact: fp64 > bf16 > int8. Bulk
// sections are page-aligned, so a dim-8 model's tiers can collide on file
// size — this test fits at dim 64, where the embedding payload dominates
// and the int8 snapshot must come in at least 3.5x smaller than fp64 (the
// serving-efficiency budget the feature signed up for).
TEST(QuantizeTest, SnapshotSizesShrinkWithTier) {
  const Fixture f = MakeFixture();
  LevaConfig config = TestConfig();
  config.embedding_dim = 64;
  LevaPipeline fitted(config);
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const std::string p64 = TempPath("size_fp64.leva");
  const std::string p16 = TempPath("size_bf16.leva");
  const std::string p8 = TempPath("size_int8.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(p64, StorageTier::kFp64).ok());
  ASSERT_TRUE(fitted.SaveSnapshot(p16, StorageTier::kBf16).ok());
  ASSERT_TRUE(fitted.SaveSnapshot(p8, StorageTier::kInt8).ok());
  auto file_size = [](const std::string& path) {
    auto r = Env::Default()->ReadFileToString(path);
    EXPECT_TRUE(r.ok());
    return r.ok() ? r->size() : size_t{0};
  };
  const size_t s64 = file_size(p64);
  const size_t s16 = file_size(p16);
  const size_t s8 = file_size(p8);
  EXPECT_LT(s8, s16);
  EXPECT_LT(s16, s64);
  EXPECT_GE(static_cast<double>(s64) / static_cast<double>(s8), 3.5)
      << "fp64=" << s64 << " int8=" << s8;

  LevaPipeline q;
  ASSERT_TRUE(q.LoadSnapshot(p8).ok());
  EXPECT_EQ(q.embedding().bytes_per_row(),
            q.embedding().dim() * sizeof(int8_t) + sizeof(float));
  LevaPipeline b;
  ASSERT_TRUE(b.LoadSnapshot(p16).ok());
  EXPECT_EQ(b.embedding().bytes_per_row(),
            b.embedding().dim() * sizeof(uint16_t));
}

// Quantized snapshots serve zero-copy too: an mmap load at each tier keeps
// the vector block (and int8 scales) mapped and serves bit-identically to
// the heap load of the same file.
TEST(QuantizeTest, MmapServesQuantizedTiersBitIdentically) {
  TieredModels t;
  MakeTieredModels(&t);
  struct Case {
    const char* name;
    const std::string* path;
    const LevaPipeline* heap;
  };
  const Case cases[] = {{"fp64", &t.path_fp64, &t.fp64},
                        {"bf16", &t.path_bf16, &t.bf16},
                        {"int8", &t.path_int8, &t.int8}};
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    SnapshotLoadOptions opts;
    opts.use_mmap = true;
    LevaPipeline mapped;
    ASSERT_TRUE(mapped.LoadSnapshot(*c.path, nullptr, opts).ok());
    EXPECT_TRUE(mapped.embedding().mapped());
    EXPECT_TRUE(mapped.VerifyStorage().ok());
    ExpectBitIdentical(Featurized(mapped, t.f, true),
                       Featurized(*c.heap, t.f, true));
  }
}

// --- downstream quality -------------------------------------------------------

// The reason the tiers are usable at all: training the paper's classifier on
// quantized features moves accuracy by at most noise. Deterministic fit
// (fixed rng, fixed order), so the assertion is stable.
TEST(QuantizeTest, DownstreamAccuracyWithinDelta) {
  TieredModels t;
  MakeTieredModels(&t);
  auto accuracy_of = [&](const LevaPipeline& p) {
    const MLDataset ds = Featurized(p, t.f, /*rows_in_graph=*/true);
    ElasticNetOptions opts;
    opts.epochs = 60;
    LogisticRegressor model(t.f.encoder.num_classes(), opts);
    Rng rng(17);
    EXPECT_TRUE(model.Fit(ds.x, ds.y, &rng).ok());
    return Accuracy(ds.y, model.Predict(ds.x));
  };
  const double acc_fp64 = accuracy_of(t.fp64);
  const double acc_bf16 = accuracy_of(t.bf16);
  const double acc_int8 = accuracy_of(t.int8);
  // bf16 keeps ~3 significant digits, int8 ~2: neither should move training
  // accuracy on this fixture by more than a few labels.
  EXPECT_LE(std::fabs(acc_fp64 - acc_bf16), 0.05)
      << "fp64=" << acc_fp64 << " bf16=" << acc_bf16;
  EXPECT_LE(std::fabs(acc_fp64 - acc_int8), 0.08)
      << "fp64=" << acc_fp64 << " int8=" << acc_int8;
}

// --- kernel-level spot checks -------------------------------------------------

// The simd.h bf16 codec: encode rounds to nearest-even, decode widens
// exactly, and every float with zero low mantissa bits round-trips.
TEST(QuantizeTest, Bf16CodecRoundTrip) {
  // All of these have at most 7 explicit mantissa bits, so they are exactly
  // bf16-representable across the full exponent range.
  const float exact[] = {0.0f,      1.0f,       -2.5f,
                         0.15625f,  0x1p100f,   -0x1p-100f};
  for (const float f : exact) {
    EXPECT_EQ(simd::Bf16ToFloat(simd::Bf16FromFloat(f)), f) << f;
  }
  // Round-to-nearest-even at the midpoint: 1.0 + 2^-8 sits exactly between
  // bf16(1.0) and bf16(1.0 + 2^-7); RNE picks the even mantissa (1.0).
  const float midpoint = 1.0f + std::ldexp(1.0f, -8);
  EXPECT_EQ(simd::Bf16ToFloat(simd::Bf16FromFloat(midpoint)), 1.0f);
  // Just above the midpoint rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -8) + std::ldexp(1.0f, -11);
  EXPECT_EQ(simd::Bf16ToFloat(simd::Bf16FromFloat(above)),
            1.0f + std::ldexp(1.0f, -7));
}

// The fused kernels agree bit-for-bit with the naive loops they replace.
TEST(QuantizeTest, DequantKernelsMatchScalarReference) {
  constexpr size_t kN = 67;  // odd length exercises every tail path
  std::vector<double> acc_kernel(kN), acc_ref(kN);
  std::vector<uint16_t> bf16(kN);
  std::vector<int8_t> q8(kN);
  Rng rng(3);
  for (size_t j = 0; j < kN; ++j) {
    bf16[j] = simd::Bf16FromFloat(static_cast<float>(rng.Uniform() * 4 - 2));
    q8[j] = static_cast<int8_t>(static_cast<int>(rng.Next() % 255) - 127);
    acc_kernel[j] = acc_ref[j] = rng.Uniform();
  }
  const double w = 0.37;
  const double scale = 0.0123;

  simd::GatherAddBf16(acc_kernel.data(), bf16.data(), w, kN);
  for (size_t j = 0; j < kN; ++j) {
    acc_ref[j] += w * static_cast<double>(simd::Bf16ToFloat(bf16[j]));
  }
  EXPECT_EQ(0, std::memcmp(acc_kernel.data(), acc_ref.data(),
                           kN * sizeof(double)));

  simd::DequantGatherAdd(acc_kernel.data(), q8.data(), scale, w, kN);
  for (size_t j = 0; j < kN; ++j) {
    acc_ref[j] += w * (scale * static_cast<double>(q8[j]));
  }
  EXPECT_EQ(0, std::memcmp(acc_kernel.data(), acc_ref.data(),
                           kN * sizeof(double)));
}

}  // namespace
}  // namespace leva
