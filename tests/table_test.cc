#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/join.h"
#include "table/table.h"
#include "table/value.h"

namespace leva {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v.ToDisplayString(), "");
}

TEST(ValueTest, IntAndDouble) {
  EXPECT_EQ(Value(int64_t{5}).ToDisplayString(), "5");
  EXPECT_EQ(Value(5.0).ToDisplayString(), "5");  // integral double == int token
  EXPECT_EQ(Value(int64_t{7}).ToNumeric(), 7.0);
  EXPECT_TRUE(Value(3.5).is_numeric());
}

TEST(ValueTest, IntegralDoubleCollidesWithInt) {
  // The graph construction relies on syntactic collision across types.
  EXPECT_EQ(Value(42.0).ToDisplayString(), Value(int64_t{42}).ToDisplayString());
}

TEST(ValueTest, StringRoundTrip) {
  Value v("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "hello");
  EXPECT_EQ(v.ToDisplayString(), "hello");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));
  EXPECT_EQ(Value::Null(), Value::Null());
}

Table MakeSmallTable() {
  Table t("t");
  Column a;
  a.name = "a";
  a.type = DataType::kInt;
  a.values = {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3})};
  Column b;
  b.name = "b";
  b.type = DataType::kString;
  b.values = {Value("x"), Value("y"), Value("x")};
  EXPECT_TRUE(t.AddColumn(a).ok());
  EXPECT_TRUE(t.AddColumn(b).ok());
  return t;
}

TEST(TableTest, BasicShape) {
  const Table t = MakeSmallTable();
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.NumColumns(), 2u);
  EXPECT_EQ(t.at(1, 0).as_int(), 2);
  EXPECT_EQ(t.at(2, 1).as_string(), "x");
}

TEST(TableTest, AddColumnLengthMismatchFails) {
  Table t = MakeSmallTable();
  Column c;
  c.name = "c";
  c.values = {Value(int64_t{1})};
  EXPECT_EQ(t.AddColumn(c).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, DuplicateColumnNameFails) {
  Table t = MakeSmallTable();
  Column c;
  c.name = "a";
  c.values = {Value(), Value(), Value()};
  EXPECT_EQ(t.AddColumn(c).code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, AddRowAndSubset) {
  Table t = MakeSmallTable();
  ASSERT_TRUE(t.AddRow({Value(int64_t{4}), Value("z")}).ok());
  EXPECT_EQ(t.NumRows(), 4u);
  EXPECT_FALSE(t.AddRow({Value(int64_t{5})}).ok());

  const Table sub = t.SubsetRows({3, 0});
  EXPECT_EQ(sub.NumRows(), 2u);
  EXPECT_EQ(sub.at(0, 0).as_int(), 4);
  EXPECT_EQ(sub.at(1, 0).as_int(), 1);
}

TEST(TableTest, ColumnIndexAndFind) {
  const Table t = MakeSmallTable();
  EXPECT_EQ(*t.ColumnIndex("b"), 1u);
  EXPECT_FALSE(t.ColumnIndex("zzz").ok());
  EXPECT_NE(t.FindColumn("a"), nullptr);
  EXPECT_EQ(t.FindColumn("zzz"), nullptr);
}

TEST(TableTest, DropColumn) {
  Table t = MakeSmallTable();
  ASSERT_TRUE(t.DropColumn(0).ok());
  EXPECT_EQ(t.NumColumns(), 1u);
  EXPECT_EQ(t.column(0).name, "b");
  EXPECT_FALSE(t.DropColumn(5).ok());
}

TEST(ColumnTest, DistinctRatio) {
  const Table t = MakeSmallTable();
  EXPECT_DOUBLE_EQ(t.column(0).DistinctRatio(), 1.0);       // 1,2,3
  EXPECT_NEAR(t.column(1).DistinctRatio(), 2.0 / 3.0, 1e-9);  // x,y,x
}

TEST(ColumnTest, NullRatio) {
  Column c;
  c.values = {Value(), Value(int64_t{1}), Value(), Value(int64_t{2})};
  EXPECT_DOUBLE_EQ(c.NullRatio(), 0.5);
  Column empty;
  EXPECT_DOUBLE_EQ(empty.NullRatio(), 0.0);
}

TEST(DatabaseTest, AddAndLookup) {
  Database db;
  ASSERT_TRUE(db.AddTable(MakeSmallTable()).ok());
  EXPECT_EQ(db.AddTable(MakeSmallTable()).code(), StatusCode::kAlreadyExists);
  EXPECT_NE(db.FindTable("t"), nullptr);
  EXPECT_EQ(db.FindTable("nope"), nullptr);
  EXPECT_EQ(db.TotalRows(), 3u);
  EXPECT_EQ(db.TotalColumns(), 2u);
}

TEST(CsvTest, ParseWithTypeInference) {
  const auto t = ReadCsvString("a,b,c\n1,x,1.5\n2,y,2.5\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->column(0).type, DataType::kInt);
  EXPECT_EQ(t->column(1).type, DataType::kString);
  EXPECT_EQ(t->column(2).type, DataType::kDouble);
  EXPECT_EQ(t->at(1, 0).as_int(), 2);
}

TEST(CsvTest, MissingTokensBecomeNullInNumericColumns) {
  const auto t = ReadCsvString("a\n1\n?\n3\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).type, DataType::kInt);
  EXPECT_TRUE(t->at(1, 0).is_null());
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  const auto t = ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, 0).as_string(), "x,y");
  EXPECT_EQ(t->at(0, 1).as_string(), "he said \"hi\"");
}

TEST(CsvTest, RaggedRowFails) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n", "t").ok());
}

TEST(CsvTest, RoundTrip) {
  const Table t = MakeSmallTable();
  const std::string csv = WriteCsvString(t);
  const auto back = ReadCsvString(csv, "t");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), t.NumRows());
  EXPECT_EQ(back->NumColumns(), t.NumColumns());
  EXPECT_EQ(back->at(2, 1).as_string(), "x");
}

TEST(CsvTest, CrLfLineEndings) {
  const auto t = ReadCsvString("a,b\r\n1,x\r\n2,y\r\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->at(0, 1).as_string(), "x");
}

Table Orders() {
  Table t("orders");
  Column name;
  name.name = "name";
  name.type = DataType::kString;
  name.values = {Value("ann"), Value("bob"), Value("ann")};
  Column item;
  item.name = "item";
  item.type = DataType::kString;
  item.values = {Value("pen"), Value("book"), Value("book")};
  EXPECT_TRUE(t.AddColumn(name).ok());
  EXPECT_TRUE(t.AddColumn(item).ok());
  return t;
}

Table Prices() {
  Table t("prices");
  Column item;
  item.name = "item";
  item.type = DataType::kString;
  item.values = {Value("pen"), Value("book")};
  Column price;
  price.name = "price";
  price.type = DataType::kDouble;
  price.values = {Value(1.5), Value(10.0)};
  EXPECT_TRUE(t.AddColumn(item).ok());
  EXPECT_TRUE(t.AddColumn(price).ok());
  return t;
}

TEST(JoinTest, InnerHashJoin) {
  const auto joined = InnerHashJoin(Orders(), Prices(), "item", "item");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 3u);
  EXPECT_EQ(joined->NumColumns(), 4u);
  ASSERT_TRUE(joined->ColumnIndex("prices.price").ok());
}

TEST(JoinTest, LeftJoinAggregatePreservesCardinality) {
  const auto joined = LeftJoinAggregate(Orders(), Prices(), "item", "item");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 3u);
  const Column* price = joined->FindColumn("prices.price");
  ASSERT_NE(price, nullptr);
  EXPECT_DOUBLE_EQ(price->values[0].ToNumeric(), 1.5);
  EXPECT_DOUBLE_EQ(price->values[1].ToNumeric(), 10.0);
}

TEST(JoinTest, LeftJoinAggregatesOneToMany) {
  // Join prices -> orders: "book" appears in 2 order rows; the string column
  // aggregates to the most frequent name.
  const auto joined = LeftJoinAggregate(Prices(), Orders(), "item", "item");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 2u);
  const Column* name = joined->FindColumn("orders.name");
  ASSERT_NE(name, nullptr);
  EXPECT_FALSE(name->values[1].is_null());
}

TEST(JoinTest, UnmatchedKeysYieldNulls) {
  Table lonely("lonely");
  Column item;
  item.name = "item";
  item.type = DataType::kString;
  item.values = {Value("ghost")};
  ASSERT_TRUE(lonely.AddColumn(item).ok());
  const auto joined = LeftJoinAggregate(lonely, Prices(), "item", "item");
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->FindColumn("prices.price")->values[0].is_null());
}

TEST(JoinTest, MaterializeFullTableWalksChains) {
  Database db;
  Table expenses("expenses");
  Column name;
  name.name = "name";
  name.type = DataType::kString;
  name.values = {Value("ann"), Value("bob")};
  ASSERT_TRUE(expenses.AddColumn(name).ok());
  ASSERT_TRUE(db.AddTable(expenses).ok());
  ASSERT_TRUE(db.AddTable(Orders()).ok());
  ASSERT_TRUE(db.AddTable(Prices()).ok());
  db.AddForeignKey({"orders", "name", "expenses", "name"});
  db.AddForeignKey({"orders", "item", "prices", "item"});

  const auto full = MaterializeFullTable(db, "expenses");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->NumRows(), 2u);  // base cardinality preserved
  // Two-hop join: prices reached through orders.
  EXPECT_NE(full->FindColumn("prices.price"), nullptr);
}

TEST(JoinTest, MaterializeFullTableMissingBaseFails) {
  Database db;
  EXPECT_FALSE(MaterializeFullTable(db, "nope").ok());
}

}  // namespace
}  // namespace leva
