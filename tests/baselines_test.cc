#include <gtest/gtest.h>

#include "baselines/corpus_models.h"
#include "baselines/discovery.h"
#include "baselines/graph_models.h"
#include "baselines/leva_model.h"
#include "baselines/tabular.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"

namespace leva {
namespace {

SyntheticDataset SmallTask() {
  SyntheticConfig c;
  c.base_rows = 250;
  c.classification = true;
  c.num_classes = 2;
  c.dims = {
      {.name = "dim", .rows = 50, .predictive_numeric = 1,
       .predictive_categorical = 1, .noise_numeric = 1,
       .noise_categorical = 1, .categories = 6, .parent = ""},
  };
  c.seed = 4;
  auto ds = GenerateSynthetic(c);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(DiscoveryTest, FindsTrueFkJoin) {
  const SyntheticDataset ds = SmallTask();
  const auto joins = DiscoverJoins(ds.db, "base");
  ASSERT_TRUE(joins.ok());
  bool found = false;
  for (const DiscoveredJoin& j : *joins) {
    if (j.base_column == "fk_dim" && j.other_table == "dim" &&
        j.other_column == "dim_id") {
      found = true;
      EXPECT_GT(j.containment, 0.95);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiscoveryTest, RespectsContainmentThreshold) {
  const SyntheticDataset ds = SmallTask();
  DiscoveryOptions strict;
  strict.containment_threshold = 1.01;  // impossible
  const auto joins = DiscoverJoins(ds.db, "base", strict);
  ASSERT_TRUE(joins.ok());
  EXPECT_TRUE(joins->empty());
}

TEST(DiscoveryTest, MaterializeAddsDiscoveredColumns) {
  const SyntheticDataset ds = SmallTask();
  const auto table = MaterializeDiscoveredTable(ds.db, "base");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 250u);
  EXPECT_NE(table->FindColumn("dim.dim_pnum0"), nullptr);
}

TEST(DiscoveryTest, UnknownBaseFails) {
  const SyntheticDataset ds = SmallTask();
  EXPECT_FALSE(DiscoverJoins(ds.db, "nope").ok());
}

TEST(TabularTest, MaterializeAllKinds) {
  const SyntheticDataset ds = SmallTask();
  for (const TabularBaseline kind :
       {TabularBaseline::kBase, TabularBaseline::kFull,
        TabularBaseline::kDisc}) {
    const auto result =
        MaterializeBaselineTable(ds.db, "base", "target", kind);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->first.NumRows(), 250u);
    EXPECT_NE(result->first.FindColumn(result->second), nullptr);
  }
}

TEST(TabularTest, FullIncludesDimColumnsBaseDoesNot) {
  const SyntheticDataset ds = SmallTask();
  const auto base =
      MaterializeBaselineTable(ds.db, "base", "target", TabularBaseline::kBase);
  const auto full =
      MaterializeBaselineTable(ds.db, "base", "target", TabularBaseline::kFull);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(base->first.FindColumn("dim.dim_pnum0"), nullptr);
  EXPECT_NE(full->first.FindColumn("dim.dim_pnum0"), nullptr);
}

TEST(TabularTest, BuildDatasetsSplitsAndSelects) {
  const SyntheticDataset ds = SmallTask();
  const auto full =
      MaterializeBaselineTable(ds.db, "base", "target", TabularBaseline::kFull);
  ASSERT_TRUE(full.ok());
  std::vector<size_t> train_rows;
  std::vector<size_t> test_rows;
  for (size_t r = 0; r < 250; ++r) (r < 200 ? train_rows : test_rows).push_back(r);
  Rng rng(1);
  const auto datasets = BuildTabularDatasets(
      full->first, full->second, true, train_rows, test_rows, 5, &rng);
  ASSERT_TRUE(datasets.ok());
  EXPECT_EQ(datasets->first.NumRows(), 200u);
  EXPECT_EQ(datasets->second.NumRows(), 50u);
  EXPECT_EQ(datasets->first.NumFeatures(), 5u);
  EXPECT_EQ(datasets->second.NumFeatures(), 5u);
}

Word2VecOptions FastW2v() {
  Word2VecOptions w;
  w.dim = 8;
  w.epochs = 1;
  return w;
}

TEST(CorpusModelsTest, DirectWord2VecFitsAndFeaturizes) {
  const SyntheticDataset ds = SmallTask();
  DirectWord2VecModel model(FastW2v(), {}, 3);
  ASSERT_TRUE(model.Fit(ds.db).ok());
  EXPECT_GT(model.embedding().size(), 0u);
  const Table* base = ds.db.FindTable("base");
  const auto vec = model.RowVector(*base, 0, "target", true);
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(vec->size(), 8u);
}

TEST(CorpusModelsTest, DeeperWeightsDiffer) {
  const SyntheticDataset ds = SmallTask();
  DirectWord2VecModel direct(FastW2v(), {}, 3);
  DeeperModel deeper(FastW2v(), {}, 3);
  ASSERT_TRUE(direct.Fit(ds.db).ok());
  ASSERT_TRUE(deeper.Fit(ds.db).ok());
  const Table* base = ds.db.FindTable("base");
  const auto v1 = direct.RowVector(*base, 0, "target", true);
  const auto v2 = deeper.RowVector(*base, 0, "target", true);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  // IDF weighting must change the composition.
  EXPECT_NE(*v1, *v2);
}

TEST(GraphModelsTest, Node2VecBuildsUnrefinedGraph) {
  const SyntheticDataset ds = SmallTask();
  Node2VecModel model(1.0, 0.5, FastW2v(), {}, 3);
  ASSERT_TRUE(model.Fit(ds.db).ok());
  // Unrefined: no missing-data removal happened.
  EXPECT_EQ(model.graph().stats().tokens_removed_missing, 0u);
  const Table* base = ds.db.FindTable("base");
  const auto vec = model.RowVector(*base, 5, "target", true);
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(vec->size(), 8u);
}

TEST(GraphModelsTest, EmbdiTripartiteHasColumnNodes) {
  const SyntheticDataset ds = SmallTask();
  EmbdiModel model(false, FastW2v(), {}, 3);
  ASSERT_TRUE(model.Fit(ds.db).ok());
  // Column nodes exist: labeled "__col__<attr id>".
  EXPECT_TRUE(model.embedding().Has("__col__0"));
}

TEST(GraphModelsTest, EmbdiNormalizationMergesCaseVariants) {
  // Two tables with case-differing tokens: F merges them, S keeps them apart.
  Database db;
  for (const std::string name : {"a", "b"}) {
    Table t(name);
    Column c;
    c.name = "val";
    c.type = DataType::kString;
    for (int i = 0; i < 20; ++i) {
      c.values.push_back(Value(name == "a" ? "Widget" : "widget"));
    }
    ASSERT_TRUE(t.AddColumn(c).ok());
    ASSERT_TRUE(db.AddTable(t).ok());
  }
  EmbdiModel normalized(true, FastW2v(), {}, 3);
  ASSERT_TRUE(normalized.Fit(db).ok());
  EXPECT_TRUE(normalized.embedding().Has("widget"));
  EXPECT_FALSE(normalized.embedding().Has("Widget"));

  EmbdiModel raw(false, FastW2v(), {}, 3);
  ASSERT_TRUE(raw.Fit(db).ok());
  EXPECT_TRUE(raw.embedding().Has("Widget"));
}

TEST(LevaModelTest, AdapterMatchesPipeline) {
  const SyntheticDataset ds = SmallTask();
  LevaConfig config;
  config.embedding_dim = 8;
  config.method = EmbeddingMethod::kMatrixFactorization;
  LevaModel model(config);
  ASSERT_TRUE(model.Fit(ds.db).ok());
  EXPECT_EQ(model.dim(), 16u);  // Row + Value
  const Table* base = ds.db.FindTable("base");
  TargetEncoder encoder;
  ASSERT_TRUE(encoder.Fit(*base->FindColumn("target"), true).ok());
  const auto features =
      FeaturizeWithModel(model, *base, "target", encoder, true);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->NumFeatures(), 16u);
  EXPECT_EQ(features->NumRows(), 250u);
}

TEST(FeaturizeWithModelTest, EncodesTargets) {
  const SyntheticDataset ds = SmallTask();
  DirectWord2VecModel model(FastW2v(), {}, 3);
  ASSERT_TRUE(model.Fit(ds.db).ok());
  const Table* base = ds.db.FindTable("base");
  TargetEncoder encoder;
  ASSERT_TRUE(encoder.Fit(*base->FindColumn("target"), true).ok());
  const auto features =
      FeaturizeWithModel(model, *base, "target", encoder, true);
  ASSERT_TRUE(features.ok());
  for (const double y : features->y) {
    EXPECT_TRUE(y == 0.0 || y == 1.0);
  }
}

}  // namespace
}  // namespace leva
