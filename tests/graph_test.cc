#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "graph/alias.h"
#include "graph/graph.h"

namespace leva {
namespace {

TEST(AliasTableTest, EmptyAndZeroWeights) {
  EXPECT_TRUE(AliasTable().empty());
  EXPECT_TRUE(AliasTable(std::vector<double>{}).empty());
  EXPECT_TRUE(AliasTable({0.0, 0.0}).empty());
}

TEST(AliasTableTest, SingleOutcome) {
  AliasTable t({3.0});
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.Sample(&rng), 0u);
}

TEST(AliasTableTest, MatchesDistribution) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable t(weights);
  Rng rng(2);
  std::vector<size_t> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[t.Sample(&rng)];
  for (size_t k = 0; k < 4; ++k) {
    const double expected = weights[k] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, expected, 0.01);
  }
}

TEST(AliasTableTest, SkewedDistribution) {
  AliasTable t({1000.0, 1.0});
  Rng rng(3);
  size_t rare = 0;
  for (int i = 0; i < 100000; ++i) {
    if (t.Sample(&rng) == 1) ++rare;
  }
  EXPECT_NEAR(static_cast<double>(rare) / 100000.0, 1.0 / 1001.0, 0.002);
}

// Property sweep: alias sampling matches arbitrary random distributions.
class AliasPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AliasPropertyTest, EmpiricalMatchesWeights) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  std::vector<double> weights(n);
  double total = 0;
  for (double& w : weights) {
    w = rng.Uniform(0.1, 5.0);
    total += w;
  }
  AliasTable t(weights);
  std::vector<size_t> counts(n, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[t.Sample(&rng)];
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / draws, weights[k] / total,
                0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AliasPropertyTest,
                         ::testing::Values<size_t>(2, 3, 7, 16, 33));

// Two tables sharing a key-like token; plus a token shared by coincidence.
std::vector<TextifiedTable> SharedTokenTables() {
  TextifiedTable a;
  a.table_name = "a";
  a.rows = {
      {{0, "k1"}, {1, "red"}},
      {{0, "k2"}, {1, "blue"}},
      {{0, "k3"}, {1, "red"}},
  };
  TextifiedTable b;
  b.table_name = "b";
  b.rows = {
      {{2, "k1"}, {3, "x"}},
      {{2, "k2"}, {3, "y"}},
  };
  return {a, b};
}

TEST(GraphTest, RowAndValueNodes) {
  const auto g = BuildGraph(SharedTokenTables(), 4);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->stats().row_nodes, 5u);
  // Shared tokens: k1 (a+b), k2 (a+b), red (2 rows in a). k3, blue, x, y are
  // single-row and get no value node.
  EXPECT_EQ(g->stats().value_nodes, 3u);
  EXPECT_EQ(g->stats().tokens_removed_unshared, 4u);
  EXPECT_NE(g->ValueNode("k1"), kInvalidNode);
  EXPECT_EQ(g->ValueNode("k3"), kInvalidNode);
}

TEST(GraphTest, RowNodeLookup) {
  const auto g = BuildGraph(SharedTokenTables(), 4);
  ASSERT_TRUE(g.ok());
  const NodeId r0 = g->RowNode("a", 0);
  ASSERT_NE(r0, kInvalidNode);
  EXPECT_EQ(g->kind(r0), NodeKind::kRow);
  EXPECT_EQ(g->label(r0), "a:0");
  EXPECT_EQ(g->RowNode("a", 99), kInvalidNode);
  EXPECT_EQ(g->RowNode("zzz", 0), kInvalidNode);
}

TEST(GraphTest, TableRowsMatchesRowNode) {
  const auto g = BuildGraph(SharedTokenTables(), 4);
  ASSERT_TRUE(g.ok());
  const auto [first, count] = g->TableRows("a");
  ASSERT_NE(first, kInvalidNode);
  EXPECT_EQ(count, 3u);
  for (size_t r = 0; r < count; ++r) {
    EXPECT_EQ(first + r, g->RowNode("a", r));
  }
  const auto [none, zero] = g->TableRows("zzz");
  EXPECT_EQ(none, kInvalidNode);
  EXPECT_EQ(zero, 0u);
}

TEST(GraphTest, EdgesConnectRowsViaValueNodes) {
  const auto g = BuildGraph(SharedTokenTables(), 4);
  ASSERT_TRUE(g.ok());
  const NodeId k1 = g->ValueNode("k1");
  const auto nbrs = g->Neighbors(k1);
  ASSERT_EQ(nbrs.size(), 2u);
  std::set<std::string> labels;
  for (const NodeId n : nbrs) labels.insert(g->label(n));
  EXPECT_TRUE(labels.count("a:0"));
  EXPECT_TRUE(labels.count("b:0"));
}

TEST(GraphTest, GraphIsBipartite) {
  const auto g = BuildGraph(SharedTokenTables(), 4);
  ASSERT_TRUE(g.ok());
  for (NodeId n = 0; n < g->NumNodes(); ++n) {
    for (const NodeId m : g->Neighbors(n)) {
      EXPECT_NE(g->kind(n), g->kind(m));
    }
  }
}

TEST(GraphTest, WeightsInverseToValueDegree) {
  const auto g = BuildGraph(SharedTokenTables(), 4);
  ASSERT_TRUE(g.ok());
  const NodeId k1 = g->ValueNode("k1");  // degree 2
  for (const float w : g->Weights(k1)) EXPECT_FLOAT_EQ(w, 0.5f);
}

TEST(GraphTest, UnweightedOption) {
  GraphOptions options;
  options.weighted = false;
  const auto g = BuildGraph(SharedTokenTables(), 4, options);
  ASSERT_TRUE(g.ok());
  const NodeId k1 = g->ValueNode("k1");
  for (const float w : g->Weights(k1)) EXPECT_FLOAT_EQ(w, 1.0f);
}

TEST(GraphTest, ThetaRangeRemovesMissingTokens) {
  // "?" appears under 3 of 4 attributes -> 75% > theta_range 50% -> removed.
  TextifiedTable a;
  a.table_name = "a";
  a.rows = {
      {{0, "?"}, {1, "?"}},
      {{0, "k"}, {1, "v"}},
      {{0, "k"}, {1, "v"}},
  };
  TextifiedTable b;
  b.table_name = "b";
  b.rows = {{{2, "?"}, {3, "w"}}, {{2, "z"}, {3, "w"}}};
  const auto g = BuildGraph({a, b}, 4);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ValueNode("?"), kInvalidNode);
  EXPECT_EQ(g->stats().tokens_removed_missing, 1u);
  EXPECT_NE(g->ValueNode("k"), kInvalidNode);
  EXPECT_NE(g->ValueNode("w"), kInvalidNode);
}

TEST(GraphTest, ThetaMinDropsAccidentalCollisions) {
  // "washington" appears 20x under attr 0 (Name) and once under attr 1
  // (State): the State occurrence is below theta_min = 5% of 21 votes.
  TextifiedTable t;
  t.table_name = "t";
  for (int i = 0; i < 20; ++i) {
    t.rows.push_back({{0, "washington"}});
  }
  t.rows.push_back({{1, "washington"}});
  GraphOptions options;
  options.theta_min = 0.10;  // 10% of 21 votes ~= 2.1 > 1
  // 10 total attributes in the "database": 2 distinct attributes is well
  // under theta_range, so the token survives to the theta_min stage.
  const auto g = BuildGraph({t}, 10, options);
  ASSERT_TRUE(g.ok());
  const NodeId v = g->ValueNode("washington");
  ASSERT_NE(v, kInvalidNode);
  // Only the 20 Name rows connect; the State row was refined away.
  EXPECT_EQ(g->Degree(v), 20u);
  EXPECT_GT(g->stats().votes_dropped_lowevidence, 0u);
}

TEST(GraphTest, InvalidThetasRejected) {
  GraphOptions bad;
  bad.theta_range = 0.0;
  EXPECT_FALSE(BuildGraph({}, 1, bad).ok());
  bad.theta_range = 0.5;
  bad.theta_min = 1.0;
  EXPECT_FALSE(BuildGraph({}, 1, bad).ok());
}

TEST(GraphTest, DuplicateTableRejected) {
  TextifiedTable t;
  t.table_name = "t";
  EXPECT_FALSE(BuildGraph({t, t}, 1).ok());
}

TEST(GraphTest, NeighborListsSorted) {
  const auto g = BuildGraph(SharedTokenTables(), 4);
  ASSERT_TRUE(g.ok());
  for (NodeId n = 0; n < g->NumNodes(); ++n) {
    const auto nbrs = g->Neighbors(n);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LE(nbrs[i - 1], nbrs[i]);
    }
  }
}

TEST(GraphTest, EdgeCountConsistency) {
  const auto g = BuildGraph(SharedTokenTables(), 4);
  ASSERT_TRUE(g.ok());
  size_t total_degree = 0;
  for (NodeId n = 0; n < g->NumNodes(); ++n) total_degree += g->Degree(n);
  EXPECT_EQ(total_degree, 2 * g->NumEdges());
  EXPECT_EQ(g->NumEdges(), g->stats().edges);
}

TEST(GraphTest, DeterministicNodeOrdering) {
  const auto g1 = BuildGraph(SharedTokenTables(), 4);
  const auto g2 = BuildGraph(SharedTokenTables(), 4);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  ASSERT_EQ(g1->NumNodes(), g2->NumNodes());
  for (NodeId n = 0; n < g1->NumNodes(); ++n) {
    EXPECT_EQ(g1->label(n), g2->label(n));
  }
}

TEST(GraphBuilderTest, BuildsArbitraryGraphs) {
  GraphBuilder builder;
  const NodeId r0 = builder.AddNode(NodeKind::kRow, "t:0");
  const NodeId r1 = builder.AddNode(NodeKind::kRow, "t:1");
  const NodeId v = builder.AddNode(NodeKind::kValue, "tok");
  builder.RegisterTableRows("t", r0, 2);
  ASSERT_TRUE(builder.AddEdge(r0, v, 2.0f).ok());
  ASSERT_TRUE(builder.AddEdge(r1, v, 3.0f).ok());
  const LevaGraph g = std::move(builder).Build();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.RowNode("t", 1), r1);
  EXPECT_EQ(g.ValueNode("tok"), v);
  EXPECT_EQ(g.Degree(v), 2u);
}

TEST(GraphBuilderTest, OutOfRangeEdgeRejected) {
  GraphBuilder builder;
  builder.AddNode(NodeKind::kRow, "t:0");
  EXPECT_FALSE(builder.AddEdge(0, 5).ok());
}

TEST(GraphTest, ValueNodeCountReduction) {
  // N rows sharing one value: value nodes give O(N) edges, not O(N^2).
  TextifiedTable t;
  t.table_name = "t";
  for (int i = 0; i < 100; ++i) t.rows.push_back({{0, "shared"}});
  const auto g = BuildGraph({t}, 1);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 100u);  // vs 100*99/2 pairwise
}

TEST(GraphTest, MemoryBytesPositive) {
  const auto g = BuildGraph(SharedTokenTables(), 4);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace leva
