// Differential + crash-safety suite for the pipeline snapshot format:
// Fit -> Save -> Load must serve Featurize bit-identically to the fitted
// pipeline across methods, thread counts, and batch sizes, and a kill at any
// injected I/O step must leave the previous snapshot loadable or be detected
// at load — never a silently wrong model.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/io.h"
#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"

namespace leva {
namespace {

// ctest runs every registered test as its own process, possibly in
// parallel; fold the test's full name and the pid into the path so e.g.
// the /MF and /RandomWalk instances of one parameterized test never race
// on the same file.
std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string unique = info == nullptr
                           ? std::string("unknown")
                           : std::string(info->test_suite_name()) + "_" +
                                 info->name();
  for (char& c : unique) {
    if (c == '/') c = '_';
  }
  return ::testing::TempDir() + "leva_snapshot_" + unique + "_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + name;
}

LevaConfig TestConfig(EmbeddingMethod method) {
  LevaConfig config;
  config.method = method;
  config.embedding_dim = 8;
  config.walks.epochs = 3;
  config.walks.walk_length = 10;
  config.word2vec.epochs = 1;
  // RW embeddings must be reproducibly comparable at any thread count.
  config.word2vec.deterministic = true;
  config.seed = 5;
  return config;
}

struct Fixture {
  SyntheticDataset ds;
  const Table* base = nullptr;
  TargetEncoder encoder;
};

Fixture MakeFixture() {
  Fixture f;
  auto ds = GenerateStudent(120, 0, 3);
  EXPECT_TRUE(ds.ok());
  f.ds = std::move(ds).value();
  f.base = f.ds.db.FindTable(f.ds.base_table);
  EXPECT_NE(f.base, nullptr);
  EXPECT_TRUE(
      f.encoder.Fit(*f.base->FindColumn(f.ds.target_column), true).ok());
  return f;
}

MLDataset Featurized(const LevaPipeline& p, const Fixture& f,
                     bool rows_in_graph) {
  auto r = p.Featurize(*f.base, f.ds.target_column, f.encoder, rows_in_graph);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// Bit-exact dataset equality: the matrix blocks memcmp-equal, labels equal.
void ExpectBitIdentical(const MLDataset& a, const MLDataset& b) {
  ASSERT_EQ(a.x.rows(), b.x.rows());
  ASSERT_EQ(a.x.cols(), b.x.cols());
  EXPECT_EQ(0, std::memcmp(a.x.data().data(), b.x.data().data(),
                           a.x.data().size() * sizeof(double)));
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.feature_names, b.feature_names);
}

std::string ReadAll(const std::string& path) {
  auto r = Env::Default()->ReadFileToString(path);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good());
}

class SnapshotRoundTrip
    : public ::testing::TestWithParam<EmbeddingMethod> {};

TEST_P(SnapshotRoundTrip, FeaturizeBitIdenticalAfterLoad) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(GetParam()));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const MLDataset in_graph = Featurized(fitted, f, /*rows_in_graph=*/true);
  const MLDataset held_out = Featurized(fitted, f, /*rows_in_graph=*/false);

  const std::string path = TempPath("roundtrip.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path).ok());

  LevaPipeline loaded;  // default config: everything comes from the snapshot
  const Status s = loaded.LoadSnapshot(path);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(loaded.chosen_method(), fitted.chosen_method());
  EXPECT_EQ(loaded.config().embedding_dim, fitted.config().embedding_dim);
  EXPECT_EQ(loaded.config().seed, fitted.config().seed);
  EXPECT_EQ(loaded.embedding().dim(), fitted.embedding().dim());
  EXPECT_EQ(loaded.embedding().keys(), fitted.embedding().keys());
  EXPECT_EQ(loaded.graph().NumNodes(), fitted.graph().NumNodes());
  EXPECT_EQ(loaded.graph().NumEdges(), fitted.graph().NumEdges());
  EXPECT_EQ(loaded.graph().stats().value_nodes, fitted.graph().stats().value_nodes);

  ExpectBitIdentical(Featurized(loaded, f, true), in_graph);
  ExpectBitIdentical(Featurized(loaded, f, false), held_out);
}

TEST_P(SnapshotRoundTrip, ServesIdenticallyAcrossThreadsAndBatchSizes) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(GetParam()));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const MLDataset expected = Featurized(fitted, f, true);
  const MLDataset expected_out = Featurized(fitted, f, false);

  const std::string path = TempPath("threads.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path).ok());

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    for (const size_t batch : {size_t{0}, size_t{7}}) {
      LevaPipeline loaded;
      ASSERT_TRUE(loaded.LoadSnapshot(path).ok());
      loaded.set_serving_options(threads, batch);
      ExpectBitIdentical(Featurized(loaded, f, true), expected);
      ExpectBitIdentical(Featurized(loaded, f, false), expected_out);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, SnapshotRoundTrip,
                         ::testing::Values(EmbeddingMethod::kMatrixFactorization,
                                           EmbeddingMethod::kRandomWalk),
                         [](const auto& info) {
                           return info.param ==
                                          EmbeddingMethod::kMatrixFactorization
                                      ? "MF"
                                      : "RandomWalk";
                         });

TEST(SnapshotTest, WarmResolverCacheRidesAlong) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  // Warm the serving cache, then snapshot it.
  (void)Featurized(fitted, f, true);
  EXPECT_GT(fitted.featurize_stats().distinct_tokens, 0u);
  const std::string path = TempPath("warm.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path).ok());

  LevaPipeline loaded;
  ASSERT_TRUE(loaded.LoadSnapshot(path).ok());
  ExpectBitIdentical(Featurized(loaded, f, true), Featurized(fitted, f, true));
  // Every token was already interned by the loaded warm cache: zero new
  // store probes on the first serve.
  EXPECT_EQ(loaded.featurize_stats().distinct_tokens, 0u);
  EXPECT_EQ(loaded.featurize_stats().store_lookups, 0u);
}

TEST(SnapshotTest, LoadReplacesAFittedPipeline) {
  const Fixture f = MakeFixture();
  LevaPipeline a(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(a.Fit(f.ds.db).ok());
  const std::string path = TempPath("replace.leva");
  ASSERT_TRUE(a.SaveSnapshot(path).ok());

  LevaConfig other = TestConfig(EmbeddingMethod::kRandomWalk);
  other.seed = 99;
  LevaPipeline b(other);
  ASSERT_TRUE(b.Fit(f.ds.db).ok());
  ASSERT_TRUE(b.LoadSnapshot(path).ok());
  EXPECT_EQ(b.chosen_method(), EmbeddingMethod::kMatrixFactorization);
  EXPECT_EQ(b.config().seed, 5u);
  ExpectBitIdentical(Featurized(b, f, true), Featurized(a, f, true));
}

TEST(SnapshotTest, SaveUnfittedFailsCleanly) {
  LevaPipeline p;
  const Status s = p.SaveSnapshot(TempPath("unfitted.leva"));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, LoadMissingFileReportsPath) {
  LevaPipeline p;
  const Status s = p.LoadSnapshot(TempPath("does_not_exist.leva"));
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("does_not_exist.leva"), std::string::npos);
}

TEST(SnapshotTest, RejectsForeignFile) {
  const std::string path = TempPath("foreign.leva");
  WriteAll(path, "key dim v1 v2 v3 -- this is not a snapshot, honest\n");
  LevaPipeline p;
  const Status s = p.LoadSnapshot(path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("magic"), std::string::npos) << s.ToString();
}

TEST(SnapshotTest, RejectsVersionSkew) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const std::string path = TempPath("version.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path).ok());

  std::string bytes = ReadAll(path);
  // Bump the version field (offset 8). The version check runs before any
  // checksum math — a future format may checksum differently, so the only
  // safe reaction to unknown versions is to say so by name.
  bytes[8] = static_cast<char>(LevaPipeline::kSnapshotVersion + 1);
  WriteAll(path, bytes);

  LevaPipeline p;
  const Status s = p.LoadSnapshot(path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find(std::to_string(LevaPipeline::kSnapshotVersion +
                                            1)),
            std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find(std::to_string(LevaPipeline::kSnapshotVersion)),
            std::string::npos)
      << s.ToString();
}

// A good-faith file in ANY retired format — v1 (element-wise layout with a
// whole-file trailing CRC), v2 (first page-aligned bulk layout), v3 (walk
// engine config) — must be turned away with an error naming both its version
// and ours — never parsed, never a crash. The fixtures are synthesized: every
// version shares the same 8-byte magic followed by a u32 version field, which
// is all the v4 reader may look at before rejecting.
TEST(SnapshotTest, RejectsEveryRetiredVersionNamingBothVersions) {
  for (uint32_t version = 1; version < LevaPipeline::kSnapshotVersion;
       ++version) {
    SCOPED_TRACE("retired format v" + std::to_string(version));
    std::string old_file;
    old_file += "LEVASNP1";            // family magic, shared across versions
    old_file.append(reinterpret_cast<const char*>(&version), sizeof(version));
    // Body bytes the v4 reader can't parse.
    old_file += std::string(256, '\x7f');

    const std::string path = TempPath("v" + std::to_string(version) + ".leva");
    WriteAll(path, old_file);
    for (const bool use_mmap : {false, true}) {
      LevaPipeline p;
      SnapshotLoadOptions opts;
      opts.use_mmap = use_mmap;
      const Status s = p.LoadSnapshot(path, nullptr, opts);
      ASSERT_FALSE(s.ok());
      EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
      EXPECT_NE(s.message().find("version " + std::to_string(version)),
                std::string::npos)
          << s.ToString();
      EXPECT_NE(s.message().find(
                    "version " +
                    std::to_string(LevaPipeline::kSnapshotVersion)),
                std::string::npos)
          << s.ToString();
      EXPECT_NE(s.message().find("re-save"), std::string::npos)
          << s.ToString();
    }
  }
}

// --- zero-copy (mmap) loads --------------------------------------------------

// Serving from a mapped snapshot — eagerly verified or lazily — must be
// bit-for-bit the same function as serving from a heap load or from the
// pipeline that trained the model.
TEST(SnapshotTest, MmapLoadServesBitIdentically) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const MLDataset expected = Featurized(fitted, f, true);
  const std::string path = TempPath("mmap.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path).ok());

  LevaPipeline heap;
  ASSERT_TRUE(heap.LoadSnapshot(path).ok());
  EXPECT_FALSE(heap.uses_mmap());
  ExpectBitIdentical(Featurized(heap, f, true), expected);

  for (const bool verify_pages : {true, false}) {
    SCOPED_TRACE(verify_pages ? "eager" : "lazy");
    LevaPipeline mapped;
    SnapshotLoadOptions opts;
    opts.use_mmap = true;
    opts.verify_pages = verify_pages;
    ASSERT_TRUE(mapped.LoadSnapshot(path, nullptr, opts).ok());
    EXPECT_TRUE(mapped.uses_mmap());
    EXPECT_TRUE(mapped.embedding().mapped());
    EXPECT_TRUE(mapped.graph().mapped());
    // The deferred integrity check must pass on an intact file whether or
    // not the load already did the work.
    EXPECT_TRUE(mapped.VerifyStorage().ok());
    ExpectBitIdentical(Featurized(mapped, f, true), expected);
    ExpectBitIdentical(Featurized(mapped, f, false),
                       Featurized(fitted, f, false));
  }
}

// Flipping one bit inside ANY page of the file must fail an eagerly verified
// mmap load: manifest pages via the manifest checksum, bulk pages via their
// per-page CRCs (which also cover the zero padding).
TEST(SnapshotTest, MmapLoadRejectsEveryBadPage) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const std::string path = TempPath("badpage.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path).ok());
  const size_t file_size = ReadAll(path).size();
  const size_t pages = (file_size + 4095) / 4096;
  ASSERT_GT(pages, 2u) << "fixture snapshot too small to exercise paging";

  SnapshotLoadOptions opts;
  opts.use_mmap = true;
  opts.verify_pages = true;
  for (size_t page = 0; page < pages; ++page) {
    SCOPED_TRACE("corrupt page " + std::to_string(page));
    FaultInjectionEnv env;
    env.CorruptMappedPage(page);
    LevaPipeline p;
    const Status s = p.LoadSnapshot(path, &env, opts);
    EXPECT_FALSE(s.ok()) << "corrupt page " << page << " was accepted";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  }
}

// A bad bulk page must be named precisely — section, page index, and file
// offset — so an operator can tell silent media corruption from a bad save.
TEST(SnapshotTest, BadPageErrorNamesThePage) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const std::string path = TempPath("namepage.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path).ok());
  // The last page of the file always belongs to the last bulk section
  // (embedding.data): bulk payloads tile the file to its exact end.
  const size_t last_page = ReadAll(path).size() / 4096 - 1;

  FaultInjectionEnv env;
  env.CorruptMappedPage(last_page);
  SnapshotLoadOptions opts;
  opts.use_mmap = true;
  LevaPipeline p;
  const Status s = p.LoadSnapshot(path, &env, opts);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("page checksum"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("embedding.data"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("file offset " + std::to_string(last_page * 4096)),
            std::string::npos)
      << s.ToString();
}

// A lazy mmap load (verify_pages = false) skips the O(model size) page scan,
// so corruption in the embedding payload slips past the load — that is the
// documented trade — but VerifyStorage() must still find it on demand and
// name the page.
TEST(SnapshotTest, LazyLoadDefersPageVerificationToVerifyStorage) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const std::string path = TempPath("lazy.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path).ok());
  const size_t last_page = ReadAll(path).size() / 4096 - 1;

  FaultInjectionEnv env;
  env.CorruptMappedPage(last_page);
  SnapshotLoadOptions opts;
  opts.use_mmap = true;
  opts.verify_pages = false;
  LevaPipeline p;
  // The corrupt page holds raw embedding doubles, structurally invisible to
  // the cheap load-time checks.
  ASSERT_TRUE(p.LoadSnapshot(path, &env, opts).ok());
  const Status verify = p.VerifyStorage();
  ASSERT_FALSE(verify.ok());
  EXPECT_EQ(verify.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(verify.message().find("page checksum"), std::string::npos)
      << verify.ToString();

  // Same load without the corruption: the deferred check passes.
  env.Heal();
  LevaPipeline clean;
  ASSERT_TRUE(clean.LoadSnapshot(path, &env, opts).ok());
  EXPECT_TRUE(clean.VerifyStorage().ok());
}

TEST(SnapshotTest, DetectsEveryTruncation) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const std::string path = TempPath("trunc.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path).ok());
  const std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 64u);

  const std::string cut = TempPath("trunc_cut.leva");
  std::vector<size_t> cuts = {0, 1, 7, 8, 12, 19, 20, 21,
                              bytes.size() / 2, bytes.size() - 1};
  for (size_t step = 23; step < bytes.size(); step += 97) cuts.push_back(step);
  for (const size_t n : cuts) {
    WriteAll(cut, bytes.substr(0, n));
    LevaPipeline p;
    const Status s = p.LoadSnapshot(cut);
    EXPECT_FALSE(s.ok()) << "truncation to " << n << " bytes was accepted";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  }
}

TEST(SnapshotTest, DetectsEveryBitFlip) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const std::string path = TempPath("flip.leva");
  ASSERT_TRUE(fitted.SaveSnapshot(path).ok());
  const std::string bytes = ReadAll(path);

  const std::string flipped = TempPath("flip_one.leva");
  // Every byte would be slow under sanitizers; a coprime stride still visits
  // every region (header, each section, payloads, trailing CRC).
  std::vector<size_t> positions = {0, 8, 12, 16, bytes.size() - 1};
  for (size_t pos = 5; pos < bytes.size(); pos += 131) positions.push_back(pos);
  for (const size_t pos : positions) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    WriteAll(flipped, corrupt);
    LevaPipeline p;
    const Status s = p.LoadSnapshot(flipped);
    EXPECT_FALSE(s.ok()) << "bit flip at byte " << pos << " was accepted";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  }
}

TEST(SnapshotTest, FailedLoadLeavesPipelineServingOldModel) {
  const Fixture f = MakeFixture();
  LevaPipeline fitted(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(fitted.Fit(f.ds.db).ok());
  const MLDataset expected = Featurized(fitted, f, true);

  const std::string bad = TempPath("bad_load.leva");
  WriteAll(bad, std::string(100, 'x'));
  EXPECT_FALSE(fitted.LoadSnapshot(bad).ok());
  // The failed load must not have touched the fitted state.
  ExpectBitIdentical(Featurized(fitted, f, true), expected);
}

// --- fault injection ---------------------------------------------------------

using OpKind = FaultInjectionEnv::OpKind;

constexpr OpKind kAllOps[] = {OpKind::kAppend, OpKind::kSync, OpKind::kClose,
                              OpKind::kRename, OpKind::kSyncDir};

const char* OpName(OpKind k) {
  switch (k) {
    case OpKind::kAppend: return "append";
    case OpKind::kSync: return "sync";
    case OpKind::kClose: return "close";
    case OpKind::kRename: return "rename";
    case OpKind::kSyncDir: return "syncdir";
    case OpKind::kRead: return "read";
  }
  return "?";
}

// Kill-at-every-I/O-step: arm a fault at each (kind, nth) a snapshot save
// performs, overwrite an existing good snapshot under the fault, and require
// that the path afterwards loads as EITHER the old model or the new one —
// bit-identically — or that the save never replaced it. No outcome may be a
// torn or silently wrong artifact.
TEST(FaultInjectionTest, KillAtEveryIoStepLeavesALoadableSnapshot) {
  const Fixture f = MakeFixture();
  LevaPipeline old_model(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(old_model.Fit(f.ds.db).ok());
  LevaConfig new_config = TestConfig(EmbeddingMethod::kMatrixFactorization);
  new_config.seed = 77;  // a genuinely different model
  LevaPipeline new_model(new_config);
  ASSERT_TRUE(new_model.Fit(f.ds.db).ok());

  const MLDataset old_out = Featurized(old_model, f, true);
  const MLDataset new_out = Featurized(new_model, f, true);
  // The two models must actually differ for the "old xor new" check to mean
  // anything.
  ASSERT_NE(0, std::memcmp(old_out.x.data().data(), new_out.x.data().data(),
                           old_out.x.data().size() * sizeof(double)));

  const std::string path = TempPath("faults.leva");

  // Learn how many fault points one save performs.
  FaultInjectionEnv probe;
  ASSERT_TRUE(new_model.SaveSnapshot(path, &probe).ok());
  for (const OpKind kind : kAllOps) {
    ASSERT_GT(probe.ops(kind), 0u) << OpName(kind) << " is never exercised";
  }

  const std::string good_old = [&] {
    const std::string p = TempPath("faults_old.leva");
    EXPECT_TRUE(old_model.SaveSnapshot(p).ok());
    return ReadAll(p);
  }();

  for (const auto append_mode : {FaultInjectionEnv::AppendFault::kFailCleanly,
                                 FaultInjectionEnv::AppendFault::kTornWrite}) {
    for (const OpKind kind : kAllOps) {
      for (size_t nth = 1; nth <= probe.ops(kind); ++nth) {
        SCOPED_TRACE(std::string(OpName(kind)) + " #" + std::to_string(nth) +
                     (append_mode == FaultInjectionEnv::AppendFault::kTornWrite
                          ? " (torn)"
                          : ""));
        WriteAll(path, good_old);  // fresh previous snapshot
        FaultInjectionEnv env;
        env.set_append_fault(append_mode);
        env.FailAtOp(kind, nth);
        const Status save = new_model.SaveSnapshot(path, &env);
        EXPECT_FALSE(save.ok());
        EXPECT_TRUE(env.crashed());
        EXPECT_NE(save.message().find("injected fault"), std::string::npos)
            << save.ToString();

        // "Restart": the snapshot at `path` must load and serve exactly one
        // of the two models.
        LevaPipeline recovered;
        const Status load = recovered.LoadSnapshot(path);
        ASSERT_TRUE(load.ok())
            << "crash left an unloadable snapshot: " << load.ToString();
        const MLDataset out = Featurized(recovered, f, true);
        const bool is_old =
            std::memcmp(out.x.data().data(), old_out.x.data().data(),
                        out.x.data().size() * sizeof(double)) == 0;
        const bool is_new =
            std::memcmp(out.x.data().data(), new_out.x.data().data(),
                        out.x.data().size() * sizeof(double)) == 0;
        EXPECT_TRUE(is_old || is_new)
            << "recovered snapshot serves neither the old nor the new model";
        // Failures before the rename step must leave the old snapshot; the
        // rename itself failing also leaves the old bytes in place.
        if (kind != OpKind::kSyncDir) {
          EXPECT_TRUE(is_old) << "pre-rename failure replaced the snapshot";
        }
      }
    }
  }
}

// A crash mid-save must not leave a temp file that a later atomic save
// cannot overwrite, and a successful retry after "restart" must win.
TEST(FaultInjectionTest, RetryAfterCrashSucceeds) {
  const Fixture f = MakeFixture();
  LevaPipeline model(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(model.Fit(f.ds.db).ok());
  const std::string path = TempPath("retry.leva");

  FaultInjectionEnv env;
  env.set_append_fault(FaultInjectionEnv::AppendFault::kTornWrite);
  env.FailAtOp(OpKind::kAppend, 1);
  EXPECT_FALSE(model.SaveSnapshot(path, &env).ok());

  // Process restarts: a clean save over the leftovers must succeed and load.
  ASSERT_TRUE(model.SaveSnapshot(path).ok());
  LevaPipeline loaded;
  ASSERT_TRUE(loaded.LoadSnapshot(path).ok());
  ExpectBitIdentical(Featurized(loaded, f, true), Featurized(model, f, true));
}

// Zero-copy loads lean on the same atomic-rename protocol: a crash at any
// I/O step of an overwriting save must leave the previous snapshot not just
// heap-loadable but MMAP-loadable with eager page verification — the mapped
// reader sees either the complete old file or the complete new one, never a
// partially renamed hybrid.
TEST(FaultInjectionTest, CrashMidSaveLeavesPreviousSnapshotMmapLoadable) {
  const Fixture f = MakeFixture();
  LevaPipeline old_model(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(old_model.Fit(f.ds.db).ok());
  LevaConfig new_config = TestConfig(EmbeddingMethod::kMatrixFactorization);
  new_config.seed = 77;
  LevaPipeline new_model(new_config);
  ASSERT_TRUE(new_model.Fit(f.ds.db).ok());
  const MLDataset old_out = Featurized(old_model, f, true);
  const MLDataset new_out = Featurized(new_model, f, true);

  const std::string path = TempPath("mmap_crash.leva");
  FaultInjectionEnv probe;
  ASSERT_TRUE(new_model.SaveSnapshot(path, &probe).ok());
  const std::string good_old = [&] {
    const std::string p = TempPath("mmap_crash_old.leva");
    EXPECT_TRUE(old_model.SaveSnapshot(p).ok());
    return ReadAll(p);
  }();

  SnapshotLoadOptions opts;
  opts.use_mmap = true;
  opts.verify_pages = true;
  for (const OpKind kind : kAllOps) {
    // Every append plus the commit steps; stride the appends to keep the
    // suite fast under sanitizers while still hitting early/mid/late ones.
    std::vector<size_t> nths = {1, probe.ops(kind)};
    for (size_t nth = 2; nth < probe.ops(kind); nth += 3) nths.push_back(nth);
    for (const size_t nth : nths) {
      if (nth == 0 || nth > probe.ops(kind)) continue;
      SCOPED_TRACE(std::string(OpName(kind)) + " #" + std::to_string(nth));
      WriteAll(path, good_old);
      FaultInjectionEnv env;
      env.set_append_fault(FaultInjectionEnv::AppendFault::kTornWrite);
      env.FailAtOp(kind, nth);
      EXPECT_FALSE(new_model.SaveSnapshot(path, &env).ok());

      // Reads pass through a crashed env, so "restart" and map the file.
      LevaPipeline recovered;
      const Status load = recovered.LoadSnapshot(path, &env, opts);
      ASSERT_TRUE(load.ok())
          << "crash left a snapshot that cannot be mmap-loaded: "
          << load.ToString();
      EXPECT_TRUE(recovered.uses_mmap());
      EXPECT_TRUE(recovered.VerifyStorage().ok());
      const MLDataset out = Featurized(recovered, f, true);
      const bool is_old =
          std::memcmp(out.x.data().data(), old_out.x.data().data(),
                      out.x.data().size() * sizeof(double)) == 0;
      const bool is_new =
          std::memcmp(out.x.data().data(), new_out.x.data().data(),
                      out.x.data().size() * sizeof(double)) == 0;
      EXPECT_TRUE(is_old || is_new)
          << "mapped recovery serves neither the old nor the new model";
    }
  }
}

// The quantized layout adds bulk sections (embedding.q8, embedding.scales)
// but must ride the same atomic-rename protocol: a crash at any I/O step of
// an int8 save overwriting an fp64 snapshot leaves the path serving either
// the complete old fp64 model or the complete new int8 one, mmap-loadable
// with eager page verification — never a hybrid of the two layouts.
TEST(FaultInjectionTest, CrashMidQuantizedSaveLeavesPreviousSnapshotLoadable) {
  const Fixture f = MakeFixture();
  LevaPipeline old_model(TestConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(old_model.Fit(f.ds.db).ok());
  LevaConfig new_config = TestConfig(EmbeddingMethod::kMatrixFactorization);
  new_config.seed = 77;
  LevaPipeline new_model(new_config);
  ASSERT_TRUE(new_model.Fit(f.ds.db).ok());
  const MLDataset old_out = Featurized(old_model, f, true);

  // Reference output of the new model served at int8: save clean, reload.
  const std::string q_ref_path = TempPath("q_crash_ref.leva");
  ASSERT_TRUE(new_model.SaveSnapshot(q_ref_path, StorageTier::kInt8).ok());
  LevaPipeline q_ref;
  ASSERT_TRUE(q_ref.LoadSnapshot(q_ref_path).ok());
  ASSERT_EQ(q_ref.embedding().tier(), StorageTier::kInt8);
  const MLDataset new_q_out = Featurized(q_ref, f, true);

  const std::string path = TempPath("q_crash.leva");
  FaultInjectionEnv probe;
  ASSERT_TRUE(new_model.SaveSnapshot(path, StorageTier::kInt8, &probe).ok());
  const std::string good_old = [&] {
    const std::string p = TempPath("q_crash_old.leva");
    EXPECT_TRUE(old_model.SaveSnapshot(p).ok());
    return ReadAll(p);
  }();

  SnapshotLoadOptions opts;
  opts.use_mmap = true;
  opts.verify_pages = true;
  for (const OpKind kind : kAllOps) {
    std::vector<size_t> nths = {1, probe.ops(kind)};
    for (size_t nth = 2; nth < probe.ops(kind); nth += 5) nths.push_back(nth);
    for (const size_t nth : nths) {
      if (nth == 0 || nth > probe.ops(kind)) continue;
      SCOPED_TRACE(std::string(OpName(kind)) + " #" + std::to_string(nth));
      WriteAll(path, good_old);
      FaultInjectionEnv env;
      env.set_append_fault(FaultInjectionEnv::AppendFault::kTornWrite);
      env.FailAtOp(kind, nth);
      EXPECT_FALSE(new_model.SaveSnapshot(path, StorageTier::kInt8, &env).ok());

      LevaPipeline recovered;
      const Status load = recovered.LoadSnapshot(path, &env, opts);
      ASSERT_TRUE(load.ok())
          << "crash mid quantized save left an unloadable snapshot: "
          << load.ToString();
      EXPECT_TRUE(recovered.VerifyStorage().ok());
      const MLDataset out = Featurized(recovered, f, true);
      const bool is_old =
          recovered.embedding().tier() == StorageTier::kFp64 &&
          std::memcmp(out.x.data().data(), old_out.x.data().data(),
                      out.x.data().size() * sizeof(double)) == 0;
      const bool is_new =
          recovered.embedding().tier() == StorageTier::kInt8 &&
          std::memcmp(out.x.data().data(), new_q_out.x.data().data(),
                      out.x.data().size() * sizeof(double)) == 0;
      EXPECT_TRUE(is_old || is_new)
          << "recovery serves neither the old fp64 nor the new int8 model";
    }
  }
}

}  // namespace
}  // namespace leva
