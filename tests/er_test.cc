#include <gtest/gtest.h>

#include "baselines/leva_model.h"
#include "datagen/er_data.h"
#include "er/entity_resolution.h"

namespace leva {
namespace {

ErDataset SmallEr(double perturbation) {
  ErConfig config;
  config.entities = 120;
  config.perturbation = perturbation;
  config.seed = 21;
  auto ds = GenerateErDataset(config);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

LevaConfig FastLeva() {
  LevaConfig config;
  config.embedding_dim = 16;
  config.method = EmbeddingMethod::kMatrixFactorization;
  config.featurization = Featurization::kRowOnly;
  config.seed = 9;
  return config;
}

TEST(ErTest, DatabaseHelper) {
  const ErDataset ds = SmallEr(0.1);
  const auto db = ErDatabase(ds);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->tables().size(), 2u);
}

TEST(ErTest, LevaResolvesLightlyPerturbedEntities) {
  const ErDataset ds = SmallEr(0.1);
  const auto db = ErDatabase(ds);
  ASSERT_TRUE(db.ok());
  LevaModel model(FastLeva());
  ASSERT_TRUE(model.Fit(*db).ok());
  const auto result = EvaluateEntityResolution(model, ds);
  ASSERT_TRUE(result.ok());
  // Light perturbation: matching should clearly beat the 33% positive rate.
  EXPECT_GT(result->f1, 0.6);
}

TEST(ErTest, HarderPerturbationLowersF1) {
  const ErDataset easy = SmallEr(0.05);
  const ErDataset hard = SmallEr(0.6);
  const auto easy_db = ErDatabase(easy);
  const auto hard_db = ErDatabase(hard);
  ASSERT_TRUE(easy_db.ok());
  ASSERT_TRUE(hard_db.ok());

  LevaModel easy_model(FastLeva());
  ASSERT_TRUE(easy_model.Fit(*easy_db).ok());
  const auto easy_result = EvaluateEntityResolution(easy_model, easy);
  ASSERT_TRUE(easy_result.ok());

  LevaModel hard_model(FastLeva());
  ASSERT_TRUE(hard_model.Fit(*hard_db).ok());
  const auto hard_result = EvaluateEntityResolution(hard_model, hard);
  ASSERT_TRUE(hard_result.ok());

  EXPECT_GE(easy_result->f1 + 0.05, hard_result->f1);
}

TEST(ErTest, PrecisionRecallWithinBounds) {
  const ErDataset ds = SmallEr(0.2);
  const auto db = ErDatabase(ds);
  ASSERT_TRUE(db.ok());
  LevaModel model(FastLeva());
  ASSERT_TRUE(model.Fit(*db).ok());
  const auto result = EvaluateEntityResolution(model, ds);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->precision, 0.0);
  EXPECT_LE(result->precision, 1.0);
  EXPECT_GE(result->recall, 0.0);
  EXPECT_LE(result->recall, 1.0);
}

TEST(ErTest, EmptyPairsRejected) {
  ErDataset ds = SmallEr(0.1);
  ds.pairs.clear();
  LevaModel model(FastLeva());
  const auto db = ErDatabase(ds);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(model.Fit(*db).ok());
  EXPECT_FALSE(EvaluateEntityResolution(model, ds).ok());
}

}  // namespace
}  // namespace leva
