#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/string_util.h"
#include "datagen/datasets.h"
#include "datagen/er_data.h"
#include "datagen/synthetic.h"

namespace leva {
namespace {

SyntheticConfig TinyConfig() {
  SyntheticConfig c;
  c.base_rows = 200;
  c.dims = {
      {.name = "d1", .rows = 40, .predictive_numeric = 1,
       .predictive_categorical = 1, .noise_numeric = 1,
       .noise_categorical = 1, .categories = 5, .parent = ""},
      {.name = "d2", .rows = 30, .predictive_numeric = 1,
       .predictive_categorical = 0, .noise_numeric = 0,
       .noise_categorical = 0, .categories = 5, .parent = "d1"},
  };
  c.seed = 9;
  return c;
}

TEST(SyntheticTest, GeneratesExpectedShape) {
  const auto ds = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->db.tables().size(), 3u);  // base + 2 dims
  const Table* base = ds->db.FindTable("base");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->NumRows(), 200u);
  EXPECT_NE(base->FindColumn("target"), nullptr);
  EXPECT_NE(base->FindColumn("fk_d1"), nullptr);
  // d2 hangs off d1, not the base table.
  EXPECT_EQ(base->FindColumn("fk_d2"), nullptr);
  EXPECT_NE(ds->db.FindTable("d1")->FindColumn("fk_d2"), nullptr);
}

TEST(SyntheticTest, ForeignKeysRecorded) {
  const auto ds = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->db.foreign_keys().size(), 2u);
  // Chain FK: d1 -> d2.
  bool chain_found = false;
  for (const ForeignKey& fk : ds->db.foreign_keys()) {
    if (fk.child_table == "d1" && fk.parent_table == "d2") chain_found = true;
  }
  EXPECT_TRUE(chain_found);
}

TEST(SyntheticTest, FkValuesResolve) {
  const auto ds = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(ds.ok());
  const Table* base = ds->db.FindTable("base");
  const Table* d1 = ds->db.FindTable("d1");
  std::set<std::string> keys;
  for (const Value& v : d1->FindColumn("d1_id")->values) {
    keys.insert(v.as_string());
  }
  for (const Value& v : base->FindColumn("fk_d1")->values) {
    EXPECT_TRUE(keys.count(v.as_string()) > 0);
  }
}

TEST(SyntheticTest, ClassificationTargetBalanced) {
  SyntheticConfig c = TinyConfig();
  c.classification = true;
  c.num_classes = 3;
  c.base_rows = 600;
  const auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  std::map<std::string, size_t> counts;
  for (const Value& v :
       ds->db.FindTable("base")->FindColumn("target")->values) {
    ++counts[v.as_string()];
  }
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [label, n] : counts) {
    EXPECT_GT(n, 120u);  // roughly balanced thirds of 600
  }
}

TEST(SyntheticTest, RegressionTargetNumeric) {
  SyntheticConfig c = TinyConfig();
  c.classification = false;
  const auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  for (const Value& v :
       ds->db.FindTable("base")->FindColumn("target")->values) {
    EXPECT_TRUE(v.is_numeric());
  }
}

TEST(SyntheticTest, MissingInjectionProducesNullsAndQuestionMarks) {
  SyntheticConfig c = TinyConfig();
  c.missing_rate = 0.3;
  const auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  size_t nulls = 0;
  size_t questions = 0;
  for (const Column& col : ds->db.FindTable("d1")->columns()) {
    for (const Value& v : col.values) {
      if (v.is_null()) ++nulls;
      if (v.is_string() && v.as_string() == "?") ++questions;
    }
  }
  EXPECT_GT(nulls, 0u);
  EXPECT_GT(questions, 0u);
  // Base table target stays clean.
  for (const Value& v :
       ds->db.FindTable("base")->FindColumn("target")->values) {
    EXPECT_FALSE(v.is_null());
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  const auto a = GenerateSynthetic(TinyConfig());
  const auto b = GenerateSynthetic(TinyConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->latent_score, b->latent_score);
}

TEST(SyntheticTest, LatentScoreDrivesTarget) {
  SyntheticConfig c = TinyConfig();
  c.classification = false;
  c.label_noise = 0.01;
  const auto ds = GenerateSynthetic(c);
  ASSERT_TRUE(ds.ok());
  // Correlation between latent score and the target must be strong.
  const auto& target = ds->db.FindTable("base")->FindColumn("target")->values;
  double sum_xy = 0;
  double sum_x = 0;
  double sum_y = 0;
  double sum_xx = 0;
  double sum_yy = 0;
  const size_t n = target.size();
  for (size_t i = 0; i < n; ++i) {
    const double x = ds->latent_score[i];
    const double y = target[i].ToNumeric();
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_yy += y * y;
  }
  const double corr =
      (n * sum_xy - sum_x * sum_y) /
      std::sqrt((n * sum_xx - sum_x * sum_x) * (n * sum_yy - sum_y * sum_y));
  EXPECT_GT(corr, 0.95);
}

TEST(SyntheticTest, InvalidConfigsRejected) {
  SyntheticConfig empty;
  empty.base_rows = 0;
  EXPECT_FALSE(GenerateSynthetic(empty).ok());

  SyntheticConfig bad_parent = TinyConfig();
  bad_parent.dims[1].parent = "nonexistent";
  EXPECT_FALSE(GenerateSynthetic(bad_parent).ok());
}

TEST(StudentTest, SchemaMatchesPaper) {
  const auto ds = GenerateStudent(50, 0, 1);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->db.tables().size(), 3u);
  const Table* expenses = ds->db.FindTable("expenses");
  ASSERT_NE(expenses, nullptr);
  EXPECT_NE(expenses->FindColumn("gender"), nullptr);
  EXPECT_NE(expenses->FindColumn("school_name"), nullptr);
  EXPECT_NE(expenses->FindColumn("total_expenses"), nullptr);
  EXPECT_EQ(ds->db.FindTable("order_info")->NumRows(), 100u);  // 2 per student
  EXPECT_EQ(ds->db.foreign_keys().size(), 2u);
}

TEST(StudentTest, TotalExpensesEqualsOrderedPrices) {
  const auto ds = GenerateStudent(30, 0, 2);
  ASSERT_TRUE(ds.ok());
  const Table* orders = ds->db.FindTable("order_info");
  const Table* prices = ds->db.FindTable("price_info");
  std::map<std::string, double> price_of;
  for (size_t r = 0; r < prices->NumRows(); ++r) {
    price_of[prices->at(r, 0).as_string()] = prices->at(r, 1).ToNumeric();
  }
  std::map<std::string, double> total;
  for (size_t r = 0; r < orders->NumRows(); ++r) {
    total[orders->at(r, 0).as_string()] +=
        price_of[orders->at(r, 1).as_string()];
  }
  const Table* expenses = ds->db.FindTable("expenses");
  for (size_t r = 0; r < expenses->NumRows(); ++r) {
    EXPECT_NEAR(expenses->FindColumn("total_expenses")->values[r].ToNumeric(),
                total[expenses->at(r, 0).as_string()], 1e-9);
  }
}

TEST(StudentTest, NoiseAttributesAppended) {
  const auto ds = GenerateStudent(20, 3, 4);
  ASSERT_TRUE(ds.ok());
  EXPECT_NE(ds->db.FindTable("expenses")->FindColumn("exp_noise2"), nullptr);
  EXPECT_NE(ds->db.FindTable("order_info")->FindColumn("ord_noise0"), nullptr);
  EXPECT_NE(ds->db.FindTable("price_info")->FindColumn("pri_noise1"), nullptr);
}

TEST(ReplicateTest, GrowsRowsAndTokensLinearly) {
  const auto ds = GenerateStudent(20, 0, 5);
  ASSERT_TRUE(ds.ok());
  const auto replicated = ReplicateDatabase(ds->db, 3);
  ASSERT_TRUE(replicated.ok());
  EXPECT_EQ(replicated->FindTable("expenses")->NumRows(), 60u);
  // Distinct string tokens grow: copy suffixes keep them apart.
  std::set<std::string> names;
  for (const Value& v :
       replicated->FindTable("expenses")->FindColumn("name")->values) {
    names.insert(v.as_string());
  }
  EXPECT_EQ(names.size(), 60u);
}

TEST(ReplicateTest, NumericValuesShiftedPerCopy) {
  const auto ds = GenerateStudent(10, 0, 6);
  ASSERT_TRUE(ds.ok());
  const auto replicated = ReplicateDatabase(ds->db, 2);
  ASSERT_TRUE(replicated.ok());
  const Column* prices = replicated->FindTable("price_info")->FindColumn("prices");
  // Second copy values exceed the first copy's maximum.
  double max_first = 0;
  double min_second = 1e18;
  for (size_t r = 0; r < 50; ++r) max_first = std::max(max_first, prices->values[r].ToNumeric());
  for (size_t r = 50; r < 100; ++r) min_second = std::min(min_second, prices->values[r].ToNumeric());
  EXPECT_GT(min_second, max_first);
}

TEST(ReplicateTest, FactorZeroRejected) {
  Database db;
  EXPECT_FALSE(ReplicateDatabase(db, 0).ok());
}

TEST(NamedConfigsTest, AllResolveAndMatchTableCounts) {
  for (const auto& [name, tables] :
       std::vector<std::pair<std::string, size_t>>{{"genes", 3},
                                                   {"kraken", 10},
                                                   {"ftp", 2},
                                                   {"financial", 8},
                                                   {"restbase", 3},
                                                   {"bio", 3}}) {
    const auto config = DatasetConfigByName(name);
    ASSERT_TRUE(config.ok()) << name;
    const auto ds = GenerateSynthetic(*config);
    ASSERT_TRUE(ds.ok()) << name;
    EXPECT_EQ(ds->db.tables().size(), tables) << name;
  }
  EXPECT_FALSE(DatasetConfigByName("nope").ok());
}

TEST(NamedConfigsTest, TaskTypesMatchTable4) {
  EXPECT_TRUE(GenesConfig().classification);
  EXPECT_EQ(GenesConfig().num_classes, 3u);
  EXPECT_TRUE(FinancialConfig().classification);
  EXPECT_FALSE(RestbaseConfig().classification);
  EXPECT_FALSE(BioConfig().classification);
  EXPECT_GT(GenesConfig().missing_rate, 0.0);
  EXPECT_DOUBLE_EQ(KrakenConfig().missing_rate, 0.0);
}

TEST(ErDataTest, GeneratesLabeledPairs) {
  ErConfig config;
  config.entities = 50;
  const auto ds = GenerateErDataset(config);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->table_a.NumRows(), 50u);
  EXPECT_EQ(ds->table_b.NumRows(), 50u);
  size_t matches = 0;
  for (const ErPair& p : ds->pairs) {
    EXPECT_LT(p.row_a, 50u);
    EXPECT_LT(p.row_b, 50u);
    if (p.match) ++matches;
  }
  EXPECT_EQ(matches, 50u);
  EXPECT_EQ(ds->pairs.size(), 50u * (1 + config.negatives_per_match));
}

TEST(ErDataTest, MatchedRowsShareTokens) {
  ErConfig config;
  config.entities = 30;
  config.perturbation = 0.1;
  const auto ds = GenerateErDataset(config);
  ASSERT_TRUE(ds.ok());
  // For most matches, the name strings share at least one word.
  size_t sharing = 0;
  size_t total = 0;
  for (const ErPair& p : ds->pairs) {
    if (!p.match) continue;
    ++total;
    const std::string a = ds->table_a.at(p.row_a, 0).as_string();
    const std::string b = ds->table_b.at(p.row_b, 0).as_string();
    std::set<std::string> a_tokens;
    for (const auto& t : Split(a, ' ')) a_tokens.insert(t);
    for (const auto& t : Split(b, ' ')) {
      if (a_tokens.count(t)) {
        ++sharing;
        break;
      }
    }
  }
  EXPECT_GT(sharing, total * 8 / 10);
}

TEST(ErDataTest, NamedConfigsOrderedByDifficulty) {
  const auto easy = ErDatasetByName("beeradvo_ratebeer");
  const auto medium = ErDatasetByName("walmart_amazon");
  const auto hard = ErDatasetByName("amazon_google");
  ASSERT_TRUE(easy.ok());
  ASSERT_TRUE(medium.ok());
  ASSERT_TRUE(hard.ok());
  EXPECT_FALSE(ErDatasetByName("zzz").ok());
}

}  // namespace
}  // namespace leva
