#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/featurize.h"
#include "ml/gridsearch.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace leva {
namespace {

// y = 2*x0 - 3*x1 + 1 with small noise.
MLDataset LinearRegressionData(size_t n, Rng* rng) {
  MLDataset ds;
  ds.classification = false;
  ds.x = Matrix(n, 2);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ds.x(i, 0) = rng->Normal();
    ds.x(i, 1) = rng->Normal();
    ds.y[i] = 2.0 * ds.x(i, 0) - 3.0 * ds.x(i, 1) + 1.0 + 0.01 * rng->Normal();
  }
  return ds;
}

// Two Gaussian blobs, linearly separable.
MLDataset BlobData(size_t n, Rng* rng) {
  MLDataset ds;
  ds.classification = true;
  ds.num_classes = 2;
  ds.x = Matrix(n, 2);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool pos = i % 2 == 0;
    ds.x(i, 0) = rng->Normal() + (pos ? 2.0 : -2.0);
    ds.x(i, 1) = rng->Normal() + (pos ? 2.0 : -2.0);
    ds.y[i] = pos ? 1.0 : 0.0;
  }
  return ds;
}

// XOR-ish pattern: not linearly separable, solvable by trees and MLPs.
MLDataset XorData(size_t n, Rng* rng) {
  MLDataset ds;
  ds.classification = true;
  ds.num_classes = 2;
  ds.x = Matrix(n, 2);
  ds.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ds.x(i, 0) = rng->Uniform(-1, 1);
    ds.x(i, 1) = rng->Uniform(-1, 1);
    ds.y[i] = (ds.x(i, 0) > 0) != (ds.x(i, 1) > 0) ? 1.0 : 0.0;
  }
  return ds;
}

TEST(MetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, MaeMse) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2}, {2, 4}), 1.5);
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2}, {2, 4}), 2.5);
}

TEST(MetricsTest, R2PerfectAndMean) {
  EXPECT_DOUBLE_EQ(R2Score({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_NEAR(R2Score({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
}

TEST(MetricsTest, F1PrecisionRecall) {
  const std::vector<double> truth = {1, 1, 0, 0};
  const std::vector<double> pred = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(PrecisionBinary(truth, pred), 0.5);
  EXPECT_DOUBLE_EQ(RecallBinary(truth, pred), 0.5);
  EXPECT_DOUBLE_EQ(F1Binary(truth, pred), 0.5);
  EXPECT_DOUBLE_EQ(F1Binary({0, 0}, {0, 0}), 0.0);  // no positives
}

TEST(DatasetTest, SubsetAndSelectFeatures) {
  Rng rng(1);
  const MLDataset ds = LinearRegressionData(10, &rng);
  const MLDataset sub = ds.Subset({0, 5, 9});
  EXPECT_EQ(sub.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(sub.x(1, 0), ds.x(5, 0));
  EXPECT_DOUBLE_EQ(sub.y[2], ds.y[9]);

  const MLDataset one = ds.SelectFeatures({1});
  EXPECT_EQ(one.NumFeatures(), 1u);
  EXPECT_DOUBLE_EQ(one.x(3, 0), ds.x(3, 1));
}

TEST(DatasetTest, SplitSizes) {
  Rng rng(2);
  const MLDataset ds = LinearRegressionData(100, &rng);
  const TrainTestSplit split = SplitTrainTest(ds, 0.25, &rng);
  EXPECT_EQ(split.test.NumRows(), 25u);
  EXPECT_EQ(split.train.NumRows(), 75u);
  EXPECT_EQ(split.train_rows.size() + split.test_rows.size(), 100u);
}

TEST(DatasetTest, KFoldCoversAllRows) {
  Rng rng(3);
  const auto folds = KFoldIndices(23, 5, &rng);
  size_t total = 0;
  std::set<size_t> seen;
  for (const auto& fold : folds) {
    total += fold.size();
    seen.insert(fold.begin(), fold.end());
  }
  EXPECT_EQ(total, 23u);
  EXPECT_EQ(seen.size(), 23u);
}

TEST(DatasetTest, StandardizeUsesTrainStats) {
  Rng rng(4);
  MLDataset train = LinearRegressionData(200, &rng);
  MLDataset test = LinearRegressionData(50, &rng);
  StandardizeFeatures(&train, &test);
  double mean = 0;
  for (size_t r = 0; r < train.NumRows(); ++r) mean += train.x(r, 0);
  EXPECT_NEAR(mean / static_cast<double>(train.NumRows()), 0.0, 1e-9);
}

TEST(LinearRegressorTest, RecoversCoefficients) {
  Rng rng(5);
  const MLDataset ds = LinearRegressionData(500, &rng);
  ElasticNetOptions options;
  options.epochs = 200;
  LinearRegressor model(options);
  ASSERT_TRUE(model.Fit(ds.x, ds.y, &rng).ok());
  EXPECT_NEAR(model.weights()[0], 2.0, 0.1);
  EXPECT_NEAR(model.weights()[1], -3.0, 0.1);
  EXPECT_NEAR(model.bias(), 1.0, 0.1);
}

TEST(LinearRegressorTest, L1DrivesIrrelevantWeightsToZero) {
  Rng rng(6);
  MLDataset ds;
  ds.x = Matrix(400, 3);
  ds.y.resize(400);
  for (size_t i = 0; i < 400; ++i) {
    ds.x(i, 0) = rng.Normal();
    ds.x(i, 1) = rng.Normal();  // irrelevant
    ds.x(i, 2) = rng.Normal();  // irrelevant
    ds.y[i] = 3.0 * ds.x(i, 0) + 0.01 * rng.Normal();
  }
  ElasticNetOptions options;
  options.lambda = 0.1;
  options.l1_ratio = 1.0;
  options.epochs = 150;
  LinearRegressor model(options);
  ASSERT_TRUE(model.Fit(ds.x, ds.y, &rng).ok());
  EXPECT_LT(std::fabs(model.weights()[1]), 0.05);
  EXPECT_LT(std::fabs(model.weights()[2]), 0.05);
  EXPECT_GT(std::fabs(model.weights()[0]), 2.0);
}

TEST(LinearRegressorTest, RejectsBadInput) {
  Rng rng(7);
  LinearRegressor model;
  EXPECT_FALSE(model.Fit(Matrix(3, 2), {1.0}, &rng).ok());
  EXPECT_FALSE(model.Fit(Matrix(), {}, &rng).ok());
}

TEST(LogisticRegressorTest, SeparatesBlobs) {
  Rng rng(8);
  const MLDataset train = BlobData(400, &rng);
  const MLDataset test = BlobData(100, &rng);
  LogisticRegressor model(2);
  ASSERT_TRUE(model.Fit(train.x, train.y, &rng).ok());
  EXPECT_GT(Accuracy(test.y, model.Predict(test.x)), 0.95);
}

TEST(LogisticRegressorTest, MulticlassSoftmax) {
  Rng rng(9);
  MLDataset ds;
  ds.classification = true;
  ds.num_classes = 3;
  ds.x = Matrix(600, 2);
  ds.y.resize(600);
  for (size_t i = 0; i < 600; ++i) {
    const size_t cls = i % 3;
    const double cx = cls == 0 ? -3.0 : (cls == 1 ? 0.0 : 3.0);
    ds.x(i, 0) = rng.Normal() * 0.5 + cx;
    ds.x(i, 1) = rng.Normal() * 0.5;
    ds.y[i] = static_cast<double>(cls);
  }
  LogisticRegressor model(3);
  ASSERT_TRUE(model.Fit(ds.x, ds.y, &rng).ok());
  EXPECT_GT(Accuracy(ds.y, model.Predict(ds.x)), 0.95);

  const Matrix proba = model.PredictProba(ds.x);
  for (size_t i = 0; i < 10; ++i) {
    double sum = 0;
    for (size_t k = 0; k < 3; ++k) sum += proba(i, k);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LogisticRegressorTest, RejectsOneClass) {
  Rng rng(10);
  LogisticRegressor model(1);
  EXPECT_FALSE(model.Fit(Matrix(2, 1), {0.0, 0.0}, &rng).ok());
}

TEST(DecisionTreeTest, SolvesXor) {
  Rng rng(11);
  const MLDataset train = XorData(500, &rng);
  const MLDataset test = XorData(200, &rng);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train.x, train.y, &rng).ok());
  EXPECT_GT(Accuracy(test.y, tree.Predict(test.x)), 0.9);
}

TEST(DecisionTreeTest, RegressionVarianceSplit) {
  Rng rng(12);
  const MLDataset ds = LinearRegressionData(400, &rng);
  TreeOptions options;
  options.classification = false;
  options.max_depth = 10;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(ds.x, ds.y, &rng).ok());
  EXPECT_GT(R2Score(ds.y, tree.Predict(ds.x)), 0.8);
}

TEST(DecisionTreeTest, MinSamplesLeafRegularizes) {
  Rng rng(13);
  const MLDataset ds = XorData(300, &rng);
  TreeOptions loose;
  TreeOptions strict = loose;
  strict.min_samples_leaf = 100;
  DecisionTree t1(loose);
  DecisionTree t2(strict);
  ASSERT_TRUE(t1.Fit(ds.x, ds.y, &rng).ok());
  ASSERT_TRUE(t2.Fit(ds.x, ds.y, &rng).ok());
  // The heavily regularized tree must fit the training data less tightly.
  EXPECT_GE(Accuracy(ds.y, t1.Predict(ds.x)),
            Accuracy(ds.y, t2.Predict(ds.x)));
}

TEST(DecisionTreeTest, PureNodeStops) {
  Rng rng(14);
  Matrix x(10, 1);
  std::vector<double> y(10, 1.0);  // single class
  for (size_t i = 0; i < 10; ++i) x(i, 0) = static_cast<double>(i);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y, &rng).ok());
  EXPECT_EQ(tree.Predict(x)[3], 1.0);
}

TEST(RandomForestTest, BeatsSingleShallowTree) {
  Rng rng(15);
  const MLDataset train = XorData(400, &rng);
  const MLDataset test = XorData(200, &rng);
  ForestOptions options;
  options.num_trees = 30;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(train.x, train.y, &rng).ok());
  EXPECT_GT(Accuracy(test.y, forest.Predict(test.x)), 0.85);
}

TEST(RandomForestTest, ImportancesIdentifyRelevantFeature) {
  Rng rng(16);
  MLDataset ds;
  ds.classification = true;
  ds.num_classes = 2;
  ds.x = Matrix(400, 4);
  ds.y.resize(400);
  for (size_t i = 0; i < 400; ++i) {
    for (size_t j = 0; j < 4; ++j) ds.x(i, j) = rng.Normal();
    ds.y[i] = ds.x(i, 2) > 0 ? 1.0 : 0.0;  // only feature 2 matters
  }
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(ds.x, ds.y, &rng).ok());
  const auto imp = forest.FeatureImportances();
  EXPECT_GT(imp[2], imp[0]);
  EXPECT_GT(imp[2], imp[1]);
  EXPECT_GT(imp[2], imp[3]);
  EXPECT_NEAR(imp[0] + imp[1] + imp[2] + imp[3], 1.0, 1e-9);
}

TEST(RandomForestTest, RegressionMean) {
  Rng rng(17);
  const MLDataset ds = LinearRegressionData(300, &rng);
  ForestOptions options;
  options.num_trees = 20;
  options.tree.classification = false;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(ds.x, ds.y, &rng).ok());
  EXPECT_GT(R2Score(ds.y, forest.Predict(ds.x)), 0.7);
}

TEST(MlpTest, SolvesXor) {
  Rng rng(18);
  const MLDataset train = XorData(600, &rng);
  const MLDataset test = XorData(200, &rng);
  MlpOptions options;
  options.hidden_dim = 16;
  options.epochs = 150;
  options.learning_rate = 0.05;
  MLP mlp(options);
  ASSERT_TRUE(mlp.Fit(train.x, train.y, &rng).ok());
  EXPECT_GT(Accuracy(test.y, mlp.Predict(test.x)), 0.9);
}

TEST(MlpTest, Regression) {
  Rng rng(19);
  const MLDataset ds = LinearRegressionData(500, &rng);
  MlpOptions options;
  options.classification = false;
  options.hidden_dim = 16;
  options.epochs = 100;
  MLP mlp(options);
  ASSERT_TRUE(mlp.Fit(ds.x, ds.y, &rng).ok());
  EXPECT_GT(R2Score(ds.y, mlp.Predict(ds.x)), 0.9);
}

TEST(MlpTest, DropoutStillLearns) {
  Rng rng(20);
  const MLDataset train = BlobData(300, &rng);
  MlpOptions options;
  options.dropout = 0.3;
  options.epochs = 80;
  MLP mlp(options);
  ASSERT_TRUE(mlp.Fit(train.x, train.y, &rng).ok());
  EXPECT_GT(Accuracy(train.y, mlp.Predict(train.x)), 0.9);
}

TEST(MlpTest, ProbabilitiesSumToOne) {
  Rng rng(21);
  const MLDataset ds = BlobData(100, &rng);
  MLP mlp;
  ASSERT_TRUE(mlp.Fit(ds.x, ds.y, &rng).ok());
  const Matrix proba = mlp.PredictProba(ds.x);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(proba(i, 0) + proba(i, 1), 1.0, 1e-9);
  }
}

TEST(GridSearchTest, BuildParamGridCartesian) {
  const auto grid = BuildParamGrid({{"a", {1, 2}}, {"b", {10, 20, 30}}});
  EXPECT_EQ(grid.size(), 6u);
}

TEST(GridSearchTest, PicksBetterRegularization) {
  Rng rng(22);
  const MLDataset ds = BlobData(200, &rng);
  const ModelFactory factory = [](const ParamSet& p) {
    ElasticNetOptions options;
    options.lambda = p.at("lambda");
    options.epochs = 40;
    return std::make_unique<LogisticRegressor>(2, options);
  };
  // Absurdly strong regularization must lose to a mild one.
  const auto result = GridSearchCV(
      factory, BuildParamGrid({{"lambda", {1e-4, 50.0}}}), ds, 3,
      Accuracy, /*higher_is_better=*/true, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->best_params.at("lambda"), 1e-4);
  EXPECT_GT(result->best_score, 0.9);
}

TEST(GridSearchTest, ValidatesInput) {
  Rng rng(23);
  const MLDataset ds = BlobData(10, &rng);
  const ModelFactory factory = [](const ParamSet&) {
    return std::make_unique<LogisticRegressor>(2);
  };
  EXPECT_FALSE(GridSearchCV(factory, {}, ds, 3, Accuracy, true, &rng).ok());
  EXPECT_FALSE(
      GridSearchCV(factory, {{}}, ds, 1, Accuracy, true, &rng).ok());
  EXPECT_FALSE(
      GridSearchCV(factory, {{}}, ds, 20, Accuracy, true, &rng).ok());
}

Table MixedTable() {
  Table t("t");
  Column num;
  num.name = "num";
  num.type = DataType::kDouble;
  num.values = {Value(1.0), Value::Null(), Value(3.0), Value(5.0)};
  Column cat;
  cat.name = "cat";
  cat.type = DataType::kString;
  cat.values = {Value("a"), Value("b"), Value("a"), Value("c")};
  Column label;
  label.name = "label";
  label.type = DataType::kString;
  label.values = {Value("yes"), Value("no"), Value("yes"), Value("no")};
  EXPECT_TRUE(t.AddColumn(num).ok());
  EXPECT_TRUE(t.AddColumn(cat).ok());
  EXPECT_TRUE(t.AddColumn(label).ok());
  return t;
}

TEST(OneHotFeaturizerTest, EncodesMixedColumns) {
  const Table t = MixedTable();
  OneHotFeaturizer featurizer;
  ASSERT_TRUE(featurizer.Fit(t, "label", true).ok());
  const auto ds = featurizer.Transform(t);
  ASSERT_TRUE(ds.ok());
  // num + num#missing + 3 categories.
  EXPECT_EQ(ds->NumFeatures(), 5u);
  EXPECT_EQ(ds->num_classes, 2u);
  // Null numeric imputed to mean (3.0) with missing flag set.
  EXPECT_DOUBLE_EQ(ds->x(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(ds->x(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(ds->x(0, 1), 0.0);
}

TEST(OneHotFeaturizerTest, UnseenCategoryIsAllZeros) {
  const Table train = MixedTable();
  OneHotFeaturizer featurizer;
  ASSERT_TRUE(featurizer.Fit(train, "label", true).ok());
  Table test = train.SubsetRows({0});
  test.set_name("t");
  test.mutable_column(1).values[0] = Value("zebra");
  const auto ds = featurizer.Transform(test);
  ASSERT_TRUE(ds.ok());
  for (size_t j = 2; j < 5; ++j) EXPECT_DOUBLE_EQ(ds->x(0, j), 0.0);
}

TEST(OneHotFeaturizerTest, CategoryCap) {
  Table t("t");
  Column c;
  c.name = "c";
  c.type = DataType::kString;
  Column y;
  y.name = "y";
  y.type = DataType::kString;
  for (int i = 0; i < 100; ++i) {
    c.values.push_back(Value("cat" + std::to_string(i)));
    y.values.push_back(Value(i % 2 == 0 ? "a" : "b"));
  }
  ASSERT_TRUE(t.AddColumn(c).ok());
  ASSERT_TRUE(t.AddColumn(y).ok());
  OneHotOptions options;
  options.max_categories = 10;
  OneHotFeaturizer featurizer(options);
  ASSERT_TRUE(featurizer.Fit(t, "y", true).ok());
  const auto ds = featurizer.Transform(t);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->NumFeatures(), 10u);
}

TEST(OneHotFeaturizerTest, RegressionTargetMustBeNumeric) {
  const Table t = MixedTable();
  OneHotFeaturizer featurizer;
  EXPECT_FALSE(featurizer.Fit(t, "cat", false).ok());
  EXPECT_TRUE(featurizer.Fit(t, "num", false).ok());
}

TEST(TargetEncoderTest, DeterministicSortedLabels) {
  Column target;
  target.values = {Value("b"), Value("a"), Value("c"), Value("a")};
  TargetEncoder encoder;
  ASSERT_TRUE(encoder.Fit(target, true).ok());
  EXPECT_EQ(encoder.num_classes(), 3u);
  EXPECT_DOUBLE_EQ(*encoder.Encode(Value("a")), 0.0);
  EXPECT_DOUBLE_EQ(*encoder.Encode(Value("b")), 1.0);
  EXPECT_DOUBLE_EQ(*encoder.Encode(Value("c")), 2.0);
  EXPECT_FALSE(encoder.Encode(Value("zzz")).ok());
}

TEST(TargetEncoderTest, RegressionPassThrough) {
  Column target;
  target.values = {Value(1.5), Value(2.5)};
  TargetEncoder encoder;
  ASSERT_TRUE(encoder.Fit(target, false).ok());
  EXPECT_DOUBLE_EQ(*encoder.Encode(Value(7.25)), 7.25);
  EXPECT_FALSE(encoder.Encode(Value("x")).ok());
}

TEST(FeatureSelectionTest, FindsInformativeFeatures) {
  Rng rng(24);
  MLDataset ds;
  ds.classification = true;
  ds.num_classes = 2;
  ds.x = Matrix(300, 6);
  ds.y.resize(300);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t j = 0; j < 6; ++j) ds.x(i, j) = rng.Normal();
    ds.y[i] = (ds.x(i, 1) + ds.x(i, 4)) > 0 ? 1.0 : 0.0;
  }
  const auto selected = SelectTopKFeatures(ds, 2, &rng);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 2u);
  EXPECT_TRUE((*selected)[0] == 1 || (*selected)[0] == 4);
  EXPECT_TRUE((*selected)[1] == 1 || (*selected)[1] == 4);
}

// Model sweep: every model type trains and predicts on the blob task.
class ModelSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelSweepTest, LearnsBlobs) {
  Rng rng(30 + GetParam());
  const MLDataset train = BlobData(300, &rng);
  const MLDataset test = BlobData(100, &rng);
  std::unique_ptr<Model> model;
  switch (GetParam()) {
    case 0:
      model = std::make_unique<LogisticRegressor>(2);
      break;
    case 1: {
      ForestOptions options;
      options.num_trees = 15;
      model = std::make_unique<RandomForest>(options);
      break;
    }
    default: {
      MlpOptions options;
      options.epochs = 60;
      model = std::make_unique<MLP>(options);
      break;
    }
  }
  ASSERT_TRUE(model->Fit(train.x, train.y, &rng).ok());
  EXPECT_GT(Accuracy(test.y, model->Predict(test.x)), 0.9);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSweepTest, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace leva
