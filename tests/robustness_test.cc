// Failure-injection and edge-case coverage: empty inputs, degenerate graphs,
// dirty/unicode data, determinism, and the datetime pathway.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/string_util.h"
#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "embed/walks.h"
#include "ml/featurize.h"
#include "table/csv.h"

namespace leva {
namespace {

TEST(DatetimeTest, ParsesDates) {
  EXPECT_EQ(*ParseIsoDatetime("1970-01-01"), 0);
  EXPECT_EQ(*ParseIsoDatetime("1970-01-02"), 86400);
  EXPECT_EQ(*ParseIsoDatetime("1970-01-01 00:00:01"), 1);
  EXPECT_EQ(*ParseIsoDatetime("1970-01-01T01:00:00"), 3600);
  EXPECT_EQ(*ParseIsoDatetime("2000-03-01"),
            *ParseIsoDatetime("2000-02-29") + 86400);  // leap year
}

TEST(DatetimeTest, RejectsMalformed) {
  EXPECT_FALSE(ParseIsoDatetime("not a date").has_value());
  EXPECT_FALSE(ParseIsoDatetime("2020-13-01").has_value());
  EXPECT_FALSE(ParseIsoDatetime("2020-02-30").has_value());
  EXPECT_FALSE(ParseIsoDatetime("2021-02-29").has_value());  // not leap
  EXPECT_FALSE(ParseIsoDatetime("2020-01-01 25:00:00").has_value());
  EXPECT_FALSE(ParseIsoDatetime("2020-01-01x").has_value());
  EXPECT_FALSE(ParseIsoDatetime("").has_value());
}

TEST(DatetimeTest, RoundTripFormat) {
  for (const char* s : {"2022-06-12 09:30:00", "1999-12-31 23:59:59",
                        "1970-01-01 00:00:00"}) {
    const auto epoch = ParseIsoDatetime(s);
    ASSERT_TRUE(epoch.has_value()) << s;
    EXPECT_EQ(FormatIsoDatetime(*epoch), s);
  }
}

TEST(CsvDatetimeTest, InfersDatetimeColumns) {
  const auto t = ReadCsvString(
      "ts,event\n2022-01-01,login\n2022-01-02 10:00:00,logout\n?,login\n",
      "log");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).type, DataType::kDatetime);
  EXPECT_TRUE(t->at(0, 0).is_int());
  EXPECT_TRUE(t->at(2, 0).is_null());
}

TEST(CsvDatetimeTest, RoundTripKeepsType) {
  const auto t = ReadCsvString("ts\n2022-01-01 10:00:00\n2023-05-05 00:00:00\n",
                               "log");
  ASSERT_TRUE(t.ok());
  const auto back = ReadCsvString(WriteCsvString(*t), "log");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->column(0).type, DataType::kDatetime);
  EXPECT_EQ(back->at(0, 0).as_int(), t->at(0, 0).as_int());
}

TEST(CsvDatetimeTest, TextifierBinsDatetime) {
  Database db;
  Table t("log");
  Column ts;
  ts.name = "ts";
  ts.type = DataType::kDatetime;
  for (int i = 0; i < 100; ++i) {
    ts.values.push_back(Value(static_cast<int64_t>(i) * 86400));
  }
  ASSERT_TRUE(t.AddColumn(ts).ok());
  ASSERT_TRUE(db.AddTable(t).ok());
  Textifier tx;
  ASSERT_TRUE(tx.Fit(db).ok());
  EXPECT_EQ(*tx.ClassOf("log", "ts"), ColumnClass::kDatetime);
  const auto tokens = tx.TransformCell("log", "ts", Value(int64_t{86400}));
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_TRUE(tokens->front().starts_with("ts#bin"));
}

TEST(RobustnessTest, EmptyDatabaseFailsGracefully) {
  Database db;
  LevaPipeline pipeline;
  EXPECT_FALSE(pipeline.Fit(db).ok());
}

TEST(RobustnessTest, SingleRowTableWorks) {
  Database db;
  Table t("one");
  Column c;
  c.name = "x";
  c.type = DataType::kString;
  c.values = {Value("lonely")};
  ASSERT_TRUE(t.AddColumn(c).ok());
  ASSERT_TRUE(db.AddTable(t).ok());
  LevaConfig config;
  config.embedding_dim = 4;
  config.method = EmbeddingMethod::kMatrixFactorization;
  LevaPipeline pipeline(config);
  // One row, no shared tokens: graph has one isolated node; embedding still
  // materializes without crashing.
  const Status s = pipeline.Fit(db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(pipeline.embedding().Has("one:0"));
}

TEST(RobustnessTest, AllNullColumn) {
  Database db;
  Table t("t");
  Column a;
  a.name = "a";
  a.type = DataType::kString;
  Column b;
  b.name = "b";
  b.type = DataType::kDouble;
  for (int i = 0; i < 20; ++i) {
    a.values.push_back(Value("v" + std::to_string(i % 4)));
    b.values.push_back(Value::Null());
  }
  ASSERT_TRUE(t.AddColumn(a).ok());
  ASSERT_TRUE(t.AddColumn(b).ok());
  ASSERT_TRUE(db.AddTable(t).ok());
  LevaConfig config;
  config.embedding_dim = 4;
  LevaPipeline pipeline(config);
  EXPECT_TRUE(pipeline.Fit(db).ok());
}

TEST(RobustnessTest, UnicodeTokensSurvive) {
  Database db;
  Table t("t");
  Column c;
  c.name = "city";
  c.type = DataType::kString;
  for (int i = 0; i < 10; ++i) {
    c.values.push_back(Value(i % 2 == 0 ? "Zürich" : "北京"));
  }
  ASSERT_TRUE(t.AddColumn(c).ok());
  ASSERT_TRUE(db.AddTable(t).ok());
  LevaConfig config;
  config.embedding_dim = 4;
  LevaPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Fit(db).ok());
  EXPECT_TRUE(pipeline.embedding().Has("Zürich"));
  EXPECT_TRUE(pipeline.embedding().Has("北京"));
}

TEST(RobustnessTest, DuplicateRowsDoNotBreakGraph) {
  Database db;
  Table t("t");
  Column c;
  c.name = "x";
  c.type = DataType::kString;
  for (int i = 0; i < 30; ++i) c.values.push_back(Value("same"));
  ASSERT_TRUE(t.AddColumn(c).ok());
  ASSERT_TRUE(db.AddTable(t).ok());
  LevaConfig config;
  config.embedding_dim = 4;
  LevaPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Fit(db).ok());
  // One value node connecting all 30 rows.
  EXPECT_EQ(pipeline.graph().stats().value_nodes, 1u);
  EXPECT_EQ(pipeline.graph().stats().edges, 30u);
}

TEST(RobustnessTest, DeterministicEmbeddings) {
  auto data = GenerateStudent(60, 0, 9);
  ASSERT_TRUE(data.ok());
  LevaConfig config;
  config.embedding_dim = 8;
  config.method = EmbeddingMethod::kRandomWalk;
  config.walks.epochs = 2;
  config.word2vec.epochs = 1;
  config.seed = 123;
  LevaPipeline p1(config);
  LevaPipeline p2(config);
  ASSERT_TRUE(p1.Fit(data->db).ok());
  ASSERT_TRUE(p2.Fit(data->db).ok());
  ASSERT_EQ(p1.embedding().size(), p2.embedding().size());
  const ArrayView<double> d1 = p1.embedding().data();
  const ArrayView<double> d2 = p2.embedding().data();
  ASSERT_EQ(d1.size(), d2.size());
  EXPECT_TRUE(std::equal(d1.begin(), d1.end(), d2.begin()));
}

TEST(RobustnessTest, IsolatedNodeWalksTerminate) {
  GraphBuilder builder;
  builder.AddNode(NodeKind::kRow, "t:0");  // no edges at all
  builder.RegisterTableRows("t", 0, 1);
  const LevaGraph g = std::move(builder).Build();
  WalkOptions options;
  options.epochs = 2;
  WalkGenerator generator(&g, options);
  Rng rng(1);
  const auto corpus = generator.Generate(&rng);
  ASSERT_TRUE(corpus.ok());
  for (size_t w = 0; w < corpus->size(); ++w) EXPECT_EQ((*corpus)[w].size(), 1u);
}

TEST(RobustnessTest, MalformedEmbeddingTextRejected) {
  EXPECT_FALSE(Embedding::FromText("").ok());
  EXPECT_FALSE(Embedding::FromText("2 3\nkey 1.0 2.0").ok());  // truncated
  EXPECT_FALSE(Embedding::FromText("abc").ok());
}

TEST(RobustnessTest, CsvFileRoundTrip) {
  auto data = GenerateStudent(20, 0, 10);
  ASSERT_TRUE(data.ok());
  const Table* expenses = data->db.FindTable("expenses");
  const std::string path = "/tmp/leva_test_expenses.csv";
  ASSERT_TRUE(WriteCsvFile(*expenses, path).ok());
  const auto back = ReadCsvFile(path, "expenses");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), expenses->NumRows());
  EXPECT_EQ(back->NumColumns(), expenses->NumColumns());
  std::remove(path.c_str());
}

TEST(RobustnessTest, CsvFileMissingPathFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/nope.csv", "t").ok());
  Table t("t");
  EXPECT_FALSE(WriteCsvFile(t, "/nonexistent/nope.csv").ok());
}

TEST(RobustnessTest, CsvFileErrorsNamePathAndCause) {
  const auto read = ReadCsvFile("/nonexistent/nope.csv", "t");
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("/nonexistent/nope.csv"),
            std::string::npos)
      << read.status().message();
  EXPECT_NE(read.status().message().find(std::strerror(ENOENT)),
            std::string::npos)
      << read.status().message();

  Table t("t");
  const Status write = WriteCsvFile(t, "/nonexistent/nope.csv");
  ASSERT_FALSE(write.ok());
  EXPECT_NE(write.message().find("/nonexistent/nope.csv"), std::string::npos)
      << write.message();
  EXPECT_NE(write.message().find(std::strerror(ENOENT)), std::string::npos)
      << write.message();
}

TEST(RobustnessTest, FeaturizeWithWrongTargetFails) {
  auto data = GenerateStudent(30, 0, 11);
  ASSERT_TRUE(data.ok());
  LevaConfig config;
  config.embedding_dim = 4;
  LevaPipeline pipeline(config);
  ASSERT_TRUE(pipeline.Fit(data->db).ok());
  TargetEncoder encoder;
  const Table* base = data->db.FindTable("expenses");
  ASSERT_TRUE(encoder.Fit(*base->FindColumn("total_expenses"), false).ok());
  EXPECT_FALSE(
      pipeline.Featurize(*base, "no_such_column", encoder, true).ok());
}

TEST(RobustnessTest, ReplicateHandlesNulls) {
  Database db;
  Table t("t");
  Column c;
  c.name = "x";
  c.type = DataType::kDouble;
  c.values = {Value(1.0), Value::Null(), Value(3.0)};
  ASSERT_TRUE(t.AddColumn(c).ok());
  ASSERT_TRUE(db.AddTable(t).ok());
  const auto replicated = ReplicateDatabase(db, 3);
  ASSERT_TRUE(replicated.ok());
  const Column* col = replicated->FindTable("t")->FindColumn("x");
  EXPECT_EQ(col->size(), 9u);
  EXPECT_TRUE(col->values[4].is_null());  // null in every copy
}

TEST(RobustnessTest, WideTableManyColumns) {
  Database db;
  Table t("wide");
  Rng rng(2);
  for (int c = 0; c < 60; ++c) {
    Column col;
    col.name = "c" + std::to_string(c);
    col.type = DataType::kDouble;
    for (int r = 0; r < 40; ++r) col.values.push_back(Value(rng.Normal()));
    ASSERT_TRUE(t.AddColumn(std::move(col)).ok());
  }
  ASSERT_TRUE(db.AddTable(t).ok());
  LevaConfig config;
  config.embedding_dim = 8;
  config.textify.bin_count = 4;
  LevaPipeline pipeline(config);
  EXPECT_TRUE(pipeline.Fit(db).ok());
}

}  // namespace
}  // namespace leva
