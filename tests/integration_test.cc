#include <gtest/gtest.h>

#include <map>

#include "baselines/experiment.h"
#include "baselines/leva_model.h"
#include "datagen/synthetic.h"
#include "embed/embedding.h"

namespace leva {
namespace {

// A compact classification task whose target depends on dimension-table
// attributes reachable only through joins — the setting the whole paper is
// about.
SyntheticDataset IntegrationTask(uint64_t seed) {
  SyntheticConfig c;
  c.base_rows = 500;
  c.classification = true;
  c.num_classes = 2;
  c.label_noise = 0.2;
  c.dims = {
      {.name = "facts", .rows = 60, .predictive_numeric = 2,
       .predictive_categorical = 1, .noise_numeric = 1,
       .noise_categorical = 1, .categories = 6, .parent = ""},
  };
  c.seed = seed;
  auto ds = GenerateSynthetic(c);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto task = PrepareTask(IntegrationTask(31), 0.25, 77);
    ASSERT_TRUE(task.ok()) << task.status().ToString();
    task_ = new ExperimentTask(std::move(task).value());
  }
  static void TearDownTestSuite() {
    delete task_;
    task_ = nullptr;
  }
  static ExperimentTask* task_;
};

ExperimentTask* EndToEndTest::task_ = nullptr;

TEST_F(EndToEndTest, FullBeatsBase) {
  const auto base = EvaluateTabularBaseline(
      *task_, TabularBaseline::kBase, 0, ModelKind::kRandomForest, 1);
  const auto full = EvaluateTabularBaseline(
      *task_, TabularBaseline::kFull, 0, ModelKind::kRandomForest, 1);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  // The paper's core premise: joined features help (Fig. 4).
  EXPECT_GT(*full, *base + 0.05);
}

TEST_F(EndToEndTest, LevaMfBeatsBase) {
  const auto base = EvaluateTabularBaseline(
      *task_, TabularBaseline::kBase, 0, ModelKind::kRandomForest, 1);
  LevaModel leva(FastLevaConfig(EmbeddingMethod::kMatrixFactorization));
  const auto emb = EvaluateEmbeddingModel(&leva, *task_,
                                          ModelKind::kRandomForest, 1);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(emb.ok()) << emb.status().ToString();
  // Leva must recover cross-table signal without knowing the joins (RQ1).
  EXPECT_GT(*emb, *base);
}

TEST_F(EndToEndTest, DiscDoesNotBeatFull) {
  const auto disc = EvaluateTabularBaseline(
      *task_, TabularBaseline::kDisc, 0, ModelKind::kRandomForest, 1);
  const auto full = EvaluateTabularBaseline(
      *task_, TabularBaseline::kFull, 0, ModelKind::kRandomForest, 1);
  ASSERT_TRUE(disc.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LE(*disc, *full + 0.03);
}

TEST_F(EndToEndTest, ClusteringEffectWithinEntities) {
  // Section 5.1: rows that reference the same dimension entity must embed
  // closer (median pairwise L1) than random rows.
  LevaModel leva(FastLevaConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(leva.Fit(task_->fit_db).ok());
  const Embedding& emb = leva.embedding();

  // All base rows are graph nodes, so index into the original table.
  const Table& train = *task_->data.db.FindTable("base");
  const size_t fk_col = *train.ColumnIndex("fk_facts");
  std::map<std::string, std::vector<size_t>> by_entity;
  for (size_t r = 0; r < train.NumRows(); ++r) {
    by_entity[train.at(r, fk_col).as_string()].push_back(r);
  }
  Rng rng(5);
  double within_sum = 0;
  double random_sum = 0;
  size_t groups = 0;
  for (const auto& [key, rows] : by_entity) {
    if (rows.size() < 2) continue;
    const auto a = emb.Get("base:" + std::to_string(rows[0]));
    const auto b = emb.Get("base:" + std::to_string(rows[1]));
    const size_t r1 = rng.UniformInt(train.NumRows());
    const size_t r2 = rng.UniformInt(train.NumRows());
    const auto c = emb.Get("base:" + std::to_string(r1));
    const auto d = emb.Get("base:" + std::to_string(r2));
    if (a.empty() || b.empty() || c.empty() || d.empty()) continue;
    within_sum += Embedding::L1Distance(a, b);
    random_sum += Embedding::L1Distance(c, d);
    ++groups;
    if (groups >= 100) break;
  }
  ASSERT_GT(groups, 20u);
  EXPECT_LT(within_sum, random_sum);
}

TEST_F(EndToEndTest, RwAlsoLearns) {
  const auto base = EvaluateTabularBaseline(
      *task_, TabularBaseline::kBase, 0, ModelKind::kLogistic, 1);
  LevaModel leva(FastLevaConfig(EmbeddingMethod::kRandomWalk));
  const auto emb =
      EvaluateEmbeddingModel(&leva, *task_, ModelKind::kLogistic, 1);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(emb.ok()) << emb.status().ToString();
  EXPECT_GT(*emb, *base - 0.02);
}

TEST(IntegrationRegressionTest, LevaBeatsBaseOnRegression) {
  SyntheticConfig c;
  c.base_rows = 400;
  c.classification = false;
  c.label_noise = 0.15;
  c.dims = {
      {.name = "facts", .rows = 50, .predictive_numeric = 2,
       .predictive_categorical = 1, .noise_numeric = 1,
       .noise_categorical = 0, .categories = 6, .parent = ""},
  };
  c.seed = 41;
  auto data = GenerateSynthetic(c);
  ASSERT_TRUE(data.ok());
  auto task = PrepareTask(std::move(*data), 0.25, 78);
  ASSERT_TRUE(task.ok());

  const auto base = EvaluateTabularBaseline(
      *task, TabularBaseline::kBase, 0, ModelKind::kElasticNet, 2);
  LevaModel leva(FastLevaConfig(EmbeddingMethod::kMatrixFactorization));
  const auto emb =
      EvaluateEmbeddingModel(&leva, *task, ModelKind::kElasticNet, 2);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(emb.ok()) << emb.status().ToString();
  // MAE: lower is better.
  EXPECT_LT(*emb, *base);
}

TEST(IntegrationMissingDataTest, VotingRemovesMissingTokens) {
  SyntheticConfig c;
  c.base_rows = 300;
  c.missing_rate = 0.25;
  c.dims = {
      {.name = "facts", .rows = 40, .predictive_numeric = 1,
       .predictive_categorical = 2, .noise_numeric = 0,
       .noise_categorical = 1, .categories = 6, .parent = ""},
      {.name = "extra", .rows = 40, .predictive_numeric = 0,
       .predictive_categorical = 2, .noise_numeric = 0,
       .noise_categorical = 1, .categories = 6, .parent = ""},
  };
  c.seed = 51;
  auto data = GenerateSynthetic(c);
  ASSERT_TRUE(data.ok());
  LevaModel leva(FastLevaConfig(EmbeddingMethod::kMatrixFactorization));
  ASSERT_TRUE(leva.Fit(data->db).ok());
  // "?" was injected across many attributes; the refinement must remove it.
  EXPECT_FALSE(leva.embedding().Has("?"));
}

}  // namespace
}  // namespace leva
