#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>

#include "common/io.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace leva {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

Status FailingFunction() { return Status::NotFound("gone"); }

Status PropagatingFunction() {
  LEVA_RETURN_IF_ERROR(FailingFunction());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagatingFunction().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  LEVA_ASSIGN_OR_RETURN(const int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterEven(6).ok());  // 6/2 = 3, odd
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRangeAndCoversAll) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(17);
  const auto p = rng.Permutation(50);
  std::set<size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(StringUtilTest, SplitBasics) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitNoDelimiter) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtilTest, ToLowerAndJoin) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2 "), -2.0);
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(StringUtilTest, ParseInt) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("4.2").has_value());
  EXPECT_FALSE(ParseInt("x").has_value());
}

TEST(StringUtilTest, MissingTokens) {
  EXPECT_TRUE(LooksLikeMissingToken(""));
  EXPECT_TRUE(LooksLikeMissingToken("?"));
  EXPECT_TRUE(LooksLikeMissingToken("NULL"));
  EXPECT_TRUE(LooksLikeMissingToken(" n/a "));
  EXPECT_TRUE(LooksLikeMissingToken("NaN"));
  EXPECT_FALSE(LooksLikeMissingToken("0"));
  EXPECT_FALSE(LooksLikeMissingToken("value"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
}

TEST(StageProfileTest, AccumulatesByName) {
  StageProfile profile;
  profile.Add("a", 1.0);
  profile.Add("b", 2.0);
  profile.Add("a", 0.5);
  ASSERT_EQ(profile.stages().size(), 2u);
  EXPECT_EQ(profile.stages()[0].first, "a");
  EXPECT_DOUBLE_EQ(profile.stages()[0].second, 1.5);
  EXPECT_DOUBLE_EQ(profile.TotalSeconds(), 3.5);
}

TEST(StageProfileTest, ScopedTimerAdds) {
  StageProfile profile;
  {
    ScopedStageTimer timer(&profile, "scope");
  }
  ASSERT_EQ(profile.stages().size(), 1u);
  EXPECT_GE(profile.stages()[0].second, 0.0);
}

TEST(Crc32cTest, MatchesKnownVector) {
  // RFC 3720 test vector for CRC32C.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ChainsAcrossCalls) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t chained = 0;
  for (size_t i = 0; i < data.size(); i += 7) {
    const size_t n = std::min<size_t>(7, data.size() - i);
    chained = Crc32c(data.data() + i, n, chained);
  }
  EXPECT_EQ(chained, whole);
}

TEST(BufferIoTest, RoundTripsAllTypes) {
  BufferWriter w;
  w.PutU8(0xAB);
  w.PutBool(true);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(UINT64_C(0x0123456789ABCDEF));
  w.PutFloat(1.5f);
  w.PutDouble(-2.25);
  w.PutString("hello");
  BufferReader r(w.data());
  uint8_t u8 = 0;
  bool b = false;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  float f = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetBool(&b).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetFloat(&f).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_TRUE(b);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, UINT64_C(0x0123456789ABCDEF));
  EXPECT_EQ(f, 1.5f);
  EXPECT_EQ(d, -2.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufferIoTest, RejectsReadsPastTheEnd) {
  BufferWriter w;
  w.PutU32(7);
  BufferReader r(w.data());
  uint64_t u64 = 0;
  EXPECT_FALSE(r.GetU64(&u64).ok());
}

TEST(BufferIoTest, RejectsCorruptStringLength) {
  // A string claiming to be far longer than the buffer must fail cleanly
  // instead of allocating or reading out of bounds.
  BufferWriter w;
  w.PutU64(UINT64_C(1) << 60);
  w.PutU8('x');
  BufferReader r(w.data());
  std::string s;
  EXPECT_FALSE(r.GetString(&s).ok());
}

TEST(AtomicWriteFileTest, WritesAndOverwrites) {
  const std::string path =
      std::string(::testing::TempDir()) + "/leva_atomic_write_test.bin";
  Env* env = Env::Default();
  ASSERT_TRUE(AtomicWriteFile(env, path, "first").ok());
  auto back = env->ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "first");
  ASSERT_TRUE(AtomicWriteFile(env, path, "second, longer contents").ok());
  back = env->ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "second, longer contents");
  EXPECT_TRUE(env->DeleteFile(path).ok());
  // The temp staging file must not linger.
  EXPECT_FALSE(env->FileExists(path + ".tmp"));
}

}  // namespace
}  // namespace leva
