// Crash-safety + differential suite for streaming updates: WAL-backed
// LevaPipeline::Update must (a) extend the served model deterministically,
// (b) survive a kill at every injected I/O step of the WAL append and of the
// post-update snapshot with recovery to a consistent acknowledged-update
// prefix, and (c) replay idempotently — a second recovery pass is a no-op
// and byte-identical to the first.
//
// Compaction note: folding delta segments into the base CSR is a pure
// in-memory transform; its only I/O is the compact-on-save inside
// SaveSnapshot. The post-update snapshot sweep below therefore IS the
// crash-mid-compaction sweep: every kill lands while the compacted layout is
// being written, and recovery must serve either the old (delta-free) or the
// new (compacted) model, never a hybrid.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/io.h"
#include "core/pipeline.h"
#include "core/update_log.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"

namespace leva {
namespace {

constexpr size_t kStudents = 132;
constexpr size_t kFitRows = 120;  // the last 12 rows arrive via Update

std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string unique = info == nullptr
                           ? std::string("unknown")
                           : std::string(info->test_suite_name()) + "_" +
                                 info->name();
  for (char& c : unique) {
    if (c == '/') c = '_';
  }
  return ::testing::TempDir() + "leva_update_" + unique + "_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + name;
}

LevaConfig TestConfig(EmbeddingMethod method) {
  LevaConfig config;
  config.method = method;
  config.embedding_dim = 8;
  config.walks.epochs = 3;
  config.walks.walk_length = 10;
  config.word2vec.epochs = 1;
  config.word2vec.deterministic = true;
  config.seed = 5;
  return config;
}

Table SliceRows(const Table& t, size_t begin, size_t end) {
  Table out(t.name());
  for (const Column& c : t.columns()) {
    Column col;
    col.name = c.name;
    col.type = c.type;
    col.values.assign(c.values.begin() + static_cast<ptrdiff_t>(begin),
                      c.values.begin() + static_cast<ptrdiff_t>(end));
    EXPECT_TRUE(out.AddColumn(std::move(col)).ok());
  }
  return out;
}

// The STUDENT dataset split in two: the model is fitted on the first
// kFitRows base rows, the remainder arrives as an Update batch. The
// dimension tables keep every row, so the late students' key tokens already
// have value nodes — the batch links new row nodes into the existing graph,
// the interesting case for warm refresh and resolver invalidation.
struct Fixture {
  SyntheticDataset ds;
  Database fit_db;
  const Table* full_base = nullptr;  // all kStudents rows
  Table batch;                       // rows [kFitRows, kStudents)
  TargetEncoder encoder;
};

Fixture MakeFixture() {
  Fixture f;
  auto ds = GenerateStudent(kStudents, 0, 3);
  EXPECT_TRUE(ds.ok());
  f.ds = std::move(ds).value();
  f.full_base = f.ds.db.FindTable(f.ds.base_table);
  EXPECT_NE(f.full_base, nullptr);
  f.fit_db = f.ds.db;
  auto idx = f.fit_db.TableIndex(f.ds.base_table);
  EXPECT_TRUE(idx.ok());
  f.fit_db.mutable_tables()[idx.value()] =
      SliceRows(*f.full_base, 0, kFitRows);
  f.batch = SliceRows(*f.full_base, kFitRows, kStudents);
  EXPECT_TRUE(
      f.encoder.Fit(*f.full_base->FindColumn(f.ds.target_column), true).ok());
  return f;
}

// Token-composed features of the FULL base table. Works against any state
// (pre- or post-update — no row nodes required), and discriminates them:
// the warm refresh rewrites touched value vectors, a full refit rewrites
// everything.
MLDataset ComposedOut(const LevaPipeline& p, const Fixture& f) {
  auto r = p.Featurize(*f.full_base, f.ds.target_column, f.encoder,
                       /*rows_in_graph=*/false);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// Row-node features of the full base table; valid only once every row —
// including the appended ones — has a node.
MLDataset RowNodeOut(const LevaPipeline& p, const Fixture& f) {
  auto r = p.Featurize(*f.full_base, f.ds.target_column, f.encoder,
                       /*rows_in_graph=*/true);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

bool SameBits(const MLDataset& a, const MLDataset& b) {
  return a.x.rows() == b.x.rows() && a.x.cols() == b.x.cols() &&
         std::memcmp(a.x.data().data(), b.x.data().data(),
                     a.x.data().size() * sizeof(double)) == 0 &&
         a.y == b.y && a.feature_names == b.feature_names;
}

void ExpectBitIdentical(const MLDataset& a, const MLDataset& b) {
  ASSERT_EQ(a.x.rows(), b.x.rows());
  ASSERT_EQ(a.x.cols(), b.x.cols());
  EXPECT_EQ(0, std::memcmp(a.x.data().data(), b.x.data().data(),
                           a.x.data().size() * sizeof(double)));
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.feature_names, b.feature_names);
}

std::string ReadAll(const std::string& path) {
  auto r = Env::Default()->ReadFileToString(path);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good());
}

using OpKind = FaultInjectionEnv::OpKind;

constexpr OpKind kAllOps[] = {OpKind::kAppend, OpKind::kSync, OpKind::kClose,
                              OpKind::kRename, OpKind::kSyncDir,
                              OpKind::kRead};

const char* OpName(OpKind k) {
  switch (k) {
    case OpKind::kAppend: return "append";
    case OpKind::kSync: return "sync";
    case OpKind::kClose: return "close";
    case OpKind::kRename: return "rename";
    case OpKind::kSyncDir: return "syncdir";
    case OpKind::kRead: return "read";
  }
  return "?";
}

// --- serving semantics -------------------------------------------------------

class UpdateServing : public ::testing::TestWithParam<EmbeddingMethod> {};

TEST_P(UpdateServing, AppendedRowsServeAndUpdateIsDeterministic) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(GetParam()));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());
  const size_t nodes_before = p.graph().NumNodes();
  const MLDataset before = ComposedOut(p, f);

  auto r = p.Update(f.batch);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const UpdateResult& res = r.value();
  EXPECT_EQ(res.rows_applied, kStudents - kFitRows);
  EXPECT_EQ(res.new_row_nodes, kStudents - kFitRows);
  EXPECT_GT(res.new_edges, 0u);
  if (GetParam() == EmbeddingMethod::kRandomWalk) {
    // Warm path: only the new + touched vectors were rewritten.
    EXPECT_FALSE(res.full_refit);
    EXPECT_GT(res.refreshed_vectors, 0u);
    EXPECT_LT(res.refreshed_vectors, p.graph().NumNodes());
  } else {
    // MF has no incremental form: compaction + full re-embed.
    EXPECT_TRUE(res.full_refit);
    EXPECT_TRUE(res.compacted);
    EXPECT_EQ(res.refreshed_vectors, p.graph().NumNodes());
  }
  EXPECT_GT(p.graph().NumNodes(), nodes_before);

  // Every row of the grown base table — appended ones included — now has a
  // servable row node, and the update visibly moved the composed features.
  const MLDataset in_graph = RowNodeOut(p, f);
  EXPECT_EQ(in_graph.x.rows(), kStudents);
  const MLDataset after = ComposedOut(p, f);
  ASSERT_FALSE(SameBits(before, after))
      << "update left the composed features untouched — the differential "
         "checks below would be vacuous";

  // Same fit + same batch on a second pipeline: bit-identical published
  // model (the refresh seed is a pure function of config seed and record
  // index, never of wall clock or address space).
  LevaPipeline q(TestConfig(GetParam()));
  ASSERT_TRUE(q.Fit(f.fit_db).ok());
  ASSERT_TRUE(q.Update(f.batch).ok());
  ExpectBitIdentical(after, ComposedOut(q, f));
  ExpectBitIdentical(in_graph, RowNodeOut(q, f));
}

INSTANTIATE_TEST_SUITE_P(Methods, UpdateServing,
                         ::testing::Values(EmbeddingMethod::kMatrixFactorization,
                                           EmbeddingMethod::kRandomWalk),
                         [](const auto& info) {
                           return info.param ==
                                          EmbeddingMethod::kMatrixFactorization
                                      ? "MF"
                                      : "RandomWalk";
                         });

TEST(UpdateTest, UpdateUnknownTableIsRejected) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());
  Table stranger("no_such_table");
  Column col;
  col.name = "x";
  col.values.push_back(Value(int64_t{1}));
  ASSERT_TRUE(stranger.AddColumn(std::move(col)).ok());
  const MLDataset before = ComposedOut(p, f);
  EXPECT_FALSE(p.Update(stranger).ok());
  // A rejected batch must not have touched the served model.
  ExpectBitIdentical(before, ComposedOut(p, f));
}

TEST(UpdateTest, SnapshotAfterUpdateRoundTripsAndRecordsWalPosition) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());

  const std::string wal_path = TempPath("upd.wal");
  auto wal = UpdateLog::Open(wal_path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE(p.Update(f.batch, wal.value().get()).ok());
  EXPECT_TRUE(p.graph().HasDelta());
  ASSERT_TRUE(wal.value()->Close().ok());

  const std::string snap = TempPath("upd.leva");
  ASSERT_TRUE(p.SaveSnapshot(snap).ok());

  // The snapshot compacts the delta on save and records the applied WAL
  // position, so the loaded model serves identically...
  LevaPipeline loaded;
  ASSERT_TRUE(loaded.LoadSnapshot(snap).ok());
  EXPECT_FALSE(loaded.graph().HasDelta());
  ExpectBitIdentical(RowNodeOut(p, f), RowNodeOut(loaded, f));
  ExpectBitIdentical(ComposedOut(p, f), ComposedOut(loaded, f));

  // ...and replaying the log against it is a no-op: every record is already
  // inside the snapshot's applied prefix.
  auto replayed = loaded.RecoverFromLog(wal_path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value(), 0u);
  ExpectBitIdentical(RowNodeOut(p, f), RowNodeOut(loaded, f));
}

TEST(UpdateTest, RecoveryReplaysTailAndIsIdempotent) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());
  const std::string base_snap = TempPath("base.leva");
  ASSERT_TRUE(p.SaveSnapshot(base_snap).ok());

  // Two acknowledged batches after the snapshot.
  const size_t half = kFitRows + (kStudents - kFitRows) / 2;
  const Table batch1 = SliceRows(*f.full_base, kFitRows, half);
  const Table batch2 = SliceRows(*f.full_base, half, kStudents);
  const std::string wal_path = TempPath("tail.wal");
  {
    auto wal = UpdateLog::Open(wal_path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(p.Update(batch1, wal.value().get()).ok());
    ASSERT_TRUE(p.Update(batch2, wal.value().get()).ok());
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  const MLDataset expected = RowNodeOut(p, f);

  // Crash-restart: load the pre-update snapshot and replay the tail. The
  // recovered model must be bit-identical to the one the live updates built.
  LevaPipeline r1;
  ASSERT_TRUE(r1.LoadSnapshot(base_snap).ok());
  auto n1 = r1.RecoverFromLog(wal_path);
  ASSERT_TRUE(n1.ok()) << n1.status().ToString();
  EXPECT_EQ(n1.value(), 2u);
  ExpectBitIdentical(expected, RowNodeOut(r1, f));

  // Idempotence, form 1: a second replay on the same pipeline applies
  // nothing and changes nothing.
  auto n2 = r1.RecoverFromLog(wal_path);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n2.value(), 0u);
  ExpectBitIdentical(expected, RowNodeOut(r1, f));

  // Idempotence, form 2: recovery run twice from scratch is byte-identical
  // to recovery run once.
  LevaPipeline r2;
  ASSERT_TRUE(r2.LoadSnapshot(base_snap).ok());
  ASSERT_TRUE(r2.RecoverFromLog(wal_path).ok());
  ASSERT_TRUE(r2.RecoverFromLog(wal_path).ok());
  ExpectBitIdentical(RowNodeOut(r1, f), RowNodeOut(r2, f));
  ExpectBitIdentical(ComposedOut(r1, f), ComposedOut(r2, f));
}

TEST(UpdateTest, TornTrailingRecordIsSkippedAndTruncatedOnReopen) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());
  const std::string base_snap = TempPath("base.leva");
  ASSERT_TRUE(p.SaveSnapshot(base_snap).ok());

  const size_t half = kFitRows + (kStudents - kFitRows) / 2;
  const Table batch1 = SliceRows(*f.full_base, kFitRows, half);
  const Table batch2 = SliceRows(*f.full_base, half, kStudents);
  const std::string wal_path = TempPath("torn.wal");
  uint64_t after_first = 0;
  {
    auto wal = UpdateLog::Open(wal_path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(p.Update(batch1, wal.value().get()).ok());
    after_first = wal.value()->end_offset();
    ASSERT_TRUE(p.Update(batch2, wal.value().get()).ok());
    ASSERT_TRUE(wal.value()->Close().ok());
  }

  // Tear the second record in half, as a crash mid-append would.
  const std::string bytes = ReadAll(wal_path);
  ASSERT_GT(bytes.size(), after_first + 4);
  WriteAll(wal_path, bytes.substr(0, (after_first + bytes.size()) / 2));

  auto replay = UpdateLog::Read(wal_path, UpdateLog::kHeaderSize);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay.value().records.size(), 1u);
  EXPECT_TRUE(replay.value().torn_tail);
  EXPECT_EQ(replay.value().end_offset, after_first);

  // Recovery applies exactly the acknowledged prefix: batch1 only.
  LevaPipeline only1(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(only1.Fit(f.fit_db).ok());
  ASSERT_TRUE(only1.Update(batch1).ok());
  LevaPipeline recovered;
  ASSERT_TRUE(recovered.LoadSnapshot(base_snap).ok());
  auto n = recovered.RecoverFromLog(wal_path);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u);
  ExpectBitIdentical(ComposedOut(only1, f), ComposedOut(recovered, f));

  // Reopening for append truncates the torn tail, and the batch can be
  // re-acknowledged cleanly on top of the surviving prefix.
  {
    auto wal = UpdateLog::Open(wal_path);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ(wal.value()->end_offset(), after_first);
    EXPECT_EQ(wal.value()->record_count(), 1u);
    ASSERT_TRUE(recovered.Update(batch2, wal.value().get()).ok());
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  auto full = UpdateLog::Read(wal_path, UpdateLog::kHeaderSize);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().records.size(), 2u);
  EXPECT_FALSE(full.value().torn_tail);
  ExpectBitIdentical(RowNodeOut(p, f), RowNodeOut(recovered, f));
}

TEST(UpdateTest, CorruptRecordChecksumTerminatesReplayCleanly) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());
  const std::string wal_path = TempPath("crc.wal");
  {
    auto wal = UpdateLog::Open(wal_path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(p.Update(f.batch, wal.value().get()).ok());
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  std::string bytes = ReadAll(wal_path);
  bytes[bytes.size() - 1] ^= 0x10;  // flip a payload bit
  WriteAll(wal_path, bytes);
  auto replay = UpdateLog::Read(wal_path, UpdateLog::kHeaderSize);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records.size(), 0u);
  EXPECT_TRUE(replay.value().torn_tail);
}

// --- fault injection ---------------------------------------------------------

// Kill-at-every-I/O-step over the WAL open+append path. Whatever step dies,
// a restart (clean reopen + replay against the pre-update snapshot) must
// serve exactly the base model or exactly the updated one — a record is
// either fully durable or invisible, never torn into the model.
TEST(UpdateFaultTest, WalKillAtEveryIoStepRecoversAcknowledgedPrefix) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());
  const std::string base_snap = TempPath("base.leva");
  ASSERT_TRUE(p.SaveSnapshot(base_snap).ok());
  const MLDataset base_out = ComposedOut(p, f);

  LevaPipeline updated(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(updated.Fit(f.fit_db).ok());
  ASSERT_TRUE(updated.Update(f.batch).ok());
  const MLDataset updated_out = ComposedOut(updated, f);
  ASSERT_FALSE(SameBits(base_out, updated_out));

  // Learn the fault points of one open+append (fresh file, no Close).
  FaultInjectionEnv probe;
  size_t probe_ops[FaultInjectionEnv::kNumOpKinds];
  {
    const std::string probe_path = TempPath("probe.wal");
    auto wal = UpdateLog::Open(probe_path, &probe);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    LevaPipeline fresh;
    ASSERT_TRUE(fresh.LoadSnapshot(base_snap).ok());
    ASSERT_TRUE(fresh.Update(f.batch, wal.value().get()).ok());
    for (const OpKind kind : kAllOps) {
      probe_ops[static_cast<size_t>(kind)] = probe.ops(kind);
    }
  }
  ASSERT_GT(probe_ops[static_cast<size_t>(OpKind::kAppend)], 0u);
  ASSERT_GT(probe_ops[static_cast<size_t>(OpKind::kSync)], 0u);

  for (const auto append_mode : {FaultInjectionEnv::AppendFault::kFailCleanly,
                                 FaultInjectionEnv::AppendFault::kTornWrite}) {
    for (const OpKind kind : kAllOps) {
      for (size_t nth = 1; nth <= probe_ops[static_cast<size_t>(kind)];
           ++nth) {
        SCOPED_TRACE(std::string(OpName(kind)) + " #" + std::to_string(nth) +
                     (append_mode == FaultInjectionEnv::AppendFault::kTornWrite
                          ? " (torn)"
                          : ""));
        const std::string wal_path =
            TempPath("sweep_" + std::string(OpName(kind)) + "_" +
                     std::to_string(nth) +
                     (append_mode ==
                              FaultInjectionEnv::AppendFault::kTornWrite
                          ? "_torn"
                          : "_clean") +
                     ".wal");
        FaultInjectionEnv env;
        env.set_append_fault(append_mode);
        env.FailAtOp(kind, nth);

        LevaPipeline victim;
        ASSERT_TRUE(victim.LoadSnapshot(base_snap).ok());
        bool update_ok = false;
        {
          auto wal = UpdateLog::Open(wal_path, &env);
          if (wal.ok()) {
            update_ok = victim.Update(f.batch, wal.value().get()).ok();
          }
        }
        EXPECT_FALSE(update_ok);  // the armed fault fires inside the WAL I/O
        EXPECT_TRUE(env.crashed());
        // A failed append is not acknowledged, so the served model is
        // untouched.
        ExpectBitIdentical(base_out, ComposedOut(victim, f));

        // "Restart": replay whatever the crash made durable.
        LevaPipeline recovered;
        ASSERT_TRUE(recovered.LoadSnapshot(base_snap).ok());
        auto n = recovered.RecoverFromLog(wal_path);
        ASSERT_TRUE(n.ok()) << n.status().ToString();
        EXPECT_LE(n.value(), 1u);
        const MLDataset out = ComposedOut(recovered, f);
        const bool is_base = SameBits(out, base_out);
        const bool is_updated = SameBits(out, updated_out);
        EXPECT_TRUE(is_base || is_updated)
            << "recovery produced neither the base nor the updated model";
        EXPECT_EQ(is_updated, n.value() == 1u);
      }
    }
  }
}

// After a torn WAL crash, a clean reopen truncates the tail and the same
// batch can be re-acknowledged; recovery then yields exactly the updated
// model.
TEST(UpdateFaultTest, RetryAfterWalCrashSucceeds) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());
  const std::string base_snap = TempPath("base.leva");
  ASSERT_TRUE(p.SaveSnapshot(base_snap).ok());
  ASSERT_TRUE(p.Update(f.batch).ok());
  const MLDataset updated_out = ComposedOut(p, f);

  const std::string wal_path = TempPath("retry.wal");
  {
    FaultInjectionEnv env;
    env.set_append_fault(FaultInjectionEnv::AppendFault::kTornWrite);
    env.FailAtOp(OpKind::kAppend, 2);  // #1 writes the magic, #2 the record
    auto wal = UpdateLog::Open(wal_path, &env);
    ASSERT_TRUE(wal.ok());
    LevaPipeline victim;
    ASSERT_TRUE(victim.LoadSnapshot(base_snap).ok());
    EXPECT_FALSE(victim.Update(f.batch, wal.value().get()).ok());
  }

  // Restart: reopen (truncating the torn record) and retry the batch.
  LevaPipeline retry;
  ASSERT_TRUE(retry.LoadSnapshot(base_snap).ok());
  ASSERT_TRUE(retry.RecoverFromLog(wal_path).ok());
  {
    auto wal = UpdateLog::Open(wal_path);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ(wal.value()->record_count(), 0u);
    ASSERT_TRUE(retry.Update(f.batch, wal.value().get()).ok());
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  ExpectBitIdentical(updated_out, ComposedOut(retry, f));

  LevaPipeline recovered;
  ASSERT_TRUE(recovered.LoadSnapshot(base_snap).ok());
  auto n = recovered.RecoverFromLog(wal_path);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u);
  ExpectBitIdentical(updated_out, ComposedOut(recovered, f));
}

// Kill-at-every-I/O-step over the post-update snapshot — the save that folds
// the delta segments into a compacted base CSR. Every kill must leave the
// previous (pre-update) snapshot loadable, and pre-update + WAL replay must
// reconstruct the updated model exactly. This is the crash-mid-compaction
// matrix: the compacted layout is what the interrupted save was writing.
TEST(UpdateFaultTest, PostUpdateSnapshotKillAtEveryIoStep) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());
  const std::string snap = TempPath("snap.leva");
  ASSERT_TRUE(p.SaveSnapshot(snap).ok());
  const std::string base_bytes = ReadAll(snap);
  const MLDataset base_out = ComposedOut(p, f);

  const std::string wal_path = TempPath("snap.wal");
  {
    auto wal = UpdateLog::Open(wal_path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(p.Update(f.batch, wal.value().get()).ok());
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  ASSERT_TRUE(p.graph().HasDelta());
  const MLDataset updated_out = ComposedOut(p, f);
  ASSERT_FALSE(SameBits(base_out, updated_out));

  FaultInjectionEnv probe;
  ASSERT_TRUE(p.SaveSnapshot(snap, &probe).ok());

  for (const OpKind kind : kAllOps) {
    if (probe.ops(kind) == 0) continue;
    // Stride the appends (early/mid/late) to keep the sweep fast under
    // sanitizers; commit-step kinds have few ops and are swept exhaustively.
    std::vector<size_t> nths = {1, probe.ops(kind)};
    for (size_t nth = 2; nth < probe.ops(kind); nth += 3) nths.push_back(nth);
    for (const size_t nth : nths) {
      if (nth == 0 || nth > probe.ops(kind)) continue;
      SCOPED_TRACE(std::string(OpName(kind)) + " #" + std::to_string(nth));
      WriteAll(snap, base_bytes);  // fresh previous snapshot
      FaultInjectionEnv env;
      env.set_append_fault(FaultInjectionEnv::AppendFault::kTornWrite);
      env.FailAtOp(kind, nth);
      EXPECT_FALSE(p.SaveSnapshot(snap, &env).ok());
      EXPECT_TRUE(env.crashed());

      // "Restart": the snapshot must load as exactly one complete model...
      LevaPipeline recovered;
      const Status load = recovered.LoadSnapshot(snap);
      ASSERT_TRUE(load.ok())
          << "crash left an unloadable snapshot: " << load.ToString();
      const MLDataset out = ComposedOut(recovered, f);
      const bool is_base = SameBits(out, base_out);
      const bool is_updated = SameBits(out, updated_out);
      EXPECT_TRUE(is_base || is_updated)
          << "crashed save left neither the old nor the new model";

      // ...and replaying the WAL on top must land on the updated model
      // regardless of which snapshot survived (idempotent replay: 0 records
      // when the new snapshot's applied offset already covers the log).
      auto n = recovered.RecoverFromLog(wal_path);
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      EXPECT_EQ(n.value(), is_base ? 1u : 0u);
      ExpectBitIdentical(updated_out, ComposedOut(recovered, f));
    }
  }
}

// Read-side faults (satellite of the same methodology): a kill during WAL
// replay must fail cleanly, leave the incumbent model serving, and succeed
// on retry after the "restart".
TEST(UpdateFaultTest, ReadFaultDuringReplayFailsCleanlyAndRetrySucceeds) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());
  const std::string base_snap = TempPath("base.leva");
  ASSERT_TRUE(p.SaveSnapshot(base_snap).ok());
  const MLDataset base_out = ComposedOut(p, f);
  const std::string wal_path = TempPath("read.wal");
  {
    auto wal = UpdateLog::Open(wal_path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(p.Update(f.batch, wal.value().get()).ok());
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  const MLDataset updated_out = ComposedOut(p, f);

  LevaPipeline recovered;
  ASSERT_TRUE(recovered.LoadSnapshot(base_snap).ok());
  FaultInjectionEnv env;
  env.FailAtOp(OpKind::kRead, 1);
  auto n = recovered.RecoverFromLog(wal_path, &env);
  EXPECT_FALSE(n.ok());
  EXPECT_TRUE(env.crashed());
  // The failed replay must not have published anything.
  ExpectBitIdentical(base_out, ComposedOut(recovered, f));

  env.Heal();
  auto retry = recovered.RecoverFromLog(wal_path, &env);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.value(), 1u);
  ExpectBitIdentical(updated_out, ComposedOut(recovered, f));

  // Reopening the log for append is also a read fault point (the scan of the
  // existing file): it too must fail cleanly and succeed after healing.
  FaultInjectionEnv env2;
  env2.FailAtOp(OpKind::kRead, 1);
  EXPECT_FALSE(UpdateLog::Open(wal_path, &env2).ok());
  env2.Heal();
  auto reopened = UpdateLog::Open(wal_path, &env2);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->record_count(), 1u);
}

// --- reload/update race (runs under TSan in CI) ------------------------------

// ReloadSnapshot racing an in-flight Update: every Featurize — concurrent or
// final — must serve one COMPLETE model (the loaded snapshot or snapshot +
// batch), never a half-applied delta. The two reachable models are known
// bit-exactly up front, so membership is the whole assertion.
TEST(UpdateRaceTest, ReloadRacingUpdateAlwaysServesACompleteModel) {
  const Fixture f = MakeFixture();
  LevaPipeline p(TestConfig(EmbeddingMethod::kRandomWalk));
  ASSERT_TRUE(p.Fit(f.fit_db).ok());
  const std::string snap = TempPath("race.leva");
  ASSERT_TRUE(p.SaveSnapshot(snap).ok());
  const MLDataset base_out = ComposedOut(p, f);

  // The update is deterministic, so the post-update model is known exactly
  // whether it applies to the fitted state or a freshly reloaded one (they
  // are bit-identical).
  const MLDataset updated_out = [&] {
    LevaPipeline q;
    EXPECT_TRUE(q.LoadSnapshot(snap).ok());
    EXPECT_TRUE(q.Update(f.batch).ok());
    return ComposedOut(q, f);
  }();
  ASSERT_FALSE(SameBits(base_out, updated_out));

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread reloader([&] {
    for (int i = 0; i < 6; ++i) {
      if (!p.ReloadSnapshot(snap).ok()) ++bad;
    }
  });
  std::thread updater([&] {
    if (!p.Update(f.batch).ok()) ++bad;
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const MLDataset out = ComposedOut(p, f);
      if (!SameBits(out, base_out) && !SameBits(out, updated_out)) ++bad;
    }
  });
  reloader.join();
  updater.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(bad.load(), 0) << "a concurrent Featurize saw a model that is "
                              "neither complete serving state";

  // The final state is whichever publish won — but always a complete one.
  const MLDataset final_out = ComposedOut(p, f);
  EXPECT_TRUE(SameBits(final_out, base_out) ||
              SameBits(final_out, updated_out));
}

}  // namespace
}  // namespace leva
