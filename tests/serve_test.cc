// Serving subsystem suite: wire-protocol round trips and robustness against
// corrupt frames, batcher coalescing/backpressure semantics, and the full
// daemon loop — differential bit-identity of FEATURIZE responses against the
// offline Featurize path, including across mid-load hot RELOADs (the
// ServeRaceTest / LogRaceTest suites are the ones CI runs under TSan).
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace leva::serve {
namespace {

std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string unique = info == nullptr
                           ? std::string("unknown")
                           : std::string(info->test_suite_name()) + "_" +
                                 info->name();
  for (char& c : unique) {
    if (c == '/') c = '_';
  }
  return ::testing::TempDir() + "leva_serve_" + unique + "_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + name;
}

LevaConfig TestConfig(uint64_t seed) {
  LevaConfig config;
  config.method = EmbeddingMethod::kMatrixFactorization;
  config.embedding_dim = 8;
  config.word2vec.deterministic = true;
  config.seed = seed;
  return config;
}

// --- protocol ---------------------------------------------------------------

TEST(ProtocolTest, FrameRoundTripAndPartialBuffers) {
  const std::string payload = "hello leva";
  const std::string frame = EncodeFrame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());

  // Every strict prefix is "keep reading", never an error.
  for (size_t n = 0; n < frame.size(); ++n) {
    const auto partial = DecodeFrame(std::string_view(frame).substr(0, n));
    ASSERT_TRUE(partial.ok()) << n;
    EXPECT_FALSE(partial->complete) << n;
  }
  const auto full = DecodeFrame(frame);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->complete);
  EXPECT_EQ(full->payload, payload);
  EXPECT_EQ(full->consumed, frame.size());

  // Two pipelined frames decode in sequence.
  const std::string two = frame + EncodeFrame("second");
  const auto first = DecodeFrame(two);
  ASSERT_TRUE(first.ok() && first->complete);
  const auto second =
      DecodeFrame(std::string_view(two).substr(first->consumed));
  ASSERT_TRUE(second.ok() && second->complete);
  EXPECT_EQ(second->payload, "second");
}

TEST(ProtocolTest, OversizedLengthPrefixIsCorruption) {
  BufferWriter w;
  w.PutU32(kMaxFramePayload + 1);
  w.PutU32(0);
  const std::string header = w.Release();
  const auto r = DecodeFrame(header);
  EXPECT_FALSE(r.ok());  // corruption, not an allocation request
}

TEST(ProtocolTest, ChecksumMismatchIsCorruption) {
  std::string frame = EncodeFrame("payload bytes");
  frame.back() ^= 0x40;
  const auto r = DecodeFrame(frame);
  EXPECT_FALSE(r.ok());
}

Table MixedTable() {
  Table t("mixed");
  Column ints{"i", DataType::kInt, {Value(int64_t{4}), Value::Null()}};
  Column doubles{"d", DataType::kDouble, {Value(2.5), Value(-0.0)}};
  Column strings{"s", DataType::kString, {Value("a b"), Value("")}};
  Column times{"ts",
               DataType::kDatetime,
               {Value(int64_t{1600000000}), Value::Null()}};
  EXPECT_TRUE(t.AddColumn(std::move(ints)).ok());
  EXPECT_TRUE(t.AddColumn(std::move(doubles)).ok());
  EXPECT_TRUE(t.AddColumn(std::move(strings)).ok());
  EXPECT_TRUE(t.AddColumn(std::move(times)).ok());
  return t;
}

TEST(ProtocolTest, TableRoundTripPreservesTypesAndCells) {
  const Table t = MixedTable();
  BufferWriter w;
  EncodeTable(t, &w);
  const std::string bytes = w.Release();
  BufferReader r(bytes);
  Table out;
  ASSERT_TRUE(DecodeTable(&r, &out).ok());
  ASSERT_EQ(out.NumColumns(), t.NumColumns());
  ASSERT_EQ(out.NumRows(), t.NumRows());
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    EXPECT_EQ(out.column(c).name, t.column(c).name);
    EXPECT_EQ(out.column(c).type, t.column(c).type);
    for (size_t row = 0; row < t.NumRows(); ++row) {
      EXPECT_TRUE(out.at(row, c) == t.at(row, c)) << c << "," << row;
    }
  }
}

TEST(ProtocolTest, FeaturizeRequestRoundTrip) {
  FeaturizeRequest req;
  req.request_id = 42;
  req.rows_in_graph = true;
  req.target_column = "label";
  req.rows = MixedTable();
  const std::string payload = EncodeFeaturizeRequest(req);

  BufferReader r(payload);
  RequestHeader header;
  ASSERT_TRUE(DecodeRequestHeader(&r, &header).ok());
  EXPECT_EQ(header.opcode, Opcode::kFeaturize);
  EXPECT_EQ(header.request_id, 42u);
  FeaturizeRequest out;
  ASSERT_TRUE(DecodeFeaturizeBody(&r, &out).ok());
  EXPECT_TRUE(out.rows_in_graph);
  EXPECT_EQ(out.target_column, "label");
  EXPECT_EQ(out.rows.name(), "mixed");
  EXPECT_EQ(out.rows.NumRows(), req.rows.NumRows());
}

TEST(ProtocolTest, CorruptCountsRejectedWithoutHugeAllocations) {
  // A table body whose column count claims more headers than bytes remain.
  BufferWriter w;
  w.PutU32(0x00ffffff);
  const std::string bytes = w.Release();
  BufferReader r(bytes);
  Table out;
  EXPECT_FALSE(DecodeTable(&r, &out).ok());

  // Same for the row count.
  BufferWriter w2;
  w2.PutU32(1);
  w2.PutString("c");
  w2.PutU8(static_cast<uint8_t>(DataType::kInt));
  w2.PutU32(0x00ffffff);
  const std::string bytes2 = w2.Release();
  BufferReader r2(bytes2);
  EXPECT_FALSE(DecodeTable(&r2, &out).ok());
}

TEST(ProtocolTest, ResponsesRoundTrip) {
  DecodedResponse out;
  ASSERT_TRUE(DecodeResponse(EncodeOkResponse(Opcode::kPing, 7), &out).ok());
  EXPECT_EQ(out.opcode, Opcode::kPing);
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_TRUE(out.status.ok());

  ASSERT_TRUE(DecodeResponse(
                  EncodeErrorResponse(Opcode::kFeaturize, 9,
                                      Status::ResourceExhausted("full")),
                  &out)
                  .ok());
  EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(out.status.message(), "full");

  const std::vector<double> features = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  ASSERT_TRUE(
      DecodeResponse(EncodeFeaturizeResponse(3, 2, 3, features.data()), &out)
          .ok());
  EXPECT_EQ(out.rows, 2u);
  EXPECT_EQ(out.width, 3u);
  EXPECT_EQ(out.features, features);

  const std::vector<std::pair<std::string, double>> fields = {
      {"uptime_seconds", 1.5}, {"requests_ping", 3.0}};
  ASSERT_TRUE(DecodeResponse(EncodeStatsResponse(4, fields), &out).ok());
  EXPECT_EQ(out.stats, fields);
}

// --- batcher ----------------------------------------------------------------

// A deterministic fake executor: features identify the exact input rows, so
// slicing bugs surface as wrong bits; calls record their batch sizes.
struct FakeExec {
  std::mutex mu;
  std::vector<size_t> call_rows;
  std::vector<Completion> completions;

  RequestBatcher::Executor executor() {
    return [this](Table rows, std::string, bool) -> Result<MLDataset> {
      MLDataset ds;
      ds.x = Matrix(rows.NumRows(), 2);
      for (size_t r = 0; r < rows.NumRows(); ++r) {
        ds.x(r, 0) = static_cast<double>(rows.column(0).values[r].as_int());
        ds.x(r, 1) = 0.5;
      }
      std::lock_guard<std::mutex> lock(mu);
      call_rows.push_back(rows.NumRows());
      return ds;
    };
  }
  RequestBatcher::CompletionSink sink() {
    return [this](std::vector<Completion> batch) {
      std::lock_guard<std::mutex> lock(mu);
      for (Completion& c : batch) completions.push_back(std::move(c));
    };
  }
};

FeaturizeJob MakeJob(uint64_t id, int64_t first_value, size_t rows,
                     const char* column = "v", bool in_graph = false) {
  FeaturizeJob job;
  job.conn_id = 1;
  job.request.request_id = id;
  job.request.rows_in_graph = in_graph;
  Column c{column, DataType::kInt, {}};
  for (size_t r = 0; r < rows; ++r) {
    c.values.push_back(Value(first_value + static_cast<int64_t>(r)));
  }
  Table t("jobs");
  EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
  job.request.rows = std::move(t);
  return job;
}

TEST(BatcherTest, CoalescesSameSchemaAndSlicesPerRequest) {
  FakeExec fake;
  BatcherOptions opts;
  opts.max_batch_rows = 8;
  opts.max_delay_us = 0;
  RequestBatcher batcher(opts, fake.executor(), fake.sink(), nullptr);
  // Enqueue before Start so the dispatcher sees one full queue.
  for (uint64_t j = 0; j < 4; ++j) {
    ASSERT_TRUE(batcher.TryEnqueue(
        MakeJob(/*id=*/j, /*first_value=*/static_cast<int64_t>(j) * 10, 2)));
  }
  batcher.Start();
  batcher.Stop();

  ASSERT_EQ(fake.call_rows, std::vector<size_t>{8})
      << "4 same-schema requests must execute as one blocked-gather batch";
  ASSERT_EQ(fake.completions.size(), 4u);
  for (const Completion& c : fake.completions) {
    DecodedResponse r;
    ASSERT_TRUE(DecodeResponse(c.payload, &r).ok());
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_EQ(r.rows, 2u);
    ASSERT_EQ(r.width, 2u);
    // Row values were id*10 and id*10+1 — the slice must be this job's rows.
    EXPECT_EQ(r.features[0], static_cast<double>(c.request_id * 10));
    EXPECT_EQ(r.features[2], static_cast<double>(c.request_id * 10 + 1));
  }
}

TEST(BatcherTest, SchemaChangeAndRowBudgetCutBatches) {
  FakeExec fake;
  BatcherOptions opts;
  opts.max_batch_rows = 8;
  opts.max_delay_us = 0;
  RequestBatcher batcher(opts, fake.executor(), fake.sink(), nullptr);
  ASSERT_TRUE(batcher.TryEnqueue(MakeJob(0, 0, 2)));
  ASSERT_TRUE(batcher.TryEnqueue(MakeJob(1, 10, 2)));
  ASSERT_TRUE(batcher.TryEnqueue(MakeJob(2, 20, 2, "other_column")));
  ASSERT_TRUE(batcher.TryEnqueue(MakeJob(3, 30, 2)));
  batcher.Start();
  batcher.Stop();
  // The schema change cuts after the first two; each later job stands alone.
  EXPECT_EQ(fake.call_rows, (std::vector<size_t>{4, 2, 2}));
  EXPECT_EQ(fake.completions.size(), 4u);
}

TEST(BatcherTest, RowsInGraphRequestsNeverCoalesce) {
  FakeExec fake;
  BatcherOptions opts;
  opts.max_batch_rows = 64;
  opts.max_delay_us = 0;
  RequestBatcher batcher(opts, fake.executor(), fake.sink(), nullptr);
  for (uint64_t j = 0; j < 3; ++j) {
    ASSERT_TRUE(batcher.TryEnqueue(
        MakeJob(j, static_cast<int64_t>(j) * 10, 2, "v", /*in_graph=*/true)));
  }
  batcher.Start();
  batcher.Stop();
  EXPECT_EQ(fake.call_rows, (std::vector<size_t>{2, 2, 2}))
      << "positional row-node requests must execute as singleton batches";
}

TEST(BatcherTest, AdmissionBoundRejectsInsteadOfBuffering) {
  FakeExec fake;
  BatcherOptions opts;
  opts.max_pending_rows = 4;
  RequestBatcher batcher(opts, fake.executor(), fake.sink(), nullptr);
  EXPECT_TRUE(batcher.TryEnqueue(MakeJob(0, 0, 2)));
  EXPECT_FALSE(batcher.TryEnqueue(MakeJob(1, 10, 3)))
      << "2 pending + 3 arriving exceeds the 4-row bound";
  EXPECT_TRUE(batcher.TryEnqueue(MakeJob(2, 20, 2)));
  // A request larger than the bound can never be admitted.
  EXPECT_FALSE(batcher.TryEnqueue(MakeJob(3, 30, 5)));
  batcher.Start();
  batcher.Stop();
  EXPECT_EQ(fake.completions.size(), 2u);
}

TEST(BatcherTest, StopDrainsAdmittedWorkAndRejectsNewWork) {
  FakeExec fake;
  BatcherOptions opts;
  opts.max_batch_rows = 4;
  RequestBatcher batcher(opts, fake.executor(), fake.sink(), nullptr);
  for (uint64_t j = 0; j < 6; ++j) {
    ASSERT_TRUE(batcher.TryEnqueue(MakeJob(j, 0, 1)));
  }
  batcher.Start();
  batcher.Stop();
  EXPECT_EQ(fake.completions.size(), 6u)
      << "every admitted request must complete during drain";
  EXPECT_FALSE(batcher.TryEnqueue(MakeJob(9, 0, 1)));
}

TEST(BatcherTest, ExecutorErrorsFanOutPerRequest) {
  FakeExec fake;
  RequestBatcher batcher(
      BatcherOptions{},
      [](Table, std::string, bool) -> Result<MLDataset> {
        return Status::Internal("model exploded");
      },
      fake.sink(), nullptr);
  ASSERT_TRUE(batcher.TryEnqueue(MakeJob(0, 0, 2)));
  ASSERT_TRUE(batcher.TryEnqueue(MakeJob(1, 10, 2)));
  batcher.Start();
  batcher.Stop();
  ASSERT_EQ(fake.completions.size(), 2u);
  for (const Completion& c : fake.completions) {
    DecodedResponse r;
    ASSERT_TRUE(DecodeResponse(c.payload, &r).ok());
    EXPECT_EQ(r.opcode, Opcode::kFeaturize);
    EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  }
}

// --- end-to-end server ------------------------------------------------------

// Two fitted models over the same schema (seeds 5 and 77), snapshotted, plus
// reference pipelines for computing expected bits offline. Built once; tests
// each load their own serving pipeline from the snapshots.
struct ServedModel {
  SyntheticDataset ds;
  const Table* base = nullptr;
  std::string path_a, path_b;
  LevaPipeline ref_a, ref_b;
};

const ServedModel& SharedModel() {
  static const ServedModel* model = [] {
    auto* m = new ServedModel();
    auto ds = GenerateStudent(120, 0, 3);
    EXPECT_TRUE(ds.ok());
    m->ds = std::move(ds).value();
    m->base = m->ds.db.FindTable(m->ds.base_table);
    EXPECT_NE(m->base, nullptr);
    LevaPipeline a(TestConfig(5));
    EXPECT_TRUE(a.Fit(m->ds.db).ok());
    LevaPipeline b(TestConfig(77));
    EXPECT_TRUE(b.Fit(m->ds.db).ok());
    m->path_a = ::testing::TempDir() + "leva_serve_shared_" +
                std::to_string(static_cast<long>(::getpid())) + "_a.leva";
    m->path_b = ::testing::TempDir() + "leva_serve_shared_" +
                std::to_string(static_cast<long>(::getpid())) + "_b.leva";
    EXPECT_TRUE(a.SaveSnapshot(m->path_a).ok());
    EXPECT_TRUE(b.SaveSnapshot(m->path_b).ok());
    EXPECT_TRUE(m->ref_a.LoadSnapshot(m->path_a).ok());
    EXPECT_TRUE(m->ref_b.LoadSnapshot(m->path_b).ok());
    return m;
  }();
  return *model;
}

/// Rows [lo, hi) of the base table with the target column dropped — what a
/// label-free serving client would send.
Table ServingRows(const ServedModel& m, size_t lo, size_t hi) {
  Table t(m.base->name());
  for (const Column& c : m.base->columns()) {
    if (c.name == m.ds.target_column) continue;
    Column col{c.name, c.type, {}};
    col.values.assign(c.values.begin() + static_cast<long>(lo),
                      c.values.begin() + static_cast<long>(hi));
    EXPECT_TRUE(t.AddColumn(std::move(col)).ok());
  }
  return t;
}

/// The offline oracle: bits the server must reproduce for these rows.
std::vector<double> ExpectedBits(const LevaPipeline& pipeline,
                                 const Table& rows) {
  auto r = ExecuteFeaturize(pipeline, rows, /*target_column=*/"",
                            /*rows_in_graph=*/false);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r->x.data();
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct LiveServer {
  LevaPipeline pipeline;
  std::unique_ptr<Server> server;

  explicit LiveServer(const std::string& snapshot,
                      ServerOptions options = {}) {
    EXPECT_TRUE(pipeline.LoadSnapshot(snapshot).ok());
    server = std::make_unique<Server>(&pipeline, options);
    const Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~LiveServer() {
    if (server != nullptr) server->Shutdown();
  }
  Client Connect() {
    Client client;
    EXPECT_TRUE(
        client.Connect("127.0.0.1", server->port(), /*timeout_ms=*/30000)
            .ok());
    return client;
  }
};

TEST(ServerTest, PingAndStats) {
  LiveServer live(SharedModel().path_a);
  Client client = live.Connect();
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Ping().ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(StatsField(*stats, "requests_ping"), 2.0);
  EXPECT_GE(StatsField(*stats, "connections_accepted"), 1.0);
  EXPECT_GE(StatsField(*stats, "uptime_seconds"), 0.0);
}

TEST(ServerTest, FeaturizeBitIdenticalToOffline) {
  const ServedModel& m = SharedModel();
  LiveServer live(m.path_a);
  Client client = live.Connect();

  FeaturizeRequest req;
  req.rows = ServingRows(m, 0, 16);
  auto response = client.Featurize(req);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  const std::vector<double> expected = ExpectedBits(m.ref_a, req.rows);
  EXPECT_EQ(response->rows, 16u);
  EXPECT_EQ(response->rows * response->width, expected.size());
  EXPECT_TRUE(SameBits(response->features, expected))
      << "served features differ from offline Featurize";
}

TEST(ServerTest, ExplicitTargetColumnMatchesOffline) {
  const ServedModel& m = SharedModel();
  LiveServer live(m.path_a);
  Client client = live.Connect();

  // Send rows WITH the label column and name it as the target — the
  // classification path leva_cli uses.
  FeaturizeRequest req;
  req.target_column = m.ds.target_column;
  Table t(m.base->name());
  for (const Column& c : m.base->columns()) {
    Column col{c.name, c.type, {}};
    col.values.assign(c.values.begin(), c.values.begin() + 12);
    ASSERT_TRUE(t.AddColumn(std::move(col)).ok());
  }
  req.rows = std::move(t);
  auto response = client.Featurize(req);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  auto offline = ExecuteFeaturize(m.ref_a, req.rows, m.ds.target_column,
                                  /*rows_in_graph=*/false);
  ASSERT_TRUE(offline.ok());
  EXPECT_TRUE(SameBits(response->features, offline->x.data()));
}

TEST(ServerTest, ConcurrentClientsCoalesceBitIdentically) {
  const ServedModel& m = SharedModel();
  ServerOptions options;
  options.batcher.max_batch_rows = 64;
  options.batcher.max_delay_us = 2000;
  LiveServer live(m.path_a, options);

  constexpr size_t kClients = 6;
  constexpr size_t kIters = 8;
  constexpr size_t kRowsEach = 10;
  std::vector<std::vector<double>> expected(kClients);
  std::vector<Table> subsets(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    subsets[c] = ServingRows(m, c * kRowsEach, (c + 1) * kRowsEach);
    expected[c] = ExpectedBits(m.ref_a, subsets[c]);
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client = live.Connect();
      for (size_t i = 0; i < kIters; ++i) {
        FeaturizeRequest req;
        req.rows = subsets[c];
        auto response = client.Featurize(req);
        if (!response.ok() || !response->status.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!SameBits(response->features, expected[c])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "coalesced execution changed some request's bits";

  Client client = live.Connect();
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(StatsField(*stats, "rows_featurized"),
            double(kClients * kIters * kRowsEach));
  // Batching actually engaged: fewer Featurize executions than requests.
  EXPECT_LT(StatsField(*stats, "batches_executed"),
            double(kClients * kIters));
  EXPECT_GT(StatsField(*stats, "rows_per_batch"), double(kRowsEach));
}

TEST(ServerTest, UnknownOpcodeAnswersErrorAndConnectionSurvives) {
  LiveServer live(SharedModel().path_a);
  Client client = live.Connect();
  const uint64_t id = client.NextRequestId();
  auto response =
      client.RoundTrip(EncodeBodylessRequest(static_cast<Opcode>(42), id), id);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(response->status.message().find("42"), std::string::npos);
  EXPECT_TRUE(client.Ping().ok()) << "connection must stay usable";
}

TEST(ServerTest, ZeroRowFeaturizeRejected) {
  const ServedModel& m = SharedModel();
  LiveServer live(m.path_a);
  Client client = live.Connect();
  FeaturizeRequest req;
  req.rows = ServingRows(m, 0, 0);
  auto response = client.Featurize(req);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, SaturatedAdmissionQueueAnswersOverloaded) {
  const ServedModel& m = SharedModel();
  ServerOptions options;
  options.batcher.max_pending_rows = 8;
  LiveServer live(m.path_a, options);
  Client client = live.Connect();
  // Larger than the bound: can never be admitted, deterministically rejected
  // without buffering.
  FeaturizeRequest req;
  req.rows = ServingRows(m, 0, 16);
  auto response = client.Featurize(req);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(response->status.message().find("overloaded"), std::string::npos);
  // The server is otherwise healthy: small requests still serve.
  FeaturizeRequest small;
  small.rows = ServingRows(m, 0, 4);
  auto ok_response = client.Featurize(small);
  ASSERT_TRUE(ok_response.ok());
  EXPECT_TRUE(ok_response->status.ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(StatsField(*stats, "overload_rejections"), 1.0);
}

// --- raw-socket robustness (corrupt framing must never crash or hang) ------

int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{};
  tv.tv_sec = 20;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  return fd;
}

void SendRaw(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
}

/// Reads until one complete frame or EOF; returns the payload ("" on EOF).
std::string RecvFrameRaw(int fd) {
  std::string buf;
  char chunk[4096];
  while (true) {
    const auto frame = DecodeFrame(buf);
    if (frame.ok() && frame->complete) return std::string(frame->payload);
    EXPECT_TRUE(frame.ok());
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return "";
    buf.append(chunk, static_cast<size_t>(n));
  }
}

TEST(ServerTest, BadChecksumGetsStreamErrorThenDisconnect) {
  LiveServer live(SharedModel().path_a);
  const int fd = RawConnect(live.server->port());
  std::string frame = EncodeFrame(EncodeBodylessRequest(Opcode::kPing, 1));
  frame.back() ^= 0x01;
  SendRaw(fd, frame);

  const std::string payload = RecvFrameRaw(fd);
  ASSERT_FALSE(payload.empty()) << "expected a final error response";
  DecodedResponse response;
  ASSERT_TRUE(DecodeResponse(payload, &response).ok());
  EXPECT_EQ(response.opcode, Opcode::kInvalid);
  EXPECT_FALSE(response.status.ok());
  // ...followed by a clean close.
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);

  Client client = live.Connect();
  EXPECT_TRUE(client.Ping().ok()) << "server must survive the bad client";
}

TEST(ServerTest, OversizedLengthPrefixGetsStreamErrorThenDisconnect) {
  LiveServer live(SharedModel().path_a);
  const int fd = RawConnect(live.server->port());
  BufferWriter w;
  w.PutU32(0xffffffffu);  // 4 GiB claim: corruption, not an allocation
  w.PutU32(0);
  SendRaw(fd, w.Release());

  const std::string payload = RecvFrameRaw(fd);
  ASSERT_FALSE(payload.empty());
  DecodedResponse response;
  ASSERT_TRUE(DecodeResponse(payload, &response).ok());
  EXPECT_EQ(response.opcode, Opcode::kInvalid);
  EXPECT_FALSE(response.status.ok());
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);

  Client client = live.Connect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, TruncatedFrameThenHangupLeavesServerHealthy) {
  LiveServer live(SharedModel().path_a);
  const int fd = RawConnect(live.server->port());
  const std::string frame =
      EncodeFrame(EncodeBodylessRequest(Opcode::kPing, 1));
  SendRaw(fd, std::string_view(frame).substr(0, 6));  // mid-header hangup
  ::close(fd);

  Client client = live.Connect();
  EXPECT_TRUE(client.Ping().ok());

  // A truncated request *body* inside a well-framed payload: error response,
  // connection stays usable.
  const int fd2 = RawConnect(live.server->port());
  BufferWriter w;
  w.PutU8(static_cast<uint8_t>(Opcode::kFeaturize));
  w.PutU64(77);
  w.PutBool(false);  // body cut off after rows_in_graph
  SendRaw(fd2, EncodeFrame(w.Release()));
  const std::string payload = RecvFrameRaw(fd2);
  ASSERT_FALSE(payload.empty());
  DecodedResponse response;
  ASSERT_TRUE(DecodeResponse(payload, &response).ok());
  EXPECT_FALSE(response.status.ok());
  SendRaw(fd2, EncodeFrame(EncodeBodylessRequest(Opcode::kPing, 78)));
  const std::string pong = RecvFrameRaw(fd2);
  ASSERT_FALSE(pong.empty());
  ASSERT_TRUE(DecodeResponse(pong, &response).ok());
  EXPECT_TRUE(response.status.ok());
  ::close(fd2);
}

// --- reload + drain ---------------------------------------------------------

TEST(ServerTest, ReloadHotSwapsServedModel) {
  const ServedModel& m = SharedModel();
  LiveServer live(m.path_a);
  Client client = live.Connect();

  const Table rows = ServingRows(m, 20, 36);
  const std::vector<double> bits_a = ExpectedBits(m.ref_a, rows);
  const std::vector<double> bits_b = ExpectedBits(m.ref_b, rows);
  ASSERT_FALSE(SameBits(bits_a, bits_b));

  FeaturizeRequest req;
  req.rows = rows;
  auto before = client.Featurize(req);
  ASSERT_TRUE(before.ok() && before->status.ok());
  EXPECT_TRUE(SameBits(before->features, bits_a));

  ReloadRequest reload;
  reload.path = m.path_b;
  ASSERT_TRUE(client.Reload(reload).ok());

  auto after = client.Featurize(req);
  ASSERT_TRUE(after.ok() && after->status.ok());
  EXPECT_TRUE(SameBits(after->features, bits_b))
      << "post-reload responses must come from the new model";

  // A failed reload (missing snapshot) reports the error and keeps serving
  // the incumbent.
  ReloadRequest missing;
  missing.path = TempPath("missing.leva");
  const Status s = client.Reload(missing);
  EXPECT_FALSE(s.ok());
  auto still = client.Featurize(req);
  ASSERT_TRUE(still.ok() && still->status.ok());
  EXPECT_TRUE(SameBits(still->features, bits_b));

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(StatsField(*stats, "reloads_ok"), 1.0);
  EXPECT_EQ(StatsField(*stats, "reloads_failed"), 1.0);
}

TEST(ServerTest, DrainRequestAcknowledgesThenExitsCleanly) {
  const ServedModel& m = SharedModel();
  auto live = std::make_unique<LiveServer>(m.path_a);
  Client client = live->Connect();
  FeaturizeRequest req;
  req.rows = ServingRows(m, 0, 8);
  auto response = client.Featurize(req);
  ASSERT_TRUE(response.ok() && response->status.ok());

  ASSERT_TRUE(client.Drain().ok()) << "DRAIN must be acknowledged";
  live->server->Join();
  EXPECT_FALSE(live->server->running());

  // The listener is gone: new connections fail.
  Client late;
  EXPECT_FALSE(
      late.Connect("127.0.0.1", live->server->port(), /*timeout_ms=*/500)
          .ok());
}

TEST(ServerTest, RequestShutdownFromSignalContextDrains) {
  // The daemon wires SIGTERM to RequestShutdown(); same entry point here.
  LiveServer live(SharedModel().path_a);
  Client client = live.Connect();
  ASSERT_TRUE(client.Ping().ok());
  live.server->RequestShutdown();
  live.server->Join();
  EXPECT_FALSE(live.server->running());
}

// --- races (the suites CI runs under TSan) ----------------------------------

// Concurrent clients featurize while another connection hot-reloads the
// model back and forth. Every response must be bit-identical to the offline
// Featurize of exactly one model generation — never a blend, never an error.
TEST(ServeRaceTest, ResponsesBitMatchExactlyOneGenerationAcrossReloads) {
  const ServedModel& m = SharedModel();
  ServerOptions options;
  options.batcher.max_batch_rows = 64;
  options.batcher.max_delay_us = 500;
  LiveServer live(m.path_a, options);

  constexpr size_t kClients = 4;
  constexpr size_t kIters = 12;
  constexpr int kReloads = 16;
  std::vector<Table> subsets(kClients);
  std::vector<std::vector<double>> bits_a(kClients), bits_b(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    subsets[c] = ServingRows(m, c * 12, (c + 1) * 12);
    bits_a[c] = ExpectedBits(m.ref_a, subsets[c]);
    bits_b[c] = ExpectedBits(m.ref_b, subsets[c]);
    ASSERT_FALSE(SameBits(bits_a[c], bits_b[c]));
  }

  std::atomic<int> blends{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client = live.Connect();
      for (size_t i = 0; i < kIters; ++i) {
        FeaturizeRequest req;
        req.rows = subsets[c];
        auto response = client.Featurize(req);
        if (!response.ok() || !response->status.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!SameBits(response->features, bits_a[c]) &&
            !SameBits(response->features, bits_b[c])) {
          blends.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread reloader([&] {
    Client client = live.Connect();
    for (int i = 0; i < kReloads; ++i) {
      ReloadRequest reload;
      reload.path = (i % 2 == 0) ? m.path_b : m.path_a;
      const Status s = client.Reload(reload);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
  });
  for (std::thread& th : clients) th.join();
  reloader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(blends.load(), 0)
      << "a response blended two model generations (or matched neither)";
}

// The MT-logging satellite's race check: many threads log through LEVA_LOG
// concurrently with level retunes. TSan verifies the implementation; the
// single-write guarantee is asserted by construction (one fwrite per record).
TEST(LogRaceTest, ConcurrentLoggingAndLevelChangesAreClean) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep test output quiet
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        LEVA_LOG(kDebug, "thread %d iteration %d of concurrent logging", t,
                 i);
        if (i % 50 == 0) {
          SetLogLevel(i % 100 == 0 ? LogLevel::kError : LogLevel::kWarning);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  SetLogLevel(original);
}

}  // namespace
}  // namespace leva::serve
