#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "embed/embedding.h"
#include "embed/line.h"
#include "embed/mf.h"
#include "embed/walks.h"
#include "embed/word2vec.h"
#include "graph/graph.h"

namespace leva {
namespace {

TEST(EmbeddingTest, PutGetRoundTrip) {
  Embedding e(3);
  ASSERT_TRUE(e.Put("a", std::vector<double>{1, 2, 3}).ok());
  const auto v = e.Get("a");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_TRUE(e.Get("missing").empty());
  EXPECT_TRUE(e.Has("a"));
  EXPECT_FALSE(e.Has("b"));
}

TEST(EmbeddingTest, IntegerIdInterface) {
  Embedding e(2);
  ASSERT_TRUE(e.Put("a", std::vector<double>{1, 2}).ok());
  ASSERT_TRUE(e.Put("b", std::vector<double>{3, 4}).ok());
  const size_t a = e.IdOf("a");
  const size_t b = e.IdOf("b");
  ASSERT_NE(a, Embedding::kInvalidId);
  ASSERT_NE(b, Embedding::kInvalidId);
  EXPECT_NE(a, b);
  EXPECT_EQ(e.IdOf("missing"), Embedding::kInvalidId);
  // Ids index the contiguous store, aligned with keys()/Get().
  EXPECT_EQ(e.keys()[a], "a");
  const auto by_id = e.GetById(b);
  const auto by_key = e.Get("b");
  ASSERT_EQ(by_id.size(), by_key.size());
  EXPECT_EQ(by_id.data(), by_key.data());
  EXPECT_EQ(e.RowPtr(a), e.Get("a").data());
  // Overwrites keep ids stable.
  ASSERT_TRUE(e.Put("a", std::vector<double>{9, 9}).ok());
  EXPECT_EQ(e.IdOf("a"), a);
  EXPECT_DOUBLE_EQ(e.GetById(a)[0], 9.0);
}

TEST(EmbeddingTest, DimensionMismatchRejected) {
  Embedding e(3);
  EXPECT_FALSE(e.Put("a", std::vector<double>{1, 2}).ok());
}

TEST(EmbeddingTest, OverwriteUpdatesInPlace) {
  Embedding e(2);
  ASSERT_TRUE(e.Put("a", std::vector<double>{1, 1}).ok());
  ASSERT_TRUE(e.Put("a", std::vector<double>{5, 6}).ok());
  EXPECT_EQ(e.size(), 1u);
  EXPECT_DOUBLE_EQ(e.Get("a")[0], 5.0);
}

TEST(EmbeddingTest, TextSerializationRoundTrip) {
  Embedding e(2);
  ASSERT_TRUE(e.Put("alpha", std::vector<double>{1.5, -2.25}).ok());
  ASSERT_TRUE(e.Put("beta", std::vector<double>{0, 3}).ok());
  const auto back = Embedding::FromText(e.ToText());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  EXPECT_DOUBLE_EQ(back->Get("alpha")[1], -2.25);
}

TEST(EmbeddingTest, FromTextRejectsNonFiniteValues) {
  const auto nan = Embedding::FromText("1 2\nkey nan 1.0\n");
  ASSERT_FALSE(nan.ok());
  EXPECT_EQ(nan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(nan.status().message().find("key"), std::string::npos);
  const auto inf = Embedding::FromText("1 2\nkey 1.0 inf\n");
  ASSERT_FALSE(inf.ok());
  EXPECT_EQ(inf.status().code(), StatusCode::kInvalidArgument);
  const auto neg_inf = Embedding::FromText("1 1\nkey -inf\n");
  EXPECT_FALSE(neg_inf.ok());
}

TEST(EmbeddingTest, FromTextRejectsDuplicateKeys) {
  const auto dup = Embedding::FromText("2 1\nkey 1.0\nkey 2.0\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);
}

TEST(EmbeddingTest, Distances) {
  const std::vector<double> a = {1, 0};
  const std::vector<double> b = {0, 1};
  EXPECT_DOUBLE_EQ(Embedding::L1Distance(a, b), 2.0);
  EXPECT_NEAR(Embedding::CosineSimilarity(a, b), 0.0, 1e-12);
  EXPECT_NEAR(Embedding::CosineSimilarity(a, a), 1.0, 1e-12);
}

TEST(EmbeddingTest, MapVectorsChangesDim) {
  Embedding e(4);
  ASSERT_TRUE(e.Put("a", std::vector<double>{1, 2, 3, 4}).ok());
  ASSERT_TRUE(e.MapVectors(2, [](std::span<const double> in,
                                 std::span<double> out) {
                 out[0] = in[0];
                 out[1] = in[3];
               }).ok());
  EXPECT_EQ(e.dim(), 2u);
  EXPECT_DOUBLE_EQ(e.Get("a")[1], 4.0);
}

// A small connected bipartite graph for walk tests.
LevaGraph ChainGraph() {
  TextifiedTable t;
  t.table_name = "t";
  t.rows = {
      {{0, "v1"}},
      {{0, "v1"}, {1, "v2"}},
      {{1, "v2"}, {2, "v3"}},
      {{2, "v3"}},
  };
  auto g = BuildGraph({t}, 3);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(WalksTest, GeneratesOneWalkPerNodePerEpoch) {
  const LevaGraph g = ChainGraph();
  WalkOptions options;
  options.epochs = 3;
  options.walk_length = 10;
  WalkGenerator generator(&g, options);
  Rng rng(1);
  const auto corpus = generator.Generate(&rng);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->size(), 3 * g.NumNodes());
}

TEST(WalksTest, WalksStayInGraph) {
  const LevaGraph g = ChainGraph();
  WalkOptions options;
  options.epochs = 2;
  WalkGenerator generator(&g, options);
  Rng rng(2);
  const auto corpus = generator.Generate(&rng);
  ASSERT_TRUE(corpus.ok());
  for (size_t w = 0; w < corpus->size(); ++w) {
    const auto walk = (*corpus)[w];
    EXPECT_LE(walk.size(), options.walk_length);
    for (const NodeId n : walk) EXPECT_LT(n, g.NumNodes());
    // Consecutive nodes must be neighbors.
    for (size_t i = 1; i < walk.size(); ++i) {
      const auto nbrs = g.Neighbors(walk[i - 1]);
      EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), walk[i]) != nbrs.end());
    }
  }
}

TEST(WalksTest, DeterministicGivenSeed) {
  const LevaGraph g = ChainGraph();
  WalkOptions options;
  options.epochs = 2;
  WalkGenerator g1(&g, options);
  WalkGenerator g2(&g, options);
  Rng r1(7);
  Rng r2(7);
  const auto c1 = g1.Generate(&r1);
  const auto c2 = g2.Generate(&r2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  ASSERT_EQ(c1->size(), c2->size());
  EXPECT_EQ(c1->tokens(), c2->tokens());
  EXPECT_EQ(c1->offsets(), c2->offsets());
}

TEST(WalksTest, VisitLimitSuppressesHotNodes) {
  const LevaGraph g = ChainGraph();
  WalkOptions options;
  options.epochs = 5;
  options.walk_length = 30;
  options.visit_limit = 10;
  WalkGenerator generator(&g, options);
  Rng rng(3);
  const auto corpus = generator.Generate(&rng);
  ASSERT_TRUE(corpus.ok());
  std::vector<size_t> emitted(g.NumNodes(), 0);
  for (const NodeId n : corpus->tokens()) ++emitted[n];
  for (const size_t count : emitted) EXPECT_LE(count, 10u);
}

TEST(WalksTest, BalancedRestartsBoostWorstNodes) {
  const LevaGraph g = ChainGraph();
  Rng rng_a(4);
  Rng rng_b(4);
  WalkOptions plain;
  plain.epochs = 10;
  WalkOptions balanced = plain;
  balanced.balanced_restarts = true;
  balanced.restart_epochs = 4;

  WalkGenerator ga(&g, plain);
  ASSERT_TRUE(ga.Generate(&rng_a).ok());
  const auto visits_plain = ga.visit_counts();
  WalkGenerator gb(&g, balanced);
  ASSERT_TRUE(gb.Generate(&rng_b).ok());
  const auto visits_balanced = gb.visit_counts();

  // The minimum visit count should not get worse with balancing.
  const size_t min_plain =
      *std::min_element(visits_plain.begin(), visits_plain.end());
  const size_t min_balanced =
      *std::min_element(visits_balanced.begin(), visits_balanced.end());
  EXPECT_GE(min_balanced + 5, min_plain);  // allow slack, but no collapse
}

TEST(WalksTest, WeightedUsesAliasTables) {
  const LevaGraph g = ChainGraph();
  WalkOptions weighted;
  weighted.weighted = true;
  WalkGenerator gw(&g, weighted);
  EXPECT_GT(gw.AliasMemoryBytes(), 0u);

  WalkOptions unweighted;
  unweighted.weighted = false;
  WalkGenerator gu(&g, unweighted);
  EXPECT_EQ(gu.AliasMemoryBytes(), 0u);
}

TEST(WalksTest, Node2VecBiasChangesWalks) {
  const LevaGraph g = ChainGraph();
  WalkOptions plain;
  plain.epochs = 6;
  plain.weighted = false;
  WalkOptions biased = plain;
  biased.p = 4.0;  // discourage returning
  biased.q = 0.25;

  Rng r1(5);
  Rng r2(5);
  WalkGenerator g1(&g, plain);
  WalkGenerator g2(&g, biased);
  const auto c1 = g1.Generate(&r1);
  const auto c2 = g2.Generate(&r2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  // Count immediate backtracks u -> v -> u; p > 1 should reduce them.
  auto backtracks = [](const FlatCorpus& c) {
    size_t n = 0;
    for (size_t w = 0; w < c.size(); ++w) {
      const auto walk = c[w];
      for (size_t i = 2; i < walk.size(); ++i) {
        if (walk[i] == walk[i - 2]) ++n;
      }
    }
    return n;
  };
  EXPECT_LT(backtracks(*c2), backtracks(*c1));
}

TEST(Word2VecTest, TrainsAndEmbedsCooccurringTokens) {
  // Corpus where tokens 0/1 always co-occur and 2/3 always co-occur.
  std::vector<std::vector<uint32_t>> corpus;
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    if (i % 2 == 0) {
      corpus.push_back({0, 1, 0, 1, 0, 1});
    } else {
      corpus.push_back({2, 3, 2, 3, 2, 3});
    }
  }
  Word2VecOptions options;
  options.dim = 16;
  options.epochs = 5;
  Word2Vec model(options);
  ASSERT_TRUE(model.Train(corpus, 4, &rng).ok());
  const Matrix& vecs = model.node_vectors();

  auto cosine = [&](size_t a, size_t b) {
    double dot = 0;
    double na = 0;
    double nb = 0;
    for (size_t j = 0; j < 16; ++j) {
      dot += vecs(a, j) * vecs(b, j);
      na += vecs(a, j) * vecs(a, j);
      nb += vecs(b, j) * vecs(b, j);
    }
    return dot / std::sqrt(na * nb);
  };
  // Same-cluster similarity should exceed cross-cluster similarity.
  EXPECT_GT(cosine(0, 1), cosine(0, 2));
  EXPECT_GT(cosine(2, 3), cosine(1, 3));
}

TEST(Word2VecTest, RejectsBadInput) {
  Rng rng(7);
  Word2Vec model;
  EXPECT_FALSE(model.Train(FlatCorpus(), 0, &rng).ok());
  EXPECT_FALSE(model.Train(WalkCorpus{{5}}, 3, &rng).ok());  // id out of range
  EXPECT_FALSE(model.Train(WalkCorpus{{}}, 3, &rng).ok());   // empty corpus
  EXPECT_FALSE(model.Train(WalkCorpus{{0}}, 3, nullptr).ok());
}

TEST(MfTest, ProximityMatrixOnlyOnEdges) {
  const LevaGraph g = ChainGraph();
  const SparseMatrix m = BuildProximityMatrix(g, 1e-3);
  EXPECT_EQ(m.rows(), g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    const auto nbrs = g.Neighbors(i);
    const std::set<NodeId> nbr_set(nbrs.begin(), nbrs.end());
    for (NodeId j = 0; j < g.NumNodes(); ++j) {
      if (nbr_set.count(j) == 0) {
        EXPECT_DOUBLE_EQ(m.At(i, j), 0.0);
      }
    }
  }
}

TEST(MfTest, ProximityValuesPositiveWithSmallTau) {
  const LevaGraph g = ChainGraph();
  const SparseMatrix m = BuildProximityMatrix(g, 1e-3);
  for (const double v : m.values()) EXPECT_GT(v, 0.0);
}

TEST(MfTest, NormalizedAdjacencySpectralRadiusBounded) {
  const LevaGraph g = ChainGraph();
  const SparseMatrix a = NormalizedAdjacency(g);
  // Power iteration estimate of the largest |eigenvalue|; must be <= 1.
  Rng rng(8);
  Matrix x = Matrix::GaussianRandom(g.NumNodes(), 1, &rng);
  double lambda = 0;
  for (int it = 0; it < 50; ++it) {
    const Matrix y = a.Multiply(x);
    lambda = y.FrobeniusNorm() / x.FrobeniusNorm();
    x = y;
    const double norm = x.FrobeniusNorm();
    if (norm > 0) x.Scale(1.0 / norm);
  }
  EXPECT_LE(lambda, 1.0 + 1e-6);
}

TEST(MfTest, EmbedProducesRequestedShape) {
  const LevaGraph g = ChainGraph();
  Rng rng(9);
  MfOptions options;
  options.dim = 4;
  options.spectral_propagation = false;
  const auto e = MatrixFactorizationEmbed(g, options, &rng);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->rows(), g.NumNodes());
  EXPECT_EQ(e->cols(), 4u);
}

TEST(MfTest, SpectralPropagationPreservesShape) {
  const LevaGraph g = ChainGraph();
  Rng rng(10);
  MfOptions options;
  options.dim = 4;
  options.spectral_propagation = true;
  const auto e = MatrixFactorizationEmbed(g, options, &rng);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->rows(), g.NumNodes());
  EXPECT_EQ(e->cols(), 4u);
  // Propagation must produce finite values.
  for (const double v : e->data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(MfTest, SpectralPropagateValidatesShape) {
  const LevaGraph g = ChainGraph();
  EXPECT_FALSE(SpectralPropagate(g, Matrix(2, 3), 5, 0.2, 0.5).ok());
}

TEST(MfTest, MemoryEstimatesMonotone) {
  EXPECT_LT(EstimateMfMemoryBytes(100, 500, 32),
            EstimateMfMemoryBytes(1000, 5000, 32));
  EXPECT_LT(EstimateRwMemoryBytes(100, 500, 80, 10, false),
            EstimateRwMemoryBytes(100, 500, 80, 10, true));
}

TEST(MfTest, ClusteringEffect) {
  // Two clusters of rows sharing distinct tokens: MF embeddings must place
  // same-cluster rows closer (the Section 5.1 property).
  TextifiedTable t;
  t.table_name = "t";
  for (int i = 0; i < 10; ++i) {
    t.rows.push_back({{0, i < 5 ? "left" : "right"}});
  }
  const auto g = BuildGraph({t}, 1);
  ASSERT_TRUE(g.ok());
  Rng rng(11);
  MfOptions options;
  options.dim = 4;
  const auto e = MatrixFactorizationEmbed(*g, options, &rng);
  ASSERT_TRUE(e.ok());
  const NodeId a = g->RowNode("t", 0);
  const NodeId b = g->RowNode("t", 1);  // same cluster
  const NodeId c = g->RowNode("t", 7);  // other cluster
  auto l1 = [&](NodeId x, NodeId y) {
    double d = 0;
    for (size_t j = 0; j < e->cols(); ++j) {
      d += std::fabs((*e)(x, j) - (*e)(y, j));
    }
    return d;
  };
  EXPECT_LT(l1(a, b), l1(a, c));
}

TEST(MfTest, WindowedProximityReachesTwoHops) {
  // Chain graph: row0 - v1 - row1 - v2 - row2 - v3 - row3.
  const LevaGraph g = ChainGraph();
  const NodeId r0 = g.RowNode("t", 0);
  const NodeId r1 = g.RowNode("t", 1);
  const SparseMatrix m1 = BuildProximityMatrix(g, 1e-3, /*window=*/1);
  const SparseMatrix m2 = BuildProximityMatrix(g, 1e-3, /*window=*/2);
  // Row nodes are two hops apart: connected only under window >= 2.
  EXPECT_DOUBLE_EQ(m1.At(r0, r1), 0.0);
  EXPECT_GT(m2.At(r0, r1), 0.0);
  EXPECT_GE(m2.nnz(), m1.nnz());
}

TEST(MfTest, WindowPruningBoundsRowDensity) {
  // A dense hub: 40 rows all sharing one token; window 2 connects every row
  // pair, and max_row_entries must cap the per-row fill.
  TextifiedTable t;
  t.table_name = "t";
  for (int i = 0; i < 40; ++i) t.rows.push_back({{0, "hub"}});
  const auto g = BuildGraph({t}, 1);
  ASSERT_TRUE(g.ok());
  const SparseMatrix pruned =
      BuildProximityMatrix(*g, 1e-3, /*window=*/2, /*max_row_entries=*/8);
  for (size_t r = 0; r < pruned.rows(); ++r) {
    // True edges (1-hop, never pruned) + capped 2-hop frontier.
    EXPECT_LE(pruned.offsets()[r + 1] - pruned.offsets()[r],
              g->Degree(static_cast<NodeId>(r)) + 8u);
  }
}

TEST(MfTest, WindowOneMatchesEdgeProximity) {
  const LevaGraph g = ChainGraph();
  const SparseMatrix direct = BuildProximityMatrix(g, 1e-3, 1);
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    for (const NodeId j : g.Neighbors(i)) {
      EXPECT_GT(direct.At(i, j), 0.0);
    }
  }
}

TEST(LineTest, ProducesRequestedShape) {
  const LevaGraph g = ChainGraph();
  Rng rng(21);
  LineOptions options;
  options.dim = 8;
  options.samples_per_edge = 50;
  const auto e = LineEmbed(g, options, &rng);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->rows(), g.NumNodes());
  EXPECT_EQ(e->cols(), 8u);
}

TEST(LineTest, ClusteringEffect) {
  // Same two-cluster setup as the MF test: LINE must also embed same-cluster
  // rows closer than cross-cluster rows.
  TextifiedTable t;
  t.table_name = "t";
  for (int i = 0; i < 10; ++i) {
    t.rows.push_back({{0, i < 5 ? "left" : "right"}});
  }
  const auto g = BuildGraph({t}, 1);
  ASSERT_TRUE(g.ok());
  Rng rng(22);
  LineOptions options;
  options.dim = 8;
  options.samples_per_edge = 400;
  const auto e = LineEmbed(*g, options, &rng);
  ASSERT_TRUE(e.ok());
  auto l1 = [&](NodeId x, NodeId y) {
    double d = 0;
    for (size_t j = 0; j < e->cols(); ++j) {
      d += std::fabs((*e)(x, j) - (*e)(y, j));
    }
    return d;
  };
  const NodeId a = g->RowNode("t", 0);
  const NodeId b = g->RowNode("t", 1);
  const NodeId c = g->RowNode("t", 7);
  EXPECT_LT(l1(a, b), l1(a, c));
}

TEST(LineTest, EdgelessGraphStillEmbeds) {
  GraphBuilder builder;
  builder.AddNode(NodeKind::kRow, "t:0");
  builder.AddNode(NodeKind::kRow, "t:1");
  builder.RegisterTableRows("t", 0, 2);
  const LevaGraph g = std::move(builder).Build();
  Rng rng(23);
  const auto e = LineEmbed(g, {}, &rng);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->rows(), 2u);
}

TEST(LineTest, RequiresRng) {
  const LevaGraph g = ChainGraph();
  EXPECT_FALSE(LineEmbed(g, {}, nullptr).ok());
}

}  // namespace
}  // namespace leva
