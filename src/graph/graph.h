#ifndef LEVA_GRAPH_GRAPH_H_
#define LEVA_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "common/storage.h"
#include "common/string_util.h"
#include "text/textifier.h"

namespace leva {

/// Node identifier inside a LevaGraph.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class NodeKind : uint8_t {
  kRow,    ///< one node per input row ("<table>:<row>")
  kValue,  ///< one node per surviving shared token
};

/// Parameters of graph construction and refinement (Sections 3.1-3.2,
/// defaults from Table 2).
struct GraphOptions {
  /// Tokens voted under more than this fraction of all attributes are treated
  /// as missing-data representatives and removed.
  double theta_range = 0.5;
  /// For each value node, attributes receiving less than this fraction of the
  /// node's votes are dropped (accidental syntactic collisions).
  double theta_min = 0.05;
  /// Assign edge weights 1/deg(value node); otherwise all edges weigh 1.
  bool weighted = true;
};

/// Construction statistics, reported by the scalability benchmark and
/// inspected by tests.
struct GraphStats {
  size_t row_nodes = 0;
  size_t value_nodes = 0;
  size_t edges = 0;  // undirected edges
  size_t tokens_seen = 0;
  size_t tokens_removed_missing = 0;   // theta_range removals
  size_t tokens_removed_unshared = 0;  // appeared in a single row only
  size_t votes_dropped_lowevidence = 0;  // theta_min removals
};

/// The refined bipartite row/value-node graph of Section 3. Row nodes connect
/// only to value nodes and vice versa. Adjacency is CSR with per-edge weights.
class LevaGraph {
 public:
  size_t NumNodes() const { return kinds_.size(); }
  size_t NumEdges() const { return targets_.size() / 2; }

  NodeKind kind(NodeId n) const { return kinds_[n]; }
  /// "<table>:<row>" for row nodes; the token text for value nodes.
  const std::string& label(NodeId n) const { return labels_[n]; }

  /// Neighbors of `n` and matching edge weights.
  std::span<const NodeId> Neighbors(NodeId n) const {
    return {targets_.data() + offsets_[n], offsets_[n + 1] - offsets_[n]};
  }
  std::span<const float> Weights(NodeId n) const {
    return {weights_.data() + offsets_[n], offsets_[n + 1] - offsets_[n]};
  }
  size_t Degree(NodeId n) const { return offsets_[n + 1] - offsets_[n]; }

  /// Row node for row `row` of the table named `table`, or kInvalidNode.
  NodeId RowNode(const std::string& table, size_t row) const;
  /// (first row node id, row count) registered for `table`, or
  /// {kInvalidNode, 0}. Row node ids are contiguous — node for row r is
  /// first + r — so batch callers can resolve the table name hash once and
  /// address every row arithmetically instead of via per-row label strings.
  std::pair<NodeId, size_t> TableRows(const std::string& table) const;
  /// Value node for `token`, or kInvalidNode.
  NodeId ValueNode(std::string_view token) const;

  /// All node ids of the given kind, in id order.
  std::vector<NodeId> NodesOfKind(NodeKind kind) const;

  /// Approximate heap footprint of the CSR structure in bytes.
  size_t MemoryBytes() const;

  const GraphStats& stats() const { return stats_; }

  /// Serializes the graph *metadata* (nodes, labels, table row ranges,
  /// stats, CSR array lengths). Maps are written in sorted order so the
  /// bytes are a pure function of the graph. The three CSR arrays —
  /// offsets/targets/weights, see the accessors below — are framed
  /// separately by the snapshot layer as page-aligned bulk sections so a
  /// loader can map them instead of copying. The value-node index is
  /// derivable from kinds/labels and is rebuilt on Load rather than stored.
  void Save(BufferWriter* out) const;

  /// Restores state written by Save, adopting the three CSR arrays (owned
  /// heap bytes or borrowed mmap views). When `validate_structure` is true,
  /// every structural invariant (offset monotonicity, edge symmetry counts,
  /// id ranges) is checked so a corrupt buffer is rejected instead of
  /// producing out-of-bounds adjacency — an O(edges) walk that touches every
  /// page, so the lazy mmap load path may defer it to the per-page
  /// checksums. On error the graph is left empty, never partially loaded.
  Status Load(BufferReader* in, OwnedOrMapped<uint64_t> offsets,
              OwnedOrMapped<NodeId> targets, OwnedOrMapped<float> weights,
              bool validate_structure = true);

  /// Raw CSR arrays (views over owned or mapped storage), for the snapshot
  /// writer and the bulk-section framing.
  ArrayView<uint64_t> offsets() const { return offsets_.span(); }
  ArrayView<NodeId> targets() const { return targets_.span(); }
  ArrayView<float> edge_weights() const { return weights_.span(); }
  /// True when the CSR arrays are served straight from an mmap'ed snapshot.
  bool mapped() const { return targets_.mapped(); }

 private:
  friend class GraphBuilder;
  friend Result<LevaGraph> BuildGraph(const std::vector<TextifiedTable>&,
                                      size_t, const GraphOptions&);
  friend Result<LevaGraph> GraphFromCsr(std::vector<NodeKind>,
                                        std::vector<std::string>,
                                        std::vector<uint64_t>,
                                        std::vector<NodeId>,
                                        std::vector<float>);

  std::vector<NodeKind> kinds_;
  std::vector<std::string> labels_;
  // The big CSR arrays are views: owned heap vectors when built by Fit,
  // borrowed spans into an mmap'ed snapshot after a zero-copy load. The
  // on-disk layout is exactly the in-memory layout (little-endian,
  // fixed-width), so mapping is a pointer cast, not a parse.
  OwnedOrMapped<uint64_t> offsets_;  // size NumNodes()+1
  OwnedOrMapped<NodeId> targets_;
  OwnedOrMapped<float> weights_;
  std::unordered_map<std::string, NodeId, TransparentStringHash,
                     std::equal_to<>>
      value_index_;
  // table name -> (first row node id, row count)
  std::unordered_map<std::string, std::pair<NodeId, size_t>> row_index_;
  GraphStats stats_;
};

/// Constructs arbitrary LevaGraphs edge by edge. BuildGraph (Algorithm 1) is
/// the production path; this builder backs baselines that use different graph
/// shapes (e.g. EmbDI's tripartite cell-row-column graph) and tests.
class GraphBuilder {
 public:
  /// Adds a node and returns its id. Labels must be unique per kind usage
  /// contract of the caller; value-node labels are indexed for lookup.
  NodeId AddNode(NodeKind kind, std::string label);

  /// Adds an undirected edge (both directions) with weight `w`.
  Status AddEdge(NodeId a, NodeId b, float w = 1.0f);

  /// Registers `first..first+count` as the row nodes of `table`.
  void RegisterTableRows(const std::string& table, NodeId first, size_t count);

  /// Finalizes into a CSR graph (neighbor lists sorted ascending).
  LevaGraph Build() &&;

 private:
  std::vector<NodeKind> kinds_;
  std::vector<std::string> labels_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<float> edge_weights_;
  std::unordered_map<std::string, std::pair<NodeId, size_t>> row_index_;
};

/// Bulk constructor adopting prebuilt CSR arrays without the edge-list
/// detour GraphBuilder takes (which materializes every edge twice before
/// sorting). This is the path for synthetic benchmark graphs in the 10M+
/// edge range, where the builder's per-node gather/sort would dominate.
///
/// `offsets` must have kinds.size() + 1 entries, start at 0, be
/// non-decreasing, and end at targets.size(); every target must be a valid
/// node id. `labels` may be empty (benchmark graphs have no textual
/// identity) — it is sized to the node count and the value-node index stays
/// empty. `weights` may be empty, meaning uniform 1.0 per directed slot.
/// Adjacency is adopted as given: neighbor lists are NOT re-sorted, which
/// uniform and weighted first-order walks never require (node2vec's
/// binary-searched adjacency does — build those graphs via GraphBuilder).
Result<LevaGraph> GraphFromCsr(std::vector<NodeKind> kinds,
                               std::vector<std::string> labels,
                               std::vector<uint64_t> offsets,
                               std::vector<NodeId> targets,
                               std::vector<float> weights);

/// Runs Algorithm 1: node/edge construction from textified tables, the
/// attribute-voting refinement, and edge weighting.
///
/// `total_attributes` is the number of attributes in the whole database
/// (Textifier::NumAttributes()), the denominator of theta_range.
Result<LevaGraph> BuildGraph(const std::vector<TextifiedTable>& tables,
                             size_t total_attributes,
                             const GraphOptions& options = {});

}  // namespace leva

#endif  // LEVA_GRAPH_GRAPH_H_
