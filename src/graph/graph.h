#ifndef LEVA_GRAPH_GRAPH_H_
#define LEVA_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "common/storage.h"
#include "common/string_util.h"
#include "text/textifier.h"

namespace leva {

/// Node identifier inside a LevaGraph.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class NodeKind : uint8_t {
  kRow,    ///< one node per input row ("<table>:<row>")
  kValue,  ///< one node per surviving shared token
};

/// Parameters of graph construction and refinement (Sections 3.1-3.2,
/// defaults from Table 2).
struct GraphOptions {
  /// Tokens voted under more than this fraction of all attributes are treated
  /// as missing-data representatives and removed.
  double theta_range = 0.5;
  /// For each value node, attributes receiving less than this fraction of the
  /// node's votes are dropped (accidental syntactic collisions).
  double theta_min = 0.05;
  /// Assign edge weights 1/deg(value node); otherwise all edges weigh 1.
  bool weighted = true;
};

/// Construction statistics, reported by the scalability benchmark and
/// inspected by tests.
struct GraphStats {
  size_t row_nodes = 0;
  size_t value_nodes = 0;
  size_t edges = 0;  // undirected edges
  size_t tokens_seen = 0;
  size_t tokens_removed_missing = 0;   // theta_range removals
  size_t tokens_removed_unshared = 0;  // appeared in a single row only
  size_t votes_dropped_lowevidence = 0;  // theta_min removals
};

/// An undirected edge staged into a graph's delta segment (ApplyDelta).
/// Endpoints may be base or freshly appended nodes.
struct GraphDeltaEdge {
  NodeId u;
  NodeId v;
  float weight = 1.0f;
};

/// The refined bipartite row/value-node graph of Section 3. Row nodes connect
/// only to value nodes and vice versa. Adjacency is CSR with per-edge weights.
///
/// Streaming updates append into *delta segments* — a second, owned CSR laid
/// over all nodes — instead of rebuilding the base arrays (which may be
/// borrowed mmap views of a snapshot). Base accessors (Neighbors/Weights)
/// stay base-only; Degree and the walk engines consult both segments.
/// Compacted() merges the segments back into a single base CSR without
/// renumbering any node.
class LevaGraph {
 public:
  size_t NumNodes() const { return kinds_.size(); }
  size_t NumEdges() const {
    return (targets_.size() + delta_targets_.size()) / 2;
  }

  /// Nodes covered by the base CSR. Ids at or past this count were appended
  /// by ApplyDelta and have only delta adjacency.
  size_t BaseNodes() const {
    return offsets_.size() == 0 ? 0 : offsets_.size() - 1;
  }

  NodeKind kind(NodeId n) const { return kinds_[n]; }
  /// "<table>:<row>" for row nodes; the token text for value nodes.
  const std::string& label(NodeId n) const { return labels_[n]; }

  /// Base-segment neighbors of `n` and matching edge weights (empty for
  /// nodes appended after the base CSR was built). Callers that must see
  /// appended edges combine these with DeltaNeighbors/DeltaWeights or demand
  /// a compacted graph.
  std::span<const NodeId> Neighbors(NodeId n) const {
    if (static_cast<size_t>(n) >= BaseNodes()) return {};
    return {targets_.data() + offsets_[n], offsets_[n + 1] - offsets_[n]};
  }
  std::span<const float> Weights(NodeId n) const {
    if (static_cast<size_t>(n) >= BaseNodes()) return {};
    return {weights_.data() + offsets_[n], offsets_[n + 1] - offsets_[n]};
  }
  /// Delta-segment adjacency of `n` (empty when no update touched it).
  /// Sorted by target, like the base lists.
  std::span<const NodeId> DeltaNeighbors(NodeId n) const {
    if (delta_offsets_.empty()) return {};
    return {delta_targets_.data() + delta_offsets_[n],
            delta_offsets_[n + 1] - delta_offsets_[n]};
  }
  std::span<const float> DeltaWeights(NodeId n) const {
    if (delta_offsets_.empty()) return {};
    return {delta_weights_.data() + delta_offsets_[n],
            delta_offsets_[n + 1] - delta_offsets_[n]};
  }

  size_t BaseDegree(NodeId n) const {
    if (static_cast<size_t>(n) >= BaseNodes()) return 0;
    return offsets_[n + 1] - offsets_[n];
  }
  size_t DeltaDegree(NodeId n) const {
    if (delta_offsets_.empty()) return 0;
    return delta_offsets_[n + 1] - delta_offsets_[n];
  }
  /// Combined (base + delta) degree — what every weighting/normalization
  /// consumer means by "degree".
  size_t Degree(NodeId n) const { return BaseDegree(n) + DeltaDegree(n); }

  /// Row node for row `row` of the table named `table`, or kInvalidNode.
  /// Covers appended rows: past the contiguous base block, the extra row
  /// segments registered by RegisterExtraTableRows are searched.
  NodeId RowNode(const std::string& table, size_t row) const;
  /// (first row node id, row count) registered for the *base block* of
  /// `table`, or {kInvalidNode, 0}. Row node ids in the block are contiguous
  /// — node for row r is first + r — so batch callers can resolve the table
  /// name hash once and address every row arithmetically instead of via
  /// per-row label strings. Rows appended by updates live in separate
  /// segments (TableRowCount > second here is the tell).
  std::pair<NodeId, size_t> TableRows(const std::string& table) const;
  /// Total rows of `table` across the base block and every appended segment.
  size_t TableRowCount(const std::string& table) const;
  /// Value node for `token`, or kInvalidNode.
  NodeId ValueNode(std::string_view token) const;

  // --- Streaming-update surface -------------------------------------------

  /// Appends `kinds`/`labels` as new nodes (ids continue from NumNodes())
  /// and lays `edges` into the delta segment. Fails without mutating on an
  /// out-of-range endpoint, a duplicate value-node label, or a weight that
  /// is not finite and positive. Value-node labels join the lookup index
  /// immediately. Delta adjacency is kept sorted by target so node2vec's
  /// binary-searched transitions stay valid.
  Status ApplyDelta(const std::vector<NodeKind>& kinds,
                    const std::vector<std::string>& labels,
                    const std::vector<GraphDeltaEdge>& edges);

  /// Registers `count` appended row nodes `first_node..` as logical rows
  /// `first_row..` of `table` (an extra, non-contiguous row segment).
  void RegisterExtraTableRows(const std::string& table, size_t first_row,
                              NodeId first_node, size_t count);

  /// True when any node or edge lives outside the base CSR — i.e. the graph
  /// must be compacted before Save (Save serializes the base arrays only).
  bool HasDelta() const {
    return NumNodes() > BaseNodes() || !delta_targets_.empty();
  }
  /// Directed delta adjacency slots (2x undirected delta edges).
  size_t DeltaSlots() const { return delta_targets_.size(); }
  /// Starting slot of `n`'s delta adjacency within the flat delta arrays (0
  /// when no delta exists) — the delta analogue of offsets()[n], used by the
  /// batched engine's combined flat alias layout.
  uint64_t DeltaSlotOffset(NodeId n) const {
    return delta_offsets_.empty() ? 0 : delta_offsets_[n];
  }

  /// A copy of this graph with the delta segments merged into one base CSR.
  /// Node ids are preserved exactly; per-node adjacency stays sorted. When
  /// `reweight` is set, every edge weight is recomputed as 1/deg(value
  /// endpoint) — the Section 3.2 weighting — so weights staled by appended
  /// edges are repaired in the same pass (pass the GraphOptions::weighted
  /// flag the graph was built with).
  Result<LevaGraph> Compacted(bool reweight) const;

  /// All node ids of the given kind, in id order.
  std::vector<NodeId> NodesOfKind(NodeKind kind) const;

  /// Approximate heap footprint of the CSR structure in bytes.
  size_t MemoryBytes() const;

  const GraphStats& stats() const { return stats_; }

  /// Serializes the graph *metadata* (nodes, labels, table row ranges,
  /// stats, CSR array lengths). Maps are written in sorted order so the
  /// bytes are a pure function of the graph. The three CSR arrays —
  /// offsets/targets/weights, see the accessors below — are framed
  /// separately by the snapshot layer as page-aligned bulk sections so a
  /// loader can map them instead of copying. The value-node index is
  /// derivable from kinds/labels and is rebuilt on Load rather than stored.
  void Save(BufferWriter* out) const;

  /// Restores state written by Save, adopting the three CSR arrays (owned
  /// heap bytes or borrowed mmap views). When `validate_structure` is true,
  /// every structural invariant (offset monotonicity, edge symmetry counts,
  /// id ranges) is checked so a corrupt buffer is rejected instead of
  /// producing out-of-bounds adjacency — an O(edges) walk that touches every
  /// page, so the lazy mmap load path may defer it to the per-page
  /// checksums. On error the graph is left empty, never partially loaded.
  Status Load(BufferReader* in, OwnedOrMapped<uint64_t> offsets,
              OwnedOrMapped<NodeId> targets, OwnedOrMapped<float> weights,
              bool validate_structure = true);

  /// Raw CSR arrays (views over owned or mapped storage), for the snapshot
  /// writer and the bulk-section framing.
  ArrayView<uint64_t> offsets() const { return offsets_.span(); }
  ArrayView<NodeId> targets() const { return targets_.span(); }
  ArrayView<float> edge_weights() const { return weights_.span(); }
  /// True when the CSR arrays are served straight from an mmap'ed snapshot.
  bool mapped() const { return targets_.mapped(); }

 private:
  friend class GraphBuilder;
  friend Result<LevaGraph> BuildGraph(const std::vector<TextifiedTable>&,
                                      size_t, const GraphOptions&);
  friend Result<LevaGraph> GraphFromCsr(std::vector<NodeKind>,
                                        std::vector<std::string>,
                                        std::vector<uint64_t>,
                                        std::vector<NodeId>,
                                        std::vector<float>);

  std::vector<NodeKind> kinds_;
  std::vector<std::string> labels_;
  // The big CSR arrays are views: owned heap vectors when built by Fit,
  // borrowed spans into an mmap'ed snapshot after a zero-copy load. The
  // on-disk layout is exactly the in-memory layout (little-endian,
  // fixed-width), so mapping is a pointer cast, not a parse.
  OwnedOrMapped<uint64_t> offsets_;  // size NumNodes()+1
  OwnedOrMapped<NodeId> targets_;
  OwnedOrMapped<float> weights_;
  // Delta segments: a second CSR over all nodes holding edges appended by
  // ApplyDelta. Owned heap vectors always (updates never mutate a mapped
  // base). Empty offsets_ vector <=> no delta applied yet.
  std::vector<uint64_t> delta_offsets_;  // size NumNodes()+1 when non-empty
  std::vector<NodeId> delta_targets_;
  std::vector<float> delta_weights_;
  std::unordered_map<std::string, NodeId, TransparentStringHash,
                     std::equal_to<>>
      value_index_;
  // table name -> (first row node id, row count)
  std::unordered_map<std::string, std::pair<NodeId, size_t>> row_index_;
  // Row nodes appended by updates are not contiguous with the base block:
  // each batch contributes one (first logical row, first node id, count)
  // segment per table, in logical-row order.
  struct ExtraRowSegment {
    size_t first_row;
    NodeId first_node;
    size_t count;
  };
  std::unordered_map<std::string, std::vector<ExtraRowSegment>> extra_rows_;
  GraphStats stats_;
};

/// Constructs arbitrary LevaGraphs edge by edge. BuildGraph (Algorithm 1) is
/// the production path; this builder backs baselines that use different graph
/// shapes (e.g. EmbDI's tripartite cell-row-column graph) and tests.
class GraphBuilder {
 public:
  /// Adds a node and returns its id. Labels must be unique per kind usage
  /// contract of the caller; value-node labels are indexed for lookup.
  NodeId AddNode(NodeKind kind, std::string label);

  /// Adds an undirected edge (both directions) with weight `w`.
  Status AddEdge(NodeId a, NodeId b, float w = 1.0f);

  /// Registers `first..first+count` as the row nodes of `table`.
  void RegisterTableRows(const std::string& table, NodeId first, size_t count);

  /// Finalizes into a CSR graph (neighbor lists sorted ascending).
  LevaGraph Build() &&;

 private:
  std::vector<NodeKind> kinds_;
  std::vector<std::string> labels_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<float> edge_weights_;
  std::unordered_map<std::string, std::pair<NodeId, size_t>> row_index_;
};

/// Bulk constructor adopting prebuilt CSR arrays without the edge-list
/// detour GraphBuilder takes (which materializes every edge twice before
/// sorting). This is the path for synthetic benchmark graphs in the 10M+
/// edge range, where the builder's per-node gather/sort would dominate.
///
/// `offsets` must have kinds.size() + 1 entries, start at 0, be
/// non-decreasing, and end at targets.size(); every target must be a valid
/// node id. `labels` may be empty (benchmark graphs have no textual
/// identity) — it is sized to the node count and the value-node index stays
/// empty. `weights` may be empty, meaning uniform 1.0 per directed slot.
/// Adjacency is adopted as given: neighbor lists are NOT re-sorted, which
/// uniform and weighted first-order walks never require (node2vec's
/// binary-searched adjacency does — build those graphs via GraphBuilder).
Result<LevaGraph> GraphFromCsr(std::vector<NodeKind> kinds,
                               std::vector<std::string> labels,
                               std::vector<uint64_t> offsets,
                               std::vector<NodeId> targets,
                               std::vector<float> weights);

/// Runs Algorithm 1: node/edge construction from textified tables, the
/// attribute-voting refinement, and edge weighting.
///
/// `total_attributes` is the number of attributes in the whole database
/// (Textifier::NumAttributes()), the denominator of theta_range.
Result<LevaGraph> BuildGraph(const std::vector<TextifiedTable>& tables,
                             size_t total_attributes,
                             const GraphOptions& options = {});

}  // namespace leva

#endif  // LEVA_GRAPH_GRAPH_H_
