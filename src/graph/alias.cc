#include "graph/alias.h"

namespace leva {

bool BuildAliasSlots(std::span<const double> weights, double* prob,
                     uint32_t* alias, AliasBuildScratch* scratch) {
  const size_t n = weights.size();
  if (n == 0) return false;
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return false;

  for (size_t i = 0; i < n; ++i) {
    prob[i] = 0.0;
    alias[i] = 0;
  }
  std::vector<double>& scaled = scratch->scaled;
  scaled.resize(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t>& small = scratch->small;
  std::vector<uint32_t>& large = scratch->large;
  small.clear();
  large.clear();
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  while (!large.empty()) {
    prob[large.back()] = 1.0;
    large.pop_back();
  }
  while (!small.empty()) {
    prob[small.back()] = 1.0;
    small.pop_back();
  }
  return true;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  if (n == 0) return;
  prob_.resize(n);
  alias_.resize(n);
  AliasBuildScratch scratch;
  if (!BuildAliasSlots({weights.data(), n}, prob_.data(), alias_.data(),
                       &scratch)) {
    prob_.clear();
    alias_.clear();
    prob_.shrink_to_fit();
    alias_.shrink_to_fit();
  }
}

uint32_t AliasTable::Sample(Rng* rng) const {
  const uint32_t i = static_cast<uint32_t>(rng->UniformInt(prob_.size()));
  return rng->Uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace leva
