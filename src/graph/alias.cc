#include "graph/alias.h"

namespace leva {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  if (n == 0) return;
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  while (!large.empty()) {
    prob_[large.back()] = 1.0;
    large.pop_back();
  }
  while (!small.empty()) {
    prob_[small.back()] = 1.0;
    small.pop_back();
  }
}

uint32_t AliasTable::Sample(Rng* rng) const {
  const uint32_t i = static_cast<uint32_t>(rng->UniformInt(prob_.size()));
  return rng->Uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace leva
