#ifndef LEVA_GRAPH_ALIAS_H_
#define LEVA_GRAPH_ALIAS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace leva {

/// Walker's alias method: O(n) preprocessing, O(1) draws from an arbitrary
/// discrete distribution. Used for weighted random-walk transitions
/// (Section 4.3 discusses the memory cost of keeping one table per node).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative `weights` (need not be normalized).
  /// An all-zero/ empty input yields an empty table (Sample must not be
  /// called on it).
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index with probability proportional to its weight.
  uint32_t Sample(Rng* rng) const;

  bool empty() const { return prob_.empty(); }
  size_t size() const { return prob_.size(); }

  /// Bytes used by this table (for the memory accounting in Section 4.3).
  size_t MemoryBytes() const {
    return prob_.capacity() * sizeof(double) +
           alias_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace leva

#endif  // LEVA_GRAPH_ALIAS_H_
