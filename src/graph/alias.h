#ifndef LEVA_GRAPH_ALIAS_H_
#define LEVA_GRAPH_ALIAS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace leva {

/// Reusable scratch buffers for BuildAliasSlots, so bulk builders (one table
/// per graph node) pay zero allocations per node after warmup.
struct AliasBuildScratch {
  std::vector<double> scaled;
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
};

/// Builds Walker alias-method slots for `weights` into caller-owned storage:
/// prob[i] / alias[i] for i < weights.size(). Returns false — writing
/// nothing — when the distribution is empty or all-zero (the "empty table"
/// case; sampling from it is invalid). This is the single construction
/// routine behind both AliasTable and the batched walk engine's flat
/// CSR-indexed layout, so the two produce bit-identical slot values and
/// therefore bit-identical sample streams for the same Rng state.
bool BuildAliasSlots(std::span<const double> weights, double* prob,
                     uint32_t* alias, AliasBuildScratch* scratch);

/// Walker's alias method: O(n) preprocessing, O(1) draws from an arbitrary
/// discrete distribution. Used for weighted random-walk transitions
/// (Section 4.3 discusses the memory cost of keeping one table per node).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative `weights` (need not be normalized).
  /// An all-zero/ empty input yields an empty table (Sample must not be
  /// called on it).
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index with probability proportional to its weight.
  uint32_t Sample(Rng* rng) const;

  bool empty() const { return prob_.empty(); }
  size_t size() const { return prob_.size(); }

  /// Bytes used by this table (for the memory accounting in Section 4.3).
  size_t MemoryBytes() const {
    return prob_.capacity() * sizeof(double) +
           alias_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace leva

#endif  // LEVA_GRAPH_ALIAS_H_
