#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace leva {
namespace {

// Per-token accumulator used during the voting pass.
struct TokenAgg {
  // (row node, attr id) occurrences, deduplicated lazily.
  std::vector<std::pair<NodeId, uint32_t>> occurrences;
  // attr id -> votes
  std::unordered_map<uint32_t, size_t> votes;
};

}  // namespace

NodeId LevaGraph::RowNode(const std::string& table, size_t row) const {
  const auto it = row_index_.find(table);
  if (it != row_index_.end() && row < it->second.second) {
    return it->second.first + static_cast<NodeId>(row);
  }
  const auto ex = extra_rows_.find(table);
  if (ex != extra_rows_.end()) {
    for (const ExtraRowSegment& seg : ex->second) {
      if (row >= seg.first_row && row - seg.first_row < seg.count) {
        return seg.first_node + static_cast<NodeId>(row - seg.first_row);
      }
    }
  }
  return kInvalidNode;
}

std::pair<NodeId, size_t> LevaGraph::TableRows(const std::string& table) const {
  const auto it = row_index_.find(table);
  if (it == row_index_.end()) return {kInvalidNode, 0};
  return it->second;
}

size_t LevaGraph::TableRowCount(const std::string& table) const {
  size_t count = 0;
  const auto it = row_index_.find(table);
  if (it != row_index_.end()) count = it->second.second;
  const auto ex = extra_rows_.find(table);
  if (ex != extra_rows_.end()) {
    for (const ExtraRowSegment& seg : ex->second) count += seg.count;
  }
  return count;
}

NodeId LevaGraph::ValueNode(std::string_view token) const {
  const auto it = value_index_.find(token);
  return it == value_index_.end() ? kInvalidNode : it->second;
}

std::vector<NodeId> LevaGraph::NodesOfKind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < kinds_.size(); ++n) {
    if (kinds_[n] == kind) out.push_back(n);
  }
  return out;
}

Status LevaGraph::ApplyDelta(const std::vector<NodeKind>& kinds,
                             const std::vector<std::string>& labels,
                             const std::vector<GraphDeltaEdge>& edges) {
  if (kinds.size() != labels.size()) {
    return Status::InvalidArgument("delta kinds/labels length mismatch");
  }
  const size_t old_n = NumNodes();
  const size_t n = old_n + kinds.size();
  if (n >= kInvalidNode) {
    return Status::InvalidArgument("delta node count overflows NodeId");
  }
  // Validate everything before mutating anything: a failed delta must leave
  // the graph exactly as it was.
  for (const GraphDeltaEdge& e : edges) {
    if (e.u >= n || e.v >= n) {
      return Status::OutOfRange("delta edge endpoint out of range");
    }
    if (!(e.weight > 0.0f) || !std::isfinite(e.weight)) {
      return Status::InvalidArgument("delta edge weight must be finite > 0");
    }
  }
  {
    std::unordered_set<std::string_view> batch_values;
    for (size_t i = 0; i < kinds.size(); ++i) {
      if (kinds[i] != NodeKind::kValue) continue;
      if (value_index_.find(labels[i]) != value_index_.end() ||
          !batch_values.insert(labels[i]).second) {
        return Status::AlreadyExists("delta value node '" + labels[i] +
                                     "' already exists");
      }
    }
  }

  for (size_t i = 0; i < kinds.size(); ++i) {
    const NodeId id = static_cast<NodeId>(old_n + i);
    kinds_.push_back(kinds[i]);
    labels_.push_back(labels[i]);
    if (kinds[i] == NodeKind::kValue) {
      value_index_.emplace(labels_.back(), id);
      ++stats_.value_nodes;
    } else {
      ++stats_.row_nodes;
    }
  }

  // Per-node lists of newly arriving (target, weight) pairs, kept sorted so
  // merged delta adjacency stays binary-searchable.
  std::vector<std::vector<std::pair<NodeId, float>>> adds(n);
  for (const GraphDeltaEdge& e : edges) {
    adds[e.u].emplace_back(e.v, e.weight);
    adds[e.v].emplace_back(e.u, e.weight);
  }

  // The existing delta arrays cover only the pre-append node count; nodes at
  // or past that bound have no old delta adjacency by construction.
  const size_t old_delta_nodes =
      delta_offsets_.empty() ? 0 : delta_offsets_.size() - 1;
  const auto old_delta_span = [&](size_t i) -> std::pair<size_t, size_t> {
    if (i >= old_delta_nodes) return {0, 0};
    return {delta_offsets_[i], delta_offsets_[i + 1]};
  };

  std::vector<uint64_t> offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto [lo, hi] = old_delta_span(i);
    offsets[i + 1] = offsets[i] + (hi - lo) + adds[i].size();
  }
  std::vector<NodeId> targets(offsets[n]);
  std::vector<float> weights(offsets[n]);
  for (size_t i = 0; i < n; ++i) {
    std::sort(adds[i].begin(), adds[i].end());
    const auto [lo, hi] = old_delta_span(i);
    const std::span<const NodeId> old_nbrs{delta_targets_.data() + lo,
                                           hi - lo};
    const std::span<const float> old_w{delta_weights_.data() + lo, hi - lo};
    size_t a = 0, b = 0, out = offsets[i];
    while (a < old_nbrs.size() || b < adds[i].size()) {
      const bool take_old =
          b >= adds[i].size() ||
          (a < old_nbrs.size() && old_nbrs[a] <= adds[i][b].first);
      if (take_old) {
        targets[out] = old_nbrs[a];
        weights[out] = old_w[a];
        ++a;
      } else {
        targets[out] = adds[i][b].first;
        weights[out] = adds[i][b].second;
        ++b;
      }
      ++out;
    }
  }
  delta_offsets_ = std::move(offsets);
  delta_targets_ = std::move(targets);
  delta_weights_ = std::move(weights);
  stats_.edges += edges.size();
  return Status::OK();
}

void LevaGraph::RegisterExtraTableRows(const std::string& table,
                                       size_t first_row, NodeId first_node,
                                       size_t count) {
  extra_rows_[table].push_back(ExtraRowSegment{first_row, first_node, count});
}

Result<LevaGraph> LevaGraph::Compacted(bool reweight) const {
  const size_t n = NumNodes();
  LevaGraph g;
  g.kinds_ = kinds_;
  g.labels_ = labels_;
  g.value_index_ = value_index_;
  g.row_index_ = row_index_;
  g.extra_rows_ = extra_rows_;
  g.stats_ = stats_;

  g.offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    g.offsets_[i + 1] = g.offsets_[i] + Degree(static_cast<NodeId>(i));
  }
  const uint64_t total = g.offsets_[n];
  g.targets_.assign(total, 0);
  g.weights_.assign(total, 0.f);
  for (size_t i = 0; i < n; ++i) {
    const NodeId node = static_cast<NodeId>(i);
    const auto bn = Neighbors(node);
    const auto bw = Weights(node);
    const auto dn = DeltaNeighbors(node);
    const auto dw = DeltaWeights(node);
    size_t a = 0, b = 0, out = g.offsets_[i];
    while (a < bn.size() || b < dn.size()) {
      const bool take_base =
          b >= dn.size() || (a < bn.size() && bn[a] <= dn[b]);
      if (take_base) {
        g.targets_[out] = bn[a];
        g.weights_[out] = bw[a];
        ++a;
      } else {
        g.targets_[out] = dn[b];
        g.weights_[out] = dw[b];
        ++b;
      }
      ++out;
    }
  }
  if (reweight) {
    // Repair weights staled by appended edges: every edge reverts to the
    // Section 3.2 weighting 1/deg(value endpoint), with degrees read off the
    // freshly merged offsets.
    const uint64_t* off = g.offsets_.data();
    for (size_t u = 0; u < n; ++u) {
      for (uint64_t k = off[u]; k < off[u + 1]; ++k) {
        const NodeId vn = kinds_[u] == NodeKind::kValue
                              ? static_cast<NodeId>(u)
                              : g.targets_[k];
        g.weights_[k] = 1.0f / static_cast<float>(off[vn + 1] - off[vn]);
      }
    }
  }
  g.stats_.edges = total / 2;
  return g;
}

void LevaGraph::Save(BufferWriter* out) const {
  const size_t n = kinds_.size();
  out->PutU64(n);
  for (const NodeKind k : kinds_) out->PutU8(static_cast<uint8_t>(k));
  for (const std::string& l : labels_) out->PutString(l);
  // The CSR arrays themselves ride in separate bulk sections; the metadata
  // records their expected lengths so a mismatched bulk payload is rejected.
  out->PutU64(targets_.size());

  std::vector<std::pair<std::string, std::pair<NodeId, size_t>>> rows(
      row_index_.begin(), row_index_.end());
  std::sort(rows.begin(), rows.end());
  out->PutU64(rows.size());
  for (const auto& [table, range] : rows) {
    out->PutString(table);
    out->PutU32(range.first);
    out->PutU64(range.second);
  }

  // Extra (appended) row segments, sorted by table for byte determinism.
  // Note Save covers the base CSR only — a graph with live delta segments is
  // compacted by the snapshot writer before it gets here.
  std::vector<std::pair<std::string, const std::vector<ExtraRowSegment>*>>
      extras;
  extras.reserve(extra_rows_.size());
  for (const auto& [table, segs] : extra_rows_) extras.emplace_back(table, &segs);
  std::sort(extras.begin(), extras.end());
  out->PutU64(extras.size());
  for (const auto& [table, segs] : extras) {
    out->PutString(table);
    out->PutU64(segs->size());
    for (const ExtraRowSegment& seg : *segs) {
      out->PutU64(seg.first_row);
      out->PutU32(seg.first_node);
      out->PutU64(seg.count);
    }
  }

  out->PutU64(stats_.row_nodes);
  out->PutU64(stats_.value_nodes);
  out->PutU64(stats_.edges);
  out->PutU64(stats_.tokens_seen);
  out->PutU64(stats_.tokens_removed_missing);
  out->PutU64(stats_.tokens_removed_unshared);
  out->PutU64(stats_.votes_dropped_lowevidence);
}

Status LevaGraph::Load(BufferReader* in, OwnedOrMapped<uint64_t> offsets,
                       OwnedOrMapped<NodeId> targets,
                       OwnedOrMapped<float> weights, bool validate_structure) {
  *this = LevaGraph();
  LevaGraph g;
  uint64_t n = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&n));
  if (n >= kInvalidNode) {
    return Status::InvalidArgument("corrupt graph: node count " +
                                   std::to_string(n) + " overflows NodeId");
  }
  {
    // One kind byte per node; grab the block in one call and validate over
    // the raw view instead of paying a bounds check per node.
    std::string_view raw;
    LEVA_RETURN_IF_ERROR(in->GetBytes(n, &raw));
    for (uint64_t i = 0; i < n; ++i) {
      if (static_cast<uint8_t>(raw[i]) >
          static_cast<uint8_t>(NodeKind::kValue)) {
        return Status::InvalidArgument(
            "corrupt graph: bad node kind " +
            std::to_string(static_cast<uint8_t>(raw[i])));
      }
    }
    g.kinds_.resize(n);
    std::memcpy(g.kinds_.data(), raw.data(), n);
  }
  g.labels_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string l;
    LEVA_RETURN_IF_ERROR(in->GetString(&l));
    g.labels_.push_back(std::move(l));
  }
  uint64_t num_targets = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&num_targets));
  if (offsets.size() != n + 1) {
    return Status::InvalidArgument(
        "corrupt graph: offsets array holds " + std::to_string(offsets.size()) +
        " entries, expected " + std::to_string(n + 1));
  }
  if (targets.size() != num_targets || weights.size() != num_targets ||
      num_targets % 2 != 0) {
    return Status::InvalidArgument(
        "corrupt graph: adjacency arrays hold " +
        std::to_string(targets.size()) + "/" + std::to_string(weights.size()) +
        " entries, expected " + std::to_string(num_targets));
  }
  if (validate_structure) {
    // O(edges) invariant walk: every page of the arrays is touched, which
    // the eager load paths want (they verify checksums anyway) and the lazy
    // mmap path skips — the per-page CRCs written at save time carry the
    // integrity guarantee there.
    // Read through const views: the non-const operator[] of OwnedOrMapped
    // detaches mapped storage into a heap copy, which would silently defeat
    // the zero-copy load.
    const uint64_t* off = offsets.data();
    const NodeId* tgt = targets.data();
    uint64_t prev = 0;
    for (uint64_t i = 0; i <= n; ++i) {
      const uint64_t o = off[i];
      if ((i == 0 && o != 0) || o < prev) {
        return Status::InvalidArgument(
            "corrupt graph: adjacency offsets not monotone at node " +
            std::to_string(i));
      }
      prev = o;
    }
    if (offsets.back() != num_targets) {
      return Status::InvalidArgument(
          "corrupt graph: " + std::to_string(num_targets) +
          " adjacency entries but offsets end at " +
          std::to_string(offsets.back()));
    }
    for (uint64_t i = 0; i < num_targets; ++i) {
      if (tgt[i] >= n) {
        return Status::InvalidArgument("corrupt graph: edge target " +
                                       std::to_string(tgt[i]) +
                                       " out of range " + std::to_string(n));
      }
    }
  } else if (offsets.back() != num_targets) {
    // Even the lazy path checks the one invariant Neighbors() depends on
    // globally — it costs a single page touch.
    return Status::InvalidArgument(
        "corrupt graph: " + std::to_string(num_targets) +
        " adjacency entries but offsets end at " +
        std::to_string(offsets.back()));
  }
  g.offsets_ = std::move(offsets);
  g.targets_ = std::move(targets);
  g.weights_ = std::move(weights);

  uint64_t num_tables = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&num_tables));
  for (uint64_t i = 0; i < num_tables; ++i) {
    std::string table;
    NodeId first = 0;
    uint64_t count = 0;
    LEVA_RETURN_IF_ERROR(in->GetString(&table));
    LEVA_RETURN_IF_ERROR(in->GetU32(&first));
    LEVA_RETURN_IF_ERROR(in->GetU64(&count));
    if (count > n || first > n - count) {
      return Status::InvalidArgument("corrupt graph: row range for '" + table +
                                     "' out of bounds");
    }
    if (!g.row_index_.emplace(std::move(table), std::make_pair(first, count))
             .second) {
      return Status::InvalidArgument("corrupt graph: duplicate table range");
    }
  }

  uint64_t num_extra_tables = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&num_extra_tables));
  for (uint64_t i = 0; i < num_extra_tables; ++i) {
    std::string table;
    uint64_t num_segs = 0;
    LEVA_RETURN_IF_ERROR(in->GetString(&table));
    LEVA_RETURN_IF_ERROR(in->GetU64(&num_segs));
    std::vector<ExtraRowSegment> segs;
    segs.reserve(num_segs);
    for (uint64_t s = 0; s < num_segs; ++s) {
      uint64_t first_row = 0, count = 0;
      NodeId first_node = 0;
      LEVA_RETURN_IF_ERROR(in->GetU64(&first_row));
      LEVA_RETURN_IF_ERROR(in->GetU32(&first_node));
      LEVA_RETURN_IF_ERROR(in->GetU64(&count));
      if (count > n || first_node > n - count) {
        return Status::InvalidArgument(
            "corrupt graph: extra row segment for '" + table +
            "' out of bounds");
      }
      segs.push_back(ExtraRowSegment{static_cast<size_t>(first_row),
                                     first_node,
                                     static_cast<size_t>(count)});
    }
    if (!g.extra_rows_.emplace(std::move(table), std::move(segs)).second) {
      return Status::InvalidArgument(
          "corrupt graph: duplicate extra row segment table");
    }
  }

  LEVA_RETURN_IF_ERROR(in->GetU64(&g.stats_.row_nodes));
  LEVA_RETURN_IF_ERROR(in->GetU64(&g.stats_.value_nodes));
  LEVA_RETURN_IF_ERROR(in->GetU64(&g.stats_.edges));
  LEVA_RETURN_IF_ERROR(in->GetU64(&g.stats_.tokens_seen));
  LEVA_RETURN_IF_ERROR(in->GetU64(&g.stats_.tokens_removed_missing));
  LEVA_RETURN_IF_ERROR(in->GetU64(&g.stats_.tokens_removed_unshared));
  LEVA_RETURN_IF_ERROR(in->GetU64(&g.stats_.votes_dropped_lowevidence));

  // The value-node index is a pure function of kinds/labels: rebuild it.
  g.value_index_.reserve(g.stats_.value_nodes);
  for (NodeId i = 0; i < g.kinds_.size(); ++i) {
    if (g.kinds_[i] == NodeKind::kValue) g.value_index_.emplace(g.labels_[i], i);
  }
  *this = std::move(g);
  return Status::OK();
}

size_t LevaGraph::MemoryBytes() const {
  size_t bytes = kinds_.capacity() * sizeof(NodeKind) +
                 offsets_.capacity() * sizeof(size_t) +
                 targets_.capacity() * sizeof(NodeId) +
                 weights_.capacity() * sizeof(float) +
                 delta_offsets_.capacity() * sizeof(uint64_t) +
                 delta_targets_.capacity() * sizeof(NodeId) +
                 delta_weights_.capacity() * sizeof(float);
  for (const std::string& l : labels_) bytes += l.capacity() + sizeof(l);
  return bytes;
}

NodeId GraphBuilder::AddNode(NodeKind kind, std::string label) {
  const NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(kind);
  labels_.push_back(std::move(label));
  return id;
}

Status GraphBuilder::AddEdge(NodeId a, NodeId b, float w) {
  if (a >= kinds_.size() || b >= kinds_.size()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  edges_.emplace_back(a, b);
  edge_weights_.push_back(w);
  return Status::OK();
}

void GraphBuilder::RegisterTableRows(const std::string& table, NodeId first,
                                     size_t count) {
  row_index_[table] = {first, count};
}

LevaGraph GraphBuilder::Build() && {
  LevaGraph g;
  const size_t n = kinds_.size();
  g.kinds_ = std::move(kinds_);
  g.labels_ = std::move(labels_);
  g.row_index_ = std::move(row_index_);
  for (NodeId i = 0; i < n; ++i) {
    if (g.kinds_[i] == NodeKind::kValue) g.value_index_.emplace(g.labels_[i], i);
  }

  // Sort edge endpoints so neighbor lists come out ascending (the node2vec
  // transition relies on binary-searchable adjacency).
  std::vector<size_t> degree(n, 0);
  for (const auto& [a, b] : edges_) {
    ++degree[a];
    ++degree[b];
  }
  g.offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) g.offsets_[i + 1] = g.offsets_[i] + degree[i];
  g.targets_.assign(g.offsets_[n], 0);
  g.weights_.assign(g.offsets_[n], 0.f);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  // Insert edges in endpoint-sorted order per node: gather then sort ranges.
  for (size_t e = 0; e < edges_.size(); ++e) {
    const auto [a, b] = edges_[e];
    g.targets_[cursor[a]] = b;
    g.weights_[cursor[a]] = edge_weights_[e];
    ++cursor[a];
    g.targets_[cursor[b]] = a;
    g.weights_[cursor[b]] = edge_weights_[e];
    ++cursor[b];
  }
  for (NodeId i = 0; i < n; ++i) {
    const size_t begin = g.offsets_[i];
    const size_t end = g.offsets_[i + 1];
    // Sort (target, weight) pairs by target.
    std::vector<std::pair<NodeId, float>> pairs;
    pairs.reserve(end - begin);
    for (size_t k = begin; k < end; ++k) {
      pairs.emplace_back(g.targets_[k], g.weights_[k]);
    }
    std::sort(pairs.begin(), pairs.end());
    for (size_t k = begin; k < end; ++k) {
      g.targets_[k] = pairs[k - begin].first;
      g.weights_[k] = pairs[k - begin].second;
    }
  }
  g.stats_.row_nodes = 0;
  g.stats_.value_nodes = 0;
  for (NodeKind k : g.kinds_) {
    if (k == NodeKind::kRow) ++g.stats_.row_nodes;
    else ++g.stats_.value_nodes;
  }
  g.stats_.edges = edges_.size();
  return g;
}

Result<LevaGraph> GraphFromCsr(std::vector<NodeKind> kinds,
                               std::vector<std::string> labels,
                               std::vector<uint64_t> offsets,
                               std::vector<NodeId> targets,
                               std::vector<float> weights) {
  const size_t n = kinds.size();
  if (offsets.size() != n + 1) {
    return Status::InvalidArgument("offsets must have one entry per node + 1");
  }
  if (offsets.front() != 0 || offsets.back() != targets.size()) {
    return Status::InvalidArgument("offsets must span exactly the targets");
  }
  for (size_t i = 0; i < n; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::InvalidArgument("offsets must be non-decreasing");
    }
  }
  for (const NodeId t : targets) {
    if (t >= n) return Status::OutOfRange("target node id out of range");
  }
  if (!labels.empty() && labels.size() != n) {
    return Status::InvalidArgument("labels must be empty or one per node");
  }
  if (!weights.empty() && weights.size() != targets.size()) {
    return Status::InvalidArgument(
        "weights must be empty or one per directed edge slot");
  }
  LevaGraph g;
  g.kinds_ = std::move(kinds);
  if (labels.empty()) labels.resize(n);
  g.labels_ = std::move(labels);
  for (NodeId i = 0; i < n; ++i) {
    if (g.kinds_[i] == NodeKind::kValue && !g.labels_[i].empty()) {
      g.value_index_.emplace(g.labels_[i], i);
    }
  }
  if (weights.empty()) weights.assign(targets.size(), 1.0f);
  g.offsets_ = std::move(offsets);
  g.targets_ = std::move(targets);
  g.weights_ = std::move(weights);
  for (NodeKind k : g.kinds_) {
    if (k == NodeKind::kRow) ++g.stats_.row_nodes;
    else ++g.stats_.value_nodes;
  }
  g.stats_.edges = g.targets_.size() / 2;
  return g;
}

Result<LevaGraph> BuildGraph(const std::vector<TextifiedTable>& tables,
                             size_t total_attributes,
                             const GraphOptions& options) {
  if (options.theta_range <= 0 || options.theta_range > 1) {
    return Status::InvalidArgument("theta_range must be in (0, 1]");
  }
  if (options.theta_min < 0 || options.theta_min >= 1) {
    return Status::InvalidArgument("theta_min must be in [0, 1)");
  }

  LevaGraph g;

  // --- Row nodes (one per row of every table). ---
  for (const TextifiedTable& t : tables) {
    const NodeId first = static_cast<NodeId>(g.kinds_.size());
    if (g.row_index_.count(t.table_name) > 0) {
      return Status::InvalidArgument("duplicate table '" + t.table_name + "'");
    }
    g.row_index_.emplace(t.table_name, std::make_pair(first, t.rows.size()));
    for (size_t r = 0; r < t.rows.size(); ++r) {
      g.kinds_.push_back(NodeKind::kRow);
      g.labels_.push_back(t.table_name + ":" + std::to_string(r));
    }
  }

  // --- Token pass: collect occurrences and attribute votes (Alg. 1, l.4-10).
  std::unordered_map<std::string, TokenAgg> aggs;
  for (const TextifiedTable& t : tables) {
    const NodeId first = g.row_index_.at(t.table_name).first;
    for (size_t r = 0; r < t.rows.size(); ++r) {
      const NodeId row_node = first + static_cast<NodeId>(r);
      for (const TextToken& tok : t.rows[r]) {
        TokenAgg& agg = aggs[tok.token];
        agg.occurrences.emplace_back(row_node, tok.attr_id);
        ++agg.votes[tok.attr_id];
      }
    }
  }
  g.stats_.tokens_seen = aggs.size();

  // --- Refinement (Alg. 1, l.11-12) and value-node creation. ---
  // Edge lists per row node; value nodes appended after row nodes.
  struct PendingValue {
    const std::string* token;
    std::vector<NodeId> rows;  // deduplicated row endpoints
  };
  std::vector<PendingValue> pending;
  // A token seen under a single attribute can never be "missing data", so
  // the removal threshold is at least one attribute regardless of theta_range
  // (matters for tiny schemas).
  const double max_attrs = std::max(
      1.0, options.theta_range * static_cast<double>(total_attributes));

  for (auto& [token, agg] : aggs) {
    // Missing-data detection: token voted under too many distinct attributes.
    if (static_cast<double>(agg.votes.size()) > max_attrs) {
      ++g.stats_.tokens_removed_missing;
      continue;
    }
    // Low-evidence attribute removal.
    size_t total_votes = 0;
    for (const auto& [attr, n] : agg.votes) total_votes += n;
    const double min_votes =
        options.theta_min * static_cast<double>(total_votes);
    std::vector<NodeId> rows;
    rows.reserve(agg.occurrences.size());
    for (const auto& [row_node, attr] : agg.occurrences) {
      if (static_cast<double>(agg.votes.at(attr)) < min_votes) {
        ++g.stats_.votes_dropped_lowevidence;
        continue;
      }
      rows.push_back(row_node);
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    // Value nodes only for values shared between multiple rows (Section 3.1).
    if (rows.size() < 2) {
      ++g.stats_.tokens_removed_unshared;
      continue;
    }
    pending.push_back(PendingValue{&token, std::move(rows)});
  }

  // Deterministic node ordering regardless of hash-map iteration order.
  std::sort(pending.begin(), pending.end(),
            [](const PendingValue& a, const PendingValue& b) {
              return *a.token < *b.token;
            });

  const size_t num_rows = g.kinds_.size();
  size_t num_edges = 0;
  for (const PendingValue& pv : pending) num_edges += pv.rows.size();

  for (const PendingValue& pv : pending) {
    const NodeId vn = static_cast<NodeId>(g.kinds_.size());
    g.kinds_.push_back(NodeKind::kValue);
    g.labels_.push_back(*pv.token);
    g.value_index_.emplace(*pv.token, vn);
  }

  g.stats_.row_nodes = num_rows;
  g.stats_.value_nodes = pending.size();
  g.stats_.edges = num_edges;

  // --- CSR assembly with weighting (Alg. 1, l.13). ---
  const size_t n = g.kinds_.size();
  std::vector<size_t> degree(n, 0);
  for (size_t i = 0; i < pending.size(); ++i) {
    const NodeId vn = static_cast<NodeId>(num_rows + i);
    degree[vn] = pending[i].rows.size();
    for (const NodeId r : pending[i].rows) ++degree[r];
  }
  g.offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) g.offsets_[i + 1] = g.offsets_[i] + degree[i];
  g.targets_.assign(g.offsets_[n], 0);
  g.weights_.assign(g.offsets_[n], 0.f);

  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (size_t i = 0; i < pending.size(); ++i) {
    const NodeId vn = static_cast<NodeId>(num_rows + i);
    // Edge weight inversely proportional to the value node's degree: value
    // nodes shared by many rows carry less inclusion-dependency signal.
    const float w = options.weighted
                        ? 1.0f / static_cast<float>(pending[i].rows.size())
                        : 1.0f;
    for (const NodeId r : pending[i].rows) {
      g.targets_[cursor[vn]] = r;
      g.weights_[cursor[vn]] = w;
      ++cursor[vn];
      g.targets_[cursor[r]] = vn;
      g.weights_[cursor[r]] = w;
      ++cursor[r];
    }
  }
  return g;
}

}  // namespace leva
