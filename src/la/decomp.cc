#include "la/decomp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace leva {
namespace {

// Column dot product helpers on row-major matrices.
double ColDot(const Matrix& m, size_t c1, size_t c2) {
  double sum = 0;
  for (size_t r = 0; r < m.rows(); ++r) sum += m(r, c1) * m(r, c2);
  return sum;
}

void ColAxpy(Matrix* m, size_t dst, size_t src, double alpha) {
  for (size_t r = 0; r < m->rows(); ++r) (*m)(r, dst) += alpha * (*m)(r, src);
}

void ColScale(Matrix* m, size_t c, double alpha) {
  for (size_t r = 0; r < m->rows(); ++r) (*m)(r, c) *= alpha;
}

}  // namespace

Matrix GramSchmidtQ(const Matrix& a) {
  Matrix q = a;
  const size_t k = q.cols();
  for (size_t j = 0; j < k; ++j) {
    // Two orthogonalization passes for numerical stability.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < j; ++i) {
        const double proj = ColDot(q, j, i);
        if (proj != 0.0) ColAxpy(&q, j, i, -proj);
      }
    }
    const double norm = std::sqrt(ColDot(q, j, j));
    if (norm > 1e-12) {
      ColScale(&q, j, 1.0 / norm);
    } else {
      ColScale(&q, j, 0.0);  // rank-deficient direction
    }
  }
  return q;
}

Result<EigenResult> SymmetricEigen(const Matrix& a, size_t max_sweeps,
                                   double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::Identity(n);

  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
    }
    if (off < tol) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/cols p and q of D and columns of V.
        for (size_t i = 0; i < n; ++i) {
          const double dip = d(i, p);
          const double diq = d(i, q);
          d(i, p) = c * dip - s * diq;
          d(i, q) = s * dip + c * diq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double dpi = d(p, i);
          const double dqi = d(q, i);
          d(p, i) = c * dpi - s * dqi;
          d(q, i) = s * dpi + c * dqi;
        }
        for (size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  EigenResult result;
  result.eigenvalues.resize(n);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = d(i, i);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] > diag[y]; });
  result.eigenvectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = diag[order[j]];
    for (size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return result;
}

Result<SvdResult> ThinSVD(const Matrix& a, size_t threads) {
  // Gram-matrix approach: AᵀA = V Σ² Vᵀ, U = A V Σ⁻¹. Adequate because Leva
  // only feeds in matrices with few (<= few hundred) columns.
  const Matrix gram = MatTMul(a, a, threads);
  LEVA_ASSIGN_OR_RETURN(EigenResult eig, SymmetricEigen(gram));

  const size_t n = a.cols();
  SvdResult out;
  out.singular_values.resize(n);
  out.v = eig.eigenvectors;
  out.u = Matrix(a.rows(), n);
  const Matrix av = MatMul(a, eig.eigenvectors, threads);
  for (size_t j = 0; j < n; ++j) {
    const double s = std::sqrt(std::max(0.0, eig.eigenvalues[j]));
    out.singular_values[j] = s;
    if (s > 1e-12) {
      for (size_t i = 0; i < a.rows(); ++i) out.u(i, j) = av(i, j) / s;
    }
  }
  return out;
}

Result<SvdResult> RandomizedSVD(const SparseMatrix& a,
                                const RandomizedSvdOptions& options,
                                Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  const size_t k = std::min(options.rank + options.oversample,
                            std::min(a.rows(), a.cols()));
  if (k == 0) return Status::InvalidArgument("empty matrix");

  // Stage A: randomized range finder with power iterations.
  const size_t threads = options.threads;
  Matrix omega = Matrix::GaussianRandom(a.cols(), k, rng);
  Matrix y = a.Multiply(omega, threads);
  for (size_t it = 0; it < options.power_iterations; ++it) {
    y = GramSchmidtQ(y);  // re-orthonormalize to avoid collapse
    Matrix z = a.TransposeMultiply(y, threads);
    y = a.Multiply(z, threads);
  }
  const Matrix q = GramSchmidtQ(y);

  // Stage B: B = QᵀA, factor exactly in the reduced space.
  // Bᵀ = Aᵀ Q has shape (cols x k): small enough for the Gram-based ThinSVD.
  const Matrix bt = a.TransposeMultiply(q, threads);  // n x k
  LEVA_ASSIGN_OR_RETURN(SvdResult small, ThinSVD(bt, threads));
  // Bᵀ = (V_b) Σ (U_b)ᵀ where small.u = V of B, small.v = U of B.
  const size_t rank = std::min(options.rank, k);
  SvdResult out;
  out.singular_values.assign(small.singular_values.begin(),
                             small.singular_values.begin() +
                                 static_cast<ptrdiff_t>(rank));
  // U = Q * U_b (first `rank` columns).
  Matrix ub(k, rank);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < rank; ++j) ub(i, j) = small.v(i, j);
  }
  out.u = MatMul(q, ub, threads);
  out.v = Matrix(a.cols(), rank);
  for (size_t i = 0; i < a.cols(); ++i) {
    for (size_t j = 0; j < rank; ++j) out.v(i, j) = small.u(i, j);
  }
  return out;
}

Result<PCA> PCA::Fit(const Matrix& x, size_t components, size_t threads) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("PCA needs a non-empty matrix");
  }
  const size_t d = x.cols();
  components = std::min(components, d);

  PCA pca;
  pca.mean_.assign(d, 0.0);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < d; ++c) pca.mean_[c] += x(r, c);
  }
  for (double& m : pca.mean_) m /= static_cast<double>(x.rows());

  Matrix centered = x;
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < d; ++c) centered(r, c) -= pca.mean_[c];
  }
  const Matrix cov = MatTMul(centered, centered, threads);
  LEVA_ASSIGN_OR_RETURN(EigenResult eig, SymmetricEigen(cov));

  pca.basis_ = Matrix(d, components);
  pca.variance_.resize(components);
  for (size_t j = 0; j < components; ++j) {
    pca.variance_[j] =
        std::max(0.0, eig.eigenvalues[j]) / static_cast<double>(x.rows());
    for (size_t i = 0; i < d; ++i) pca.basis_(i, j) = eig.eigenvectors(i, j);
  }
  return pca;
}

Matrix PCA::Transform(const Matrix& x) const {
  Matrix centered = x;
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) centered(r, c) -= mean_[c];
  }
  return MatMul(centered, basis_);
}

}  // namespace leva
