#ifndef LEVA_LA_MATRIX_H_
#define LEVA_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace leva {

/// Dense row-major matrix of doubles. Small, dependency-free kernel backing
/// the randomized SVD, PCA, and the MLP.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);
  /// i.i.d. N(0, stddev²) entries.
  static Matrix GaussianRandom(size_t rows, size_t cols, Rng* rng,
                               double stddev = 1.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  Matrix Transposed() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// this += alpha * other (shapes must match).
  void AddScaled(const Matrix& other, double alpha);
  void Scale(double alpha);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Row-partitioned over `threads` workers; each output row is
/// accumulated by exactly one thread in a fixed order, so the result is
/// bit-identical at every thread count.
Matrix MatMul(const Matrix& a, const Matrix& b, size_t threads = 1);
/// C = Aᵀ * B, with the same row-partitioned determinism guarantee.
Matrix MatTMul(const Matrix& a, const Matrix& b, size_t threads = 1);

}  // namespace leva

#endif  // LEVA_LA_MATRIX_H_
