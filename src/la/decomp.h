#ifndef LEVA_LA_DECOMP_H_
#define LEVA_LA_DECOMP_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace leva {

/// Thin QR via modified Gram-Schmidt with re-orthogonalization.
/// Returns Q (m x k) with orthonormal columns spanning range(A); rank-null
/// columns are replaced by zero columns.
Matrix GramSchmidtQ(const Matrix& a);

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
/// Eigenvalues are returned in descending order with matching eigenvector
/// columns.
struct EigenResult {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;  // columns are eigenvectors
};
Result<EigenResult> SymmetricEigen(const Matrix& a, size_t max_sweeps = 30,
                                   double tol = 1e-12);

/// Thin SVD of a (possibly tall) dense matrix computed from the
/// eigendecomposition of AᵀA. Suitable when cols is small (<= a few hundred).
struct SvdResult {
  Matrix u;                         // m x k
  std::vector<double> singular_values;  // descending
  Matrix v;                         // n x k
};
Result<SvdResult> ThinSVD(const Matrix& a, size_t threads = 1);

/// Randomized truncated SVD of a sparse matrix (Halko, Martinsson, Tropp
/// 2010): range finding with a Gaussian sketch, `power_iterations` rounds of
/// subspace iteration, then an exact SVD in the reduced space. O(d²N) given
/// nnz = O(N).
struct RandomizedSvdOptions {
  size_t rank = 100;
  size_t oversample = 10;
  size_t power_iterations = 2;
  /// Worker threads for the sketch/power-iteration matmuls. Results are
  /// bit-identical at every thread count (see la/sparse.h).
  size_t threads = 1;
};
Result<SvdResult> RandomizedSVD(const SparseMatrix& a,
                                const RandomizedSvdOptions& options, Rng* rng);

/// PCA fitted on rows of X. Used by the embedding dimension-reduction study
/// (Table 7) and as a deployment-time option (Section 4.4).
class PCA {
 public:
  /// Fits `components` principal directions on the rows of `x`. `threads`
  /// parallelizes the covariance matmul; deterministic at any thread count.
  static Result<PCA> Fit(const Matrix& x, size_t components,
                         size_t threads = 1);

  /// Projects rows of `x` onto the fitted components.
  Matrix Transform(const Matrix& x) const;

  size_t components() const { return basis_.cols(); }
  const std::vector<double>& explained_variance() const { return variance_; }

 private:
  std::vector<double> mean_;
  Matrix basis_;  // d x k, columns are components
  std::vector<double> variance_;
};

}  // namespace leva

#endif  // LEVA_LA_DECOMP_H_
