#include "la/sparse.h"

#include <algorithm>
#include <cassert>

namespace leva {

SparseMatrix SparseMatrix::FromTriplets(size_t rows, size_t cols,
                                        std::vector<Triplet> triplets) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.offsets_.assign(rows + 1, 0);
  m.cols_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    const uint32_t r = triplets[i].row;
    const uint32_t c = triplets[i].col;
    assert(r < rows && c < cols);
    double sum = 0;
    while (i < triplets.size() && triplets[i].row == r && triplets[i].col == c) {
      sum += triplets[i].value;
      ++i;
    }
    m.cols_idx_.push_back(c);
    m.values_.push_back(sum);
    ++m.offsets_[r + 1];
  }
  for (size_t r = 0; r < rows; ++r) m.offsets_[r + 1] += m.offsets_[r];
  return m;
}

Matrix SparseMatrix::Multiply(const Matrix& x) const {
  assert(x.rows() == cols_);
  Matrix y(rows_, x.cols());
  for (size_t r = 0; r < rows_; ++r) {
    double* yrow = y.RowPtr(r);
    for (size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      const double v = values_[i];
      const double* xrow = x.RowPtr(cols_idx_[i]);
      for (size_t j = 0; j < x.cols(); ++j) yrow[j] += v * xrow[j];
    }
  }
  return y;
}

Matrix SparseMatrix::TransposeMultiply(const Matrix& x) const {
  assert(x.rows() == rows_);
  Matrix y(cols_, x.cols());
  for (size_t r = 0; r < rows_; ++r) {
    const double* xrow = x.RowPtr(r);
    for (size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      const double v = values_[i];
      double* yrow = y.RowPtr(cols_idx_[i]);
      for (size_t j = 0; j < x.cols(); ++j) yrow[j] += v * xrow[j];
    }
  }
  return y;
}

double SparseMatrix::At(size_t r, size_t c) const {
  const auto begin = cols_idx_.begin() + static_cast<ptrdiff_t>(offsets_[r]);
  const auto end = cols_idx_.begin() + static_cast<ptrdiff_t>(offsets_[r + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<uint32_t>(c));
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<size_t>(it - cols_idx_.begin())];
}

}  // namespace leva
