#include "la/sparse.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/parallel.h"

namespace leva {
namespace {

constexpr size_t kRowGrain = 64;

// Fixed chunk count for the transpose scatter. A pure function of the row
// count (never the thread count), so the partial-merge order — and thus the
// floating-point result — is identical however many workers execute it.
size_t TransposeChunks(size_t rows) {
  constexpr size_t kMaxChunks = 8;
  constexpr size_t kMinRowsPerChunk = 256;
  return std::clamp<size_t>(rows / kMinRowsPerChunk, 1, kMaxChunks);
}

}  // namespace

SparseMatrix SparseMatrix::FromTriplets(size_t rows, size_t cols,
                                        std::vector<Triplet> triplets) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.offsets_.assign(rows + 1, 0);
  m.cols_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    const uint32_t r = triplets[i].row;
    const uint32_t c = triplets[i].col;
    assert(r < rows && c < cols);
    double sum = 0;
    while (i < triplets.size() && triplets[i].row == r && triplets[i].col == c) {
      sum += triplets[i].value;
      ++i;
    }
    m.cols_idx_.push_back(c);
    m.values_.push_back(sum);
    ++m.offsets_[r + 1];
  }
  for (size_t r = 0; r < rows; ++r) m.offsets_[r + 1] += m.offsets_[r];
  return m;
}

Matrix SparseMatrix::Multiply(const Matrix& x, size_t threads) const {
  assert(x.rows() == cols_);
  Matrix y(rows_, x.cols());
  ParallelFor(threads, 0, rows_, kRowGrain, [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      double* yrow = y.RowPtr(r);
      for (size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
        const double v = values_[i];
        const double* xrow = x.RowPtr(cols_idx_[i]);
        for (size_t j = 0; j < x.cols(); ++j) yrow[j] += v * xrow[j];
      }
    }
  });
  return y;
}

Matrix SparseMatrix::TransposeMultiply(const Matrix& x, size_t threads) const {
  assert(x.rows() == rows_);
  const size_t chunks = TransposeChunks(rows_);
  if (chunks == 1) {
    Matrix y(cols_, x.cols());
    for (size_t r = 0; r < rows_; ++r) {
      const double* xrow = x.RowPtr(r);
      for (size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
        const double v = values_[i];
        double* yrow = y.RowPtr(cols_idx_[i]);
        for (size_t j = 0; j < x.cols(); ++j) yrow[j] += v * xrow[j];
      }
    }
    return y;
  }

  // Scatter each fixed row-chunk into its own partial, then merge partials in
  // chunk order. The chunk layout and the merge are both thread-count
  // invariant, so the result is reproducible (though the summation order
  // differs from the single-chunk path, which small matrices take).
  const size_t rows_per_chunk = (rows_ + chunks - 1) / chunks;
  std::vector<Matrix> partials(chunks);
  ParallelFor(threads, 0, chunks, 1, [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      partials[c] = Matrix(cols_, x.cols());
      Matrix& y = partials[c];
      const size_t r_end = std::min(rows_, (c + 1) * rows_per_chunk);
      for (size_t r = c * rows_per_chunk; r < r_end; ++r) {
        const double* xrow = x.RowPtr(r);
        for (size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
          const double v = values_[i];
          double* yrow = y.RowPtr(cols_idx_[i]);
          for (size_t j = 0; j < x.cols(); ++j) yrow[j] += v * xrow[j];
        }
      }
    }
  });
  Matrix y = std::move(partials[0]);
  for (size_t c = 1; c < chunks; ++c) y.AddScaled(partials[c], 1.0);
  return y;
}

double SparseMatrix::At(size_t r, size_t c) const {
  const auto begin = cols_idx_.begin() + static_cast<ptrdiff_t>(offsets_[r]);
  const auto end = cols_idx_.begin() + static_cast<ptrdiff_t>(offsets_[r + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<uint32_t>(c));
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<size_t>(it - cols_idx_.begin())];
}

}  // namespace leva
