#include "la/matrix.h"

#include <cassert>
#include <cmath>

#include "common/parallel.h"

namespace leva {
namespace {

// Rows per ParallelFor chunk. Fixed (never thread-count dependent) so the
// partitioning — and hence any floating-point evaluation order — is stable.
constexpr size_t kRowGrain = 16;

}  // namespace

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::GaussianRandom(size_t rows, size_t cols, Rng* rng,
                              double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Normal(0.0, stddev);
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

Matrix MatMul(const Matrix& a, const Matrix& b, size_t threads) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // ikj loop order per output row: streams through b row-wise for cache
  // friendliness; rows are independent, so sharding them is race-free.
  ParallelFor(threads, 0, a.rows(), kRowGrain, [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      double* crow = c.RowPtr(i);
      for (size_t k = 0; k < a.cols(); ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) continue;
        const double* brow = b.RowPtr(k);
        for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
      }
    }
  });
  return c;
}

Matrix MatTMul(const Matrix& a, const Matrix& b, size_t threads) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  // Each output row i accumulates over all of a's rows k in increasing order,
  // matching the sequential k-outer formulation bit-for-bit while keeping
  // output rows disjoint across threads.
  ParallelFor(threads, 0, a.cols(), kRowGrain, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      double* crow = c.RowPtr(i);
      for (size_t k = 0; k < a.rows(); ++k) {
        const double aki = a(k, i);
        if (aki == 0.0) continue;
        const double* brow = b.RowPtr(k);
        for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
      }
    }
  });
  return c;
}

}  // namespace leva
