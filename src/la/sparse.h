#ifndef LEVA_LA_SPARSE_H_
#define LEVA_LA_SPARSE_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace leva {

/// A (row, col, value) entry used to assemble sparse matrices.
struct Triplet {
  uint32_t row;
  uint32_t col;
  double value;
};

/// CSR sparse matrix. The value-node construction keeps the proximity matrix
/// sparse (Section 3.1), which is what makes the randomized factorization
/// memory-feasible.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from triplets; duplicate (row, col) entries are summed.
  static SparseMatrix FromTriplets(size_t rows, size_t cols,
                                   std::vector<Triplet> triplets);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Y = this * X  (X: cols() x k dense). Output rows are sharded across
  /// `threads` workers; bit-identical at every thread count.
  Matrix Multiply(const Matrix& x, size_t threads = 1) const;
  /// Y = thisᵀ * X  (X: rows() x k dense). The CSR scatter crosses output
  /// rows, so the rows are split into a fixed number of chunks (a function of
  /// the matrix shape only), each accumulated into a private partial that is
  /// merged in chunk order — deterministic at every thread count.
  Matrix TransposeMultiply(const Matrix& x, size_t threads = 1) const;

  /// Value at (r, c), 0 when absent. O(log deg) lookup.
  double At(size_t r, size_t c) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(size_t) +
           cols_idx_.capacity() * sizeof(uint32_t) +
           values_.capacity() * sizeof(double);
  }

  const std::vector<size_t>& offsets() const { return offsets_; }
  const std::vector<uint32_t>& col_indices() const { return cols_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> offsets_;     // rows_+1
  std::vector<uint32_t> cols_idx_;  // sorted within each row
  std::vector<double> values_;
};

}  // namespace leva

#endif  // LEVA_LA_SPARSE_H_
