#include "embed/word2vec.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/parallel.h"
#include "graph/alias.h"

namespace leva {
namespace {

// Precomputed sigmoid over [-kMaxExp, kMaxExp], the classic word2vec trick.
constexpr int kExpTableSize = 1000;
constexpr double kMaxExp = 6.0;

// Sentences per Hogwild shard.
constexpr size_t kSentenceGrain = 64;

struct SigmoidTable {
  double values[kExpTableSize];
  SigmoidTable() {
    for (int i = 0; i < kExpTableSize; ++i) {
      const double x = (2.0 * i / kExpTableSize - 1.0) * kMaxExp;
      values[i] = 1.0 / (1.0 + std::exp(-x));
    }
  }
  double operator()(double x) const {
    if (x >= kMaxExp) return 1.0;
    if (x <= -kMaxExp) return 0.0;
    const int idx =
        static_cast<int>((x + kMaxExp) * (kExpTableSize / (2.0 * kMaxExp)));
    return values[std::clamp(idx, 0, kExpTableSize - 1)];
  }
};

double Sigmoid(double x) {
  static const SigmoidTable table;
  return table(x);
}

}  // namespace

Status Word2Vec::Train(const std::vector<std::vector<uint32_t>>& corpus,
                       size_t vocab_size, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  if (vocab_size == 0) return Status::InvalidArgument("empty vocabulary");
  const size_t dim = options_.dim;

  // Token frequencies drive both subsampling and the negative distribution.
  std::vector<double> freq(vocab_size, 0.0);
  size_t total_tokens = 0;
  for (const auto& sentence : corpus) {
    for (const uint32_t t : sentence) {
      if (t >= vocab_size) {
        return Status::OutOfRange("token id exceeds vocab size");
      }
      freq[t] += 1.0;
      ++total_tokens;
    }
  }
  if (total_tokens == 0) return Status::InvalidArgument("empty corpus");

  std::vector<double> noise(vocab_size);
  for (size_t i = 0; i < vocab_size; ++i) {
    noise[i] = std::pow(freq[i], options_.unigram_power);
  }
  const AliasTable negative_sampler(noise);

  // Subsampling keep-probability per token (word2vec formula).
  std::vector<double> keep(vocab_size, 1.0);
  if (options_.subsample > 0) {
    for (size_t i = 0; i < vocab_size; ++i) {
      if (freq[i] <= 0) continue;
      const double f = freq[i] / static_cast<double>(total_tokens);
      keep[i] = std::min(
          1.0, std::sqrt(options_.subsample / f) + options_.subsample / f);
    }
  }

  node_ = Matrix(vocab_size, dim);
  context_ = Matrix(vocab_size, dim);
  for (size_t i = 0; i < vocab_size; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      node_(i, j) = (rng->Uniform() - 0.5) / static_cast<double>(dim);
    }
  }

  const size_t total_steps =
      std::max<size_t>(1, options_.epochs * total_tokens);
  // Global position in the learning-rate schedule. Hogwild workers bump it
  // with relaxed atomics; in the sequential path it is effectively a plain
  // counter.
  std::atomic<size_t> steps{0};

  // Skip-gram SGD over one sentence. Shared by the sequential and Hogwild
  // paths; in the latter, reads/writes of node_/context_ rows are
  // intentionally unsynchronized (sparse updates collide rarely).
  auto train_sentence = [&](const std::vector<uint32_t>& sentence, Rng* r,
                            std::vector<double>* grad,
                            std::vector<uint32_t>* kept) {
    kept->clear();
    for (const uint32_t t : sentence) {
      if (keep[t] >= 1.0 || r->Uniform() < keep[t]) kept->push_back(t);
    }
    for (size_t pos = 0; pos < kept->size(); ++pos) {
      const size_t step = steps.fetch_add(1, std::memory_order_relaxed) + 1;
      const double lr =
          options_.learning_rate *
          std::max(1e-4, 1.0 - static_cast<double>(step) /
                                   static_cast<double>(total_steps));
      // Dynamic window shrink, as in the reference implementation.
      const size_t shrink = r->UniformInt(options_.window) + 1;
      const size_t begin = pos >= shrink ? pos - shrink : 0;
      const size_t end = std::min(kept->size(), pos + shrink + 1);
      const uint32_t center = (*kept)[pos];
      double* center_vec = node_.RowPtr(center);
      for (size_t cpos = begin; cpos < end; ++cpos) {
        if (cpos == pos) continue;
        const uint32_t ctx = (*kept)[cpos];
        std::fill(grad->begin(), grad->end(), 0.0);
        // Positive pair + `negative` sampled negatives.
        for (size_t k = 0; k <= options_.negative; ++k) {
          uint32_t target;
          double label;
          if (k == 0) {
            target = ctx;
            label = 1.0;
          } else {
            target = negative_sampler.Sample(r);
            if (target == ctx) continue;
            label = 0.0;
          }
          double* target_vec = context_.RowPtr(target);
          double dot = 0;
          for (size_t j = 0; j < dim; ++j) dot += center_vec[j] * target_vec[j];
          const double g = (label - Sigmoid(dot)) * lr;
          for (size_t j = 0; j < dim; ++j) {
            (*grad)[j] += g * target_vec[j];
            target_vec[j] += g * center_vec[j];
          }
        }
        for (size_t j = 0; j < dim; ++j) center_vec[j] += (*grad)[j];
      }
    }
  };

  const size_t threads = ResolveThreads(options_.threads);
  if (threads <= 1 || options_.deterministic) {
    // Sequential update order: bit-identical at any requested thread count.
    std::vector<double> grad(dim);
    std::vector<uint32_t> kept;
    for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
      for (const auto& sentence : corpus) {
        train_sentence(sentence, rng, &grad, &kept);
      }
    }
    return Status::OK();
  }

  // Hogwild: shard sentences across the pool with a per-shard RNG stream.
  // The stream layout (base seed, epoch, shard) is thread-count invariant,
  // but the unsynchronized weight updates are not — see Word2VecOptions.
  const uint64_t base_seed = rng->Next();
  const size_t shards = (corpus.size() + kSentenceGrain - 1) / kSentenceGrain;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    ParallelFor(threads, 0, corpus.size(), kSentenceGrain,
                [&](size_t b, size_t e) {
                  const size_t shard = b / kSentenceGrain;
                  Rng shard_rng = StreamRng(base_seed, rngdomain::kWord2Vec,
                                            epoch * shards + shard);
                  std::vector<double> grad(dim);
                  std::vector<uint32_t> kept;
                  for (size_t s = b; s < e; ++s) {
                    train_sentence(corpus[s], &shard_rng, &grad, &kept);
                  }
                });
  }
  return Status::OK();
}

}  // namespace leva
