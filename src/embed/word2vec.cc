#include "embed/word2vec.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/parallel.h"
#include "common/simd.h"
#include "graph/alias.h"

namespace leva {
namespace {

// Precomputed sigmoid over [-kMaxExp, kMaxExp], the classic word2vec trick.
constexpr int kExpTableSize = 1000;
constexpr double kMaxExp = 6.0;

// Sentences per Hogwild / deterministic shard.
constexpr size_t kSentenceGrain = 64;

// Stack capacity for a skip-gram pair's batched target list (positive +
// negatives). `negative` options at or beyond this fall back to the serial
// reference interleaving.
constexpr size_t kMaxDotBatch = 16;

// Maximum sentences per deterministic-parallel merge round (a multiple of
// kSentenceGrain so shard boundaries line up at any round offset). Shards
// within a round train against the weights frozen at the round start; a
// bounded round keeps the staleness — and therefore the summed-delta
// overshoot on hub rows — small while still amortizing the merge barrier.
// The actual round size shrinks with the corpus (see TrainDeterministic) so
// tiny corpora don't collapse into a single stale batch update.
constexpr size_t kDetRound = 16 * kSentenceGrain;

struct SigmoidTable {
  double values[kExpTableSize];
  SigmoidTable() {
    for (int i = 0; i < kExpTableSize; ++i) {
      const double x = (2.0 * i / kExpTableSize - 1.0) * kMaxExp;
      values[i] = 1.0 / (1.0 + std::exp(-x));
    }
  }
  double operator()(double x) const {
    if (x >= kMaxExp) return 1.0;
    if (x <= -kMaxExp) return 0.0;
    const int idx =
        static_cast<int>((x + kMaxExp) * (kExpTableSize / (2.0 * kMaxExp)));
    return values[std::clamp(idx, 0, kExpTableSize - 1)];
  }
};

// Namespace-scope constant shared by the legacy and fast paths: built once at
// program start, so the hot loops pay no thread-safe-static guard per call.
const SigmoidTable kSigmoid;

double Sigmoid(double x) { return kSigmoid(x); }

// Everything derived from the token frequencies that both trainers share:
// the negative-sampling distribution and the subsampling keep-probabilities.
// Pure function of (freq, total_tokens, options), so legacy and fast paths
// compute bit-identical tables.
struct TrainPlan {
  std::vector<double> keep;
  AliasTable negatives;
  size_t total_tokens = 0;
  size_t total_steps = 1;
};

TrainPlan MakePlan(const std::vector<double>& freq, size_t total_tokens,
                   const Word2VecOptions& options) {
  TrainPlan plan;
  plan.total_tokens = total_tokens;
  plan.total_steps = std::max<size_t>(1, options.epochs * total_tokens);
  const size_t vocab_size = freq.size();

  std::vector<double> noise(vocab_size);
  for (size_t i = 0; i < vocab_size; ++i) {
    noise[i] = std::pow(freq[i], options.unigram_power);
  }
  plan.negatives = AliasTable(noise);

  // Subsampling keep-probability per token (word2vec formula).
  plan.keep.assign(vocab_size, 1.0);
  if (options.subsample > 0) {
    for (size_t i = 0; i < vocab_size; ++i) {
      if (freq[i] <= 0) continue;
      const double f = freq[i] / static_cast<double>(total_tokens);
      plan.keep[i] = std::min(
          1.0, std::sqrt(options.subsample / f) + options.subsample / f);
    }
  }
  return plan;
}

// Weight initialization shared by every path; consumes rng in a fixed order.
void InitWeights(size_t vocab_size, size_t dim, Rng* rng, Matrix* node,
                 Matrix* context) {
  *node = Matrix(vocab_size, dim);
  *context = Matrix(vocab_size, dim);
  for (size_t i = 0; i < vocab_size; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      (*node)(i, j) = (rng->Uniform() - 0.5) / static_cast<double>(dim);
    }
  }
}

// Copy-on-first-touch view over the rows of a weight matrix that one
// deterministic shard updates. `cur` holds the shard's working copies (plain
// sequential SGD within the shard), `orig` the round-start snapshot, so the
// merge applies cur - orig per row. Insertion order is recorded in `rows` and
// is a pure function of the shard's sentences, making the merge order
// thread-count invariant.
struct ShardRows {
  std::unordered_map<uint32_t, uint32_t> slot;
  std::vector<uint32_t> rows;
  std::vector<double> cur;
  std::vector<double> orig;

  double* Touch(const Matrix& m, uint32_t row, size_t dim) {
    const auto [it, inserted] =
        slot.emplace(row, static_cast<uint32_t>(rows.size()));
    if (inserted) {
      rows.push_back(row);
      const double* src = m.RowPtr(row);
      cur.insert(cur.end(), src, src + dim);
      orig.insert(orig.end(), src, src + dim);
    }
    return cur.data() + static_cast<size_t>(it->second) * dim;
  }
};

struct ShardUpdate {
  ShardRows node;
  ShardRows ctx;
};

// One deterministic shard: sequential skip-gram SGD over sentences [b, e)
// against the round-start weights, updates going to copy-on-first-touch
// private rows in `u`. Multi-versioned so the inline simd kernels compile
// under each clone's ISA (see simd.h); reads of node/context are safe because
// the round freezes them.
LEVA_TARGET_CLONES
void TrainShardDet(const Word2VecOptions& options, const TrainPlan& plan,
                   const FlatCorpus& corpus, size_t b, size_t e, size_t epoch,
                   Rng* shard_rng, const Matrix& node, const Matrix& context,
                   ShardUpdate* u) {
  const size_t dim = options.dim;
  const auto& offsets = corpus.offsets();
  std::vector<double> grad(dim);
  std::vector<uint32_t> kept;
  for (size_t s = b; s < e; ++s) {
    const std::span<const uint32_t> sentence = corpus[s];
    kept.clear();
    for (const uint32_t t : sentence) {
      if (plan.keep[t] >= 1.0 || shard_rng->Uniform() < plan.keep[t]) {
        kept.push_back(t);
      }
    }
    for (size_t pos = 0; pos < kept.size(); ++pos) {
      // The learning-rate step is derived from the sentence's raw token
      // offset in the flat corpus — a pure function of (epoch, sentence,
      // position), never of execution order.
      const size_t step = epoch * plan.total_tokens + offsets[s] + pos + 1;
      const double lr =
          options.learning_rate *
          std::max(1e-4, 1.0 - static_cast<double>(step) /
                                   static_cast<double>(plan.total_steps));
      const size_t shrink = shard_rng->UniformInt(options.window) + 1;
      const size_t begin = pos >= shrink ? pos - shrink : 0;
      const size_t end = std::min(kept.size(), pos + shrink + 1);
      const uint32_t center = kept[pos];
      for (size_t cpos = begin; cpos < end; ++cpos) {
        if (cpos == pos) continue;
        const uint32_t ctx = kept[cpos];
        // Touch may grow the context-row arena, so the center pointer (node
        // arena, untouched inside the k loop) is fetched once and target
        // pointers are re-fetched per sample.
        double* center_vec = u->node.Touch(node, center, dim);
        for (size_t k = 0; k <= options.negative; ++k) {
          uint32_t target;
          double label;
          if (k == 0) {
            target = ctx;
            label = 1.0;
          } else {
            target = plan.negatives.Sample(shard_rng);
            if (target == ctx) continue;
            label = 0.0;
          }
          double* target_vec = u->ctx.Touch(context, target, dim);
          const double dot = simd::Dot(center_vec, target_vec, dim);
          const double gcoef = (label - Sigmoid(dot)) * lr;
          if (k == 0) {
            simd::SkipGramInit(gcoef, center_vec, target_vec, grad.data(),
                               dim);
          } else {
            simd::SkipGramAccum(gcoef, center_vec, target_vec, grad.data(),
                                dim);
          }
        }
        simd::VecAdd(center_vec, grad.data(), dim);
      }
    }
  }
}

// Merges the per-shard weight deltas in fixed sentence-shard order (and
// row-first-touch order within a shard) — both pure functions of the seed,
// never of the thread count.
LEVA_TARGET_CLONES
void MergeShardUpdates(std::vector<ShardUpdate>* updates, size_t dim,
                       Matrix* node, Matrix* context) {
  for (ShardUpdate& u : *updates) {
    for (size_t i = 0; i < u.node.rows.size(); ++i) {
      simd::VecAddDelta(node->RowPtr(u.node.rows[i]),
                        u.node.cur.data() + i * dim,
                        u.node.orig.data() + i * dim, dim);
    }
    for (size_t i = 0; i < u.ctx.rows.size(); ++i) {
      simd::VecAddDelta(context->RowPtr(u.ctx.rows[i]),
                        u.ctx.cur.data() + i * dim,
                        u.ctx.orig.data() + i * dim, dim);
    }
  }
}

// Skip-gram SGD over one sentence via the inline simd kernels; multi-
// versioned so the kernels compile under each clone's ISA. Shared by the
// sequential and Hogwild paths; in the latter, reads/writes of node/context
// rows are intentionally unsynchronized (sparse updates collide rarely), so
// the function is exempt from TSan — the deterministic path (TrainShardDet /
// MergeShardUpdates) never touches shared rows mid-round and stays
// instrumented.
LEVA_TARGET_CLONES
LEVA_NO_SANITIZE_THREAD
void TrainSentenceFast(const Word2VecOptions& options, const TrainPlan& plan,
                       std::span<const uint32_t> sentence, Rng* r,
                       std::atomic<size_t>* steps, Matrix* node,
                       Matrix* context, std::vector<double>* grad,
                       std::vector<uint32_t>* kept,
                       std::vector<uint32_t>* negs) {
  const size_t dim = options.dim;
  kept->clear();
  for (const uint32_t t : sentence) {
    if (plan.keep[t] >= 1.0 || r->Uniform() < plan.keep[t]) {
      kept->push_back(t);
    }
  }
  if (kept->empty()) return;
  const size_t base = steps->fetch_add(kept->size(), std::memory_order_relaxed);
  double* g = grad->data();
  negs->resize(options.negative);
  for (size_t pos = 0; pos < kept->size(); ++pos) {
    const size_t step = base + pos + 1;
    const double lr =
        options.learning_rate *
        std::max(1e-4, 1.0 - static_cast<double>(step) /
                                 static_cast<double>(plan.total_steps));
    // Dynamic window shrink, as in the reference implementation.
    const size_t shrink = r->UniformInt(options.window) + 1;
    const size_t begin = pos >= shrink ? pos - shrink : 0;
    const size_t end = std::min(kept->size(), pos + shrink + 1);
    const uint32_t center = (*kept)[pos];
    double* center_vec = node->RowPtr(center);
    for (size_t cpos = begin; cpos < end; ++cpos) {
      if (cpos == pos) continue;
      const uint32_t ctx = (*kept)[cpos];
      // Draw the pair's negatives up front — the same draws in the same
      // order as the reference's interleaved sampling — and assemble the
      // pair's target list: the positive context first, then every negative
      // that differs from it (the reference skips those).
      for (size_t k = 0; k < options.negative; ++k) {
        (*negs)[k] = plan.negatives.Sample(r);
      }
      uint32_t tids[kMaxDotBatch];
      double* rows[kMaxDotBatch];
      double dots[kMaxDotBatch];
      size_t nt = 0;
      bool distinct = options.negative < kMaxDotBatch;
      if (distinct) {
        tids[nt++] = ctx;
        for (size_t k = 0; k < options.negative; ++k) {
          const uint32_t t = (*negs)[k];
          if (t == ctx) continue;
          for (size_t i = 1; i < nt; ++i) distinct &= (tids[i] != t);
          tids[nt++] = t;
        }
      }
      if (distinct) {
        // All targets hit distinct context rows, so no update in this pair
        // feeds a later dot: compute every dot up front with the interleaved
        // batch kernel (bit-identical sums, ~one dot-chain's latency), then
        // apply the updates in the reference order. k == 0 initializes the
        // gradient buffer in-kernel, so no std::fill per pair.
        for (size_t t = 0; t < nt; ++t) rows[t] = context->RowPtr(tids[t]);
        simd::DotBatch(center_vec, rows, nt, dim, dots);
        for (size_t t = 0; t < nt; ++t) {
          const double label = t == 0 ? 1.0 : 0.0;
          const double gcoef = (label - Sigmoid(dots[t])) * lr;
          if (t == 0) {
            simd::SkipGramInit(gcoef, center_vec, rows[t], g, dim);
          } else {
            simd::SkipGramAccum(gcoef, center_vec, rows[t], g, dim);
          }
        }
      } else {
        // A repeated negative row (or an oversized batch): fall back to the
        // reference's serial interleaving, where each dot sees all earlier
        // updates of this pair.
        for (size_t k = 0; k <= options.negative; ++k) {
          uint32_t target;
          double label;
          if (k == 0) {
            target = ctx;
            label = 1.0;
          } else {
            target = (*negs)[k - 1];
            if (target == ctx) continue;
            label = 0.0;
          }
          double* target_vec = context->RowPtr(target);
          const double dot = simd::Dot(center_vec, target_vec, dim);
          const double gcoef = (label - Sigmoid(dot)) * lr;
          if (k == 0) {
            simd::SkipGramInit(gcoef, center_vec, target_vec, g, dim);
          } else {
            simd::SkipGramAccum(gcoef, center_vec, target_vec, g, dim);
          }
        }
      }
      simd::VecAdd(center_vec, g, dim);
    }
  }
}

// Deterministic-parallel trainer: shards of kSentenceGrain sentences train
// against the weights frozen at the start of a kDetRound-sentence round,
// each shard doing plain sequential SGD on private row copies; the shard
// deltas merge in fixed shard order at the round barrier. Output is a pure
// function of (corpus, seed) at any thread count.
Status TrainDeterministic(const Word2VecOptions& options,
                          const FlatCorpus& corpus, const TrainPlan& plan,
                          size_t threads, Rng* rng, Matrix* node,
                          Matrix* context) {
  const size_t dim = options.dim;
  const size_t num_sentences = corpus.size();
  const size_t shards_per_epoch =
      (num_sentences + kSentenceGrain - 1) / kSentenceGrain;
  const uint64_t base_seed = rng->Next();

  // Round size scales with the corpus (roughly eight merge rounds per epoch,
  // capped at kDetRound): a corpus smaller than ~8 shards runs one shard per
  // round, which is plain sequential SGD with periodic (no-op) merges, while
  // large corpora amortize the barrier over the full 16-shard round. A pure
  // function of the corpus size — never of the thread count — so the output
  // stays thread-count invariant.
  const size_t round_size =
      std::clamp<size_t>(num_sentences / (8 * kSentenceGrain), 1,
                         kDetRound / kSentenceGrain) *
      kSentenceGrain;

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t rb = 0; rb < num_sentences; rb += round_size) {
      const size_t re = std::min(num_sentences, rb + round_size);
      const size_t round_shards =
          (re - rb + kSentenceGrain - 1) / kSentenceGrain;
      std::vector<ShardUpdate> updates(round_shards);

      // Workers only READ node/context (frozen for the round) and write
      // shard-private state, so this is race-free by construction; the merge
      // below happens after the ParallelFor barrier.
      ParallelFor(threads, rb, re, kSentenceGrain, [&](size_t b, size_t e) {
        ShardUpdate u;
        Rng shard_rng =
            StreamRng(base_seed, rngdomain::kWord2VecDet,
                      epoch * shards_per_epoch + b / kSentenceGrain);
        TrainShardDet(options, plan, corpus, b, e, epoch, &shard_rng, *node,
                      *context, &u);
        updates[(b - rb) / kSentenceGrain] = std::move(u);
      });

      MergeShardUpdates(&updates, dim, node, context);
    }
  }
  return Status::OK();
}

}  // namespace

Status Word2Vec::Train(const std::vector<std::vector<uint32_t>>& corpus,
                       size_t vocab_size, Rng* rng) {
  return Train(Flatten(corpus), vocab_size, rng);
}

Status Word2Vec::Train(const FlatCorpus& corpus, size_t vocab_size, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  if (vocab_size == 0) return Status::InvalidArgument("empty vocabulary");
  const size_t dim = options_.dim;

  // Token frequencies drive both subsampling and the negative distribution.
  // The flat layout makes this a single streaming pass.
  std::vector<double> freq(vocab_size, 0.0);
  for (const uint32_t t : corpus.tokens()) {
    if (t >= vocab_size) return Status::OutOfRange("token id exceeds vocab size");
    freq[t] += 1.0;
  }
  const size_t total_tokens = corpus.num_tokens();
  if (total_tokens == 0) return Status::InvalidArgument("empty corpus");

  const TrainPlan plan = MakePlan(freq, total_tokens, options_);
  if (warm_) {
    // Warm start: adopt the staged node vectors, random-init only the new
    // vocabulary tail (same draw as a cold start would give those rows),
    // zero context — continuing SGD from a fitted model.
    const Matrix warm = std::move(warm_node_);
    warm_node_ = Matrix();
    warm_ = false;
    if (warm.cols() != dim) {
      return Status::InvalidArgument(
          "warm-start matrix has dim " + std::to_string(warm.cols()) +
          ", expected " + std::to_string(dim));
    }
    if (warm.rows() > vocab_size) {
      return Status::InvalidArgument(
          "warm-start matrix has " + std::to_string(warm.rows()) +
          " rows but vocab size is " + std::to_string(vocab_size));
    }
    node_ = Matrix(vocab_size, dim);
    context_ = Matrix(vocab_size, dim);
    if (warm.rows() > 0) {
      std::copy(warm.data().begin(), warm.data().end(),
                node_.mutable_data().begin());
    }
    for (size_t i = warm.rows(); i < vocab_size; ++i) {
      for (size_t j = 0; j < dim; ++j) {
        node_(i, j) = (rng->Uniform() - 0.5) / static_cast<double>(dim);
      }
    }
  } else {
    InitWeights(vocab_size, dim, rng, &node_, &context_);
  }

  const size_t threads = ResolveThreads(options_.threads);
  if (options_.deterministic) {
    return TrainDeterministic(options_, corpus, plan, threads, rng, &node_,
                              &context_);
  }

  // Global position in the learning-rate schedule, batched from per-token to
  // per-sentence: one relaxed fetch_add covers a sentence's kept tokens, and
  // each position derives its step from the returned base — the sequential
  // path sees exactly the per-token step values of the legacy trainer.
  std::atomic<size_t> steps{0};

  if (threads <= 1) {
    // Sequential update order: bit-identical to TrainLegacy (pinned in
    // tests/word2vec_test.cc).
    std::vector<double> grad(dim);
    std::vector<uint32_t> kept;
    std::vector<uint32_t> negs;
    for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
      for (size_t s = 0; s < corpus.size(); ++s) {
        TrainSentenceFast(options_, plan, corpus[s], rng, &steps, &node_,
                          &context_, &grad, &kept, &negs);
      }
    }
    return Status::OK();
  }

  // Hogwild: shard sentences across the pool with a per-shard RNG stream.
  // The stream layout (base seed, epoch, shard) is thread-count invariant,
  // but the unsynchronized weight updates are not — see Word2VecOptions.
  const uint64_t base_seed = rng->Next();
  const size_t shards = (corpus.size() + kSentenceGrain - 1) / kSentenceGrain;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    ParallelFor(threads, 0, corpus.size(), kSentenceGrain,
                [&](size_t b, size_t e) {
                  const size_t shard = b / kSentenceGrain;
                  Rng shard_rng = StreamRng(base_seed, rngdomain::kWord2Vec,
                                            epoch * shards + shard);
                  std::vector<double> grad(dim);
                  std::vector<uint32_t> kept;
                  std::vector<uint32_t> negs;
                  for (size_t s = b; s < e; ++s) {
                    TrainSentenceFast(options_, plan, corpus[s], &shard_rng,
                                      &steps, &node_, &context_, &grad, &kept,
                                      &negs);
                  }
                });
  }
  return Status::OK();
}

Status Word2Vec::TrainLegacy(const std::vector<std::vector<uint32_t>>& corpus,
                             size_t vocab_size, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  if (vocab_size == 0) return Status::InvalidArgument("empty vocabulary");
  const size_t dim = options_.dim;

  std::vector<double> freq(vocab_size, 0.0);
  size_t total_tokens = 0;
  for (const auto& sentence : corpus) {
    for (const uint32_t t : sentence) {
      if (t >= vocab_size) {
        return Status::OutOfRange("token id exceeds vocab size");
      }
      freq[t] += 1.0;
      ++total_tokens;
    }
  }
  if (total_tokens == 0) return Status::InvalidArgument("empty corpus");

  const TrainPlan plan = MakePlan(freq, total_tokens, options_);
  InitWeights(vocab_size, dim, rng, &node_, &context_);

  const size_t total_steps = plan.total_steps;
  // Global position in the learning-rate schedule. Hogwild workers bump it
  // with relaxed atomics; in the sequential path it is effectively a plain
  // counter.
  std::atomic<size_t> steps{0};

  // Scalar skip-gram SGD over one sentence: the pre-fast-path reference.
  auto train_sentence = [&](const std::vector<uint32_t>& sentence, Rng* r,
                            std::vector<double>* grad,
                            std::vector<uint32_t>* kept) {
    kept->clear();
    for (const uint32_t t : sentence) {
      if (plan.keep[t] >= 1.0 || r->Uniform() < plan.keep[t]) {
        kept->push_back(t);
      }
    }
    for (size_t pos = 0; pos < kept->size(); ++pos) {
      const size_t step = steps.fetch_add(1, std::memory_order_relaxed) + 1;
      const double lr =
          options_.learning_rate *
          std::max(1e-4, 1.0 - static_cast<double>(step) /
                                   static_cast<double>(total_steps));
      const size_t shrink = r->UniformInt(options_.window) + 1;
      const size_t begin = pos >= shrink ? pos - shrink : 0;
      const size_t end = std::min(kept->size(), pos + shrink + 1);
      const uint32_t center = (*kept)[pos];
      double* center_vec = node_.RowPtr(center);
      for (size_t cpos = begin; cpos < end; ++cpos) {
        if (cpos == pos) continue;
        const uint32_t ctx = (*kept)[cpos];
        std::fill(grad->begin(), grad->end(), 0.0);
        for (size_t k = 0; k <= options_.negative; ++k) {
          uint32_t target;
          double label;
          if (k == 0) {
            target = ctx;
            label = 1.0;
          } else {
            target = plan.negatives.Sample(r);
            if (target == ctx) continue;
            label = 0.0;
          }
          double* target_vec = context_.RowPtr(target);
          double dot = 0;
          for (size_t j = 0; j < dim; ++j) dot += center_vec[j] * target_vec[j];
          const double g = (label - Sigmoid(dot)) * lr;
          for (size_t j = 0; j < dim; ++j) {
            (*grad)[j] += g * target_vec[j];
            target_vec[j] += g * center_vec[j];
          }
        }
        for (size_t j = 0; j < dim; ++j) center_vec[j] += (*grad)[j];
      }
    }
  };

  const size_t threads = ResolveThreads(options_.threads);
  if (threads <= 1 || options_.deterministic) {
    // Legacy semantics: deterministic forces the sequential update order.
    std::vector<double> grad(dim);
    std::vector<uint32_t> kept;
    for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
      for (const auto& sentence : corpus) {
        train_sentence(sentence, rng, &grad, &kept);
      }
    }
    return Status::OK();
  }

  const uint64_t base_seed = rng->Next();
  const size_t shards = (corpus.size() + kSentenceGrain - 1) / kSentenceGrain;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    ParallelFor(threads, 0, corpus.size(), kSentenceGrain,
                [&](size_t b, size_t e) {
                  const size_t shard = b / kSentenceGrain;
                  Rng shard_rng = StreamRng(base_seed, rngdomain::kWord2Vec,
                                            epoch * shards + shard);
                  std::vector<double> grad(dim);
                  std::vector<uint32_t> kept;
                  for (size_t s = b; s < e; ++s) {
                    train_sentence(corpus[s], &shard_rng, &grad, &kept);
                  }
                });
  }
  return Status::OK();
}

}  // namespace leva
