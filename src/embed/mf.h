#ifndef LEVA_EMBED_MF_H_
#define LEVA_EMBED_MF_H_

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace leva {

/// Matrix-factorization embedding parameters (Section 4.2.1).
struct MfOptions {
  size_t dim = 100;
  size_t oversample = 10;
  size_t power_iterations = 2;
  /// Negative-sampling ratio in the proximity matrix (Section 4.2, tau).
  double tau = 1e-3;
  /// Proximity window T: the matrix is built from the averaged multi-step
  /// transition sum (P + ... + P^T)/T, the NetMF-style generalization the
  /// paper's Section 4.2.1 points to via [35, 41]. T = 1 is the plain
  /// edge-level proximity; T >= 2 lets multi-hop join paths (base row -> key
  /// token -> foreign row -> attribute token) reach the factorization.
  size_t window = 2;
  /// Keep at most this many entries per row of the windowed transition
  /// matrix (largest first); bounds the density of P^t.
  size_t max_row_entries = 128;
  /// Apply ProNE-style spectral propagation after factorization.
  bool spectral_propagation = true;
  size_t chebyshev_order = 8;
  /// Band-pass filter center / sharpness (ProNE's mu, theta).
  double mu = 0.2;
  double theta = 0.5;
  /// Worker threads for the SVD / propagation matmuls (0 = hardware).
  /// Embeddings are bit-identical at every thread count.
  size_t threads = 1;
};

/// Builds the shifted-PMI proximity matrix of Section 4.2:
///   M_ij = max(0, log W_ij - log(tau * P_{D,j})),
/// where W is the window-averaged transition matrix (P + ... + P^T)/T and
/// P_{D,j} node j's share of total edge weight. With window = 1 this is the
/// plain edge-level proximity; the value-node construction keeps the base
/// transition matrix at nnz = O(MN) and `max_row_entries` bounds the density
/// of the higher powers.
SparseMatrix BuildProximityMatrix(const LevaGraph& graph, double tau,
                                  size_t window = 1,
                                  size_t max_row_entries = 128);

/// Symmetric normalized adjacency D^{-1/2} A D^{-1/2}.
SparseMatrix NormalizedAdjacency(const LevaGraph& graph);

/// ProNE-style spectral propagation: applies a Chebyshev-expanded band-pass
/// filter of the (rescaled) graph Laplacian to the embedding, amplifying the
/// informative spectral band. (Zhang et al., IJCAI 2019.)
Result<Matrix> SpectralPropagate(const LevaGraph& graph,
                                 const Matrix& embedding, size_t order,
                                 double mu, double theta, size_t threads = 1);

/// Full MF pipeline: proximity matrix -> randomized SVD -> E = U_d Σ_d^{1/2}
/// -> optional spectral propagation. Returns an N x dim matrix whose rows
/// align with graph node ids.
Result<Matrix> MatrixFactorizationEmbed(const LevaGraph& graph,
                                        const MfOptions& options, Rng* rng);

/// Estimated working-set bytes of the MF path for N nodes / E edges and
/// dimension d; drives the automatic MF-vs-RW selection (Section 4.2).
size_t EstimateMfMemoryBytes(size_t nodes, size_t edges, size_t dim);
/// Estimated bytes for the RW path (alias tables + corpus).
size_t EstimateRwMemoryBytes(size_t nodes, size_t edges, size_t walk_length,
                             size_t epochs, bool weighted);

}  // namespace leva

#endif  // LEVA_EMBED_MF_H_
