#include "embed/walks_batched.h"

#include <algorithm>
#include <utility>

#include "graph/alias.h"

namespace leva {
namespace {

// Frontier records per counting-sort chunk. Chunk boundaries are part of the
// deterministic bucket layout (each chunk owns one cursor per block), so the
// value is fixed — never derived from the thread count.
constexpr size_t kSortChunk = 16384;

// Frontier records per sampling chunk. Records are independent (each owns
// its RNG and its walk slot), so this grain only balances dispatch overhead
// against load skew.
constexpr size_t kProcessGrain = 2048;

// Walkers per frontier-initialization chunk.
constexpr size_t kInitGrain = 4096;

// Nodes per chunk of the flat alias build (matches the per-walker engine's
// alias-build sharding).
constexpr size_t kAliasGrain = 256;

// Target bytes of CSR adjacency + alias slots per vertex block: the slice of
// the graph a bucket's walkers re-reference while they sample. Half the L2
// on typical parts, leaving the other half for the frontier and trajectory
// streams flowing through it.
constexpr size_t kBlockBudgetBytes = size_t{1} << 20;

}  // namespace

BatchedWalkGenerator::BatchedWalkGenerator(const LevaGraph* graph,
                                           WalkOptions options)
    : graph_(graph),
      options_(options),
      threads_(ResolveThreads(options.threads)) {
  if (options_.p != 1.0 || options_.q != 1.0) {
    // Second-order transitions need the previous vertex's neighbor list at
    // every step — state the bucketed frontier deliberately does not carry.
    // Delegate wholesale instead of mis-serving the biased case.
    fallback_ = std::make_unique<WalkGenerator>(graph_, options_);
    return;
  }
  if (options_.weighted) BuildFlatAlias();
  ChooseBlockGeometry();
}

BatchedWalkGenerator::~BatchedWalkGenerator() = default;

const std::vector<size_t>& BatchedWalkGenerator::visit_counts() const {
  return fallback_ ? fallback_->visit_counts() : visits_;
}

size_t BatchedWalkGenerator::AliasMemoryBytes() const {
  if (fallback_) return fallback_->AliasMemoryBytes();
  return alias_prob_.capacity() * sizeof(double) +
         alias_idx_.capacity() * sizeof(uint32_t) + alias_empty_.capacity();
}

uint64_t BatchedWalkGenerator::SlotBase(NodeId node) const {
  // Flat slot of `node`'s first combined (base + delta) adjacency entry:
  // base slots first (nodes appended past the base CSR start at its end),
  // shifted up by every preceding node's delta slots. Collapses to
  // offsets()[node] on a delta-free graph.
  const uint64_t base = static_cast<size_t>(node) < graph_->BaseNodes()
                            ? graph_->offsets()[node]
                            : graph_->targets().size();
  return base + graph_->DeltaSlotOffset(node);
}

void BatchedWalkGenerator::BuildFlatAlias() {
  const size_t n = graph_->NumNodes();
  const size_t slots = graph_->targets().size() + graph_->DeltaSlots();
  alias_prob_.resize(slots);
  alias_idx_.resize(slots);
  alias_empty_.assign(n, 0);
  // Same sharding and same BuildAliasSlots numerics as the per-walker
  // engine's table build, just written into one CSR-indexed layout so a
  // vertex block's slots are contiguous with the adjacency they sample.
  // Weights are the base span followed by the delta span, matching the
  // per-walker engine's combined AliasTable input draw for draw.
  ParallelFor(threads_, 0, n, kAliasGrain, [&](size_t b, size_t e) {
    AliasBuildScratch scratch;
    std::vector<double> w;
    for (NodeId node = static_cast<NodeId>(b); node < e; ++node) {
      const auto weights = graph_->Weights(node);
      const auto delta = graph_->DeltaWeights(node);
      w.assign(weights.begin(), weights.end());
      w.insert(w.end(), delta.begin(), delta.end());
      const uint64_t off = SlotBase(node);
      if (!BuildAliasSlots({w.data(), w.size()}, alias_prob_.data() + off,
                           alias_idx_.data() + off, &scratch)) {
        alias_empty_[node] = 1;
      }
    }
  });
}

void BatchedWalkGenerator::ChooseBlockGeometry() {
  const size_t n = graph_->NumNodes();
  if (n == 0) {
    block_shift_ = 0;
    num_blocks_ = 1;
    return;
  }
  const size_t total = WalkWorkingSetBytes(*graph_, options_.weighted);
  const size_t per_vertex = std::max<size_t>(1, total / n);
  // Power-of-two vertices per block so the bucket of a vertex is one shift.
  size_t block = std::max<size_t>(1, kBlockBudgetBytes / per_vertex);
  block_shift_ = 0;
  while ((size_t{2} << block_shift_) <= block) ++block_shift_;
  num_blocks_ = ((n - 1) >> block_shift_) + 1;
}

NodeId BatchedWalkGenerator::SampleNext(NodeId cur, Rng* rng) const {
  const auto nbrs = graph_->Neighbors(cur);
  const auto dnbrs = graph_->DeltaNeighbors(cur);
  const size_t deg = nbrs.size() + dnbrs.size();
  if (deg == 0) return kInvalidNode;
  const auto nbr_at = [&](size_t k) {
    return k < nbrs.size() ? nbrs[k] : dnbrs[k - nbrs.size()];
  };
  if (options_.weighted) {
    if (alias_empty_[cur]) return kInvalidNode;
    // Draw-for-draw the same stream consumption as AliasTable::Sample.
    const uint64_t off = SlotBase(cur);
    const uint32_t i = static_cast<uint32_t>(rng->UniformInt(deg));
    const uint32_t pick =
        rng->Uniform() < alias_prob_[off + i] ? i : alias_idx_[off + i];
    return nbr_at(pick);
  }
  return nbr_at(rng->UniformInt(deg));
}

size_t BatchedWalkGenerator::BucketFrontier(size_t m) {
  const size_t chunks = (m + kSortChunk - 1) / kSortChunk;
  const size_t cells = num_blocks_ * chunks;
  bucket_offsets_.assign(cells, 0);
  Walker* fr = front_.data();
  Walker* bk = back_.data();
  const size_t shift = block_shift_;

  // Pass 1: per-chunk bucket histograms. Cell (block, chunk) is owned by
  // exactly one chunk, so the counting pass is race-free and the resulting
  // layout — block-major, then chunk, then record order — is a pure
  // function of (m, kSortChunk, block map): stable, and identical at every
  // thread count.
  ParallelFor(threads_, 0, chunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * kSortChunk;
      const size_t hi = std::min(m, lo + kSortChunk);
      for (size_t i = lo; i < hi; ++i) {
        if (fr[i].cur == kInvalidNode) continue;  // finished walker: drop
        ++bucket_offsets_[(static_cast<size_t>(fr[i].cur) >> shift) * chunks +
                          c];
      }
    }
  });

  uint64_t total = 0;
  for (size_t cell = 0; cell < cells; ++cell) {
    const uint64_t count = bucket_offsets_[cell];
    bucket_offsets_[cell] = total;
    total += count;
  }

  // Pass 2: placement. Sequential reads of the old frontier; writes advance
  // one cursor per destination block — a handful of forward streams, not
  // random scatter.
  ParallelFor(threads_, 0, chunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      const size_t lo = c * kSortChunk;
      const size_t hi = std::min(m, lo + kSortChunk);
      for (size_t i = lo; i < hi; ++i) {
        const Walker& w = fr[i];
        if (w.cur == kInvalidNode) continue;
        bk[bucket_offsets_[(static_cast<size_t>(w.cur) >> shift) * chunks +
                           c]++] = w;
      }
    }
  });

  std::swap(front_, back_);
  return static_cast<size_t>(total);
}

void BatchedWalkGenerator::StepEpoch(uint64_t base_seed, size_t epoch,
                                     const std::vector<NodeId>& starts,
                                     NodeId* traj, uint32_t* traj_len) {
  const size_t walkers = starts.size();  // == NumNodes unless start_nodes set
  const size_t walk_length = options_.walk_length;
  // Walkers that survive every step emit walk_length tokens; early deaths
  // overwrite their slot below.
  std::fill(traj_len, traj_len + walkers,
            static_cast<uint32_t>(walk_length));
  if (walk_length == 0) return;

  front_.EnsureSize(walkers);
  back_.EnsureSize(walkers);
  Walker* fr = front_.data();
  ParallelForNuma(threads_, 0, walkers, kInitGrain, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      fr[i].id = static_cast<NodeId>(i);
      fr[i].cur = starts[i];
      fr[i].rng = StreamRng(base_seed, rngdomain::kWalk,
                            static_cast<uint64_t>(epoch) * walkers + i);
    }
  });

  size_t m = walkers;
  for (size_t step = 0; step < walk_length; ++step) {
    // (a) Bucket/shuffle the frontier by vertex block — also compacts away
    // walkers that ended last step.
    m = BucketFrontier(m);
    if (m == 0) break;
    const bool last = step + 1 == walk_length;
    Walker* frontier = front_.data();
    // (b) Sample transitions block by block. Records are processed in
    // bucket order, so consecutive walkers hit the same cache-resident
    // slice of offsets/targets/alias slots; each record is independent
    // (own RNG, own walk slot), so the chunk grain is free to cut across
    // block boundaries.
    ParallelForNuma(threads_, 0, m, kProcessGrain, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        Walker& w = frontier[i];
        traj[static_cast<size_t>(w.id) * walk_length + step] = w.cur;
        if (last) continue;  // final emission: the discarded draw is skipped
        const NodeId next = SampleNext(w.cur, &w.rng);
        if (next == kInvalidNode) {
          // Same semantics as Trajectory(): the token was emitted, the walk
          // ends here.
          traj_len[w.id] = static_cast<uint32_t>(step + 1);
          w.cur = kInvalidNode;
        } else {
          w.cur = next;
        }
      }
    });
  }
}

Result<FlatCorpus> BatchedWalkGenerator::Generate(Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  if (fallback_) return fallback_->Generate(rng);
  const size_t n = graph_->NumNodes();
  visits_.assign(n, 0);
  if (n == 0 || options_.epochs == 0) return FlatCorpus();
  // One draw, same as the per-walker engine — all stream seeds derive from
  // it, so the two engines consume the caller's RNG identically.
  const uint64_t base_seed = rng->Next();
  return walk_internal::RunEpochSchedule(
      n, options_, base_seed, &visits_,
      [&](size_t epoch, const std::vector<NodeId>& starts, NodeId* traj,
          uint32_t* traj_len) {
        StepEpoch(base_seed, epoch, starts, traj, traj_len);
      });
}

}  // namespace leva
