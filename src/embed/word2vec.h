#ifndef LEVA_EMBED_WORD2VEC_H_
#define LEVA_EMBED_WORD2VEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "embed/corpus.h"
#include "la/matrix.h"

namespace leva {

/// Skip-gram with negative sampling (Mikolov et al. 2013), trained over a
/// corpus of uint32 token-id sentences (typically random walks). Produces a
/// node embedding (input vectors) and a context embedding, the pair that
/// approximates the proximity matrix of Section 4.2.
struct Word2VecOptions {
  size_t dim = 100;
  size_t window = 5;
  size_t negative = 5;
  /// Frequent-token subsampling threshold; the paper's "negative sampling
  /// rate" setting (1e-3).
  double subsample = 1e-3;
  double learning_rate = 0.025;
  size_t epochs = 3;
  /// Unigram distortion exponent for the negative-sampling distribution.
  double unigram_power = 0.75;
  /// Worker threads (0 = hardware). With more than one thread and
  /// `deterministic == false`, sentence shards are trained Hogwild-style:
  /// lock-free SGD on the shared weight matrices (Recht et al. 2011). Sparse
  /// gradients make update collisions rare, so quality matches sequential
  /// training, but the floating-point result depends on interleaving and is
  /// NOT reproducible run-to-run.
  size_t threads = 1;
  /// Reproducible parallel training: sentence shards compute their updates
  /// against the weights frozen at the start of a fixed-size sentence round,
  /// each shard applying its own updates to private row copies, and the
  /// per-shard weight deltas are merged into the shared matrices in fixed
  /// sentence-shard order at the round barrier. The output is a pure
  /// function of the seed at ANY thread count (pinned 1/2/4/8 in tests) —
  /// this mode is no longer forced onto the sequential path. Note the result
  /// differs from `threads == 1, deterministic == false` (which follows the
  /// exact classic SGD order): determinism here means thread-count
  /// invariance, not sequential equivalence.
  bool deterministic = false;
};

class Word2Vec {
 public:
  explicit Word2Vec(Word2VecOptions options = {}) : options_(options) {}

  /// Trains on `corpus`; token ids must be < vocab_size. Dispatches to the
  /// sequential fast path (threads <= 1; bit-identical to TrainLegacy), the
  /// deterministic-parallel merge path (options.deterministic), or Hogwild.
  Status Train(const FlatCorpus& corpus, size_t vocab_size, Rng* rng);

  /// Convenience: flattens a nested corpus and trains on it.
  Status Train(const std::vector<std::vector<uint32_t>>& corpus,
               size_t vocab_size, Rng* rng);

  /// Reference trainer (pre-fast-path): scalar inner loops, per-pair
  /// gradient-buffer fill, per-token learning-rate step. Kept compiled as
  /// the differential baseline — the sequential fast path is pinned
  /// bit-identical to it in tests/word2vec_test.cc.
  Status TrainLegacy(const std::vector<std::vector<uint32_t>>& corpus,
                     size_t vocab_size, Rng* rng);

  /// Stages `node` as the initial node-vector matrix for the NEXT Train
  /// call (the streaming-update warm start: continue SGNS from a previously
  /// fitted embedding instead of random init). Rows 0..node.rows() are
  /// adopted verbatim; rows past them — new vocabulary — are initialized by
  /// the standard (U(0,1)-0.5)/dim draw, and the context matrix starts at
  /// zero exactly as a cold start does. Consumed by that Train (a second
  /// Train cold-starts again); `node.cols()` must equal options().dim and
  /// rows() must not exceed the trained vocab_size, checked at Train time.
  /// TrainLegacy ignores warm starts (it is the frozen cold-start baseline).
  void WarmStart(Matrix node) {
    warm_node_ = std::move(node);
    warm_ = true;
  }

  /// Input ("node") vectors, vocab_size x dim.
  const Matrix& node_vectors() const { return node_; }
  /// Output ("context") vectors.
  const Matrix& context_vectors() const { return context_; }

  const Word2VecOptions& options() const { return options_; }

 private:
  Word2VecOptions options_;
  Matrix node_;
  Matrix context_;
  Matrix warm_node_;  // staged by WarmStart, consumed by the next Train
  bool warm_ = false;
};

}  // namespace leva

#endif  // LEVA_EMBED_WORD2VEC_H_
