#include "embed/line.h"

#include <algorithm>
#include <cmath>

#include "graph/alias.h"

namespace leva {
namespace {

double Sigmoid(double x) {
  if (x > 10) return 1.0;
  if (x < -10) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

Result<Matrix> LineEmbed(const LevaGraph& graph, const LineOptions& options,
                         Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  const size_t n = graph.NumNodes();
  if (n == 0) return Status::InvalidArgument("empty graph");

  // Directed edge list (both directions of every undirected edge) with an
  // alias table over edge weights, and a distorted-degree negative sampler.
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<double> edge_weights;
  std::vector<double> degree(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = graph.Neighbors(u);
    const auto weights = graph.Weights(u);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      edges.emplace_back(u, nbrs[k]);
      edge_weights.push_back(weights[k]);
      degree[u] += weights[k];
    }
  }
  if (edges.empty()) {
    // Degenerate but valid: all nodes isolated. Return small random vectors.
    Matrix e(n, options.dim);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < options.dim; ++j) {
        e(i, j) = (rng->Uniform() - 0.5) / static_cast<double>(options.dim);
      }
    }
    return e;
  }
  const AliasTable edge_sampler(edge_weights);
  std::vector<double> noise(n);
  for (size_t i = 0; i < n; ++i) {
    noise[i] = std::pow(degree[i], options.unigram_power);
  }
  const AliasTable negative_sampler(noise);

  const size_t dim = options.dim;
  Matrix node(n, dim);
  Matrix context(n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      node(i, j) = (rng->Uniform() - 0.5) / static_cast<double>(dim);
    }
  }

  const size_t total = options.samples_per_edge * edges.size();
  std::vector<double> grad(dim);
  for (size_t step = 0; step < total; ++step) {
    const double lr =
        options.learning_rate *
        std::max(1e-4, 1.0 - static_cast<double>(step) /
                                 static_cast<double>(total));
    const auto [u, v] = edges[edge_sampler.Sample(rng)];
    double* uvec = node.RowPtr(u);
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t k = 0; k <= options.negative; ++k) {
      NodeId target;
      double label;
      if (k == 0) {
        target = v;
        label = 1.0;
      } else {
        target = negative_sampler.Sample(rng);
        if (target == v) continue;
        label = 0.0;
      }
      double* tvec = context.RowPtr(target);
      double dot = 0;
      for (size_t j = 0; j < dim; ++j) dot += uvec[j] * tvec[j];
      const double g = (label - Sigmoid(dot)) * lr;
      for (size_t j = 0; j < dim; ++j) {
        grad[j] += g * tvec[j];
        tvec[j] += g * uvec[j];
      }
    }
    for (size_t j = 0; j < dim; ++j) uvec[j] += grad[j];
  }
  return node;
}

}  // namespace leva
