#ifndef LEVA_EMBED_LINE_H_
#define LEVA_EMBED_LINE_H_

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "la/matrix.h"

namespace leva {

/// LINE-style second-order embedding (Tang et al., WWW 2015): edge sampling
/// with negative sampling, optimizing sigma(u . v') per observed edge. A
/// third plug-in for Leva's embedding-construction stage (Section 4.2 calls
/// the stage "plug'n'play"): cheaper than full random walks, captures
/// first/second-order proximity without materializing a proximity matrix.
struct LineOptions {
  size_t dim = 100;
  size_t negative = 5;
  /// Total edge samples = samples_per_edge * (2 * graph edges).
  size_t samples_per_edge = 20;
  double learning_rate = 0.025;
  double unigram_power = 0.75;
};

/// Returns an N x dim node-embedding matrix aligned with graph node ids.
Result<Matrix> LineEmbed(const LevaGraph& graph, const LineOptions& options,
                         Rng* rng);

}  // namespace leva

#endif  // LEVA_EMBED_LINE_H_
