#include "embed/walks.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/parallel.h"

namespace leva {
namespace {

// Walks per ParallelFor chunk; fixed so chunking never depends on the thread
// count.
constexpr size_t kWalkGrain = 64;

// Nodes per chunk of the alias-table build. Each table is O(degree) work, so
// a larger grain than the walk sharding keeps dispatch overhead negligible.
constexpr size_t kAliasGrain = 256;

}  // namespace

size_t WalkWorkingSetBytes(const LevaGraph& graph, bool weighted) {
  const size_t n = graph.NumNodes();
  const size_t slots = graph.targets().size();  // directed edge entries
  size_t bytes = (n + 1) * sizeof(uint64_t)     // CSR offsets
                 + slots * sizeof(NodeId);      // CSR targets
  if (weighted) {
    // Flat alias layout: prob (double) + alias (uint32) per slot, plus the
    // per-node empty flag. The per-walker engine's vector-of-AliasTable
    // holds the same payload (plus heap headers), so one estimate serves
    // both engines.
    bytes += slots * (sizeof(double) + sizeof(uint32_t)) + n;
  }
  return bytes;
}

WalkEngine ResolveWalkEngine(const LevaGraph& graph,
                             const WalkOptions& options) {
  if (options.p != 1.0 || options.q != 1.0) return WalkEngine::kWalker;
  if (options.engine != WalkEngine::kAuto) return options.engine;
  return WalkWorkingSetBytes(graph, options.weighted) >
                 options.batched_auto_threshold_bytes
             ? WalkEngine::kBatched
             : WalkEngine::kWalker;
}

namespace walk_internal {

Result<FlatCorpus> RunEpochSchedule(size_t num_nodes,
                                    const WalkOptions& options,
                                    uint64_t base_seed,
                                    std::vector<size_t>* visits,
                                    const StepEpochFn& step_epoch) {
  const size_t n = num_nodes;
  std::vector<size_t>& visit_counts = *visits;
  FlatCorpus corpus;

  size_t normal_epochs = options.epochs;
  size_t restart_epochs = 0;
  if (options.balanced_restarts) {
    restart_epochs = std::min(options.restart_epochs, options.epochs);
    normal_epochs = options.epochs - restart_epochs;
  }
  // Every epoch (normal and restart) emits up to one walk per node; with no
  // visit limit every stepped token survives, so reserve the exact worst
  // case up front and the token buffer never reallocates.
  const size_t tokens_per_epoch = n * options.walk_length;
  corpus.Reserve(options.epochs * n,
                 options.visit_limit == 0 ? options.epochs * tokens_per_epoch
                                          : tokens_per_epoch);

  // Per-epoch trajectory slab: walk i steps into slot [i * walk_length, ...).
  // Allocated once and reused by every epoch — no per-walk heap churn.
  std::vector<NodeId> traj(tokens_per_epoch);
  std::vector<uint32_t> traj_len(n);
  const auto run_epoch = [&](size_t epoch, const std::vector<NodeId>& starts) {
    step_epoch(epoch, starts, traj.data(), traj_len.data());
    // Epoch barrier: apply the visit-limit filter sequentially in walk order,
    // merging per-walk counts into the visit counters. This preserves the
    // sequential generator's exact guarantee that no node is emitted more
    // than `visit_limit` times while keeping the stepping above
    // embarrassingly parallel (trajectories never read the counters).
    // Surviving tokens are appended straight into the corpus; EndSentence
    // drops empty walks.
    for (size_t i = 0; i < n; ++i) {
      const NodeId* walk = traj.data() + i * options.walk_length;
      const size_t len = traj_len[i];
      if (options.visit_limit == 0) {
        // No filter: bulk-append the whole trajectory (one memcpy into the
        // token buffer) instead of pushing token by token.
        corpus.AppendSentence({walk, len});
        for (size_t j = 0; j < len; ++j) ++visit_counts[walk[j]];
        continue;
      } else {
        for (size_t j = 0; j < len; ++j) {
          const NodeId cur = walk[j];
          if (visit_counts[cur] >= options.visit_limit) continue;
          corpus.PushToken(cur);
          ++visit_counts[cur];
        }
      }
      corpus.EndSentence();
    }
  };

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (size_t e = 0; e < normal_epochs; ++e) {
    Rng shuffle_rng = StreamRng(base_seed, rngdomain::kWalkShuffle, e);
    shuffle_rng.Shuffle(&order);
    run_epoch(e, order);
  }

  if (restart_epochs > 0) {
    // Worst-represented quartile by merged visit count; restarting from these
    // nodes balances their representation in the corpus (Section 4.2.2). The
    // quartile is recomputed at every restart-epoch barrier so each epoch
    // re-targets the nodes that are worst *now*, not the ones that were worst
    // before any balancing ran. Ties break by node id so the start list is a
    // pure function of the merged counts.
    std::vector<NodeId> by_visits(n);
    std::vector<NodeId> starts(n);
    const size_t worst = std::max<size_t>(1, n / 4);
    for (size_t e = 0; e < restart_epochs; ++e) {
      std::iota(by_visits.begin(), by_visits.end(), 0);
      std::sort(by_visits.begin(), by_visits.end(), [&](NodeId a, NodeId b) {
        return visit_counts[a] != visit_counts[b] ? visit_counts[a] < visit_counts[b]
                                                  : a < b;
      });
      for (size_t i = 0; i < n; ++i) starts[i] = by_visits[i % worst];
      run_epoch(normal_epochs + e, starts);
    }
  }
  return corpus;
}

}  // namespace walk_internal

WalkGenerator::WalkGenerator(const LevaGraph* graph, WalkOptions options)
    : graph_(graph), options_(options) {
  if (options_.weighted) {
    const size_t n = graph_->NumNodes();
    alias_.resize(n);
    // The build is a sequential O(edges) startup cost on large graphs;
    // tables land at disjoint indices, so shard it across the pool with a
    // chunk-local weight buffer. No RNG is involved, so the result is
    // trivially thread-count invariant.
    ParallelFor(ResolveThreads(options_.threads), 0, n, kAliasGrain,
                [&](size_t b, size_t e) {
                  std::vector<double> w;
                  for (NodeId i = static_cast<NodeId>(b); i < e; ++i) {
                    const auto weights = graph_->Weights(i);
                    w.assign(weights.begin(), weights.end());
                    alias_[i] = AliasTable(w);
                  }
                });
  }
}

size_t WalkGenerator::AliasMemoryBytes() const {
  size_t bytes = 0;
  for (const AliasTable& t : alias_) bytes += t.MemoryBytes();
  return bytes;
}

NodeId WalkGenerator::Step(NodeId current, NodeId previous,
                           std::span<const NodeId> prev_nbrs, Rng* rng) const {
  const auto nbrs = graph_->Neighbors(current);
  if (nbrs.empty()) return kInvalidNode;

  const bool biased = options_.p != 1.0 || options_.q != 1.0;
  if (!biased || previous == kInvalidNode) {
    if (options_.weighted) {
      if (alias_[current].empty()) return kInvalidNode;
      return nbrs[alias_[current].Sample(rng)];
    }
    return nbrs[rng->UniformInt(nbrs.size())];
  }

  // Node2vec second-order transition: O(deg) per step. The graphs Leva
  // builds are sparse, so no per-edge alias tables are kept. `prev_nbrs` is
  // the previous node's (sorted) neighbor span, fetched once per step by the
  // caller instead of once per candidate neighbor.
  const auto weights = graph_->Weights(current);
  double total = 0;
  thread_local std::vector<double> probs;
  probs.resize(nbrs.size());
  for (size_t i = 0; i < nbrs.size(); ++i) {
    double bias;
    if (nbrs[i] == previous) {
      bias = 1.0 / options_.p;
    } else if (std::binary_search(prev_nbrs.begin(), prev_nbrs.end(),
                                  nbrs[i])) {
      bias = 1.0;
    } else {
      bias = 1.0 / options_.q;
    }
    probs[i] = bias * (options_.weighted ? weights[i] : 1.0);
    total += probs[i];
  }
  double r = rng->Uniform() * total;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    r -= probs[i];
    if (r <= 0) return nbrs[i];
  }
  return nbrs.back();
}

size_t WalkGenerator::Trajectory(NodeId start, Rng* rng, NodeId* out) const {
  size_t len = 0;
  NodeId prev = kInvalidNode;
  std::span<const NodeId> prev_nbrs;
  NodeId cur = start;
  for (size_t step = 0; step < options_.walk_length; ++step) {
    out[len++] = cur;
    const NodeId next = Step(cur, prev, prev_nbrs, rng);
    if (next == kInvalidNode) break;
    prev = cur;
    prev_nbrs = graph_->Neighbors(cur);
    cur = next;
  }
  return len;
}

void WalkGenerator::Trajectory(NodeId start, Rng* rng,
                               std::vector<NodeId>* out) const {
  out->resize(options_.walk_length);
  out->resize(Trajectory(start, rng, out->data()));
}

Result<FlatCorpus> WalkGenerator::Generate(Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  const size_t n = graph_->NumNodes();
  visits_.assign(n, 0);
  if (n == 0 || options_.epochs == 0) return FlatCorpus();

  const size_t threads = ResolveThreads(options_.threads);
  // All per-walk and per-epoch streams derive from this one draw, so the
  // corpus is a pure function of the caller's rng state and never of the
  // thread count.
  const uint64_t base_seed = rng->Next();
  // The schedule (shuffles, restarts, visit filter) lives in the shared
  // driver; this engine only supplies the per-walker stepping.
  return walk_internal::RunEpochSchedule(
      n, options_, base_seed, &visits_,
      [&](size_t epoch, const std::vector<NodeId>& starts, NodeId* traj,
          uint32_t* traj_len) {
        ParallelFor(threads, 0, n, kWalkGrain, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            Rng walk_rng = StreamRng(base_seed, rngdomain::kWalk,
                                     static_cast<uint64_t>(epoch) * n + i);
            traj_len[i] = static_cast<uint32_t>(Trajectory(
                starts[i], &walk_rng, traj + i * options_.walk_length));
          }
        });
      });
}

Result<WalkCorpus> WalkGenerator::GenerateNested(Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  const size_t n = graph_->NumNodes();
  visits_.assign(n, 0);
  WalkCorpus corpus;
  if (n == 0 || options_.epochs == 0) return corpus;

  const size_t threads = ResolveThreads(options_.threads);
  const uint64_t base_seed = rng->Next();

  size_t normal_epochs = options_.epochs;
  size_t restart_epochs = 0;
  if (options_.balanced_restarts) {
    restart_epochs = std::min(options_.restart_epochs, options_.epochs);
    normal_epochs = options_.epochs - restart_epochs;
  }
  corpus.reserve(options_.epochs * n);

  std::vector<std::vector<NodeId>> batch(n);  // per-walk trajectory slots
  const auto run_epoch = [&](size_t epoch, const std::vector<NodeId>& starts) {
    ParallelFor(threads, 0, n, kWalkGrain, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        Rng walk_rng = StreamRng(base_seed, rngdomain::kWalk,
                                 static_cast<uint64_t>(epoch) * n + i);
        Trajectory(starts[i], &walk_rng, &batch[i]);
      }
    });
    for (size_t i = 0; i < n; ++i) {
      std::vector<NodeId>& traj = batch[i];
      if (options_.visit_limit == 0) {
        for (const NodeId cur : traj) ++visits_[cur];
        if (!traj.empty()) corpus.push_back(std::move(traj));
        continue;
      }
      std::vector<NodeId> walk;
      walk.reserve(traj.size());
      for (const NodeId cur : traj) {
        if (visits_[cur] >= options_.visit_limit) continue;
        walk.push_back(cur);
        ++visits_[cur];
      }
      if (!walk.empty()) corpus.push_back(std::move(walk));
    }
  };

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (size_t e = 0; e < normal_epochs; ++e) {
    Rng shuffle_rng = StreamRng(base_seed, rngdomain::kWalkShuffle, e);
    shuffle_rng.Shuffle(&order);
    run_epoch(e, order);
  }

  if (restart_epochs > 0) {
    std::vector<NodeId> by_visits(n);
    std::vector<NodeId> starts(n);
    const size_t worst = std::max<size_t>(1, n / 4);
    for (size_t e = 0; e < restart_epochs; ++e) {
      std::iota(by_visits.begin(), by_visits.end(), 0);
      std::sort(by_visits.begin(), by_visits.end(), [&](NodeId a, NodeId b) {
        return visits_[a] != visits_[b] ? visits_[a] < visits_[b] : a < b;
      });
      for (size_t i = 0; i < n; ++i) starts[i] = by_visits[i % worst];
      run_epoch(normal_epochs + e, starts);
    }
  }
  return corpus;
}

}  // namespace leva
