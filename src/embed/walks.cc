#include "embed/walks.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/parallel.h"

namespace leva {
namespace {

// Walks per ParallelFor chunk; fixed so chunking never depends on the thread
// count.
constexpr size_t kWalkGrain = 64;

// Nodes per chunk of the alias-table build. Each table is O(degree) work, so
// a larger grain than the walk sharding keeps dispatch overhead negligible.
constexpr size_t kAliasGrain = 256;

}  // namespace

size_t WalkWorkingSetBytes(const LevaGraph& graph, bool weighted) {
  const size_t n = graph.NumNodes();
  // Directed edge entries, base CSR plus any streaming-update delta segment.
  const size_t slots = graph.targets().size() + graph.DeltaSlots();
  size_t bytes = (n + 1) * sizeof(uint64_t)     // CSR offsets
                 + slots * sizeof(NodeId);      // CSR targets
  if (weighted) {
    // Flat alias layout: prob (double) + alias (uint32) per slot, plus the
    // per-node empty flag. The per-walker engine's vector-of-AliasTable
    // holds the same payload (plus heap headers), so one estimate serves
    // both engines.
    bytes += slots * (sizeof(double) + sizeof(uint32_t)) + n;
  }
  return bytes;
}

WalkEngine ResolveWalkEngine(const LevaGraph& graph,
                             const WalkOptions& options) {
  if (options.p != 1.0 || options.q != 1.0) return WalkEngine::kWalker;
  if (options.engine != WalkEngine::kAuto) return options.engine;
  return WalkWorkingSetBytes(graph, options.weighted) >
                 options.batched_auto_threshold_bytes
             ? WalkEngine::kBatched
             : WalkEngine::kWalker;
}

namespace walk_internal {

Result<FlatCorpus> RunEpochSchedule(size_t num_nodes,
                                    const WalkOptions& options,
                                    uint64_t base_seed,
                                    std::vector<size_t>* visits,
                                    const StepEpochFn& step_epoch) {
  const size_t n = num_nodes;
  std::vector<size_t>& visit_counts = *visits;
  FlatCorpus corpus;

  // A non-empty start_nodes list narrows each epoch to one walk per entry
  // (the streaming-update refresh path); empty keeps the historical
  // one-walk-per-node schedule bit for bit.
  const bool subset = !options.start_nodes.empty();
  const size_t walkers = subset ? options.start_nodes.size() : n;
  if (subset) {
    for (const NodeId s : options.start_nodes) {
      if (static_cast<size_t>(s) >= n) {
        return Status::InvalidArgument("walk start node " + std::to_string(s) +
                                       " out of range " + std::to_string(n));
      }
    }
  }

  size_t normal_epochs = options.epochs;
  size_t restart_epochs = 0;
  if (options.balanced_restarts) {
    restart_epochs = std::min(options.restart_epochs, options.epochs);
    normal_epochs = options.epochs - restart_epochs;
  }
  // Every epoch (normal and restart) emits up to one walk per walker; with
  // no visit limit every stepped token survives, so reserve the exact worst
  // case up front and the token buffer never reallocates.
  const size_t tokens_per_epoch = walkers * options.walk_length;
  corpus.Reserve(options.epochs * walkers,
                 options.visit_limit == 0 ? options.epochs * tokens_per_epoch
                                          : tokens_per_epoch);

  // Per-epoch trajectory slab: walk i steps into slot [i * walk_length, ...).
  // Allocated once and reused by every epoch — no per-walk heap churn.
  std::vector<NodeId> traj(tokens_per_epoch);
  std::vector<uint32_t> traj_len(walkers);
  const auto run_epoch = [&](size_t epoch, const std::vector<NodeId>& starts) {
    step_epoch(epoch, starts, traj.data(), traj_len.data());
    // Epoch barrier: apply the visit-limit filter sequentially in walk order,
    // merging per-walk counts into the visit counters. This preserves the
    // sequential generator's exact guarantee that no node is emitted more
    // than `visit_limit` times while keeping the stepping above
    // embarrassingly parallel (trajectories never read the counters).
    // Surviving tokens are appended straight into the corpus; EndSentence
    // drops empty walks.
    for (size_t i = 0; i < walkers; ++i) {
      const NodeId* walk = traj.data() + i * options.walk_length;
      const size_t len = traj_len[i];
      if (options.visit_limit == 0) {
        // No filter: bulk-append the whole trajectory (one memcpy into the
        // token buffer) instead of pushing token by token.
        corpus.AppendSentence({walk, len});
        for (size_t j = 0; j < len; ++j) ++visit_counts[walk[j]];
        continue;
      } else {
        for (size_t j = 0; j < len; ++j) {
          const NodeId cur = walk[j];
          if (visit_counts[cur] >= options.visit_limit) continue;
          corpus.PushToken(cur);
          ++visit_counts[cur];
        }
      }
      corpus.EndSentence();
    }
  };

  std::vector<NodeId> order;
  if (subset) {
    order = options.start_nodes;
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }
  for (size_t e = 0; e < normal_epochs; ++e) {
    Rng shuffle_rng = StreamRng(base_seed, rngdomain::kWalkShuffle, e);
    shuffle_rng.Shuffle(&order);
    run_epoch(e, order);
  }

  if (restart_epochs > 0) {
    // Worst-represented quartile by merged visit count; restarting from these
    // nodes balances their representation in the corpus (Section 4.2.2). The
    // quartile is recomputed at every restart-epoch barrier so each epoch
    // re-targets the nodes that are worst *now*, not the ones that were worst
    // before any balancing ran. Ties break by node id so the start list is a
    // pure function of the merged counts. With a start subset, the
    // candidates are the subset pool — balancing never drags starts onto
    // nodes the caller did not ask to seed.
    std::vector<NodeId> by_visits;
    if (subset) {
      by_visits = options.start_nodes;
    } else {
      by_visits.resize(n);
    }
    std::vector<NodeId> starts(walkers);
    const size_t worst = std::max<size_t>(1, walkers / 4);
    for (size_t e = 0; e < restart_epochs; ++e) {
      if (subset) {
        by_visits = options.start_nodes;
      } else {
        std::iota(by_visits.begin(), by_visits.end(), 0);
      }
      std::sort(by_visits.begin(), by_visits.end(), [&](NodeId a, NodeId b) {
        return visit_counts[a] != visit_counts[b] ? visit_counts[a] < visit_counts[b]
                                                  : a < b;
      });
      for (size_t i = 0; i < walkers; ++i) starts[i] = by_visits[i % worst];
      run_epoch(normal_epochs + e, starts);
    }
  }
  return corpus;
}

}  // namespace walk_internal

WalkGenerator::WalkGenerator(const LevaGraph* graph, WalkOptions options)
    : graph_(graph), options_(options) {
  if (options_.weighted) {
    const size_t n = graph_->NumNodes();
    alias_.resize(n);
    // The build is a sequential O(edges) startup cost on large graphs;
    // tables land at disjoint indices, so shard it across the pool with a
    // chunk-local weight buffer. No RNG is involved, so the result is
    // trivially thread-count invariant.
    ParallelFor(ResolveThreads(options_.threads), 0, n, kAliasGrain,
                [&](size_t b, size_t e) {
                  std::vector<double> w;
                  for (NodeId i = static_cast<NodeId>(b); i < e; ++i) {
                    // Combined base + delta weights, in span order — the
                    // index an alias draw yields maps back through the same
                    // concatenation.
                    const auto weights = graph_->Weights(i);
                    const auto delta = graph_->DeltaWeights(i);
                    w.assign(weights.begin(), weights.end());
                    w.insert(w.end(), delta.begin(), delta.end());
                    alias_[i] = AliasTable(w);
                  }
                });
  }
}

size_t WalkGenerator::AliasMemoryBytes() const {
  size_t bytes = 0;
  for (const AliasTable& t : alias_) bytes += t.MemoryBytes();
  return bytes;
}

NodeId WalkGenerator::Step(NodeId current, NodeId previous,
                           std::span<const NodeId> prev_nbrs,
                           std::span<const NodeId> prev_delta_nbrs,
                           Rng* rng) const {
  // Combined adjacency: the base span followed by the delta span (edges
  // appended by streaming updates). Index k of any draw maps back through
  // the same concatenation. Both spans are empty-delta no-ops on a compacted
  // graph, so this is the historical base-only walk bit for bit.
  const auto nbrs = graph_->Neighbors(current);
  const auto dnbrs = graph_->DeltaNeighbors(current);
  const size_t deg = nbrs.size() + dnbrs.size();
  if (deg == 0) return kInvalidNode;
  const auto nbr_at = [&](size_t k) {
    return k < nbrs.size() ? nbrs[k] : dnbrs[k - nbrs.size()];
  };

  const bool biased = options_.p != 1.0 || options_.q != 1.0;
  if (!biased || previous == kInvalidNode) {
    if (options_.weighted) {
      if (alias_[current].empty()) return kInvalidNode;
      return nbr_at(alias_[current].Sample(rng));
    }
    return nbr_at(rng->UniformInt(deg));
  }

  // Node2vec second-order transition: O(deg) per step. The graphs Leva
  // builds are sparse, so no per-edge alias tables are kept. `prev_nbrs` /
  // `prev_delta_nbrs` are the previous node's (sorted) neighbor spans,
  // fetched once per step by the caller instead of once per candidate
  // neighbor.
  const auto weights = graph_->Weights(current);
  const auto dweights = graph_->DeltaWeights(current);
  double total = 0;
  thread_local std::vector<double> probs;
  probs.resize(deg);
  for (size_t i = 0; i < deg; ++i) {
    const NodeId nb = nbr_at(i);
    double bias;
    if (nb == previous) {
      bias = 1.0 / options_.p;
    } else if (std::binary_search(prev_nbrs.begin(), prev_nbrs.end(), nb) ||
               std::binary_search(prev_delta_nbrs.begin(),
                                  prev_delta_nbrs.end(), nb)) {
      bias = 1.0;
    } else {
      bias = 1.0 / options_.q;
    }
    const double w = options_.weighted
                         ? (i < weights.size() ? weights[i]
                                               : dweights[i - weights.size()])
                         : 1.0;
    probs[i] = bias * w;
    total += probs[i];
  }
  double r = rng->Uniform() * total;
  for (size_t i = 0; i < deg; ++i) {
    r -= probs[i];
    if (r <= 0) return nbr_at(i);
  }
  return nbr_at(deg - 1);
}

size_t WalkGenerator::Trajectory(NodeId start, Rng* rng, NodeId* out) const {
  size_t len = 0;
  NodeId prev = kInvalidNode;
  std::span<const NodeId> prev_nbrs;
  std::span<const NodeId> prev_dnbrs;
  NodeId cur = start;
  for (size_t step = 0; step < options_.walk_length; ++step) {
    out[len++] = cur;
    const NodeId next = Step(cur, prev, prev_nbrs, prev_dnbrs, rng);
    if (next == kInvalidNode) break;
    prev = cur;
    prev_nbrs = graph_->Neighbors(cur);
    prev_dnbrs = graph_->DeltaNeighbors(cur);
    cur = next;
  }
  return len;
}

void WalkGenerator::Trajectory(NodeId start, Rng* rng,
                               std::vector<NodeId>* out) const {
  out->resize(options_.walk_length);
  out->resize(Trajectory(start, rng, out->data()));
}

Result<FlatCorpus> WalkGenerator::Generate(Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  const size_t n = graph_->NumNodes();
  visits_.assign(n, 0);
  if (n == 0 || options_.epochs == 0) return FlatCorpus();

  const size_t threads = ResolveThreads(options_.threads);
  // All per-walk and per-epoch streams derive from this one draw, so the
  // corpus is a pure function of the caller's rng state and never of the
  // thread count.
  const uint64_t base_seed = rng->Next();
  // The schedule (shuffles, restarts, visit filter) lives in the shared
  // driver; this engine only supplies the per-walker stepping.
  return walk_internal::RunEpochSchedule(
      n, options_, base_seed, &visits_,
      [&](size_t epoch, const std::vector<NodeId>& starts, NodeId* traj,
          uint32_t* traj_len) {
        const size_t walkers = starts.size();  // == n unless start_nodes set
        ParallelFor(threads, 0, walkers, kWalkGrain, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            Rng walk_rng =
                StreamRng(base_seed, rngdomain::kWalk,
                          static_cast<uint64_t>(epoch) * walkers + i);
            traj_len[i] = static_cast<uint32_t>(Trajectory(
                starts[i], &walk_rng, traj + i * options_.walk_length));
          }
        });
      });
}

Result<WalkCorpus> WalkGenerator::GenerateNested(Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  const size_t n = graph_->NumNodes();
  visits_.assign(n, 0);
  WalkCorpus corpus;
  if (n == 0 || options_.epochs == 0) return corpus;

  const size_t threads = ResolveThreads(options_.threads);
  const uint64_t base_seed = rng->Next();

  const bool subset = !options_.start_nodes.empty();
  const size_t walkers = subset ? options_.start_nodes.size() : n;
  if (subset) {
    for (const NodeId s : options_.start_nodes) {
      if (static_cast<size_t>(s) >= n) {
        return Status::InvalidArgument("walk start node " + std::to_string(s) +
                                       " out of range " + std::to_string(n));
      }
    }
  }

  size_t normal_epochs = options_.epochs;
  size_t restart_epochs = 0;
  if (options_.balanced_restarts) {
    restart_epochs = std::min(options_.restart_epochs, options_.epochs);
    normal_epochs = options_.epochs - restart_epochs;
  }
  corpus.reserve(options_.epochs * walkers);

  std::vector<std::vector<NodeId>> batch(walkers);  // per-walk slots
  const auto run_epoch = [&](size_t epoch, const std::vector<NodeId>& starts) {
    ParallelFor(threads, 0, walkers, kWalkGrain, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        Rng walk_rng = StreamRng(base_seed, rngdomain::kWalk,
                                 static_cast<uint64_t>(epoch) * walkers + i);
        Trajectory(starts[i], &walk_rng, &batch[i]);
      }
    });
    for (size_t i = 0; i < walkers; ++i) {
      std::vector<NodeId>& traj = batch[i];
      if (options_.visit_limit == 0) {
        for (const NodeId cur : traj) ++visits_[cur];
        if (!traj.empty()) corpus.push_back(std::move(traj));
        continue;
      }
      std::vector<NodeId> walk;
      walk.reserve(traj.size());
      for (const NodeId cur : traj) {
        if (visits_[cur] >= options_.visit_limit) continue;
        walk.push_back(cur);
        ++visits_[cur];
      }
      if (!walk.empty()) corpus.push_back(std::move(walk));
    }
  };

  std::vector<NodeId> order;
  if (subset) {
    order = options_.start_nodes;
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }
  for (size_t e = 0; e < normal_epochs; ++e) {
    Rng shuffle_rng = StreamRng(base_seed, rngdomain::kWalkShuffle, e);
    shuffle_rng.Shuffle(&order);
    run_epoch(e, order);
  }

  if (restart_epochs > 0) {
    std::vector<NodeId> by_visits;
    if (!subset) by_visits.resize(n);
    std::vector<NodeId> starts(walkers);
    const size_t worst = std::max<size_t>(1, walkers / 4);
    for (size_t e = 0; e < restart_epochs; ++e) {
      if (subset) {
        by_visits = options_.start_nodes;
      } else {
        std::iota(by_visits.begin(), by_visits.end(), 0);
      }
      std::sort(by_visits.begin(), by_visits.end(), [&](NodeId a, NodeId b) {
        return visits_[a] != visits_[b] ? visits_[a] < visits_[b] : a < b;
      });
      for (size_t i = 0; i < walkers; ++i) starts[i] = by_visits[i % worst];
      run_epoch(normal_epochs + e, starts);
    }
  }
  return corpus;
}

}  // namespace leva
