#include "embed/walks.h"

#include <algorithm>
#include <numeric>

namespace leva {
namespace {

// True when `x` is a neighbor of `node` (neighbor lists are sorted).
bool IsNeighbor(const LevaGraph& g, NodeId node, NodeId x) {
  const auto nbrs = g.Neighbors(node);
  return std::binary_search(nbrs.begin(), nbrs.end(), x);
}

}  // namespace

WalkGenerator::WalkGenerator(const LevaGraph* graph, WalkOptions options)
    : graph_(graph), options_(options) {
  if (options_.weighted) {
    const size_t n = graph_->NumNodes();
    alias_.resize(n);
    std::vector<double> w;
    for (NodeId i = 0; i < n; ++i) {
      const auto weights = graph_->Weights(i);
      w.assign(weights.begin(), weights.end());
      alias_[i] = AliasTable(w);
    }
  }
}

size_t WalkGenerator::AliasMemoryBytes() const {
  size_t bytes = 0;
  for (const AliasTable& t : alias_) bytes += t.MemoryBytes();
  return bytes;
}

NodeId WalkGenerator::Step(NodeId current, NodeId previous, Rng* rng) const {
  const auto nbrs = graph_->Neighbors(current);
  if (nbrs.empty()) return kInvalidNode;

  const bool biased = options_.p != 1.0 || options_.q != 1.0;
  if (!biased || previous == kInvalidNode) {
    if (options_.weighted) {
      if (alias_[current].empty()) return kInvalidNode;
      return nbrs[alias_[current].Sample(rng)];
    }
    return nbrs[rng->UniformInt(nbrs.size())];
  }

  // Node2vec second-order transition: O(deg) per step. The graphs Leva
  // builds are sparse, so no per-edge alias tables are kept.
  const auto weights = graph_->Weights(current);
  double total = 0;
  thread_local std::vector<double> probs;
  probs.resize(nbrs.size());
  for (size_t i = 0; i < nbrs.size(); ++i) {
    double bias;
    if (nbrs[i] == previous) {
      bias = 1.0 / options_.p;
    } else if (IsNeighbor(*graph_, previous, nbrs[i])) {
      bias = 1.0;
    } else {
      bias = 1.0 / options_.q;
    }
    probs[i] = bias * (options_.weighted ? weights[i] : 1.0);
    total += probs[i];
  }
  double r = rng->Uniform() * total;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    r -= probs[i];
    if (r <= 0) return nbrs[i];
  }
  return nbrs.back();
}

void WalkGenerator::Walk(NodeId start, Rng* rng, std::vector<NodeId>* out) {
  out->clear();
  NodeId prev = kInvalidNode;
  NodeId cur = start;
  for (size_t step = 0; step < options_.walk_length; ++step) {
    const bool limited = options_.visit_limit > 0 &&
                         visits_[cur] >= options_.visit_limit;
    if (!limited) {
      out->push_back(cur);
      ++visits_[cur];
    }
    const NodeId next = Step(cur, prev, rng);
    if (next == kInvalidNode) break;
    prev = cur;
    cur = next;
  }
}

Result<WalkCorpus> WalkGenerator::Generate(Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  const size_t n = graph_->NumNodes();
  visits_.assign(n, 0);
  WalkCorpus corpus;

  size_t normal_epochs = options_.epochs;
  size_t restart_epochs = 0;
  if (options_.balanced_restarts) {
    restart_epochs = std::min(options_.restart_epochs, options_.epochs);
    normal_epochs = options_.epochs - restart_epochs;
  }
  corpus.reserve(options_.epochs * n);

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<NodeId> walk;
  for (size_t e = 0; e < normal_epochs; ++e) {
    rng->Shuffle(&order);
    for (const NodeId start : order) {
      Walk(start, rng, &walk);
      if (!walk.empty()) corpus.push_back(walk);
    }
  }

  if (restart_epochs > 0) {
    // Worst-represented quartile by visit count so far; restarting from these
    // nodes balances their representation in the corpus (Section 4.2.2).
    std::vector<NodeId> by_visits(order);
    std::sort(by_visits.begin(), by_visits.end(),
              [&](NodeId a, NodeId b) { return visits_[a] < visits_[b]; });
    const size_t worst = std::max<size_t>(1, n / 4);
    for (size_t e = 0; e < restart_epochs; ++e) {
      for (size_t i = 0; i < n; ++i) {
        const NodeId start = by_visits[i % worst];
        Walk(start, rng, &walk);
        if (!walk.empty()) corpus.push_back(walk);
      }
    }
  }
  return corpus;
}

}  // namespace leva
