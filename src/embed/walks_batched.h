#ifndef LEVA_EMBED_WALKS_BATCHED_H_
#define LEVA_EMBED_WALKS_BATCHED_H_

#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "common/rng.h"
#include "embed/corpus.h"
#include "embed/walks.h"
#include "graph/graph.h"

namespace leva {

/// Epoch-synchronous, cache-efficient walk engine (the FlashMob idea,
/// SOSP'21): instead of one walker pointer-chasing the CSR graph to
/// completion — a dependent random access per step, catastrophic once the
/// graph outgrows the last-level cache — ALL of an epoch's walkers advance
/// in lockstep. Before every step the frontier (a flat array of
/// (walker id, current vertex, RNG state) records) is counting-sorted by
/// vertex *block*, a contiguous id range whose CSR adjacency plus alias
/// slots fit a fixed cache budget. Walkers in the same block then sample
/// their transitions back to back, so the adjacency reads that were random
/// across a multi-hundred-MiB graph become near-sequential scans of one
/// cache-resident block. The sort itself is a streaming two-pass counting
/// sort — sequential reads, bucket-sequential writes — so the engine trades
/// latency-bound pointer chasing for bandwidth-bound passes.
///
/// Determinism and bit-identity: every walker draws from the same
/// counter-based RNG stream the per-walker engine uses
/// (StreamRng(base_seed, kWalk, epoch * n + walker)), streams are consumed
/// in the same within-walker order, the weighted path samples from alias
/// slots built by the same BuildAliasSlots routine, and the epoch schedule
/// (start shuffles, balanced restarts, visit-limit barrier) is the shared
/// walk_internal::RunEpochSchedule driver. The emitted FlatCorpus is
/// therefore byte-identical to WalkGenerator::Generate for the same seed,
/// at every thread count — pinned by the differential suite in
/// tests/walks_batched_test.cc. Node2vec-biased walks (p or q != 1) need
/// the previous vertex's neighbor list per step, which defeats the
/// bucketing; they transparently fall back to an internal per-walker
/// engine.
///
/// NUMA: the frontier double buffers come from node-striped first-touch
/// storage and the sampling pass runs under ParallelForNuma, so on
/// multi-socket machines each socket streams the frontier stripe whose
/// pages it owns (single-node machines take the identical plain-ParallelFor
/// path).
class BatchedWalkGenerator {
 public:
  BatchedWalkGenerator(const LevaGraph* graph, WalkOptions options);
  ~BatchedWalkGenerator();

  /// Generates the full corpus; bit-identical to WalkGenerator::Generate
  /// for the same `rng` state, options, and graph.
  Result<FlatCorpus> Generate(Rng* rng);

  /// Visit counts from the last Generate call (per node).
  const std::vector<size_t>& visit_counts() const;

  /// Bytes of the flat alias layout (zero for unweighted walks).
  size_t AliasMemoryBytes() const;

  /// Vertex-block geometry chosen for this graph (for tests and benches):
  /// ids are bucketed as `vertex >> block_shift()` into `num_blocks()`
  /// buckets. Pure function of the graph and options.
  size_t block_shift() const { return block_shift_; }
  size_t num_blocks() const { return num_blocks_; }

 private:
  /// One frontier record. 40 bytes, moved wholesale by the counting sort so
  /// a walker's RNG state travels with it and every field access during
  /// sampling is a sequential read of the record just placed.
  struct Walker {
    NodeId id;   // index into the epoch's walk slots
    NodeId cur;  // current vertex, kInvalidNode once the walk ended
    Rng rng;
  };
  static_assert(sizeof(Walker) == 40, "frontier records should stay packed");

  /// Flat slot of `node`'s first combined (base + delta) adjacency entry in
  /// alias_prob_/alias_idx_; equals offsets()[node] on a delta-free graph.
  uint64_t SlotBase(NodeId node) const;
  void BuildFlatAlias();
  void ChooseBlockGeometry();
  /// Uniform/weighted transition out of `cur`; draw-for-draw identical to
  /// WalkGenerator::Step for p == q == 1.
  NodeId SampleNext(NodeId cur, Rng* rng) const;
  /// Steps one epoch's walks into the slab (see walk_internal::StepEpochFn).
  void StepEpoch(uint64_t base_seed, size_t epoch,
                 const std::vector<NodeId>& starts, NodeId* traj,
                 uint32_t* traj_len);
  /// Stable counting sort of the first `m` frontier records by vertex
  /// block, dropping finished records; returns the surviving count.
  /// Deterministic: bucket layout depends on fixed chunk grain and the
  /// block map, never on the thread count.
  size_t BucketFrontier(size_t m);

  const LevaGraph* graph_;
  WalkOptions options_;
  size_t threads_ = 1;

  // Flat alias layout, indexed by CSR slot (weighted only): the same values
  // AliasTable would hold, laid out adjacent to the adjacency they sample.
  std::vector<double> alias_prob_;
  std::vector<uint32_t> alias_idx_;
  // Per node: degree > 0 but zero total weight — the "empty alias table"
  // case the per-walker engine treats as a dead end.
  std::vector<uint8_t> alias_empty_;

  size_t block_shift_ = 0;
  size_t num_blocks_ = 1;

  // Frontier double buffer (node-striped first touch) and sort scratch.
  NumaArray<Walker> front_;
  NumaArray<Walker> back_;
  std::vector<uint64_t> bucket_offsets_;  // (block, chunk)-major cursors

  std::vector<size_t> visits_;
  // Per-walker fallback for node2vec-biased options; constructed instead of
  // the flat alias when p or q != 1.
  std::unique_ptr<WalkGenerator> fallback_;
};

}  // namespace leva

#endif  // LEVA_EMBED_WALKS_BATCHED_H_
