#include "embed/mf.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "la/decomp.h"

namespace leva {

SparseMatrix BuildProximityMatrix(const LevaGraph& graph, double tau,
                                  size_t window, size_t max_row_entries) {
  const size_t n = graph.NumNodes();
  if (window == 0) window = 1;
  // Weighted degrees and total weight.
  std::vector<double> degree(n, 0.0);
  double total = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    for (const float w : graph.Weights(i)) {
      degree[i] += w;
      total += w;
    }
  }

  // Row i of the window-averaged transition matrix W = (P + .. + P^T)/T,
  // computed with a sparse accumulator and per-row top-k pruning so the
  // higher powers cannot densify.
  std::vector<double> acc(n, 0.0);       // persistent accumulator, reset lazily
  std::vector<NodeId> touched;
  std::vector<double> frontier_val;      // current P^t row (sparse)
  std::vector<NodeId> frontier_idx;

  std::vector<Triplet> triplets;
  triplets.reserve(2 * graph.NumEdges());
  for (NodeId i = 0; i < n; ++i) {
    if (degree[i] <= 0) continue;
    // t = 1 frontier.
    frontier_idx.clear();
    frontier_val.clear();
    const auto nbrs = graph.Neighbors(i);
    const auto weights = graph.Weights(i);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      frontier_idx.push_back(nbrs[k]);
      frontier_val.push_back(weights[k] / degree[i]);
    }
    touched.clear();
    for (size_t k = 0; k < frontier_idx.size(); ++k) {
      if (acc[frontier_idx[k]] == 0.0) touched.push_back(frontier_idx[k]);
      acc[frontier_idx[k]] += frontier_val[k];
    }
    // Higher steps.
    std::vector<NodeId> next_idx;
    std::vector<double> next_val;
    for (size_t t = 2; t <= window; ++t) {
      next_idx.clear();
      next_val.clear();
      // One step of the transition from the current frontier, using a local
      // sparse accumulator keyed off `acc` sign-free trick: accumulate into a
      // scratch map replaced by (index, value) merging after sort.
      static thread_local std::vector<double> step_acc;
      static thread_local std::vector<NodeId> step_touched;
      step_acc.resize(n, 0.0);
      step_touched.clear();
      for (size_t k = 0; k < frontier_idx.size(); ++k) {
        const NodeId u = frontier_idx[k];
        if (degree[u] <= 0) continue;
        const double scale = frontier_val[k] / degree[u];
        const auto unbrs = graph.Neighbors(u);
        const auto uweights = graph.Weights(u);
        for (size_t m = 0; m < unbrs.size(); ++m) {
          const NodeId v = unbrs[m];
          if (step_acc[v] == 0.0) step_touched.push_back(v);
          step_acc[v] += scale * uweights[m];
        }
      }
      // Prune the frontier to the largest entries.
      if (step_touched.size() > max_row_entries) {
        std::nth_element(step_touched.begin(),
                         step_touched.begin() + static_cast<ptrdiff_t>(max_row_entries),
                         step_touched.end(), [&](NodeId a, NodeId b) {
                           return step_acc[a] > step_acc[b];
                         });
        for (size_t k = max_row_entries; k < step_touched.size(); ++k) {
          step_acc[step_touched[k]] = 0.0;
        }
        step_touched.resize(max_row_entries);
      }
      for (const NodeId v : step_touched) {
        next_idx.push_back(v);
        next_val.push_back(step_acc[v]);
        if (acc[v] == 0.0) touched.push_back(v);
        acc[v] += step_acc[v];
        step_acc[v] = 0.0;
      }
      frontier_idx = next_idx;
      frontier_val = next_val;
    }

    // Emit the shifted-PMI entries for this row and reset the accumulator.
    const double inv_window = 1.0 / static_cast<double>(window);
    for (const NodeId j : touched) {
      const double wij = acc[j] * inv_window;
      acc[j] = 0.0;
      if (wij <= 0 || degree[j] <= 0) continue;
      const double pdj = degree[j] / total;
      const double m = std::log(wij) - std::log(tau * pdj);
      if (m > 0) triplets.push_back({i, j, m});
    }
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

SparseMatrix NormalizedAdjacency(const LevaGraph& graph) {
  const size_t n = graph.NumNodes();
  std::vector<double> degree(n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    for (const float w : graph.Weights(i)) degree[i] += w;
  }
  std::vector<Triplet> triplets;
  triplets.reserve(2 * graph.NumEdges());
  for (NodeId i = 0; i < n; ++i) {
    const auto nbrs = graph.Neighbors(i);
    const auto weights = graph.Weights(i);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const NodeId j = nbrs[k];
      if (degree[i] <= 0 || degree[j] <= 0) continue;
      triplets.push_back(
          {i, j, weights[k] / std::sqrt(degree[i] * degree[j])});
    }
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

Result<Matrix> SpectralPropagate(const LevaGraph& graph,
                                 const Matrix& embedding, size_t order,
                                 double mu, double theta, size_t threads) {
  if (embedding.rows() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "embedding row count does not match graph node count");
  }
  if (order < 2) return embedding;

  // Rescaled Laplacian: with lambda_max ~= 2 for a normalized Laplacian,
  // Ltilde = L - I = -Anorm, whose spectrum lies in [-1, 1].
  const SparseMatrix anorm = NormalizedAdjacency(graph);

  // Chebyshev coefficients of the ProNE band-pass kernel
  //   g(lambda) = exp(-theta/2 * ((lambda - mu)^2 - 1))
  // via Gauss-Chebyshev quadrature.
  const size_t quad = std::max<size_t>(order + 1, 16);
  std::vector<double> coeff(order, 0.0);
  for (size_t k = 0; k < order; ++k) {
    double sum = 0;
    for (size_t j = 0; j < quad; ++j) {
      const double angle = M_PI * (static_cast<double>(j) + 0.5) /
                           static_cast<double>(quad);
      const double x = std::cos(angle);
      const double g = std::exp(-0.5 * theta * ((x - mu) * (x - mu) - 1.0));
      sum += g * std::cos(static_cast<double>(k) * angle);
    }
    coeff[k] = (k == 0 ? 1.0 : 2.0) * sum / static_cast<double>(quad);
  }

  // Chebyshev recurrence on Ltilde = -Anorm.
  Matrix t_prev = embedding;                         // T0 E
  Matrix t_cur = anorm.Multiply(embedding, threads); // Anorm E
  t_cur.Scale(-1.0);                                 // T1 E = Ltilde E
  Matrix filtered = t_prev;
  filtered.Scale(coeff[0]);
  filtered.AddScaled(t_cur, coeff[1]);
  for (size_t k = 2; k < order; ++k) {
    Matrix t_next = anorm.Multiply(t_cur, threads);
    t_next.Scale(-2.0);
    t_next.AddScaled(t_prev, -1.0);               // 2 Ltilde T_k - T_{k-1}
    filtered.AddScaled(t_next, coeff[k]);
    t_prev = std::move(t_cur);
    t_cur = std::move(t_next);
  }

  // Final smoothing through the normalized adjacency, as in ProNE's
  // propagation step.
  return anorm.Multiply(filtered, threads);
}

Result<Matrix> MatrixFactorizationEmbed(const LevaGraph& graph,
                                        const MfOptions& options, Rng* rng) {
  if (graph.NumNodes() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  const size_t threads = ResolveThreads(options.threads);
  const SparseMatrix m = BuildProximityMatrix(
      graph, options.tau, options.window, options.max_row_entries);
  RandomizedSvdOptions svd_options;
  svd_options.rank = options.dim;
  svd_options.oversample = options.oversample;
  svd_options.power_iterations = options.power_iterations;
  svd_options.threads = threads;
  LEVA_ASSIGN_OR_RETURN(SvdResult svd, RandomizedSVD(m, svd_options, rng));

  const size_t rank = svd.singular_values.size();
  Matrix e(graph.NumNodes(), rank);
  for (size_t i = 0; i < e.rows(); ++i) {
    for (size_t j = 0; j < rank; ++j) {
      e(i, j) = svd.u(i, j) * std::sqrt(std::max(0.0, svd.singular_values[j]));
    }
  }
  if (options.spectral_propagation) {
    return SpectralPropagate(graph, e, options.chebyshev_order, options.mu,
                             options.theta, threads);
  }
  return e;
}

size_t EstimateMfMemoryBytes(size_t nodes, size_t edges, size_t dim) {
  // Proximity matrix (CSR: 2E entries) + sketch/Q/B working set + embedding.
  const size_t nnz = 2 * edges;
  const size_t k = dim + 10;
  return nnz * (sizeof(double) + sizeof(uint32_t)) +
         4 * nodes * k * sizeof(double);
}

size_t EstimateRwMemoryBytes(size_t nodes, size_t edges, size_t walk_length,
                             size_t epochs, bool weighted) {
  // Corpus (epochs walks per node, `walk_length` ids each) + alias tables.
  size_t bytes = nodes * epochs * walk_length * sizeof(NodeId);
  if (weighted) {
    bytes += 2 * edges * (sizeof(double) + sizeof(uint32_t));
  }
  return bytes;
}

}  // namespace leva
