#ifndef LEVA_EMBED_CORPUS_H_
#define LEVA_EMBED_CORPUS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace leva {

/// Flat sentence corpus: one contiguous uint32 token buffer plus a
/// sentence-offsets array (sentence i spans [offsets()[i], offsets()[i+1])).
/// This is the interchange format between walk generation and Word2Vec
/// training — a single allocation that grows amortized instead of one heap
/// vector per walk, and a layout the training loops can stream through
/// without pointer chasing.
///
/// Building is append-oriented: push tokens, then EndSentence() to close the
/// current sentence (empty sentences are dropped, matching the legacy nested
/// corpus which never stored empty walks).
class FlatCorpus {
 public:
  /// Number of sentences.
  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }
  /// Total tokens across all sentences.
  size_t num_tokens() const { return tokens_.size(); }

  /// Sentence `i` as a span over the shared token buffer.
  std::span<const uint32_t> operator[](size_t i) const {
    return {tokens_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }

  const std::vector<uint32_t>& tokens() const { return tokens_; }
  /// size() + 1 entries; offsets()[0] == 0, offsets()[size()] == num_tokens().
  const std::vector<size_t>& offsets() const { return offsets_; }

  void Reserve(size_t sentences, size_t tokens) {
    offsets_.reserve(sentences + 1);
    tokens_.reserve(tokens);
  }

  /// Appends one token to the sentence currently being built.
  void PushToken(uint32_t t) { tokens_.push_back(t); }

  /// Closes the sentence under construction. Returns false (and stores
  /// nothing) when no tokens were pushed since the last close.
  bool EndSentence() {
    if (tokens_.size() == offsets_.back()) return false;
    offsets_.push_back(tokens_.size());
    return true;
  }

  /// Appends a whole sentence; empty spans are dropped.
  void AppendSentence(std::span<const uint32_t> sentence) {
    tokens_.insert(tokens_.end(), sentence.begin(), sentence.end());
    EndSentence();
  }

 private:
  std::vector<uint32_t> tokens_;
  std::vector<size_t> offsets_ = {0};
};

/// Flattens a nested sentence corpus (the legacy representation).
inline FlatCorpus Flatten(const std::vector<std::vector<uint32_t>>& nested) {
  FlatCorpus flat;
  size_t tokens = 0;
  for (const auto& s : nested) tokens += s.size();
  flat.Reserve(nested.size(), tokens);
  for (const auto& s : nested) flat.AppendSentence({s.data(), s.size()});
  return flat;
}

}  // namespace leva

#endif  // LEVA_EMBED_CORPUS_H_
