#include "embed/embedding.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "common/simd.h"
#include "common/string_util.h"

namespace leva {

const char* StorageTierName(StorageTier tier) {
  switch (tier) {
    case StorageTier::kBf16: return "bf16";
    case StorageTier::kInt8: return "int8";
    case StorageTier::kFp64: break;
  }
  return "fp64";
}

bool ParseStorageTier(std::string_view name, StorageTier* out) {
  if (name == "fp64") {
    *out = StorageTier::kFp64;
  } else if (name == "bf16") {
    *out = StorageTier::kBf16;
  } else if (name == "int8") {
    *out = StorageTier::kInt8;
  } else {
    return false;
  }
  return true;
}

void QuantizeRowInt8(const double* x, size_t n, int8_t* q, float* scale) {
  double maxabs = 0.0;
  for (size_t j = 0; j < n; ++j) maxabs = std::max(maxabs, std::fabs(x[j]));
  // The scale is stored (and therefore divided by) in fp32: quantize against
  // the rounded value the dequantizer will actually multiply with, so the
  // per-element error stays <= scale/2 plus one fp32 ulp of clamp slack.
  const float s = maxabs > 0.0 ? static_cast<float>(maxabs / 127.0) : 0.0f;
  *scale = s;
  if (s == 0.0f) {
    std::fill(q, q + n, int8_t{0});
    return;
  }
  const double sd = static_cast<double>(s);
  for (size_t j = 0; j < n; ++j) {
    const long v = std::lround(x[j] / sd);
    q[j] = static_cast<int8_t>(std::clamp(v, -127L, 127L));
  }
}

Status Embedding::Put(const std::string& key, std::span<const double> vec) {
  if (vec.size() != dim_) {
    return Status::InvalidArgument("vector for '" + key + "' has dim " +
                                   std::to_string(vec.size()) + ", expected " +
                                   std::to_string(dim_));
  }
  EnsureFp64Owned();
  const auto it = index_.find(key);
  if (it != index_.end()) {
    std::copy(vec.begin(), vec.end(),
              data_.owned().begin() + static_cast<ptrdiff_t>(it->second * dim_));
    return Status::OK();
  }
  index_.emplace(key, keys_.size());
  keys_.push_back(key);
  data_.owned().insert(data_.owned().end(), vec.begin(), vec.end());
  return Status::OK();
}

std::span<const double> Embedding::Get(const std::string& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return {};
  return GetById(it->second);
}

size_t Embedding::IdOf(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? kInvalidId : it->second;
}

void Embedding::DequantizeRow(size_t id, double* out) const {
  assert(id < keys_.size() && "Embedding::DequantizeRow: id out of range");
  switch (tier_) {
    case StorageTier::kBf16:
      simd::DequantRowBf16(out, bf16_.data() + id * dim_, dim_);
      return;
    case StorageTier::kInt8:
      simd::DequantRowI8(out, q8_.data() + id * dim_,
                         static_cast<double>(scales_.data()[id]), dim_);
      return;
    case StorageTier::kFp64:
      break;
  }
  std::memcpy(out, data_.data() + id * dim_, dim_ * sizeof(double));
}

std::span<const double> Embedding::DequantScratch(size_t id) const {
  // One scratch row per thread: a quantized GetById span stays valid until
  // the next Get/GetById on the same thread (documented in the header).
  static thread_local std::vector<double> scratch;
  if (scratch.size() < dim_) scratch.resize(dim_);
  DequantizeRow(id, scratch.data());
  return {scratch.data(), dim_};
}

void Embedding::EnsureFp64Owned() {
  if (tier_ == StorageTier::kFp64) return;
  std::vector<double> block(keys_.size() * dim_);
  for (size_t i = 0; i < keys_.size(); ++i) {
    DequantizeRow(i, block.data() + i * dim_);
  }
  data_ = std::move(block);
  bf16_ = OwnedOrMapped<uint16_t>();
  q8_ = OwnedOrMapped<int8_t>();
  scales_ = OwnedOrMapped<float>();
  tier_ = StorageTier::kFp64;
}

Embedding Embedding::WithTier(StorageTier tier) const {
  Embedding out;
  out.dim_ = dim_;
  out.tier_ = tier;
  out.index_ = index_;
  out.keys_ = keys_;
  const size_t n = keys_.size();
  if (tier == tier_) {
    // Same tier: byte-copy the active storage (lossless, and detaches any
    // mmap view so the copy outlives the source region).
    switch (tier_) {
      case StorageTier::kBf16:
        out.bf16_ = std::vector<uint16_t>(bf16_.data(), bf16_.data() + n * dim_);
        return out;
      case StorageTier::kInt8:
        out.q8_ = std::vector<int8_t>(q8_.data(), q8_.data() + n * dim_);
        out.scales_ = std::vector<float>(scales_.data(), scales_.data() + n);
        return out;
      case StorageTier::kFp64:
        break;
    }
    out.data_ = std::vector<double>(data_.data(), data_.data() + n * dim_);
    return out;
  }
  std::vector<double> row(dim_);
  switch (tier) {
    case StorageTier::kBf16: {
      std::vector<uint16_t> block(n * dim_);
      for (size_t i = 0; i < n; ++i) {
        DequantizeRow(i, row.data());
        for (size_t j = 0; j < dim_; ++j) {
          block[i * dim_ + j] =
              simd::Bf16FromFloat(static_cast<float>(row[j]));
        }
      }
      out.bf16_ = std::move(block);
      return out;
    }
    case StorageTier::kInt8: {
      std::vector<int8_t> block(n * dim_);
      std::vector<float> scales(n);
      for (size_t i = 0; i < n; ++i) {
        DequantizeRow(i, row.data());
        QuantizeRowInt8(row.data(), dim_, block.data() + i * dim_, &scales[i]);
      }
      out.q8_ = std::move(block);
      out.scales_ = std::move(scales);
      return out;
    }
    case StorageTier::kFp64:
      break;
  }
  std::vector<double> block(n * dim_);
  for (size_t i = 0; i < n; ++i) DequantizeRow(i, block.data() + i * dim_);
  out.data_ = std::move(block);
  return out;
}

Status Embedding::MapVectors(
    size_t new_dim, const std::function<void(std::span<const double>,
                                             std::span<double>)>& project) {
  std::vector<double> new_data(keys_.size() * new_dim, 0.0);
  std::vector<double> row(dim_);
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (tier_ == StorageTier::kFp64) {
      project({data_.data() + i * dim_, dim_},
              {new_data.data() + i * new_dim, new_dim});
    } else {
      DequantizeRow(i, row.data());
      project({row.data(), dim_}, {new_data.data() + i * new_dim, new_dim});
    }
  }
  dim_ = new_dim;
  data_ = std::move(new_data);
  bf16_ = OwnedOrMapped<uint16_t>();
  q8_ = OwnedOrMapped<int8_t>();
  scales_ = OwnedOrMapped<float>();
  tier_ = StorageTier::kFp64;
  return Status::OK();
}

std::string Embedding::ToText() const {
  std::ostringstream out;
  out << keys_.size() << ' ' << dim_ << '\n';
  std::vector<double> row(dim_);
  for (size_t i = 0; i < keys_.size(); ++i) {
    DequantizeRow(i, row.data());
    out << keys_[i];
    for (size_t j = 0; j < dim_; ++j) out << ' ' << row[j];
    out << '\n';
  }
  return out.str();
}

Result<Embedding> Embedding::FromText(const std::string& text) {
  std::istringstream in(text);
  size_t count = 0;
  size_t dim = 0;
  if (!(in >> count >> dim)) {
    return Status::InvalidArgument("bad embedding header");
  }
  Embedding e(dim);
  std::vector<double> vec(dim);
  for (size_t i = 0; i < count; ++i) {
    std::string key;
    if (!(in >> key)) return Status::InvalidArgument("truncated embedding");
    for (size_t j = 0; j < dim; ++j) {
      // Stream extraction of doubles rejects "nan"/"inf" tokens outright in
      // libstdc++; route through ParseDouble so they parse and then hit the
      // finiteness check below with a descriptive error.
      std::string tok;
      if (!(in >> tok)) return Status::InvalidArgument("truncated vector");
      const auto parsed = ParseDouble(tok);
      if (!parsed) {
        return Status::InvalidArgument("bad component '" + tok + "' for key '" +
                                       key + "'");
      }
      vec[j] = *parsed;
      if (!std::isfinite(vec[j])) {
        return Status::InvalidArgument(
            "non-finite component " + std::to_string(j) + " for key '" + key +
            "': embedding vectors must be finite");
      }
    }
    if (e.Has(key)) {
      return Status::InvalidArgument("duplicate embedding key '" + key + "'");
    }
    LEVA_RETURN_IF_ERROR(e.Put(key, vec));
  }
  return e;
}

void Embedding::Save(BufferWriter* out) const {
  out->PutU64(dim_);
  out->PutU64(keys_.size());
  out->PutU8(static_cast<uint8_t>(tier_));
  for (const std::string& key : keys_) out->PutString(key);
}

Status Embedding::Load(BufferReader* in, EmbeddingStorage storage) {
  *this = Embedding();
  Embedding e;
  uint64_t dim = 0;
  uint64_t count = 0;
  uint8_t tier_raw = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&dim));
  LEVA_RETURN_IF_ERROR(in->GetU64(&count));
  LEVA_RETURN_IF_ERROR(in->GetU8(&tier_raw));
  if (tier_raw > static_cast<uint8_t>(StorageTier::kInt8)) {
    return Status::InvalidArgument("corrupt embedding: unknown storage tier " +
                                   std::to_string(tier_raw));
  }
  e.dim_ = dim;
  e.tier_ = static_cast<StorageTier>(tier_raw);
  e.keys_.reserve(count);
  e.index_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    LEVA_RETURN_IF_ERROR(in->GetString(&key));
    if (!e.index_.emplace(key, i).second) {
      return Status::InvalidArgument("corrupt embedding: duplicate key '" +
                                     key + "'");
    }
    e.keys_.push_back(std::move(key));
  }
  // Guard the size product against overflow before comparing element counts
  // (sizeof(double) is the widest per-element footprint of any tier).
  if (dim != 0 && count > SIZE_MAX / sizeof(double) / dim) {
    return Status::InvalidArgument("corrupt embedding: " +
                                   std::to_string(count) + " x " +
                                   std::to_string(dim) + " overflows");
  }
  const uint64_t elems = count * dim;
  const auto bad_block = [&](const char* what, size_t got,
                             const std::string& want) {
    return Status::InvalidArgument(
        "corrupt embedding: " + std::string(StorageTierName(e.tier_)) + " " +
        what + " holds " + std::to_string(got) + " value(s), expected " + want);
  };
  const std::string want_elems =
      std::to_string(count) + " x " + std::to_string(dim);
  switch (e.tier_) {
    case StorageTier::kBf16:
      if (storage.bf16.size() != elems) {
        return bad_block("vector block", storage.bf16.size(), want_elems);
      }
      e.bf16_ = std::move(storage.bf16);
      break;
    case StorageTier::kInt8:
      if (storage.q8.size() != elems) {
        return bad_block("vector block", storage.q8.size(), want_elems);
      }
      if (storage.scales.size() != count) {
        return bad_block("scale block", storage.scales.size(),
                         std::to_string(count));
      }
      e.q8_ = std::move(storage.q8);
      e.scales_ = std::move(storage.scales);
      break;
    case StorageTier::kFp64:
      if (storage.fp64.size() != elems) {
        return bad_block("vector block", storage.fp64.size(), want_elems);
      }
      e.data_ = std::move(storage.fp64);
      break;
  }
  *this = std::move(e);
  return Status::OK();
}

double Embedding::L1Distance(std::span<const double> a,
                             std::span<const double> b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double Embedding::CosineSimilarity(std::span<const double> a,
                                   std::span<const double> b) {
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0 || nb <= 0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace leva
