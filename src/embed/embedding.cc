#include "embed/embedding.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "common/string_util.h"

namespace leva {

Status Embedding::Put(const std::string& key, std::span<const double> vec) {
  if (vec.size() != dim_) {
    return Status::InvalidArgument("vector for '" + key + "' has dim " +
                                   std::to_string(vec.size()) + ", expected " +
                                   std::to_string(dim_));
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    std::copy(vec.begin(), vec.end(),
              data_.owned().begin() + static_cast<ptrdiff_t>(it->second * dim_));
    return Status::OK();
  }
  index_.emplace(key, keys_.size());
  keys_.push_back(key);
  data_.owned().insert(data_.owned().end(), vec.begin(), vec.end());
  return Status::OK();
}

std::span<const double> Embedding::Get(const std::string& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return {};
  return {data_.data() + it->second * dim_, dim_};
}

size_t Embedding::IdOf(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? kInvalidId : it->second;
}

Status Embedding::MapVectors(
    size_t new_dim, const std::function<void(std::span<const double>,
                                             std::span<double>)>& project) {
  std::vector<double> new_data(keys_.size() * new_dim, 0.0);
  for (size_t i = 0; i < keys_.size(); ++i) {
    project({data_.data() + i * dim_, dim_},
            {new_data.data() + i * new_dim, new_dim});
  }
  dim_ = new_dim;
  data_ = std::move(new_data);
  return Status::OK();
}

std::string Embedding::ToText() const {
  std::ostringstream out;
  out << keys_.size() << ' ' << dim_ << '\n';
  for (size_t i = 0; i < keys_.size(); ++i) {
    out << keys_[i];
    for (size_t j = 0; j < dim_; ++j) out << ' ' << data_[i * dim_ + j];
    out << '\n';
  }
  return out.str();
}

Result<Embedding> Embedding::FromText(const std::string& text) {
  std::istringstream in(text);
  size_t count = 0;
  size_t dim = 0;
  if (!(in >> count >> dim)) {
    return Status::InvalidArgument("bad embedding header");
  }
  Embedding e(dim);
  std::vector<double> vec(dim);
  for (size_t i = 0; i < count; ++i) {
    std::string key;
    if (!(in >> key)) return Status::InvalidArgument("truncated embedding");
    for (size_t j = 0; j < dim; ++j) {
      // Stream extraction of doubles rejects "nan"/"inf" tokens outright in
      // libstdc++; route through ParseDouble so they parse and then hit the
      // finiteness check below with a descriptive error.
      std::string tok;
      if (!(in >> tok)) return Status::InvalidArgument("truncated vector");
      const auto parsed = ParseDouble(tok);
      if (!parsed) {
        return Status::InvalidArgument("bad component '" + tok + "' for key '" +
                                       key + "'");
      }
      vec[j] = *parsed;
      if (!std::isfinite(vec[j])) {
        return Status::InvalidArgument(
            "non-finite component " + std::to_string(j) + " for key '" + key +
            "': embedding vectors must be finite");
      }
    }
    if (e.Has(key)) {
      return Status::InvalidArgument("duplicate embedding key '" + key + "'");
    }
    LEVA_RETURN_IF_ERROR(e.Put(key, vec));
  }
  return e;
}

void Embedding::Save(BufferWriter* out) const {
  out->PutU64(dim_);
  out->PutU64(keys_.size());
  for (const std::string& key : keys_) out->PutString(key);
}

Status Embedding::Load(BufferReader* in, OwnedOrMapped<double> data) {
  *this = Embedding();
  Embedding e;
  uint64_t dim = 0;
  uint64_t count = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&dim));
  LEVA_RETURN_IF_ERROR(in->GetU64(&count));
  e.dim_ = dim;
  e.keys_.reserve(count);
  e.index_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    LEVA_RETURN_IF_ERROR(in->GetString(&key));
    if (!e.index_.emplace(key, i).second) {
      return Status::InvalidArgument("corrupt embedding: duplicate key '" +
                                     key + "'");
    }
    e.keys_.push_back(std::move(key));
  }
  // Guard the size product against overflow before comparing element counts.
  if (dim != 0 && count > SIZE_MAX / sizeof(double) / dim) {
    return Status::InvalidArgument("corrupt embedding: " +
                                   std::to_string(count) + " x " +
                                   std::to_string(dim) + " overflows");
  }
  if (data.size() != count * dim) {
    return Status::InvalidArgument(
        "corrupt embedding: vector block holds " +
        std::to_string(data.size()) + " value(s), expected " +
        std::to_string(count) + " x " + std::to_string(dim));
  }
  e.data_ = std::move(data);
  *this = std::move(e);
  return Status::OK();
}

double Embedding::L1Distance(std::span<const double> a,
                             std::span<const double> b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double Embedding::CosineSimilarity(std::span<const double> a,
                                   std::span<const double> b) {
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0 || nb <= 0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace leva
