#ifndef LEVA_EMBED_WALKS_H_
#define LEVA_EMBED_WALKS_H_

#include <functional>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "embed/corpus.h"
#include "graph/alias.h"
#include "graph/graph.h"

namespace leva {

/// Which walk-generation engine runs (see walks_batched.h for the batched
/// one). The two engines emit bit-identical corpora for the same seed; the
/// choice is purely a performance decision, so it is safe to flip between
/// Fits and safe for kAuto to decide per graph.
enum class WalkEngine : uint8_t {
  /// Per-walker below the working-set threshold, batched above it.
  kAuto = 0,
  /// The per-walker pointer-chasing engine (WalkGenerator): one random CSR
  /// row per step per walker. Fastest while the graph stays cache-resident.
  kWalker = 1,
  /// The epoch-synchronous batched engine (BatchedWalkGenerator): walkers
  /// bucketed by current vertex each step so adjacency reads stream.
  /// Node2vec-biased walks (p or q != 1) always fall back to per-walker.
  kBatched = 2,
};

/// Random-walk corpus generation parameters (Section 4.2.2).
struct WalkOptions {
  size_t walk_length = 80;
  /// Total walk epochs; every epoch starts one walk per node.
  size_t epochs = 10;
  /// Use edge weights for transitions (requires per-node alias tables).
  bool weighted = true;
  /// Balanced generation: `epochs - restart_epochs` normal epochs, then
  /// `restart_epochs` epochs whose starts are the worst-represented nodes.
  bool balanced_restarts = false;
  size_t restart_epochs = 4;
  /// When > 0, a node visited more than this many times per epoch is skipped
  /// (the walk steps through it without emitting it).
  size_t visit_limit = 0;
  /// Node2vec return / in-out parameters. 1.0/1.0 reduces to a plain walk.
  double p = 1.0;
  double q = 1.0;
  /// Worker threads sharding each epoch's walks (0 = hardware). Every walk
  /// draws from its own counter-based RNG stream, so the corpus is
  /// bit-identical at any thread count for a given seed. Also shards the
  /// per-node alias-table build in the constructor.
  size_t threads = 1;
  /// Engine selection; see WalkEngine. The engines are bit-identical, so
  /// this knob never changes the fitted model, only Fit-time throughput.
  WalkEngine engine = WalkEngine::kAuto;
  /// kAuto switches to the batched engine once the walk working set
  /// (WalkWorkingSetBytes: CSR adjacency plus the flat alias layout) exceeds
  /// this many bytes — i.e. once per-step random access stops fitting the
  /// last-level cache. Default is a conservative 64 MiB.
  size_t batched_auto_threshold_bytes = size_t{64} << 20;
  /// When non-empty, every epoch starts one walk per entry of this list
  /// instead of one per node — the streaming-update path seeds walks at the
  /// new/touched nodes only. Walks still roam the whole graph; only the
  /// start distribution narrows. Balanced restarts draw their
  /// worst-quartile starts from this pool too. Empty (the default) keeps
  /// the all-nodes schedule bit-identical to what it has always been.
  std::vector<NodeId> start_nodes;
};

/// Bytes the walk sampling hot loop touches per step: CSR offsets + targets,
/// plus the alias slots (12 B per directed edge) and per-node empty flags
/// when `weighted`. The kAuto engine decision compares this against
/// WalkOptions::batched_auto_threshold_bytes.
size_t WalkWorkingSetBytes(const LevaGraph& graph, bool weighted);

/// Resolves WalkOptions::engine to a concrete engine for `graph`:
/// node2vec-biased walks (p or q != 1) always run per-walker (the batched
/// engine has no second-order path), kAuto applies the working-set
/// threshold, and explicit choices are honored otherwise.
WalkEngine ResolveWalkEngine(const LevaGraph& graph,
                             const WalkOptions& options);

/// Legacy nested corpus representation: one heap vector per walk. Kept for
/// the differential tests against the flat fast path (GenerateNested) and
/// for Word2Vec::TrainLegacy.
using WalkCorpus = std::vector<std::vector<NodeId>>;

/// Generates random-walk corpora over a LevaGraph: plain uniform, weighted
/// (alias tables), balanced-restart, and node2vec-biased second-order walks.
///
/// Parallel structure: trajectories only depend on the graph and their own
/// RNG stream, never on `visits_`, so each epoch's walks are generated
/// concurrently and the visit-limit emission filter runs as a cheap
/// sequential pass at the epoch barrier. That keeps the global visit cap
/// exact (a node is never emitted more than `visit_limit` times) while the
/// expensive stepping scales across the pool; the balanced-restart quartile
/// is computed from the counts merged at the barrier.
///
/// Trajectories are stepped into one flat per-epoch scratch buffer (a
/// walk_length-strided slab reused across epochs) and the filter barrier
/// appends surviving tokens straight into the FlatCorpus token buffer, so
/// the generator performs no per-walk heap allocation.
class WalkGenerator {
 public:
  WalkGenerator(const LevaGraph* graph, WalkOptions options);

  /// Generates the full corpus. Deterministic given `rng`'s state — the base
  /// seed for all per-walk streams is drawn from it — and independent of
  /// `options.threads`.
  Result<FlatCorpus> Generate(Rng* rng);

  /// Reference generator producing the legacy nested corpus. Emits the same
  /// walks as Generate for the same rng state (pinned differentially in
  /// tests/word2vec_test.cc); kept as the slow baseline.
  Result<WalkCorpus> GenerateNested(Rng* rng);

  /// Visit counts from the last Generate/GenerateNested call (per node).
  const std::vector<size_t>& visit_counts() const { return visits_; }

  /// Bytes consumed by the alias tables (zero for unweighted walks); the
  /// weighted/unweighted memory tradeoff of Section 4.3.
  size_t AliasMemoryBytes() const;

 private:
  // Steps the raw node sequence from `start` (before visit-limit filtering)
  // into `out`, which must hold walk_length slots. Returns the number of
  // nodes written.
  size_t Trajectory(NodeId start, Rng* rng, NodeId* out) const;
  // Legacy vector form, layered on the buffer version.
  void Trajectory(NodeId start, Rng* rng, std::vector<NodeId>* out) const;
  // `prev_nbrs`/`prev_delta_nbrs` are the previous node's base and delta
  // neighbor spans (both sorted), fetched once per step by the caller.
  NodeId Step(NodeId current, NodeId previous,
              std::span<const NodeId> prev_nbrs,
              std::span<const NodeId> prev_delta_nbrs, Rng* rng) const;

  const LevaGraph* graph_;
  WalkOptions options_;
  std::vector<AliasTable> alias_;  // per node, only when weighted
  std::vector<size_t> visits_;
};

namespace walk_internal {

/// Steps every walk of one epoch: for walker i, write its raw trajectory
/// into traj[i * walk_length ...] and its emitted length into traj_len[i].
/// `epoch` is the global epoch index (normal epochs first, then restart
/// epochs) — per-walk RNG streams are keyed on it.
using StepEpochFn =
    std::function<void(size_t epoch, const std::vector<NodeId>& starts,
                       NodeId* traj, uint32_t* traj_len)>;

/// The engine-independent half of corpus generation, shared by the
/// per-walker and batched engines so their outputs agree byte for byte:
/// the shuffled start order of normal epochs, the re-targeted worst-quartile
/// starts of balanced-restart epochs, and the sequential visit-limit filter
/// barrier that appends surviving tokens to the corpus in walker order.
/// `step_epoch` supplies the only engine-specific part — how one epoch's
/// trajectories are stepped into the shared slab. Requires n > 0 and
/// options.epochs > 0 (callers return an empty corpus earlier otherwise);
/// `visits` is reset by the caller.
Result<FlatCorpus> RunEpochSchedule(size_t num_nodes,
                                    const WalkOptions& options,
                                    uint64_t base_seed,
                                    std::vector<size_t>* visits,
                                    const StepEpochFn& step_epoch);

}  // namespace walk_internal

}  // namespace leva

#endif  // LEVA_EMBED_WALKS_H_
