#ifndef LEVA_EMBED_EMBEDDING_H_
#define LEVA_EMBED_EMBEDDING_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "common/storage.h"
#include "common/string_util.h"

namespace leva {

/// Storage precision of the embedding vector block. A snapshot is written at
/// one tier (`leva_cli --quantize`, recorded in the config) and served at
/// that tier without ever materializing a full-precision matrix: the
/// featurize gather dequantizes element-wise on the fly (see
/// src/common/simd.h and DESIGN.md "Quantized serving").
///   kFp64 — 8 B/element, the fitting representation; bit-exact serving.
///   kBf16 — 2 B/element, truncated fp32 (round-to-nearest-even encode,
///           exact widening decode); relative error <= 2^-8 per element
///           (7 explicit mantissa bits, RNE half-step).
///   kInt8 — 1 B/element + one fp32 scale per row (symmetric, scale =
///           maxabs/127); absolute error <= scale/2 per element.
enum class StorageTier : uint8_t { kFp64 = 0, kBf16 = 1, kInt8 = 2 };

/// Human-readable tier name: "fp64" / "bf16" / "int8".
const char* StorageTierName(StorageTier tier);

/// Parses a StorageTierName string; false on unknown names.
bool ParseStorageTier(std::string_view name, StorageTier* out);

/// Symmetric per-row int8 quantization: *scale = maxabs(x)/127 rounded to
/// fp32 (0 for an all-zero row) and q[j] = round(x[j] / *scale) clamped to
/// [-127, 127] (ties away from zero). Exposed for the differential tests,
/// which recompute the documented error bound from the same arithmetic.
void QuantizeRowInt8(const double* x, size_t n, int8_t* q, float* scale);

/// The tier-selected raw storage of an embedding vector block, as adopted by
/// Load. Exactly the fields of the active tier are populated: fp64 for
/// kFp64, bf16 for kBf16, q8 + scales for kInt8. Each is either owned heap
/// bytes or a borrowed mmap view of a snapshot bulk section.
struct EmbeddingStorage {
  OwnedOrMapped<double> fp64;
  OwnedOrMapped<uint16_t> bf16;
  OwnedOrMapped<int8_t> q8;
  OwnedOrMapped<float> scales;
};

/// A token -> dense-vector store: the output of Leva's embedding construction
/// (the mapping E of Section 2.4). Keys are node labels: "<table>:<row>" for
/// row nodes, the token text for value nodes.
class Embedding {
 public:
  Embedding() = default;
  explicit Embedding(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  size_t size() const { return keys_.size(); }

  /// Storage precision of the vector block. Fitting always produces kFp64;
  /// quantized tiers arrive via WithTier (save path) or Load (serve path).
  StorageTier tier() const { return tier_; }

  /// Bytes of vector-block storage per row at the current tier (the int8
  /// figure includes the per-row fp32 scale).
  size_t bytes_per_row() const {
    switch (tier_) {
      case StorageTier::kBf16: return dim_ * sizeof(uint16_t);
      case StorageTier::kInt8: return dim_ * sizeof(int8_t) + sizeof(float);
      case StorageTier::kFp64: break;
    }
    return dim_ * sizeof(double);
  }

  /// Adds (or overwrites) the vector for `key`. `vec` must have length dim().
  /// On a quantized store this first detaches to an owned fp64 copy of the
  /// whole block (mutation is a fitting-path operation; quantized stores are
  /// serve-only).
  Status Put(const std::string& key, std::span<const double> vec);

  bool Has(const std::string& key) const { return index_.count(key) > 0; }

  /// Vector for `key`; empty span when missing. On a quantized store the
  /// span points into a thread-local scratch row and is invalidated by the
  /// next Get/GetById on the same thread.
  std::span<const double> Get(const std::string& key) const;

  /// Sentinel returned by IdOf for unknown keys.
  static constexpr size_t kInvalidId = static_cast<size_t>(-1);

  /// Integer id of `key` — its row index into keys()/data() — or kInvalidId.
  /// Ids are stable for the lifetime of the store (Put never reorders) so
  /// callers may pay the string hash once and gather by id afterwards. Takes
  /// a view so gather loops probe without materializing a string.
  size_t IdOf(std::string_view key) const;

  /// Row `id` of the contiguous store; `id` must be a valid IdOf result.
  /// Same thread-local-scratch caveat as Get on quantized tiers.
  std::span<const double> GetById(size_t id) const {
    assert(id < keys_.size() && "Embedding::GetById: id out of range");
    if (tier_ == StorageTier::kFp64) return {data_.data() + id * dim_, dim_};
    return DequantScratch(id);
  }

  /// Raw pointer form of GetById for allocation-free gather loops. fp64-only:
  /// quantized tiers have no fp64 rows to point at — use the tier accessors
  /// below plus the simd.h dequant kernels, or DequantizeRow.
  const double* RowPtr(size_t id) const {
    assert(id < keys_.size() && "Embedding::RowPtr: id out of range");
    assert(tier_ == StorageTier::kFp64 &&
           "Embedding::RowPtr: fp64-only; use Bf16RowPtr/Int8RowPtr");
    return data_.data() + id * dim_;
  }

  /// Raw bf16 row (tier() == kBf16 only).
  const uint16_t* Bf16RowPtr(size_t id) const {
    assert(id < keys_.size() && tier_ == StorageTier::kBf16);
    return bf16_.data() + id * dim_;
  }

  /// Raw int8 row (tier() == kInt8 only).
  const int8_t* Int8RowPtr(size_t id) const {
    assert(id < keys_.size() && tier_ == StorageTier::kInt8);
    return q8_.data() + id * dim_;
  }

  /// Per-row dequantization scale (tier() == kInt8 only).
  float RowScale(size_t id) const {
    assert(id < keys_.size() && tier_ == StorageTier::kInt8);
    return scales_.data()[id];
  }

  /// Writes row `id` as dim() doubles into `out`, dequantizing as needed.
  /// Produces exactly the bits Get/GetById serve for the row at this tier.
  void DequantizeRow(size_t id, double* out) const;

  const std::vector<std::string>& keys() const { return keys_; }

  /// Raw fp64 storage (size() x dim(), row-major), aligned with keys(); only
  /// meaningful at tier kFp64. A view: the bytes live either in owned heap
  /// memory (a fitted model) or in an mmap'ed snapshot region (zero-copy
  /// load).
  ArrayView<double> data() const {
    assert(tier_ == StorageTier::kFp64 && "Embedding::data: fp64-only");
    return data_.span();
  }

  /// Raw quantized storage views for the snapshot writer and benches (valid
  /// at the matching tier, empty otherwise).
  ArrayView<uint16_t> bf16_data() const { return bf16_.span(); }
  ArrayView<int8_t> int8_data() const { return q8_.span(); }
  ArrayView<float> scales() const { return scales_.span(); }

  /// True when the vector block is served straight from an mmap'ed snapshot.
  bool mapped() const {
    switch (tier_) {
      case StorageTier::kBf16: return bf16_.mapped();
      case StorageTier::kInt8: return q8_.mapped() || scales_.mapped();
      case StorageTier::kFp64: break;
    }
    return data_.mapped();
  }

  /// A copy of this store re-encoded at `tier` (same keys/dim). Quantized ->
  /// quantized goes through fp64 dequantization; re-encoding a store at its
  /// own tier is lossless. Used by the snapshot writer to quantize at Save
  /// time without touching the serving store.
  Embedding WithTier(StorageTier tier) const;

  /// Replaces every vector by its projection through `project`, changing the
  /// dimensionality (used by the PCA study of Table 7). Input rows are
  /// dequantized as served; the result is always an owned fp64 store.
  Status MapVectors(size_t new_dim,
                    const std::function<void(std::span<const double>,
                                             std::span<double>)>& project);

  /// Serializes as "key dim v1 ... vd" lines (values as served at the
  /// current tier).
  std::string ToText() const;
  /// Parses ToText output. Rejects duplicate keys and non-finite (NaN/Inf)
  /// vector components with kInvalidArgument: a store with either would
  /// silently poison every downstream featurization.
  static Result<Embedding> FromText(const std::string& text);

  /// Binary serialization for snapshots. Save writes only the *metadata*
  /// (dim, count, storage tier, keys); the raw vector block — and, for int8,
  /// the per-row scales — is framed separately by the snapshot layer as
  /// page-aligned bulk sections (see data()/bf16_data()/int8_data()/
  /// scales()), so a loader can map it instead of copying. Bit-exact, unlike
  /// ToText.
  void Save(BufferWriter* out) const;

  /// Restores state written by Save, rebuilding the key index, and adopts
  /// the tier-matching fields of `storage` — owned heap bytes or borrowed
  /// mmap views — as the vector block. Rejects duplicate keys and any block
  /// whose length does not match the serialized tier/dim/count. On error the
  /// store is left empty, never partially loaded.
  Status Load(BufferReader* in, EmbeddingStorage storage);

  /// L1 distance between two vectors of equal length.
  static double L1Distance(std::span<const double> a, std::span<const double> b);
  static double CosineSimilarity(std::span<const double> a,
                                 std::span<const double> b);

 private:
  /// Out-of-line quantized path of GetById: dequantizes row `id` into a
  /// thread-local scratch buffer and returns a span over it.
  std::span<const double> DequantScratch(size_t id) const;

  /// Detaches a quantized store to an owned fp64 block so Put can mutate it
  /// (the quantized analogue of OwnedOrMapped's detach-on-mutate).
  void EnsureFp64Owned();

  size_t dim_ = 0;
  StorageTier tier_ = StorageTier::kFp64;
  std::unordered_map<std::string, size_t, TransparentStringHash,
                     std::equal_to<>>
      index_;
  std::vector<std::string> keys_;
  // The big read-only-in-serving array — one of the three tiers is active
  // (see tier_). Owned while fitting (Put mutates), a borrowed page-cache
  // view after an mmap snapshot load. Mutating an mmap-loaded or quantized
  // store (Put, MapVectors) transparently detaches to an owned fp64 copy.
  OwnedOrMapped<double> data_;
  OwnedOrMapped<uint16_t> bf16_;
  OwnedOrMapped<int8_t> q8_;
  OwnedOrMapped<float> scales_;  // one fp32 per row, kInt8 only
};

}  // namespace leva

#endif  // LEVA_EMBED_EMBEDDING_H_
