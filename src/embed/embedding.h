#ifndef LEVA_EMBED_EMBEDDING_H_
#define LEVA_EMBED_EMBEDDING_H_

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "common/storage.h"
#include "common/string_util.h"

namespace leva {

/// A token -> dense-vector store: the output of Leva's embedding construction
/// (the mapping E of Section 2.4). Keys are node labels: "<table>:<row>" for
/// row nodes, the token text for value nodes.
class Embedding {
 public:
  Embedding() = default;
  explicit Embedding(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  size_t size() const { return keys_.size(); }

  /// Adds (or overwrites) the vector for `key`. `vec` must have length dim().
  Status Put(const std::string& key, std::span<const double> vec);

  bool Has(const std::string& key) const { return index_.count(key) > 0; }

  /// Vector for `key`; empty span when missing.
  std::span<const double> Get(const std::string& key) const;

  /// Sentinel returned by IdOf for unknown keys.
  static constexpr size_t kInvalidId = static_cast<size_t>(-1);

  /// Integer id of `key` — its row index into keys()/data() — or kInvalidId.
  /// Ids are stable for the lifetime of the store (Put never reorders) so
  /// callers may pay the string hash once and gather by id afterwards. Takes
  /// a view so gather loops probe without materializing a string.
  size_t IdOf(std::string_view key) const;

  /// Row `id` of the contiguous store; `id` must be a valid IdOf result.
  std::span<const double> GetById(size_t id) const {
    return {data_.data() + id * dim_, dim_};
  }

  /// Raw pointer form of GetById for allocation-free gather loops.
  const double* RowPtr(size_t id) const { return data_.data() + id * dim_; }

  const std::vector<std::string>& keys() const { return keys_; }

  /// Raw storage (size() x dim(), row-major), aligned with keys(). A view:
  /// the bytes live either in owned heap memory (a fitted model) or in an
  /// mmap'ed snapshot region (zero-copy load).
  ArrayView<double> data() const { return data_.span(); }

  /// True when the vector block is served straight from an mmap'ed snapshot.
  bool mapped() const { return data_.mapped(); }

  /// Replaces every vector by its projection through `project`, changing the
  /// dimensionality (used by the PCA study of Table 7).
  Status MapVectors(size_t new_dim,
                    const std::function<void(std::span<const double>,
                                             std::span<double>)>& project);

  /// Serializes as "key dim v1 ... vd" lines.
  std::string ToText() const;
  /// Parses ToText output. Rejects duplicate keys and non-finite (NaN/Inf)
  /// vector components with kInvalidArgument: a store with either would
  /// silently poison every downstream featurization.
  static Result<Embedding> FromText(const std::string& text);

  /// Binary serialization for snapshots. Save writes only the *metadata*
  /// (dim, count, keys); the raw row-major vector block is framed separately
  /// by the snapshot layer as a page-aligned bulk section (see data()), so a
  /// loader can map it instead of copying. Bit-exact, unlike ToText.
  void Save(BufferWriter* out) const;

  /// Restores state written by Save, rebuilding the key index, and adopts
  /// `data` — owned heap bytes or a borrowed mmap view — as the vector
  /// block. Rejects duplicate keys and a block whose length does not match
  /// dim * count. On error the store is left empty, never partially loaded.
  Status Load(BufferReader* in, OwnedOrMapped<double> data);

  /// L1 distance between two vectors of equal length.
  static double L1Distance(std::span<const double> a, std::span<const double> b);
  static double CosineSimilarity(std::span<const double> a,
                                 std::span<const double> b);

 private:
  size_t dim_ = 0;
  std::unordered_map<std::string, size_t, TransparentStringHash,
                     std::equal_to<>>
      index_;
  std::vector<std::string> keys_;
  // The big read-only-in-serving array: owned while fitting (Put mutates),
  // a borrowed page-cache view after an mmap snapshot load. Mutating an
  // mmap-loaded store (Put, MapVectors) transparently detaches to a copy.
  OwnedOrMapped<double> data_;
};

}  // namespace leva

#endif  // LEVA_EMBED_EMBEDDING_H_
