#ifndef LEVA_BASELINES_EXPERIMENT_H_
#define LEVA_BASELINES_EXPERIMENT_H_

#include <string>
#include <vector>

#include "baselines/embedding_model.h"
#include "baselines/tabular.h"
#include "common/result.h"
#include "core/pipeline.h"
#include "datagen/synthetic.h"
#include "ml/featurize.h"

namespace leva {

/// A prepared evaluation task: the base table split into train/test rows,
/// the fit database, and a shared target encoding.
///
/// Embedding construction is unsupervised and transductive, the standard
/// node-embedding protocol: `fit_db` contains every base row's *features*
/// (the target column is dropped so labels can never leak into the graph),
/// and the downstream model only ever sees training-row labels. Genuinely
/// unseen deployment data is exercised separately through the
/// `rows_in_graph = false` featurization path.
struct ExperimentTask {
  SyntheticDataset data;
  std::vector<size_t> train_rows;
  std::vector<size_t> test_rows;
  Table train_table;  // base-table slice, named like the base table
  Table test_table;
  Database fit_db;    // full database with the base table's target dropped
  TargetEncoder encoder;
};

Result<ExperimentTask> PrepareTask(SyntheticDataset data,
                                   double test_fraction, uint64_t seed);

/// Downstream models of the evaluation (Section 6.2).
enum class ModelKind {
  kRandomForest,
  kLogistic,   // logistic regression + ElasticNet (classification)
  kLinear,     // plain linear regression (regression)
  kElasticNet, // linear regression + ElasticNet (regression)
  kMlp,        // 2-layer fully connected network
};

std::string ModelKindName(ModelKind kind);

/// Grid-searches (3-fold CV) then fits on train and scores on test.
/// Returns accuracy for classification, MAE for regression. `wide_grid`
/// enables the larger fine-tuning grid of Fig. 6a.
Result<double> TrainAndScore(ModelKind kind, const MLDataset& train,
                             const MLDataset& test, uint64_t seed,
                             bool wide_grid = false);

/// Featurizes a task's base table with an already-fitted embedding model and
/// splits into standardized train/test datasets. Fitting once and reusing the
/// features across downstream models is how the Fig. 4/5 sweeps stay cheap.
Result<std::pair<MLDataset, MLDataset>> FeaturizeTask(
    const EmbeddingModel& fitted_model, const ExperimentTask& task);

/// End-to-end evaluation of an embedding model on a prepared task: fit on
/// task.fit_db, featurize, grid-search, score.
Result<double> EvaluateEmbeddingModel(EmbeddingModel* model,
                                      const ExperimentTask& task,
                                      ModelKind kind, uint64_t seed,
                                      bool wide_grid = false);

/// End-to-end evaluation of a tabular baseline (Base / Full / Disc; pass
/// `top_k_features` > 0 for Full+FE).
Result<double> EvaluateTabularBaseline(const ExperimentTask& task,
                                       TabularBaseline baseline,
                                       size_t top_k_features, ModelKind kind,
                                       uint64_t seed);

/// Leva configuration with reduced walk/training budgets, sized for the
/// single-core benchmark runs (the library defaults follow Table 2).
LevaConfig FastLevaConfig(EmbeddingMethod method, uint64_t seed = 42,
                          size_t dim = 100);

}  // namespace leva

#endif  // LEVA_BASELINES_EXPERIMENT_H_
