#include "baselines/embedding_model.h"

namespace leva {

Result<MLDataset> FeaturizeWithModel(const EmbeddingModel& model,
                                     const Table& table,
                                     const std::string& target_column,
                                     const TargetEncoder& encoder,
                                     bool rows_in_graph) {
  return model.Featurize(table, target_column, encoder, rows_in_graph);
}

Result<MLDataset> EmbeddingModel::Featurize(const Table& table,
                                            const std::string& target_column,
                                            const TargetEncoder& encoder,
                                            bool rows_in_graph) const {
  LEVA_ASSIGN_OR_RETURN(const size_t target_idx,
                        table.ColumnIndex(target_column));
  const size_t width = dim();
  MLDataset ds;
  ds.classification = encoder.classification();
  ds.num_classes = encoder.classification() ? encoder.num_classes() : 2;
  ds.x = Matrix(table.NumRows(), width);
  ds.y.resize(table.NumRows());
  for (size_t j = 0; j < width; ++j) {
    ds.feature_names.push_back("emb" + std::to_string(j));
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    LEVA_ASSIGN_OR_RETURN(
        const std::vector<double> vec,
        RowVector(table, r, target_column, rows_in_graph));
    if (vec.size() != width) {
      return Status::Internal("row vector width mismatch");
    }
    for (size_t j = 0; j < width; ++j) ds.x(r, j) = vec[j];
    LEVA_ASSIGN_OR_RETURN(ds.y[r], encoder.Encode(table.at(r, target_idx)));
  }
  return ds;
}

}  // namespace leva
