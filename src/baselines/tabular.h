#ifndef LEVA_BASELINES_TABULAR_H_
#define LEVA_BASELINES_TABULAR_H_

#include <string>
#include <utility>
#include <vector>

#include "baselines/discovery.h"
#include "common/result.h"
#include "common/rng.h"
#include "ml/dataset.h"
#include "table/table.h"

namespace leva {

/// The non-embedding baselines of Section 6.1.
enum class TabularBaseline {
  kBase,  ///< the Base Table only
  kFull,  ///< ground-truth joins over the whole database
  kDisc,  ///< joins proposed by the discovery system
};

/// Materializes the training table for `kind`. Returns the table plus the
/// (possibly qualified) target column name inside it.
Result<std::pair<Table, std::string>> MaterializeBaselineTable(
    const Database& db, const std::string& base_table,
    const std::string& target_column, TabularBaseline kind,
    const DiscoveryOptions& disc_options = {});

/// One-hot encodes a materialized table into train/test datasets over the
/// given base-row split; when `top_k_features` > 0 a random-forest
/// feature-selection pass runs on the training slice first (this is the
/// "+FE" step of Full+FE).
Result<std::pair<MLDataset, MLDataset>> BuildTabularDatasets(
    const Table& materialized, const std::string& target_column,
    bool classification, const std::vector<size_t>& train_rows,
    const std::vector<size_t>& test_rows, size_t top_k_features, Rng* rng);

}  // namespace leva

#endif  // LEVA_BASELINES_TABULAR_H_
