#include "baselines/tabular.h"

#include "ml/featurize.h"
#include "table/join.h"

namespace leva {

Result<std::pair<Table, std::string>> MaterializeBaselineTable(
    const Database& db, const std::string& base_table,
    const std::string& target_column, TabularBaseline kind,
    const DiscoveryOptions& disc_options) {
  switch (kind) {
    case TabularBaseline::kBase: {
      const Table* base = db.FindTable(base_table);
      if (base == nullptr) {
        return Status::NotFound("base table '" + base_table + "' not found");
      }
      return std::make_pair(*base, target_column);
    }
    case TabularBaseline::kFull: {
      LEVA_ASSIGN_OR_RETURN(Table full, MaterializeFullTable(db, base_table));
      // MaterializeFullTable qualifies the base columns.
      return std::make_pair(std::move(full), base_table + "." + target_column);
    }
    case TabularBaseline::kDisc: {
      LEVA_ASSIGN_OR_RETURN(
          Table disc, MaterializeDiscoveredTable(db, base_table, disc_options));
      return std::make_pair(std::move(disc), target_column);
    }
  }
  return Status::InvalidArgument("unknown baseline kind");
}

Result<std::pair<MLDataset, MLDataset>> BuildTabularDatasets(
    const Table& materialized, const std::string& target_column,
    bool classification, const std::vector<size_t>& train_rows,
    const std::vector<size_t>& test_rows, size_t top_k_features, Rng* rng) {
  Table train_table = materialized.SubsetRows(train_rows);
  Table test_table = materialized.SubsetRows(test_rows);
  train_table.set_name(materialized.name());
  test_table.set_name(materialized.name());

  OneHotFeaturizer featurizer;
  LEVA_RETURN_IF_ERROR(
      featurizer.Fit(train_table, target_column, classification));
  LEVA_ASSIGN_OR_RETURN(MLDataset train, featurizer.Transform(train_table));
  LEVA_ASSIGN_OR_RETURN(MLDataset test, featurizer.Transform(test_table));

  if (top_k_features > 0 && top_k_features < train.NumFeatures()) {
    LEVA_ASSIGN_OR_RETURN(const std::vector<size_t> selected,
                          SelectTopKFeatures(train, top_k_features, rng));
    train = train.SelectFeatures(selected);
    test = test.SelectFeatures(selected);
  }
  StandardizeFeatures(&train, &test);
  return std::make_pair(std::move(train), std::move(test));
}

}  // namespace leva
