#ifndef LEVA_BASELINES_EMBEDDING_MODEL_H_
#define LEVA_BASELINES_EMBEDDING_MODEL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "embed/embedding.h"
#include "ml/dataset.h"
#include "ml/featurize.h"
#include "table/table.h"

namespace leva {

/// Common interface over embedding construction methods compared in Table 5:
/// Leva (MF/RW), direct Word2Vec, Node2Vec, EmbDI-style, and DeepER-style.
/// Fit sees the database without test rows; RowVector featurizes one row of a
/// base-table slice (`rows_in_graph` distinguishes fitted rows from held-out
/// rows, which are composed from token embeddings).
class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  virtual Status Fit(const Database& db) = 0;

  virtual Result<std::vector<double>> RowVector(
      const Table& table, size_t row, const std::string& target_column,
      bool rows_in_graph) const = 0;

  /// Feature width produced by RowVector.
  virtual size_t dim() const = 0;

  /// The underlying token/row embedding store.
  virtual const Embedding& embedding() const = 0;

  /// Builds the full MLDataset for `table`. The default walks RowVector row
  /// by row; models with a batched serving path (LevaModel) override it.
  virtual Result<MLDataset> Featurize(const Table& table,
                                      const std::string& target_column,
                                      const TargetEncoder& encoder,
                                      bool rows_in_graph) const;
};

/// Builds an MLDataset via `model.Featurize` (batched when the model
/// provides a fast path, row-at-a-time otherwise).
Result<MLDataset> FeaturizeWithModel(const EmbeddingModel& model,
                                     const Table& table,
                                     const std::string& target_column,
                                     const TargetEncoder& encoder,
                                     bool rows_in_graph);

}  // namespace leva

#endif  // LEVA_BASELINES_EMBEDDING_MODEL_H_
