#ifndef LEVA_BASELINES_DISCOVERY_H_
#define LEVA_BASELINES_DISCOVERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace leva {

/// Parameters of the Aurum/Lazo-style join-discovery baseline ("Disc" in the
/// evaluation): candidate joins are proposed when the containment of the base
/// column's distinct values in another column exceeds a threshold and the
/// other column is key-like.
struct DiscoveryOptions {
  /// |distinct(base) ∩ distinct(other)| / |distinct(base)| threshold.
  double containment_threshold = 0.8;
  /// The proposed join target must have distinct ratio at least this high
  /// (join onto something key-like to avoid blowups).
  double key_distinct_ratio = 0.9;
  /// Minimum distinct values in the base column to bother proposing a join.
  size_t min_distinct = 5;
  /// Only single-hop joins from the base table (discovery systems propose
  /// pairwise joinability; multi-hop path assembly is the human's job, which
  /// is exactly why Disc trails Full in the paper).
  bool single_hop_only = true;
};

struct DiscoveredJoin {
  std::string base_column;   // column in the (possibly grown) base table
  std::string other_table;
  std::string other_column;
  double containment = 0.0;
};

/// Proposes joins from `base_table` into the rest of `db` by containment of
/// distinct display-string sets. Purely syntactic: it can propose spurious
/// joins and miss semantic ones.
Result<std::vector<DiscoveredJoin>> DiscoverJoins(
    const Database& db, const std::string& base_table,
    const DiscoveryOptions& options = {});

/// Materializes the Disc training table: the base table left-join-aggregated
/// with every discovered join target.
Result<Table> MaterializeDiscoveredTable(const Database& db,
                                         const std::string& base_table,
                                         const DiscoveryOptions& options = {});

}  // namespace leva

#endif  // LEVA_BASELINES_DISCOVERY_H_
