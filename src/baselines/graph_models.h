#ifndef LEVA_BASELINES_GRAPH_MODELS_H_
#define LEVA_BASELINES_GRAPH_MODELS_H_

#include <string>
#include <vector>

#include "baselines/embedding_model.h"
#include "embed/walks.h"
#include "embed/word2vec.h"
#include "graph/graph.h"
#include "text/textifier.h"

namespace leva {

/// Table 5 "Node2Vec" baseline: a graph built purely on syntactic token
/// sharing — no voting refinement, no missing-data removal, no edge
/// weighting — embedded with p/q-biased second-order walks (Grover &
/// Leskovec, KDD 2016).
class Node2VecModel : public EmbeddingModel {
 public:
  Node2VecModel(double p, double q, Word2VecOptions w2v,
                TextifyOptions textify, uint64_t seed)
      : p_(p), q_(q), w2v_options_(w2v), textify_options_(textify),
        seed_(seed) {}

  Status Fit(const Database& db) override;
  Result<std::vector<double>> RowVector(const Table& table, size_t row,
                                        const std::string& target_column,
                                        bool rows_in_graph) const override;
  size_t dim() const override { return embedding_.dim(); }
  const Embedding& embedding() const override { return embedding_; }
  const LevaGraph& graph() const { return graph_; }

 protected:
  // Builds the graph this model embeds; overridden by EmbdiModel.
  virtual Result<LevaGraph> BuildModelGraph(
      const std::vector<TextifiedTable>& tables, size_t total_attributes);
  // Maps a textified token to the embedding key (EmbdiModel normalizes).
  virtual std::string TokenKey(const std::string& token) const;

  double p_;
  double q_;
  Word2VecOptions w2v_options_;
  TextifyOptions textify_options_;
  uint64_t seed_;
  Textifier textifier_;
  LevaGraph graph_;
  Embedding embedding_;
};

/// EmbDI-style model (Cappuzzo et al., SIGMOD 2020): a tripartite graph
/// linking cell-value nodes to their rows and to their columns, embedded with
/// uniform random walks. The "-F" flavor applies EmbDI's input
/// transformations (token normalization) before graph construction; "-S"
/// feeds the data as-is.
class EmbdiModel : public Node2VecModel {
 public:
  EmbdiModel(bool normalize_tokens, Word2VecOptions w2v,
             TextifyOptions textify, uint64_t seed)
      : Node2VecModel(1.0, 1.0, w2v, textify, seed),
        normalize_tokens_(normalize_tokens) {}

 protected:
  Result<LevaGraph> BuildModelGraph(
      const std::vector<TextifiedTable>& tables,
      size_t total_attributes) override;
  std::string TokenKey(const std::string& token) const override;

 private:
  bool normalize_tokens_;
};

}  // namespace leva

#endif  // LEVA_BASELINES_GRAPH_MODELS_H_
