#include "baselines/corpus_models.h"

#include <cmath>

#include "common/rng.h"

namespace leva {

Status DirectWord2VecModel::Fit(const Database& db) {
  Rng rng(seed_);
  textifier_ = Textifier(textify_options_);
  LEVA_RETURN_IF_ERROR(textifier_.Fit(db));

  // Vocabulary and per-row sentences, appended straight into the flat
  // corpus (empty rows are dropped by EndSentence).
  std::unordered_map<std::string, uint32_t> vocab;
  std::vector<std::string> vocab_tokens;
  FlatCorpus corpus;
  token_row_freq_.clear();
  total_rows_ = 0;

  for (const Table& t : db.tables()) {
    LEVA_ASSIGN_OR_RETURN(const TextifiedTable tt, textifier_.Transform(t));
    for (const auto& row : tt.rows) {
      std::unordered_map<std::string, bool> seen_in_row;
      for (const TextToken& tok : row) {
        auto [it, inserted] =
            vocab.emplace(tok.token, static_cast<uint32_t>(vocab.size()));
        if (inserted) vocab_tokens.push_back(tok.token);
        corpus.PushToken(it->second);
        if (!seen_in_row[tok.token]) {
          seen_in_row[tok.token] = true;
          token_row_freq_[tok.token] += 1.0;
        }
      }
      corpus.EndSentence();
      ++total_rows_;
    }
  }
  if (vocab.empty()) return Status::InvalidArgument("no tokens in database");

  Word2Vec model(w2v_options_);
  LEVA_RETURN_IF_ERROR(model.Train(corpus, vocab.size(), &rng));

  embedding_ = Embedding(w2v_options_.dim);
  const Matrix& vectors = model.node_vectors();
  for (size_t i = 0; i < vocab_tokens.size(); ++i) {
    LEVA_RETURN_IF_ERROR(embedding_.Put(
        vocab_tokens[i], {vectors.RowPtr(i), vectors.cols()}));
  }
  return Status::OK();
}

double DirectWord2VecModel::TokenWeight(const std::string& token) const {
  (void)token;
  return 1.0;
}

double DeeperModel::TokenWeight(const std::string& token) const {
  const auto it = token_row_freq_.find(token);
  const double freq = it == token_row_freq_.end() ? 1.0 : it->second;
  return std::log(1.0 + static_cast<double>(total_rows_) / freq);
}

Result<std::vector<double>> DirectWord2VecModel::RowVector(
    const Table& table, size_t row, const std::string& target_column,
    bool rows_in_graph) const {
  (void)rows_in_graph;  // no row nodes in a pure text corpus
  std::vector<double> out(embedding_.dim(), 0.0);
  double total_weight = 0.0;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Column& col = table.column(c);
    if (col.name == target_column) continue;
    LEVA_ASSIGN_OR_RETURN(
        const std::vector<std::string> tokens,
        textifier_.TransformCell(table.name(), col.name, col.values[row]));
    for (const std::string& token : tokens) {
      const auto vec = embedding_.Get(token);
      if (vec.empty()) continue;
      const double w = TokenWeight(token);
      total_weight += w;
      for (size_t j = 0; j < out.size(); ++j) out[j] += w * vec[j];
    }
  }
  if (total_weight > 0) {
    for (double& v : out) v /= total_weight;
  }
  return out;
}

}  // namespace leva
