#include "baselines/discovery.h"

#include <unordered_set>

#include "table/join.h"

namespace leva {
namespace {

std::unordered_set<std::string> DistinctValues(const Column& col) {
  std::unordered_set<std::string> out;
  for (const Value& v : col.values) {
    if (v.is_null()) continue;
    std::string s = v.ToDisplayString();
    if (!s.empty()) out.insert(std::move(s));
  }
  return out;
}

double Containment(const std::unordered_set<std::string>& base,
                   const std::unordered_set<std::string>& other) {
  if (base.empty()) return 0.0;
  size_t hits = 0;
  for (const std::string& s : base) {
    if (other.count(s) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(base.size());
}

}  // namespace

Result<std::vector<DiscoveredJoin>> DiscoverJoins(
    const Database& db, const std::string& base_table,
    const DiscoveryOptions& options) {
  const Table* base = db.FindTable(base_table);
  if (base == nullptr) {
    return Status::NotFound("base table '" + base_table + "' not found");
  }
  std::vector<DiscoveredJoin> joins;
  for (const Column& base_col : base->columns()) {
    const auto base_distinct = DistinctValues(base_col);
    if (base_distinct.size() < options.min_distinct) continue;
    // Best target per base column (a discovery system ranks candidates).
    DiscoveredJoin best;
    for (const Table& other : db.tables()) {
      if (other.name() == base_table) continue;
      for (const Column& other_col : other.columns()) {
        if (other_col.DistinctRatio() < options.key_distinct_ratio) continue;
        const double containment =
            Containment(base_distinct, DistinctValues(other_col));
        if (containment >= options.containment_threshold &&
            containment > best.containment) {
          best = {base_col.name, other.name(), other_col.name, containment};
        }
      }
    }
    if (!best.other_table.empty()) joins.push_back(std::move(best));
  }
  return joins;
}

Result<Table> MaterializeDiscoveredTable(const Database& db,
                                         const std::string& base_table,
                                         const DiscoveryOptions& options) {
  const Table* base = db.FindTable(base_table);
  if (base == nullptr) {
    return Status::NotFound("base table '" + base_table + "' not found");
  }
  LEVA_ASSIGN_OR_RETURN(const std::vector<DiscoveredJoin> joins,
                        DiscoverJoins(db, base_table, options));
  Table result = *base;
  for (const DiscoveredJoin& join : joins) {
    const Table* other = db.FindTable(join.other_table);
    if (other == nullptr) continue;
    LEVA_ASSIGN_OR_RETURN(result,
                          LeftJoinAggregate(result, *other, join.base_column,
                                            join.other_column));
  }
  return result;
}

}  // namespace leva
