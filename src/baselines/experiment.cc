#include "baselines/experiment.h"

#include "ml/gridsearch.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace leva {

Result<ExperimentTask> PrepareTask(SyntheticDataset data,
                                   double test_fraction, uint64_t seed) {
  const Table* base = data.db.FindTable(data.base_table);
  if (base == nullptr) {
    return Status::NotFound("base table '" + data.base_table + "' missing");
  }
  Rng rng(seed);
  ExperimentTask task;
  const size_t n = base->NumRows();
  const std::vector<size_t> perm = rng.Permutation(n);
  const size_t test_n =
      static_cast<size_t>(test_fraction * static_cast<double>(n));
  task.test_rows.assign(perm.begin(), perm.begin() + static_cast<ptrdiff_t>(test_n));
  task.train_rows.assign(perm.begin() + static_cast<ptrdiff_t>(test_n), perm.end());

  task.train_table = base->SubsetRows(task.train_rows);
  task.train_table.set_name(data.base_table);
  task.test_table = base->SubsetRows(task.test_rows);
  task.test_table.set_name(data.base_table);

  LEVA_RETURN_IF_ERROR(task.encoder.Fit(
      *base->FindColumn(data.target_column), data.classification));

  // fit_db = all tables, with the base table's target column dropped so the
  // unsupervised embedding never sees a label.
  for (const Table& t : data.db.tables()) {
    if (t.name() == data.base_table) {
      Table features = t;
      LEVA_ASSIGN_OR_RETURN(const size_t target_idx,
                            features.ColumnIndex(data.target_column));
      LEVA_RETURN_IF_ERROR(features.DropColumn(target_idx));
      LEVA_RETURN_IF_ERROR(task.fit_db.AddTable(std::move(features)));
    } else {
      LEVA_RETURN_IF_ERROR(task.fit_db.AddTable(t));
    }
  }
  for (const ForeignKey& fk : data.db.foreign_keys()) {
    task.fit_db.AddForeignKey(fk);
  }
  task.data = std::move(data);
  return task;
}

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRandomForest:
      return "RF";
    case ModelKind::kLogistic:
      return "LR";
    case ModelKind::kLinear:
      return "LinReg";
    case ModelKind::kElasticNet:
      return "ElasticNet";
    case ModelKind::kMlp:
      return "NN";
  }
  return "?";
}

namespace {

struct ModelSpec {
  ModelFactory factory;
  std::vector<ParamSet> grid;
};

ModelSpec MakeSpec(ModelKind kind, bool classification, size_t num_classes,
                   bool wide_grid) {
  ModelSpec spec;
  switch (kind) {
    case ModelKind::kRandomForest: {
      spec.factory = [classification, num_classes](const ParamSet& p) {
        ForestOptions options;
        options.num_trees = 40;
        options.tree.classification = classification;
        options.tree.num_classes = num_classes;
        options.tree.max_depth = static_cast<size_t>(p.at("max_depth"));
        options.tree.min_samples_leaf =
            static_cast<size_t>(p.at("min_samples_leaf"));
        return std::make_unique<RandomForest>(options);
      };
      spec.grid = BuildParamGrid(
          {{"max_depth", wide_grid ? std::vector<double>{6, 10, 14}
                                   : std::vector<double>{10}},
           {"min_samples_leaf",
            wide_grid ? std::vector<double>{1, 2, 5} : std::vector<double>{1, 4}}});
      return spec;
    }
    case ModelKind::kLogistic: {
      spec.factory = [num_classes](const ParamSet& p) {
        ElasticNetOptions options;
        options.lambda = p.at("lambda");
        options.l1_ratio = 0.5;
        options.epochs = 40;
        return std::make_unique<LogisticRegressor>(num_classes, options);
      };
      spec.grid = BuildParamGrid(
          {{"lambda", wide_grid ? std::vector<double>{1e-5, 1e-4, 1e-3, 1e-2}
                                : std::vector<double>{1e-4, 1e-2}}});
      return spec;
    }
    case ModelKind::kLinear: {
      spec.factory = [](const ParamSet&) {
        ElasticNetOptions options;
        options.lambda = 0.0;
        options.epochs = 60;
        return std::make_unique<LinearRegressor>(options);
      };
      spec.grid = {{}};
      return spec;
    }
    case ModelKind::kElasticNet: {
      spec.factory = [](const ParamSet& p) {
        ElasticNetOptions options;
        options.lambda = p.at("lambda");
        options.l1_ratio = 0.5;
        options.epochs = 60;
        return std::make_unique<LinearRegressor>(options);
      };
      spec.grid = BuildParamGrid(
          {{"lambda", wide_grid ? std::vector<double>{1e-4, 1e-3, 1e-2, 1e-1}
                                : std::vector<double>{1e-3, 1e-2}}});
      return spec;
    }
    case ModelKind::kMlp: {
      spec.factory = [classification, num_classes](const ParamSet& p) {
        MlpOptions options;
        options.classification = classification;
        options.num_classes = num_classes;
        options.hidden_dim = 64;
        options.epochs = 40;
        options.learning_rate = p.at("lr");
        options.dropout = p.at("dropout");
        return std::make_unique<MLP>(options);
      };
      spec.grid = BuildParamGrid(
          {{"lr", wide_grid ? std::vector<double>{0.003, 0.01, 0.03}
                            : std::vector<double>{0.01}},
           {"dropout", wide_grid ? std::vector<double>{0.0, 0.2}
                                 : std::vector<double>{0.0}}});
      return spec;
    }
  }
  return spec;
}

}  // namespace

Result<double> TrainAndScore(ModelKind kind, const MLDataset& train,
                             const MLDataset& test, uint64_t seed,
                             bool wide_grid) {
  const bool classification = train.classification;
  const ModelSpec spec =
      MakeSpec(kind, classification, train.num_classes, wide_grid);
  const ScoreFn score = classification ? ScoreFn(Accuracy)
                                       : ScoreFn(MeanAbsoluteError);
  Rng rng(seed);
  ParamSet best = spec.grid.front();
  if (spec.grid.size() > 1) {
    LEVA_ASSIGN_OR_RETURN(
        const GridSearchResult result,
        GridSearchCV(spec.factory, spec.grid, train, 3, score,
                     /*higher_is_better=*/classification, &rng));
    best = result.best_params;
  }
  return FitAndScore(spec.factory, best, train, test, score, &rng);
}

Result<std::pair<MLDataset, MLDataset>> FeaturizeTask(
    const EmbeddingModel& fitted_model, const ExperimentTask& task) {
  // Featurize the whole base table (all rows are graph nodes), then split by
  // the shared train/test row indices.
  const Table* base = task.data.db.FindTable(task.data.base_table);
  if (base == nullptr) return Status::NotFound("base table missing");
  LEVA_ASSIGN_OR_RETURN(
      const MLDataset all,
      FeaturizeWithModel(fitted_model, *base, task.data.target_column,
                         task.encoder, /*rows_in_graph=*/true));
  MLDataset train = all.Subset(task.train_rows);
  MLDataset test = all.Subset(task.test_rows);
  StandardizeFeatures(&train, &test);
  return std::make_pair(std::move(train), std::move(test));
}

Result<double> EvaluateEmbeddingModel(EmbeddingModel* model,
                                      const ExperimentTask& task,
                                      ModelKind kind, uint64_t seed,
                                      bool wide_grid) {
  LEVA_RETURN_IF_ERROR(model->Fit(task.fit_db));
  LEVA_ASSIGN_OR_RETURN(auto datasets, FeaturizeTask(*model, task));
  return TrainAndScore(kind, datasets.first, datasets.second, seed, wide_grid);
}

Result<double> EvaluateTabularBaseline(const ExperimentTask& task,
                                       TabularBaseline baseline,
                                       size_t top_k_features, ModelKind kind,
                                       uint64_t seed) {
  LEVA_ASSIGN_OR_RETURN(
      const auto materialized,
      MaterializeBaselineTable(task.data.db, task.data.base_table,
                               task.data.target_column, baseline));
  Rng rng(seed);
  LEVA_ASSIGN_OR_RETURN(
      auto datasets,
      BuildTabularDatasets(materialized.first, materialized.second,
                           task.data.classification, task.train_rows,
                           task.test_rows, top_k_features, &rng));
  return TrainAndScore(kind, datasets.first, datasets.second, seed);
}

// Embedding quality needs enough dimensions to separate the informative
// graph structure from row-identity noise; dim 100 (the Table 2 default)
// remains fast on the benchmark scales.
LevaConfig FastLevaConfig(EmbeddingMethod method, uint64_t seed, size_t dim) {
  LevaConfig config;
  config.method = method;
  config.embedding_dim = dim;
  config.walks.epochs = 6;
  config.walks.walk_length = 30;
  config.word2vec.epochs = 3;
  config.word2vec.dim = dim;
  // The benchmark datasets are scaled down ~100x from the originals, so the
  // histogram resolution scales with them (the Table 2 default of 50 bins
  // targets million-row tables; Fig. 7b sweeps this knob).
  config.textify.bin_count = 20;
  config.seed = seed;
  return config;
}

}  // namespace leva
