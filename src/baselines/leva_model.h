#ifndef LEVA_BASELINES_LEVA_MODEL_H_
#define LEVA_BASELINES_LEVA_MODEL_H_

#include "baselines/embedding_model.h"
#include "core/pipeline.h"

namespace leva {

/// Adapts LevaPipeline to the EmbeddingModel interface so the benchmark
/// harnesses can treat Leva and the baseline embedding methods uniformly.
class LevaModel : public EmbeddingModel {
 public:
  explicit LevaModel(LevaConfig config = {}) : pipeline_(std::move(config)) {}

  Status Fit(const Database& db) override { return pipeline_.Fit(db); }

  Result<std::vector<double>> RowVector(const Table& table, size_t row,
                                        const std::string& target_column,
                                        bool rows_in_graph) const override {
    return pipeline_.RowVector(table, row, target_column, rows_in_graph);
  }

  /// Batched fast path: column-wise textify + interned token resolution +
  /// blocked parallel gather, bit-identical to the row-at-a-time default.
  Result<MLDataset> Featurize(const Table& table,
                              const std::string& target_column,
                              const TargetEncoder& encoder,
                              bool rows_in_graph) const override {
    return pipeline_.Featurize(table, target_column, encoder, rows_in_graph);
  }

  size_t dim() const override {
    return pipeline_.config().featurization == Featurization::kRowPlusValue
               ? 2 * pipeline_.embedding().dim()
               : pipeline_.embedding().dim();
  }

  const Embedding& embedding() const override {
    return pipeline_.embedding();
  }

  LevaPipeline& pipeline() { return pipeline_; }
  const LevaPipeline& pipeline() const { return pipeline_; }

 private:
  LevaPipeline pipeline_;
};

}  // namespace leva

#endif  // LEVA_BASELINES_LEVA_MODEL_H_
