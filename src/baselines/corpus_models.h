#ifndef LEVA_BASELINES_CORPUS_MODELS_H_
#define LEVA_BASELINES_CORPUS_MODELS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/embedding_model.h"
#include "embed/word2vec.h"
#include "text/textifier.h"

namespace leva {

/// The Table 5 "Word2Vec" baseline: textifies every row into a sentence and
/// trains word embeddings directly, losing the relational structure. Rows are
/// featurized as the mean of their token vectors.
class DirectWord2VecModel : public EmbeddingModel {
 public:
  DirectWord2VecModel(Word2VecOptions w2v, TextifyOptions textify,
                      uint64_t seed)
      : w2v_options_(w2v), textify_options_(textify), seed_(seed) {}

  Status Fit(const Database& db) override;
  Result<std::vector<double>> RowVector(const Table& table, size_t row,
                                        const std::string& target_column,
                                        bool rows_in_graph) const override;
  size_t dim() const override { return embedding_.dim(); }
  const Embedding& embedding() const override { return embedding_; }

 protected:
  /// Token weight used when averaging (1.0 here; DeepER overrides with IDF).
  virtual double TokenWeight(const std::string& token) const;

  Word2VecOptions w2v_options_;
  TextifyOptions textify_options_;
  uint64_t seed_;
  Textifier textifier_;
  Embedding embedding_;  // token -> vector
  std::unordered_map<std::string, double> token_row_freq_;
  size_t total_rows_ = 0;
};

/// DeepER-style tuple embeddings (Ebraheem et al., VLDB 2018): token vectors
/// from the same corpus, composed per tuple with IDF weighting so rare
/// (discriminative) tokens dominate the tuple representation.
class DeeperModel : public DirectWord2VecModel {
 public:
  using DirectWord2VecModel::DirectWord2VecModel;

 protected:
  double TokenWeight(const std::string& token) const override;
};

}  // namespace leva

#endif  // LEVA_BASELINES_CORPUS_MODELS_H_
