#include "baselines/graph_models.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"

namespace leva {
namespace {

// EmbDI-F input transformation: case folding and punctuation stripping.
std::string NormalizeToken(const std::string& token) {
  std::string out;
  out.reserve(token.size());
  for (const char c : token) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      out += static_cast<char>(std::tolower(u));
    } else if (c == '#' || c == '_' || c == '.') {
      out += c;  // keep structural separators from the textifier
    }
  }
  return out.empty() ? token : out;
}

}  // namespace

Result<LevaGraph> Node2VecModel::BuildModelGraph(
    const std::vector<TextifiedTable>& tables, size_t total_attributes) {
  // Raw syntactic graph: keep every token (theta_range = 1 disables the
  // missing-data removal, theta_min = 0 keeps every attribute), unweighted.
  GraphOptions options;
  options.theta_range = 1.0;
  options.theta_min = 0.0;
  options.weighted = false;
  return BuildGraph(tables, total_attributes, options);
}

Status Node2VecModel::Fit(const Database& db) {
  Rng rng(seed_);
  textifier_ = Textifier(textify_options_);
  LEVA_RETURN_IF_ERROR(textifier_.Fit(db));
  std::vector<TextifiedTable> textified;
  textified.reserve(db.tables().size());
  for (const Table& t : db.tables()) {
    LEVA_ASSIGN_OR_RETURN(TextifiedTable tt, textifier_.Transform(t));
    textified.push_back(std::move(tt));
  }
  LEVA_ASSIGN_OR_RETURN(
      graph_, BuildModelGraph(textified, textifier_.NumAttributes()));

  WalkOptions walk_options;
  walk_options.weighted = false;
  walk_options.p = p_;
  walk_options.q = q_;
  walk_options.walk_length = 20;
  walk_options.epochs = 5;
  WalkGenerator generator(&graph_, walk_options);
  LEVA_ASSIGN_OR_RETURN(const FlatCorpus corpus, generator.Generate(&rng));

  Word2Vec model(w2v_options_);
  LEVA_RETURN_IF_ERROR(model.Train(corpus, graph_.NumNodes(), &rng));

  embedding_ = Embedding(w2v_options_.dim);
  const Matrix& vectors = model.node_vectors();
  for (NodeId n = 0; n < graph_.NumNodes(); ++n) {
    LEVA_RETURN_IF_ERROR(
        embedding_.Put(graph_.label(n), {vectors.RowPtr(n), vectors.cols()}));
  }
  return Status::OK();
}

Result<std::vector<double>> Node2VecModel::RowVector(
    const Table& table, size_t row, const std::string& target_column,
    bool rows_in_graph) const {
  const size_t dim = embedding_.dim();
  if (rows_in_graph) {
    const auto vec = embedding_.Get(table.name() + ":" + std::to_string(row));
    if (!vec.empty()) return std::vector<double>(vec.begin(), vec.end());
  }
  // Out-of-graph rows compose from their tokens' embeddings.
  std::vector<double> out(dim, 0.0);
  size_t hits = 0;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Column& col = table.column(c);
    if (col.name == target_column) continue;
    LEVA_ASSIGN_OR_RETURN(
        const std::vector<std::string> tokens,
        textifier_.TransformCell(table.name(), col.name, col.values[row]));
    for (const std::string& token : tokens) {
      const auto vec = embedding_.Get(TokenKey(token));
      if (vec.empty()) continue;
      ++hits;
      for (size_t j = 0; j < dim; ++j) out[j] += vec[j];
    }
  }
  if (hits > 0) {
    for (double& v : out) v /= static_cast<double>(hits);
  }
  return out;
}

std::string Node2VecModel::TokenKey(const std::string& token) const {
  return token;
}

std::string EmbdiModel::TokenKey(const std::string& token) const {
  return normalize_tokens_ ? NormalizeToken(token) : token;
}

Result<LevaGraph> EmbdiModel::BuildModelGraph(
    const std::vector<TextifiedTable>& tables, size_t total_attributes) {
  (void)total_attributes;
  GraphBuilder builder;
  std::unordered_map<std::string, NodeId> token_nodes;
  std::unordered_map<uint32_t, NodeId> column_nodes;
  std::unordered_set<uint64_t> token_column_edges;

  for (const TextifiedTable& t : tables) {
    const NodeId first = builder.AddNode(
        NodeKind::kRow, t.table_name + ":0");
    for (size_t r = 1; r < t.rows.size(); ++r) {
      builder.AddNode(NodeKind::kRow, t.table_name + ":" + std::to_string(r));
    }
    builder.RegisterTableRows(t.table_name, first, t.rows.size());
  }
  NodeId next_row = 0;
  for (const TextifiedTable& t : tables) {
    for (size_t r = 0; r < t.rows.size(); ++r) {
      const NodeId row_node = next_row++;
      for (const TextToken& tok : t.rows[r]) {
        const std::string token = TokenKey(tok.token);
        auto [it, inserted] = token_nodes.emplace(token, kInvalidNode);
        if (inserted) it->second = builder.AddNode(NodeKind::kValue, token);
        LEVA_RETURN_IF_ERROR(builder.AddEdge(row_node, it->second));

        auto [cit, cinserted] = column_nodes.emplace(tok.attr_id, kInvalidNode);
        if (cinserted) {
          cit->second = builder.AddNode(
              NodeKind::kValue, "__col__" + std::to_string(tok.attr_id));
        }
        const uint64_t edge_key =
            (static_cast<uint64_t>(it->second) << 32) | cit->second;
        if (token_column_edges.insert(edge_key).second) {
          LEVA_RETURN_IF_ERROR(builder.AddEdge(it->second, cit->second));
        }
      }
    }
  }
  return std::move(builder).Build();
}

}  // namespace leva
