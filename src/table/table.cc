#include "table/table.h"

#include <unordered_set>

namespace leva {

double Column::DistinctRatio() const {
  std::unordered_set<std::string> distinct;
  size_t non_null = 0;
  for (const Value& v : values) {
    if (v.is_null()) continue;
    ++non_null;
    distinct.insert(v.ToDisplayString());
  }
  if (non_null == 0) return 0.0;
  return static_cast<double>(distinct.size()) / static_cast<double>(non_null);
}

double Column::NullRatio() const {
  if (values.empty()) return 0.0;
  size_t nulls = 0;
  for (const Value& v : values) {
    if (v.is_null()) ++nulls;
  }
  return static_cast<double>(nulls) / static_cast<double>(values.size());
}

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != NumRows()) {
    return Status::InvalidArgument(
        "column '" + column.name + "' has " + std::to_string(column.size()) +
        " values, table '" + name_ + "' has " + std::to_string(NumRows()) +
        " rows");
  }
  for (const Column& existing : columns_) {
    if (existing.name == column.name) {
      return Status::AlreadyExists("column '" + column.name +
                                   "' already exists in table '" + name_ + "'");
    }
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::AddRow(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table '" + name_ +
        "' has " + std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].values.push_back(std::move(row[i]));
  }
  return Status::OK();
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column '" + name + "' in table '" + name_ + "'");
}

const Column* Table::FindColumn(const std::string& name) const {
  for (const Column& c : columns_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<Value> Table::Row(size_t r) const {
  std::vector<Value> row;
  row.reserve(columns_.size());
  for (const Column& c : columns_) row.push_back(c.values[r]);
  return row;
}

Table Table::EmptyLike() const {
  Table out(name_);
  for (const Column& c : columns_) {
    Column empty;
    empty.name = c.name;
    empty.type = c.type;
    (void)out.AddColumn(std::move(empty));
  }
  return out;
}

Table Table::SubsetRows(const std::vector<size_t>& rows) const {
  Table out = EmptyLike();
  for (const size_t r : rows) {
    (void)out.AddRow(Row(r));
  }
  return out;
}

Status Table::DropColumn(size_t idx) {
  if (idx >= columns_.size()) {
    return Status::OutOfRange("column index " + std::to_string(idx) +
                              " out of range");
  }
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(idx));
  return Status::OK();
}

Status Database::AddTable(Table table) {
  for (const Table& t : tables_) {
    if (t.name() == table.name()) {
      return Status::AlreadyExists("table '" + table.name() +
                                   "' already exists");
    }
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Result<size_t> Database::TableIndex(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name() == name) return i;
  }
  return Status::NotFound("no table '" + name + "'");
}

const Table* Database::FindTable(const std::string& name) const {
  for (const Table& t : tables_) {
    if (t.name() == name) return &t;
  }
  return nullptr;
}

size_t Database::TotalRows() const {
  size_t rows = 0;
  for (const Table& t : tables_) rows += t.NumRows();
  return rows;
}

size_t Database::TotalColumns() const {
  size_t cols = 0;
  for (const Table& t : tables_) cols += t.NumColumns();
  return cols;
}

}  // namespace leva
