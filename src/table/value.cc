#include "table/value.h"

#include <cmath>
#include <cstdio>

namespace leva {

std::string DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kInt:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kDatetime:
      return "datetime";
  }
  return "unknown";
}

std::string Value::ToDisplayString() const {
  if (is_null()) return "";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    const double d = as_double();
    // Integral doubles print without a trailing ".000000" so that tokens from
    // int and double columns holding the same value collide syntactically,
    // which is exactly the behaviour the graph construction relies on.
    if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
      return std::to_string(static_cast<int64_t>(d));
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", d);
    return buf;
  }
  return as_string();
}

}  // namespace leva
