#include "table/csv.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace leva {
namespace {

// Parses one CSV record starting at *pos; supports RFC-4180 quoting.
// Advances *pos past the record's trailing newline. Returns false at EOF.
bool ParseRecord(std::string_view content, size_t* pos, char delimiter,
                 std::vector<std::string>* fields) {
  fields->clear();
  if (*pos >= content.size()) return false;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  while (i < content.size()) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      ++i;
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
      ++i;
    } else if (c == '\n' || c == '\r') {
      ++i;
      if (c == '\r' && i < content.size() && content[i] == '\n') ++i;
      break;
    } else {
      field += c;
      ++i;
    }
  }
  fields->push_back(std::move(field));
  *pos = i;
  return true;
}

// Infers a column type from raw string fields and converts them to Values.
Column InferColumn(const std::string& name,
                   const std::vector<std::string>& raw) {
  Column col;
  col.name = name;
  bool all_int = true;
  bool all_double = true;
  bool all_datetime = true;
  bool any_value = false;
  for (const std::string& s : raw) {
    if (LooksLikeMissingToken(s)) continue;
    any_value = true;
    if (!ParseInt(s).has_value()) all_int = false;
    if (!ParseDouble(s).has_value()) all_double = false;
    if (!ParseIsoDatetime(s).has_value()) all_datetime = false;
    if (!all_int && !all_double && !all_datetime) break;
  }
  if (!any_value) {
    col.type = DataType::kString;
    for (size_t i = 0; i < raw.size(); ++i) col.values.emplace_back();
    return col;
  }
  if (all_datetime && !all_int && !all_double) {
    // ISO dates/datetimes become epoch-second kDatetime values, which the
    // textifier bins like numerics.
    col.type = DataType::kDatetime;
    for (const std::string& s : raw) {
      auto v = LooksLikeMissingToken(s) ? std::nullopt : ParseIsoDatetime(s);
      col.values.push_back(v ? Value(*v) : Value::Null());
    }
  } else if (all_int) {
    col.type = DataType::kInt;
    for (const std::string& s : raw) {
      auto v = LooksLikeMissingToken(s) ? std::nullopt : ParseInt(s);
      col.values.push_back(v ? Value(*v) : Value::Null());
    }
  } else if (all_double) {
    col.type = DataType::kDouble;
    for (const std::string& s : raw) {
      auto v = LooksLikeMissingToken(s) ? std::nullopt : ParseDouble(s);
      col.values.push_back(v ? Value(*v) : Value::Null());
    }
  } else {
    col.type = DataType::kString;
    for (const std::string& s : raw) {
      // Strings are preserved verbatim (including missing-looking tokens):
      // the graph-refinement voting is responsible for dirty data.
      col.values.push_back(Value(s));
    }
  }
  return col;
}

std::string EscapeField(const std::string& s, char delimiter) {
  const bool needs_quotes = s.find(delimiter) != std::string::npos ||
                            s.find('"') != std::string::npos ||
                            s.find('\n') != std::string::npos ||
                            s.find('\r') != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ReadCsvString(std::string_view content,
                            const std::string& table_name,
                            const CsvOptions& options) {
  size_t pos = 0;
  std::vector<std::string> fields;
  std::vector<std::string> header;
  if (options.has_header) {
    if (!ParseRecord(content, &pos, options.delimiter, &header)) {
      return Status::InvalidArgument("empty CSV input for table '" +
                                     table_name + "'");
    }
  }
  std::vector<std::vector<std::string>> raw_columns;
  size_t row_count = 0;
  while (ParseRecord(content, &pos, options.delimiter, &fields)) {
    if (fields.size() == 1 && fields[0].empty() && pos >= content.size()) {
      break;  // trailing newline
    }
    if (raw_columns.empty()) raw_columns.resize(fields.size());
    if (fields.size() != raw_columns.size()) {
      // 1-based data-row numbering (the header is not a data row), matching
      // what a user counting lines in their editor expects.
      return Status::InvalidArgument(
          "data row " + std::to_string(row_count + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(raw_columns.size()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      raw_columns[i].push_back(std::move(fields[i]));
    }
    ++row_count;
  }
  if (header.empty()) {
    for (size_t i = 0; i < raw_columns.size(); ++i) {
      header.push_back("col" + std::to_string(i));
    }
  }
  if (!raw_columns.empty() && header.size() != raw_columns.size()) {
    return Status::InvalidArgument("header has " +
                                   std::to_string(header.size()) +
                                   " fields but rows have " +
                                   std::to_string(raw_columns.size()));
  }
  Table table(table_name);
  for (size_t i = 0; i < raw_columns.size(); ++i) {
    Column col;
    if (options.infer_types) {
      col = InferColumn(header[i], raw_columns[i]);
    } else {
      col.name = header[i];
      col.type = DataType::kString;
      for (const std::string& s : raw_columns[i]) col.values.push_back(Value(s));
    }
    LEVA_RETURN_IF_ERROR(table.AddColumn(std::move(col)));
  }
  // Header-only input: create empty string columns.
  if (raw_columns.empty()) {
    for (const std::string& name : header) {
      Column col;
      col.name = name;
      col.type = DataType::kString;
      LEVA_RETURN_IF_ERROR(table.AddColumn(std::move(col)));
    }
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const std::string& table_name,
                          const CsvOptions& options) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading: " +
                           (errno != 0 ? std::strerror(errno)
                                       : "unknown stream error"));
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("error reading '" + path + "': " +
                           (errno != 0 ? std::strerror(errno)
                                       : "unknown stream error"));
  }
  Result<Table> table = ReadCsvString(ss.str(), table_name, options);
  if (!table.ok()) {
    // Parse errors name the offending row; add which file it came from so a
    // multi-table load points at the right CSV.
    return Status(table.status().code(),
                  std::string(table.status().message()) + " in '" + path + "'");
  }
  return table;
}

std::string WriteCsvString(const Table& table, char delimiter) {
  std::string out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out += delimiter;
    out += EscapeField(table.column(c).name, delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out += delimiter;
      const Value& v = table.at(r, c);
      // Datetime columns round-trip through their ISO representation so a
      // re-read infers kDatetime again.
      if (table.column(c).type == DataType::kDatetime && v.is_int()) {
        out += EscapeField(FormatIsoDatetime(v.as_int()), delimiter);
      } else {
        out += EscapeField(v.ToDisplayString(), delimiter);
      }
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  errno = 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing: " +
                           (errno != 0 ? std::strerror(errno)
                                       : "unknown stream error"));
  }
  out << WriteCsvString(table, delimiter);
  out.flush();
  if (!out) {
    return Status::IOError("failed writing '" + path + "': " +
                           (errno != 0 ? std::strerror(errno)
                                       : "unknown stream error"));
  }
  return Status::OK();
}

}  // namespace leva
