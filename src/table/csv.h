#ifndef LEVA_TABLE_CSV_H_
#define LEVA_TABLE_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "table/table.h"

namespace leva {

/// CSV parsing options. Leva's CSV reader supports quoted fields, embedded
/// commas/newlines inside quotes, and type inference per column.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// When true, columns whose non-null values all parse as numbers become
  /// kInt/kDouble, and missing-looking tokens become nulls.
  bool infer_types = true;
};

/// Parses CSV `content` into a table named `table_name`.
Result<Table> ReadCsvString(std::string_view content,
                            const std::string& table_name,
                            const CsvOptions& options = {});

/// Reads a CSV file from `path`.
Result<Table> ReadCsvFile(const std::string& path,
                          const std::string& table_name,
                          const CsvOptions& options = {});

/// Serializes `table` to CSV with a header row.
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// Writes `table` to `path`.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace leva

#endif  // LEVA_TABLE_CSV_H_
