#ifndef LEVA_TABLE_JOIN_H_
#define LEVA_TABLE_JOIN_H_

#include <string>

#include "common/result.h"
#include "table/table.h"

namespace leva {

/// Inner hash join of `left` and `right` on display-string equality of
/// `left_col` / `right_col`. Output columns are named "<table>.<column>".
Result<Table> InnerHashJoin(const Table& left, const Table& right,
                            const std::string& left_col,
                            const std::string& right_col);

/// Left join that preserves the cardinality of `left`: when a left key
/// matches multiple right rows, the matches are aggregated (mean for numeric
/// columns, most-frequent value for strings). This is the standard treatment
/// for 1:N joins when assembling an ML training table (cf. ARDA), and is what
/// the Full / Full+FE / Disc baselines use.
///
/// `left_col` is a column name in `left` (which may already carry
/// "<table>.<column>" names from prior joins); output gains `right`'s columns
/// as "<right.name>.<column>" minus the join column.
Result<Table> LeftJoinAggregate(const Table& left, const Table& right,
                                const std::string& left_col,
                                const std::string& right_col);

/// Materializes the Full Table: starting from `base_table`, walks the
/// ground-truth foreign keys of `db` breadth-first (in both directions) and
/// left-join-aggregates every reachable table. Output columns are
/// "<table>.<column>"; the base table contributes all its columns.
Result<Table> MaterializeFullTable(const Database& db,
                                   const std::string& base_table);

}  // namespace leva

#endif  // LEVA_TABLE_JOIN_H_
