#ifndef LEVA_TABLE_VALUE_H_
#define LEVA_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace leva {

/// Declared (or inferred) type of a column.
enum class DataType {
  kNull = 0,   ///< all-null / unknown
  kInt,        ///< 64-bit integer
  kDouble,     ///< double-precision float
  kString,     ///< UTF-8 string
  kDatetime,   ///< seconds since epoch, stored as int64
};

std::string DataTypeName(DataType type);

/// A single cell: null, integer, double, or string. Datetimes are stored as
/// int64 and distinguished at the column level.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric view: ints widen to double; null/string are not numeric.
  bool is_numeric() const { return is_int() || is_double(); }
  double ToNumeric() const { return is_int() ? static_cast<double>(as_int()) : as_double(); }

  /// Canonical textual form ("" for null) used by CSV output and as the raw
  /// token by the textifier.
  std::string ToDisplayString() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace leva

#endif  // LEVA_TABLE_VALUE_H_
