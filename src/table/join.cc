#include "table/join.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace leva {
namespace {

// Builds key -> row indices over the display strings of `col` (nulls and
// empty strings are skipped: they never join).
std::unordered_map<std::string, std::vector<size_t>> BuildIndex(
    const Column& col) {
  std::unordered_map<std::string, std::vector<size_t>> index;
  for (size_t r = 0; r < col.size(); ++r) {
    if (col.values[r].is_null()) continue;
    std::string key = col.values[r].ToDisplayString();
    if (key.empty()) continue;
    index[key].push_back(r);
  }
  return index;
}

std::string Qualify(const std::string& table, const std::string& column) {
  // Columns carried over from earlier joins are already qualified.
  if (column.find('.') != std::string::npos) return column;
  return table + "." + column;
}

// Aggregates the values of `col` at `rows`: mean for numerics, mode for
// strings, null when everything is null.
Value Aggregate(const Column& col, const std::vector<size_t>& rows) {
  if (rows.size() == 1) return col.values[rows[0]];
  double sum = 0;
  size_t numeric = 0;
  std::map<std::string, size_t> counts;
  for (size_t r : rows) {
    const Value& v = col.values[r];
    if (v.is_null()) continue;
    if (v.is_numeric()) {
      sum += v.ToNumeric();
      ++numeric;
    } else {
      ++counts[v.as_string()];
    }
  }
  if (numeric > 0) return Value(sum / static_cast<double>(numeric));
  if (!counts.empty()) {
    const std::string* best = nullptr;
    size_t best_count = 0;
    for (const auto& [s, n] : counts) {
      if (n > best_count) {
        best = &s;
        best_count = n;
      }
    }
    return Value(*best);
  }
  return Value::Null();
}

}  // namespace

Result<Table> InnerHashJoin(const Table& left, const Table& right,
                            const std::string& left_col,
                            const std::string& right_col) {
  LEVA_ASSIGN_OR_RETURN(const size_t li, left.ColumnIndex(left_col));
  LEVA_ASSIGN_OR_RETURN(const size_t ri, right.ColumnIndex(right_col));

  Table out(left.name() + "_join_" + right.name());
  for (const Column& c : left.columns()) {
    Column col;
    col.name = Qualify(left.name(), c.name);
    col.type = c.type;
    LEVA_RETURN_IF_ERROR(out.AddColumn(std::move(col)));
  }
  for (const Column& c : right.columns()) {
    Column col;
    col.name = Qualify(right.name(), c.name);
    col.type = c.type;
    LEVA_RETURN_IF_ERROR(out.AddColumn(std::move(col)));
  }

  const auto index = BuildIndex(right.column(ri));
  for (size_t r = 0; r < left.NumRows(); ++r) {
    const Value& key = left.at(r, li);
    if (key.is_null()) continue;
    const auto it = index.find(key.ToDisplayString());
    if (it == index.end()) continue;
    for (size_t rr : it->second) {
      std::vector<Value> row = left.Row(r);
      std::vector<Value> rrow = right.Row(rr);
      row.insert(row.end(), rrow.begin(), rrow.end());
      LEVA_RETURN_IF_ERROR(out.AddRow(std::move(row)));
    }
  }
  return out;
}

Result<Table> LeftJoinAggregate(const Table& left, const Table& right,
                                const std::string& left_col,
                                const std::string& right_col) {
  LEVA_ASSIGN_OR_RETURN(const size_t li, left.ColumnIndex(left_col));
  LEVA_ASSIGN_OR_RETURN(const size_t ri, right.ColumnIndex(right_col));

  Table out = left;  // keeps left's columns and rows verbatim
  const auto index = BuildIndex(right.column(ri));

  for (size_t c = 0; c < right.NumColumns(); ++c) {
    if (c == ri) continue;  // join key would duplicate left_col's information
    Column col;
    col.name = Qualify(right.name(), right.column(c).name);
    col.type = right.column(c).type;
    col.values.reserve(left.NumRows());
    for (size_t r = 0; r < left.NumRows(); ++r) {
      const Value& key = left.at(r, li);
      if (key.is_null()) {
        col.values.push_back(Value::Null());
        continue;
      }
      const auto it = index.find(key.ToDisplayString());
      if (it == index.end()) {
        col.values.push_back(Value::Null());
      } else {
        col.values.push_back(Aggregate(right.column(c), it->second));
      }
    }
    LEVA_RETURN_IF_ERROR(out.AddColumn(std::move(col)));
  }
  return out;
}

Result<Table> MaterializeFullTable(const Database& db,
                                   const std::string& base_table) {
  const Table* base = db.FindTable(base_table);
  if (base == nullptr) {
    return Status::NotFound("base table '" + base_table + "' not in database");
  }

  // Start from a qualified copy of the base table.
  Table result(base_table + "_full");
  for (const Column& c : base->columns()) {
    Column col = c;
    col.name = Qualify(base->name(), c.name);
    LEVA_RETURN_IF_ERROR(result.AddColumn(std::move(col)));
  }

  std::unordered_set<std::string> joined = {base_table};
  // Repeatedly scan FKs until no new table can be attached; this walks join
  // paths of any depth (e.g. Expenses -> Order Info -> Price Info).
  bool progress = true;
  while (progress) {
    progress = false;
    for (const ForeignKey& fk : db.foreign_keys()) {
      std::string reached_col;   // qualified column already inside `result`
      const Table* new_table = nullptr;
      std::string new_col;
      if (joined.count(fk.child_table) > 0 && joined.count(fk.parent_table) == 0) {
        reached_col = Qualify(fk.child_table, fk.child_column);
        new_table = db.FindTable(fk.parent_table);
        new_col = fk.parent_column;
      } else if (joined.count(fk.parent_table) > 0 &&
                 joined.count(fk.child_table) == 0) {
        reached_col = Qualify(fk.parent_table, fk.parent_column);
        new_table = db.FindTable(fk.child_table);
        new_col = fk.child_column;
      } else {
        continue;
      }
      if (new_table == nullptr) {
        return Status::NotFound("foreign key references unknown table");
      }
      if (!result.FindColumn(reached_col)) {
        // The connecting column was dropped upstream; skip this edge.
        continue;
      }
      LEVA_ASSIGN_OR_RETURN(
          result, LeftJoinAggregate(result, *new_table, reached_col, new_col));
      joined.insert(new_table->name());
      progress = true;
    }
  }
  return result;
}

}  // namespace leva
