#ifndef LEVA_TABLE_TABLE_H_
#define LEVA_TABLE_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "table/value.h"

namespace leva {

/// A named, typed column of values. Kept simple and struct-like: the Table
/// owns the invariant that all its columns have equal length.
struct Column {
  std::string name;
  DataType type = DataType::kNull;
  std::vector<Value> values;

  size_t size() const { return values.size(); }

  /// Fraction of distinct non-null display strings among non-null values.
  /// Returns 0 for an all-null column.
  double DistinctRatio() const;

  /// Fraction of null values.
  double NullRatio() const;
};

/// A relational table: a name plus equally sized columns.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t NumRows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t NumColumns() const { return columns_.size(); }

  /// Appends a column; fails if the length disagrees with existing columns or
  /// the name already exists.
  Status AddColumn(Column column);

  /// Appends a row; `row` must match the column count. Column types are not
  /// validated (dirty data is a first-class citizen in Leva).
  Status AddRow(std::vector<Value> row);

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or error.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Returns the column named `name`, or nullptr.
  const Column* FindColumn(const std::string& name) const;

  const Value& at(size_t row, size_t col) const {
    return columns_[col].values[row];
  }

  /// Copy of row `r`.
  std::vector<Value> Row(size_t r) const;

  /// A table with the same schema but no rows.
  Table EmptyLike() const;

  /// A table with the same schema containing only `rows` (in order). Used to
  /// carve train/test slices out of a Base Table.
  Table SubsetRows(const std::vector<size_t>& rows) const;

  /// Drops the column at `idx` (used by baselines that separate the target).
  Status DropColumn(size_t idx);

 private:
  std::string name_;
  std::vector<Column> columns_;
};

/// A collection of tables plus optional ground-truth foreign keys. The
/// ground truth is *not* consumed by Leva itself (which is keyless); it
/// exists so the Full / Full+FE baselines can perform correct joins, exactly
/// as the paper's evaluation does.
struct ForeignKey {
  std::string child_table;
  std::string child_column;
  std::string parent_table;
  std::string parent_column;
};

class Database {
 public:
  Database() = default;

  Status AddTable(Table table);
  const std::vector<Table>& tables() const { return tables_; }
  std::vector<Table>& mutable_tables() { return tables_; }

  Result<size_t> TableIndex(const std::string& name) const;
  const Table* FindTable(const std::string& name) const;

  void AddForeignKey(ForeignKey fk) { foreign_keys_.push_back(std::move(fk)); }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Total rows across all tables.
  size_t TotalRows() const;
  /// Total columns across all tables.
  size_t TotalColumns() const;

 private:
  std::vector<Table> tables_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace leva

#endif  // LEVA_TABLE_TABLE_H_
