#ifndef LEVA_ER_ENTITY_RESOLUTION_H_
#define LEVA_ER_ENTITY_RESOLUTION_H_

#include "baselines/embedding_model.h"
#include "common/result.h"
#include "datagen/er_data.h"

namespace leva {

/// Entity-resolution evaluation (Section 6.7): fit `model` over the two dirty
/// tables, featurize each labeled candidate pair from the row embeddings
/// (|e_a - e_b| plus cosine and L1 similarity), train a binary classifier on
/// a split of the pairs, and report F1 on the held-out pairs.
struct ErEvalOptions {
  double train_fraction = 0.6;
  uint64_t seed = 99;
};

struct ErEvalResult {
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

/// `model` must already be fitted on a Database containing the dataset's two
/// tables (named "table_a" / "table_b").
Result<ErEvalResult> EvaluateEntityResolution(const EmbeddingModel& model,
                                              const ErDataset& dataset,
                                              const ErEvalOptions& options = {});

/// Convenience: builds the two-table Database for an ErDataset.
Result<Database> ErDatabase(const ErDataset& dataset);

}  // namespace leva

#endif  // LEVA_ER_ENTITY_RESOLUTION_H_
