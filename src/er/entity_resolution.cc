#include "er/entity_resolution.h"

#include <cmath>

#include "ml/linear.h"
#include "ml/metrics.h"

namespace leva {

Result<Database> ErDatabase(const ErDataset& dataset) {
  Database db;
  LEVA_RETURN_IF_ERROR(db.AddTable(dataset.table_a));
  LEVA_RETURN_IF_ERROR(db.AddTable(dataset.table_b));
  return db;
}

Result<ErEvalResult> EvaluateEntityResolution(const EmbeddingModel& model,
                                              const ErDataset& dataset,
                                              const ErEvalOptions& options) {
  if (dataset.pairs.empty()) {
    return Status::InvalidArgument("no candidate pairs");
  }
  const size_t dim = model.dim();
  const size_t width = dim + 2;  // |a-b| ++ cosine ++ L1

  Matrix x(dataset.pairs.size(), width);
  std::vector<double> y(dataset.pairs.size());
  for (size_t p = 0; p < dataset.pairs.size(); ++p) {
    const ErPair& pair = dataset.pairs[p];
    LEVA_ASSIGN_OR_RETURN(
        const std::vector<double> va,
        model.RowVector(dataset.table_a, pair.row_a, "", true));
    LEVA_ASSIGN_OR_RETURN(
        const std::vector<double> vb,
        model.RowVector(dataset.table_b, pair.row_b, "", true));
    double dot = 0;
    double na = 0;
    double nb = 0;
    double l1 = 0;
    for (size_t j = 0; j < dim; ++j) {
      x(p, j) = std::fabs(va[j] - vb[j]);
      dot += va[j] * vb[j];
      na += va[j] * va[j];
      nb += vb[j] * vb[j];
      l1 += std::fabs(va[j] - vb[j]);
    }
    x(p, dim) = (na > 0 && nb > 0) ? dot / std::sqrt(na * nb) : 0.0;
    x(p, dim + 1) = l1 / static_cast<double>(dim);
    y[p] = pair.match ? 1.0 : 0.0;
  }

  Rng rng(options.seed);
  const size_t train_n = static_cast<size_t>(
      options.train_fraction * static_cast<double>(dataset.pairs.size()));
  const std::vector<size_t> perm = rng.Permutation(dataset.pairs.size());

  Matrix train_x(train_n, width);
  std::vector<double> train_y(train_n);
  Matrix test_x(dataset.pairs.size() - train_n, width);
  std::vector<double> test_y(dataset.pairs.size() - train_n);
  for (size_t i = 0; i < perm.size(); ++i) {
    if (i < train_n) {
      for (size_t j = 0; j < width; ++j) train_x(i, j) = x(perm[i], j);
      train_y[i] = y[perm[i]];
    } else {
      const size_t t = i - train_n;
      for (size_t j = 0; j < width; ++j) test_x(t, j) = x(perm[i], j);
      test_y[t] = y[perm[i]];
    }
  }

  ElasticNetOptions lr_options;
  lr_options.lambda = 1e-4;
  lr_options.epochs = 60;
  LogisticRegressor classifier(2, lr_options);
  LEVA_RETURN_IF_ERROR(classifier.Fit(train_x, train_y, &rng));
  const std::vector<double> pred = classifier.Predict(test_x);

  ErEvalResult result;
  result.f1 = F1Binary(test_y, pred);
  result.precision = PrecisionBinary(test_y, pred);
  result.recall = RecallBinary(test_y, pred);
  return result;
}

}  // namespace leva
