#include "ml/dataset.h"

#include <cmath>

namespace leva {

MLDataset MLDataset::Subset(const std::vector<size_t>& rows) const {
  MLDataset out;
  out.feature_names = feature_names;
  out.classification = classification;
  out.num_classes = num_classes;
  out.x = Matrix(rows.size(), x.cols());
  out.y.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t r = rows[i];
    for (size_t c = 0; c < x.cols(); ++c) out.x(i, c) = x(r, c);
    out.y[i] = y[r];
  }
  return out;
}

MLDataset MLDataset::SelectFeatures(const std::vector<size_t>& cols) const {
  MLDataset out;
  out.classification = classification;
  out.num_classes = num_classes;
  out.y = y;
  out.x = Matrix(x.rows(), cols.size());
  out.feature_names.reserve(cols.size());
  for (size_t j = 0; j < cols.size(); ++j) {
    out.feature_names.push_back(j < feature_names.size() &&
                                        cols[j] < feature_names.size()
                                    ? feature_names[cols[j]]
                                    : "f" + std::to_string(cols[j]));
    for (size_t r = 0; r < x.rows(); ++r) out.x(r, j) = x(r, cols[j]);
  }
  return out;
}

TrainTestSplit SplitTrainTest(const MLDataset& ds, double test_fraction,
                              Rng* rng) {
  std::vector<size_t> perm = rng->Permutation(ds.NumRows());
  const size_t test_n = static_cast<size_t>(
      std::round(test_fraction * static_cast<double>(ds.NumRows())));
  TrainTestSplit split;
  split.test_rows.assign(perm.begin(), perm.begin() + static_cast<ptrdiff_t>(test_n));
  split.train_rows.assign(perm.begin() + static_cast<ptrdiff_t>(test_n), perm.end());
  split.train = ds.Subset(split.train_rows);
  split.test = ds.Subset(split.test_rows);
  return split;
}

std::vector<std::vector<size_t>> KFoldIndices(size_t n, size_t k, Rng* rng) {
  std::vector<size_t> perm = rng->Permutation(n);
  std::vector<std::vector<size_t>> folds(k);
  for (size_t i = 0; i < n; ++i) folds[i % k].push_back(perm[i]);
  return folds;
}

void StandardizeFeatures(MLDataset* fit_on, MLDataset* apply_also) {
  const size_t d = fit_on->NumFeatures();
  const size_t n = fit_on->NumRows();
  if (n == 0) return;
  std::vector<double> mean(d, 0.0);
  std::vector<double> stddev(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) mean[c] += fit_on->x(r, c);
  }
  for (double& m : mean) m /= static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      const double diff = fit_on->x(r, c) - mean[c];
      stddev[c] += diff * diff;
    }
  }
  for (double& s : stddev) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;
  }
  auto apply = [&](MLDataset* ds) {
    if (ds == nullptr) return;
    for (size_t r = 0; r < ds->NumRows(); ++r) {
      for (size_t c = 0; c < d && c < ds->NumFeatures(); ++c) {
        ds->x(r, c) = (ds->x(r, c) - mean[c]) / stddev[c];
      }
    }
  };
  apply(fit_on);
  apply(apply_also);
}

}  // namespace leva
