#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

namespace leva {

void MLP::Forward(const double* row, std::vector<double>* hidden,
                  std::vector<double>* out) const {
  hidden->assign(options_.hidden_dim, 0.0);
  for (size_t h = 0; h < options_.hidden_dim; ++h) {
    double z = b1_[h];
    const double* wrow = w1_.RowPtr(h);
    for (size_t j = 0; j < in_dim_; ++j) z += wrow[j] * row[j];
    (*hidden)[h] = z > 0 ? z : 0.0;  // ReLU
  }
  out->assign(out_dim_, 0.0);
  for (size_t k = 0; k < out_dim_; ++k) {
    double z = b2_[k];
    const double* wrow = w2_.RowPtr(k);
    for (size_t h = 0; h < options_.hidden_dim; ++h) z += wrow[h] * (*hidden)[h];
    (*out)[k] = z;
  }
}

Status MLP::Fit(const Matrix& x, const std::vector<double>& raw_y, Rng* rng) {
  if (x.rows() != raw_y.size()) {
    return Status::InvalidArgument("X rows and y size differ");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  // Standardize regression targets so the learning rate is scale-free.
  y_mean_ = 0.0;
  y_std_ = 1.0;
  std::vector<double> y = raw_y;
  if (!options_.classification) {
    for (const double v : y) y_mean_ += v;
    y_mean_ /= static_cast<double>(y.size());
    double var = 0;
    for (const double v : y) var += (v - y_mean_) * (v - y_mean_);
    y_std_ = std::sqrt(var / static_cast<double>(y.size()));
    if (y_std_ < 1e-12) y_std_ = 1.0;
    for (double& v : y) v = (v - y_mean_) / y_std_;
  }
  in_dim_ = x.cols();
  out_dim_ = options_.classification ? options_.num_classes : 1;
  const size_t hdim = options_.hidden_dim;

  // He initialization for the ReLU layer, Xavier-ish for the output.
  const double s1 = std::sqrt(2.0 / static_cast<double>(std::max<size_t>(1, in_dim_)));
  const double s2 = std::sqrt(1.0 / static_cast<double>(hdim));
  w1_ = Matrix::GaussianRandom(hdim, in_dim_, rng, s1);
  w2_ = Matrix::GaussianRandom(out_dim_, hdim, rng, s2);
  b1_.assign(hdim, 0.0);
  b2_.assign(out_dim_, 0.0);

  const size_t n = x.rows();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  std::vector<double> hidden(hdim);
  std::vector<double> out(out_dim_);
  std::vector<double> delta_out(out_dim_);
  std::vector<double> delta_hidden(hdim);
  std::vector<uint8_t> mask(hdim, 1);
  const double keep = 1.0 - options_.dropout;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng->Shuffle(&order);
    const double lr = options_.learning_rate /
                      (1.0 + 0.02 * static_cast<double>(epoch));
    for (const size_t i : order) {
      const double* row = x.RowPtr(i);
      Forward(row, &hidden, &out);

      // Inverted dropout on hidden activations.
      if (options_.dropout > 0) {
        for (size_t h = 0; h < hdim; ++h) {
          mask[h] = rng->Uniform() < keep ? 1 : 0;
          hidden[h] = mask[h] ? hidden[h] / keep : 0.0;
        }
        // Recompute logits with dropped activations.
        for (size_t k = 0; k < out_dim_; ++k) {
          double z = b2_[k];
          const double* wrow = w2_.RowPtr(k);
          for (size_t h = 0; h < hdim; ++h) z += wrow[h] * hidden[h];
          out[k] = z;
        }
      }

      // Per-sample step-size normalization (NLMS-style): keeps SGD stable
      // when standardized one-hot features produce large hidden activations.
      double hidden_norm2 = 0;
      for (size_t h = 0; h < hdim; ++h) hidden_norm2 += hidden[h] * hidden[h];
      const double lr_eff = lr / (1.0 + 0.05 * hidden_norm2);

      // Output deltas: softmax cross-entropy or squared error.
      if (options_.classification) {
        double mx = *std::max_element(out.begin(), out.end());
        double denom = 0;
        for (size_t k = 0; k < out_dim_; ++k) {
          out[k] = std::exp(out[k] - mx);
          denom += out[k];
        }
        const size_t label = static_cast<size_t>(y[i]);
        for (size_t k = 0; k < out_dim_; ++k) {
          delta_out[k] = out[k] / denom - (k == label ? 1.0 : 0.0);
        }
      } else {
        delta_out[0] = std::clamp(out[0] - y[i], -3.0, 3.0);
      }

      // Backprop into hidden layer.
      std::fill(delta_hidden.begin(), delta_hidden.end(), 0.0);
      for (size_t k = 0; k < out_dim_; ++k) {
        double* wrow = w2_.RowPtr(k);
        const double dk = delta_out[k];
        for (size_t h = 0; h < hdim; ++h) {
          if (hidden[h] > 0) delta_hidden[h] += dk * wrow[h];
          wrow[h] -= lr_eff * (dk * hidden[h] + options_.l2 * wrow[h]);
        }
        b2_[k] -= lr_eff * dk;
      }
      for (size_t h = 0; h < hdim; ++h) {
        if (hidden[h] <= 0) continue;  // ReLU gate (also skips dropped units)
        double* wrow = w1_.RowPtr(h);
        const double dh = delta_hidden[h];
        for (size_t j = 0; j < in_dim_; ++j) {
          wrow[j] -= lr_eff * (dh * row[j] + options_.l2 * wrow[j]);
        }
        b1_[h] -= lr_eff * dh;
      }
    }
  }
  return Status::OK();
}

Status MLP::FitMulti(const Matrix& x, const Matrix& y, Rng* rng) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("X and Y row counts differ");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  options_.classification = false;
  in_dim_ = x.cols();
  out_dim_ = y.cols();
  const size_t hdim = options_.hidden_dim;

  const double s1 =
      std::sqrt(2.0 / static_cast<double>(std::max<size_t>(1, in_dim_)));
  const double s2 = std::sqrt(1.0 / static_cast<double>(hdim));
  w1_ = Matrix::GaussianRandom(hdim, in_dim_, rng, s1);
  w2_ = Matrix::GaussianRandom(out_dim_, hdim, rng, s2);
  b1_.assign(hdim, 0.0);
  b2_.assign(out_dim_, 0.0);

  const size_t n = x.rows();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<double> hidden(hdim);
  std::vector<double> out(out_dim_);
  std::vector<double> delta_hidden(hdim);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng->Shuffle(&order);
    const double lr = options_.learning_rate /
                      (1.0 + 0.02 * static_cast<double>(epoch));
    for (const size_t i : order) {
      const double* row = x.RowPtr(i);
      Forward(row, &hidden, &out);
      std::fill(delta_hidden.begin(), delta_hidden.end(), 0.0);
      for (size_t k = 0; k < out_dim_; ++k) {
        const double dk = (out[k] - y(i, k)) / static_cast<double>(out_dim_);
        double* wrow = w2_.RowPtr(k);
        for (size_t h = 0; h < hdim; ++h) {
          if (hidden[h] > 0) delta_hidden[h] += dk * wrow[h];
          wrow[h] -= lr * (dk * hidden[h] + options_.l2 * wrow[h]);
        }
        b2_[k] -= lr * dk;
      }
      for (size_t h = 0; h < hdim; ++h) {
        if (hidden[h] <= 0) continue;
        double* wrow = w1_.RowPtr(h);
        const double dh = delta_hidden[h];
        for (size_t j = 0; j < in_dim_; ++j) {
          wrow[j] -= lr * (dh * row[j] + options_.l2 * wrow[j]);
        }
        b1_[h] -= lr * dh;
      }
    }
  }
  return Status::OK();
}

Matrix MLP::PredictMulti(const Matrix& x) const {
  Matrix result(x.rows(), out_dim_);
  std::vector<double> hidden;
  std::vector<double> out;
  for (size_t i = 0; i < x.rows(); ++i) {
    Forward(x.RowPtr(i), &hidden, &out);
    for (size_t k = 0; k < out_dim_; ++k) result(i, k) = out[k];
  }
  return result;
}

Matrix MLP::PredictProba(const Matrix& x) const {
  Matrix proba(x.rows(), out_dim_);
  std::vector<double> hidden;
  std::vector<double> out;
  for (size_t i = 0; i < x.rows(); ++i) {
    Forward(x.RowPtr(i), &hidden, &out);
    double mx = *std::max_element(out.begin(), out.end());
    double denom = 0;
    for (size_t k = 0; k < out_dim_; ++k) {
      out[k] = std::exp(out[k] - mx);
      denom += out[k];
    }
    for (size_t k = 0; k < out_dim_; ++k) proba(i, k) = out[k] / denom;
  }
  return proba;
}

std::vector<double> MLP::Predict(const Matrix& x) const {
  std::vector<double> result(x.rows(), 0.0);
  std::vector<double> hidden;
  std::vector<double> out;
  for (size_t i = 0; i < x.rows(); ++i) {
    Forward(x.RowPtr(i), &hidden, &out);
    if (options_.classification) {
      size_t best = 0;
      for (size_t k = 1; k < out_dim_; ++k) {
        if (out[k] > out[best]) best = k;
      }
      result[i] = static_cast<double>(best);
    } else {
      result[i] = out[0] * y_std_ + y_mean_;
    }
  }
  return result;
}

}  // namespace leva
