#ifndef LEVA_ML_LINEAR_H_
#define LEVA_ML_LINEAR_H_

#include <vector>

#include "ml/model.h"

namespace leva {

/// ElasticNet penalty: lambda * (l1_ratio * |w|_1 + (1-l1_ratio)/2 * |w|_2²).
/// lambda = 0 recovers plain least squares / logistic regression.
struct ElasticNetOptions {
  double lambda = 0.0;
  double l1_ratio = 0.5;
  double learning_rate = 0.05;
  size_t epochs = 100;
  size_t batch_size = 32;
};

/// Linear regression trained by minibatch SGD with a proximal L1 step.
class LinearRegressor : public Model {
 public:
  explicit LinearRegressor(ElasticNetOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<double>& y, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  ElasticNetOptions options_;
  std::vector<double> w_;
  double b_ = 0.0;
};

/// Multinomial logistic regression (softmax) with ElasticNet; the paper's
/// "logistic regression with ElasticNet regularization" classifier.
class LogisticRegressor : public Model {
 public:
  explicit LogisticRegressor(size_t num_classes,
                             ElasticNetOptions options = {})
      : num_classes_(num_classes), options_(options) {}

  Status Fit(const Matrix& x, const std::vector<double>& y, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;

  /// Row-wise class probabilities (rows x num_classes).
  Matrix PredictProba(const Matrix& x) const;

 private:
  size_t num_classes_;
  ElasticNetOptions options_;
  Matrix w_;  // num_classes x features
  std::vector<double> b_;
};

}  // namespace leva

#endif  // LEVA_ML_LINEAR_H_
