#include "ml/featurize.h"

#include <algorithm>
#include <charconv>
#include <map>
#include <numeric>
#include <string_view>

#include "ml/tree.h"

namespace leva {

Status OneHotFeaturizer::Fit(const Table& table,
                             const std::string& target_column,
                             bool classification) {
  encodings_.clear();
  label_map_.clear();
  classification_ = classification;
  target_column_ = target_column;

  LEVA_ASSIGN_OR_RETURN(const size_t target_idx,
                        table.ColumnIndex(target_column));

  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c == target_idx) continue;
    const Column& col = table.column(c);
    ColumnEncoding enc;
    enc.name = col.name;
    enc.numeric = col.type == DataType::kInt || col.type == DataType::kDouble ||
                  col.type == DataType::kDatetime;
    if (enc.numeric) {
      double sum = 0;
      size_t count = 0;
      for (const Value& v : col.values) {
        if (v.is_numeric()) {
          sum += v.ToNumeric();
          ++count;
        }
      }
      enc.mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
    } else {
      std::map<std::string, size_t> counts;
      for (const Value& v : col.values) {
        if (v.is_null()) continue;
        ++counts[v.ToDisplayString()];
      }
      std::vector<std::pair<size_t, std::string>> by_freq;
      by_freq.reserve(counts.size());
      for (const auto& [cat, n] : counts) by_freq.emplace_back(n, cat);
      std::sort(by_freq.rbegin(), by_freq.rend());
      const size_t take = std::min(options_.max_categories, by_freq.size());
      for (size_t i = 0; i < take; ++i) {
        enc.category_index.emplace(by_freq[i].second, enc.categories.size());
        enc.categories.push_back(by_freq[i].second);
      }
    }
    encodings_.push_back(std::move(enc));
  }

  // Target mapping.
  const Column& target = table.column(target_idx);
  if (classification_) {
    for (const Value& v : target.values) {
      if (v.is_null()) continue;
      const std::string label = v.ToDisplayString();
      if (label_map_.count(label) == 0) {
        const size_t id = label_map_.size();
        label_map_.emplace(label, id);
      }
    }
    if (label_map_.size() < 2) {
      return Status::InvalidArgument("target column '" + target_column +
                                     "' has fewer than 2 classes");
    }
  } else {
    for (const Value& v : target.values) {
      if (!v.is_null() && !v.is_numeric()) {
        return Status::InvalidArgument("regression target '" + target_column +
                                       "' has non-numeric values");
      }
    }
  }
  return Status::OK();
}

Result<MLDataset> OneHotFeaturizer::Transform(const Table& table) const {
  LEVA_ASSIGN_OR_RETURN(const size_t target_idx,
                        table.ColumnIndex(target_column_));

  // Feature layout.
  size_t width = 0;
  for (const ColumnEncoding& enc : encodings_) {
    if (enc.numeric) {
      width += 1 + (options_.add_missing_indicator ? 1 : 0);
    } else {
      width += enc.categories.size();
    }
  }

  MLDataset ds;
  ds.classification = classification_;
  ds.num_classes = classification_ ? label_map_.size() : 2;
  ds.x = Matrix(table.NumRows(), width);
  ds.y.resize(table.NumRows());
  for (const ColumnEncoding& enc : encodings_) {
    if (enc.numeric) {
      ds.feature_names.push_back(enc.name);
      if (options_.add_missing_indicator) {
        ds.feature_names.push_back(enc.name + "#missing");
      }
    } else {
      for (const std::string& cat : enc.categories) {
        ds.feature_names.push_back(enc.name + "=" + cat);
      }
    }
  }

  for (size_t r = 0; r < table.NumRows(); ++r) {
    size_t offset = 0;
    for (const ColumnEncoding& enc : encodings_) {
      const Column* col = table.FindColumn(enc.name);
      if (col == nullptr) {
        return Status::NotFound("column '" + enc.name +
                                "' missing at transform time");
      }
      const Value& v = col->values[r];
      if (enc.numeric) {
        const bool missing = !v.is_numeric();
        ds.x(r, offset) = missing ? enc.mean : v.ToNumeric();
        ++offset;
        if (options_.add_missing_indicator) {
          ds.x(r, offset) = missing ? 1.0 : 0.0;
          ++offset;
        }
      } else {
        if (!v.is_null()) {
          const auto it = enc.category_index.find(v.ToDisplayString());
          if (it != enc.category_index.end()) {
            ds.x(r, offset + it->second) = 1.0;
          }
        }
        offset += enc.categories.size();
      }
    }
    // Target.
    const Value& t = table.at(r, target_idx);
    if (classification_) {
      if (t.is_null()) {
        return Status::InvalidArgument("null target at row " +
                                       std::to_string(r));
      }
      const auto it = label_map_.find(t.ToDisplayString());
      if (it == label_map_.end()) {
        return Status::NotFound("unseen class label '" + t.ToDisplayString() +
                                "'");
      }
      ds.y[r] = static_cast<double>(it->second);
    } else {
      ds.y[r] = t.is_numeric() ? t.ToNumeric() : 0.0;
    }
  }
  return ds;
}

Status TargetEncoder::Fit(const Column& target, bool classification) {
  classification_ = classification;
  labels_.clear();
  label_map_.clear();
  if (!classification) return Status::OK();
  std::map<std::string, bool> seen;
  for (const Value& v : target.values) {
    if (v.is_null()) continue;
    seen[v.ToDisplayString()] = true;
  }
  if (seen.size() < 2) {
    return Status::InvalidArgument("target has fewer than 2 classes");
  }
  for (const auto& [label, unused] : seen) {
    label_map_.emplace(label, labels_.size());
    labels_.push_back(label);
  }
  return Status::OK();
}

Result<double> TargetEncoder::Encode(const Value& v) const {
  if (!classification_) {
    if (!v.is_numeric()) {
      return Status::InvalidArgument("non-numeric regression target");
    }
    return v.ToNumeric();
  }
  if (v.is_null()) return Status::InvalidArgument("null class label");
  // Probe with a view over the rendered label; int labels (the common
  // classification target) are rendered into a stack buffer (to_chars emits
  // the same minimal decimal digits as ToDisplayString's to_string), so the
  // per-row hot path allocates nothing.
  std::string_view key;
  char buf[24];
  std::string rendered;
  if (v.is_string()) {
    key = v.as_string();
  } else if (v.is_int()) {
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v.as_int());
    key = std::string_view(buf, static_cast<size_t>(end - buf));
  } else {
    rendered = v.ToDisplayString();
    key = rendered;
  }
  const auto it = label_map_.find(key);
  if (it == label_map_.end()) {
    return Status::NotFound("unseen class label '" + std::string(key) + "'");
  }
  return static_cast<double>(it->second);
}

Result<std::vector<size_t>> SelectTopKFeatures(const MLDataset& train,
                                               size_t k, Rng* rng) {
  if (train.NumFeatures() == 0) {
    return Status::InvalidArgument("no features to select from");
  }
  ForestOptions options;
  options.num_trees = 30;
  options.tree.classification = train.classification;
  options.tree.num_classes = train.num_classes;
  options.tree.max_depth = 10;
  RandomForest forest(options);
  LEVA_RETURN_IF_ERROR(forest.Fit(train.x, train.y, rng));
  const std::vector<double> imp = forest.FeatureImportances();

  std::vector<size_t> order(imp.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return imp[a] > imp[b]; });
  order.resize(std::min(k, order.size()));
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace leva
