#ifndef LEVA_ML_MLP_H_
#define LEVA_ML_MLP_H_

#include <vector>

#include "ml/model.h"

namespace leva {

/// The paper's "2-layer fully connected neural network, hidden layer
/// dimension of 64": one ReLU hidden layer, softmax (classification) or
/// linear (regression) output, trained with minibatch SGD. `dropout` is the
/// regularizer toggled by the deployment-strategy ablation (Table 6).
struct MlpOptions {
  bool classification = true;
  size_t num_classes = 2;
  size_t hidden_dim = 64;
  double learning_rate = 0.01;
  size_t epochs = 60;
  size_t batch_size = 32;
  double dropout = 0.0;  // probability of zeroing a hidden unit
  double l2 = 0.0;
};

class MLP : public Model {
 public:
  explicit MLP(MlpOptions options = {}) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<double>& y, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;

  /// Multi-output regression: fits X -> Y (rows x targets). Used by the
  /// Fig. 3 study that learns the map between two embedding spaces.
  Status FitMulti(const Matrix& x, const Matrix& y, Rng* rng);
  Matrix PredictMulti(const Matrix& x) const;

  /// Row-wise class probabilities (classification only).
  Matrix PredictProba(const Matrix& x) const;

 private:
  // Forward pass to logits/outputs; hidden activations returned via *hidden.
  void Forward(const double* row, std::vector<double>* hidden,
               std::vector<double>* out) const;

  MlpOptions options_;
  size_t in_dim_ = 0;
  size_t out_dim_ = 0;
  // Regression targets are standardized internally for SGD stability;
  // predictions are mapped back.
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  Matrix w1_;  // hidden x in
  std::vector<double> b1_;
  Matrix w2_;  // out x hidden
  std::vector<double> b2_;
};

}  // namespace leva

#endif  // LEVA_ML_MLP_H_
