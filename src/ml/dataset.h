#ifndef LEVA_ML_DATASET_H_
#define LEVA_ML_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "la/matrix.h"

namespace leva {

/// A featurized training dataset: X (rows x features) and targets y.
/// For classification, y holds class ids in [0, num_classes); for regression,
/// raw values.
struct MLDataset {
  Matrix x;
  std::vector<double> y;
  std::vector<std::string> feature_names;
  bool classification = true;
  size_t num_classes = 2;

  size_t NumRows() const { return x.rows(); }
  size_t NumFeatures() const { return x.cols(); }

  /// Dataset restricted to `rows`.
  MLDataset Subset(const std::vector<size_t>& rows) const;
  /// Dataset restricted to feature columns `cols`.
  MLDataset SelectFeatures(const std::vector<size_t>& cols) const;
};

/// Deterministic shuffled split; `test_fraction` of rows go to test.
struct TrainTestSplit {
  MLDataset train;
  MLDataset test;
  std::vector<size_t> train_rows;  // original indices
  std::vector<size_t> test_rows;
};
TrainTestSplit SplitTrainTest(const MLDataset& ds, double test_fraction,
                              Rng* rng);

/// K-fold index sets for cross-validation.
std::vector<std::vector<size_t>> KFoldIndices(size_t n, size_t k, Rng* rng);

/// Standardizes features to zero mean / unit variance using statistics from
/// `fit_on`, applied to both (train-only statistics avoid test leakage).
void StandardizeFeatures(MLDataset* fit_on, MLDataset* apply_also);

}  // namespace leva

#endif  // LEVA_ML_DATASET_H_
