#ifndef LEVA_ML_METRICS_H_
#define LEVA_ML_METRICS_H_

#include <vector>

namespace leva {

/// Fraction of exact matches (classification).
double Accuracy(const std::vector<double>& truth,
                const std::vector<double>& pred);

/// Mean absolute error (regression; Fig. 5 reports this).
double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& pred);

double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& pred);

/// Coefficient of determination (used by the Fig. 3 recovery study).
double R2Score(const std::vector<double>& truth,
               const std::vector<double>& pred);

/// Binary F1 with `positive` as the positive label (entity resolution).
double F1Binary(const std::vector<double>& truth,
                const std::vector<double>& pred, double positive = 1.0);

double PrecisionBinary(const std::vector<double>& truth,
                       const std::vector<double>& pred, double positive = 1.0);
double RecallBinary(const std::vector<double>& truth,
                    const std::vector<double>& pred, double positive = 1.0);

}  // namespace leva

#endif  // LEVA_ML_METRICS_H_
