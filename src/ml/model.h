#ifndef LEVA_ML_MODEL_H_
#define LEVA_ML_MODEL_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "la/matrix.h"

namespace leva {

/// Interface for the downstream models of Section 6: random forest,
/// linear/logistic regression with ElasticNet, and the 2-layer MLP.
class Model {
 public:
  virtual ~Model() = default;

  /// Fits on X (rows x features) and targets y (class ids or values).
  virtual Status Fit(const Matrix& x, const std::vector<double>& y,
                     Rng* rng) = 0;

  /// Per-row predictions: class ids for classifiers, values for regressors.
  virtual std::vector<double> Predict(const Matrix& x) const = 0;
};

}  // namespace leva

#endif  // LEVA_ML_MODEL_H_
