#include "ml/linear.h"

#include <algorithm>
#include <cmath>

namespace leva {
namespace {

// Soft-thresholding (proximal operator of the L1 norm).
double SoftThreshold(double w, double t) {
  if (w > t) return w - t;
  if (w < -t) return w + t;
  return 0.0;
}

}  // namespace

Status LinearRegressor::Fit(const Matrix& x, const std::vector<double>& y,
                            Rng* rng) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("X rows and y size differ");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  const size_t n = x.rows();
  const size_t d = x.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;

  const double l1 = options_.lambda * options_.l1_ratio;
  const double l2 = options_.lambda * (1.0 - options_.l1_ratio);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng->Shuffle(&order);
    const double lr = options_.learning_rate /
                      (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t start = 0; start < n; start += options_.batch_size) {
      const size_t end = std::min(n, start + options_.batch_size);
      const double inv = 1.0 / static_cast<double>(end - start);
      double grad_b = 0;
      thread_local std::vector<double> grad;
      grad.assign(d, 0.0);
      for (size_t k = start; k < end; ++k) {
        const size_t i = order[k];
        const double* row = x.RowPtr(i);
        double pred = b_;
        for (size_t j = 0; j < d; ++j) pred += w_[j] * row[j];
        const double err = pred - y[i];
        grad_b += err;
        for (size_t j = 0; j < d; ++j) grad[j] += err * row[j];
      }
      b_ -= lr * grad_b * inv;
      for (size_t j = 0; j < d; ++j) {
        double w = w_[j] - lr * (grad[j] * inv + l2 * w_[j]);
        w_[j] = SoftThreshold(w, lr * l1);
      }
    }
  }
  return Status::OK();
}

std::vector<double> LinearRegressor::Predict(const Matrix& x) const {
  std::vector<double> out(x.rows(), b_);
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    for (size_t j = 0; j < w_.size(); ++j) out[i] += w_[j] * row[j];
  }
  return out;
}

Status LogisticRegressor::Fit(const Matrix& x, const std::vector<double>& y,
                              Rng* rng) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("X rows and y size differ");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (num_classes_ < 2) return Status::InvalidArgument("need >= 2 classes");
  const size_t n = x.rows();
  const size_t d = x.cols();
  const size_t c = num_classes_;
  w_ = Matrix(c, d);
  b_.assign(c, 0.0);

  const double l1 = options_.lambda * options_.l1_ratio;
  const double l2 = options_.lambda * (1.0 - options_.l1_ratio);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<double> logits(c);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng->Shuffle(&order);
    const double lr = options_.learning_rate /
                      (1.0 + 0.05 * static_cast<double>(epoch));
    for (const size_t i : order) {
      const double* row = x.RowPtr(i);
      double max_logit = -1e300;
      for (size_t k = 0; k < c; ++k) {
        double z = b_[k];
        const double* wrow = w_.RowPtr(k);
        for (size_t j = 0; j < d; ++j) z += wrow[j] * row[j];
        logits[k] = z;
        max_logit = std::max(max_logit, z);
      }
      double denom = 0;
      for (size_t k = 0; k < c; ++k) {
        logits[k] = std::exp(logits[k] - max_logit);
        denom += logits[k];
      }
      const size_t label = static_cast<size_t>(y[i]);
      for (size_t k = 0; k < c; ++k) {
        const double p = logits[k] / denom;
        const double err = p - (k == label ? 1.0 : 0.0);
        double* wrow = w_.RowPtr(k);
        b_[k] -= lr * err;
        for (size_t j = 0; j < d; ++j) {
          double w = wrow[j] - lr * (err * row[j] + l2 * wrow[j]);
          wrow[j] = SoftThreshold(w, lr * l1);
        }
      }
    }
  }
  return Status::OK();
}

Matrix LogisticRegressor::PredictProba(const Matrix& x) const {
  const size_t c = num_classes_;
  Matrix proba(x.rows(), c);
  std::vector<double> logits(c);
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    double max_logit = -1e300;
    for (size_t k = 0; k < c; ++k) {
      double z = b_.empty() ? 0.0 : b_[k];
      if (w_.rows() == c) {
        const double* wrow = w_.RowPtr(k);
        for (size_t j = 0; j < x.cols() && j < w_.cols(); ++j) {
          z += wrow[j] * row[j];
        }
      }
      logits[k] = z;
      max_logit = std::max(max_logit, z);
    }
    double denom = 0;
    for (size_t k = 0; k < c; ++k) {
      logits[k] = std::exp(logits[k] - max_logit);
      denom += logits[k];
    }
    for (size_t k = 0; k < c; ++k) proba(i, k) = logits[k] / denom;
  }
  return proba;
}

std::vector<double> LogisticRegressor::Predict(const Matrix& x) const {
  const Matrix proba = PredictProba(x);
  std::vector<double> out(x.rows(), 0.0);
  for (size_t i = 0; i < x.rows(); ++i) {
    size_t best = 0;
    for (size_t k = 1; k < num_classes_; ++k) {
      if (proba(i, k) > proba(i, best)) best = k;
    }
    out[i] = static_cast<double>(best);
  }
  return out;
}

}  // namespace leva
