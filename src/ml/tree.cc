#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/parallel.h"

namespace leva {
namespace {

// Gini impurity from class counts.
double Gini(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0.0;
  double sum_sq = 0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

}  // namespace

double DecisionTree::LeafValue(const std::vector<double>& y,
                               const std::vector<size_t>& rows, size_t begin,
                               size_t end) const {
  if (options_.classification) {
    std::vector<size_t> counts(options_.num_classes, 0);
    for (size_t i = begin; i < end; ++i) {
      ++counts[static_cast<size_t>(y[rows[i]])];
    }
    size_t best = 0;
    for (size_t k = 1; k < counts.size(); ++k) {
      if (counts[k] > counts[best]) best = k;
    }
    return static_cast<double>(best);
  }
  double mean = 0;
  for (size_t i = begin; i < end; ++i) mean += y[rows[i]];
  return end > begin ? mean / static_cast<double>(end - begin) : 0.0;
}

int32_t DecisionTree::BuildNode(const Matrix& x, const std::vector<double>& y,
                                std::vector<size_t>* rows, size_t begin,
                                size_t end, size_t depth, Rng* rng) {
  const size_t n = end - begin;
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = LeafValue(y, *rows, begin, end);

  if (n < options_.min_samples_split || depth >= options_.max_depth) {
    return node_id;
  }

  // Parent impurity.
  double parent_impurity;
  std::vector<double> parent_counts;
  double parent_sum = 0;
  double parent_sum_sq = 0;
  if (options_.classification) {
    parent_counts.assign(options_.num_classes, 0.0);
    for (size_t i = begin; i < end; ++i) {
      parent_counts[static_cast<size_t>(y[(*rows)[i]])] += 1.0;
    }
    parent_impurity = Gini(parent_counts, static_cast<double>(n));
  } else {
    for (size_t i = begin; i < end; ++i) {
      const double v = y[(*rows)[i]];
      parent_sum += v;
      parent_sum_sq += v * v;
    }
    const double mean = parent_sum / static_cast<double>(n);
    parent_impurity = parent_sum_sq / static_cast<double>(n) - mean * mean;
  }
  if (parent_impurity <= 1e-12) return node_id;  // pure node

  // Candidate features.
  const size_t d = x.cols();
  std::vector<size_t> features;
  if (options_.max_features == 0 || options_.max_features >= d) {
    features.resize(d);
    for (size_t j = 0; j < d; ++j) features[j] = j;
  } else {
    // Sample without replacement via partial Fisher-Yates.
    features.resize(d);
    for (size_t j = 0; j < d; ++j) features[j] = j;
    for (size_t j = 0; j < options_.max_features; ++j) {
      const size_t k = j + rng->UniformInt(d - j);
      std::swap(features[j], features[k]);
    }
    features.resize(options_.max_features);
  }

  // Best split search.
  int32_t best_feature = -1;
  double best_threshold = 0;
  double best_gain = 1e-9;
  std::vector<std::pair<double, double>> vals;  // (x, y)
  vals.reserve(n);
  for (const size_t f : features) {
    vals.clear();
    for (size_t i = begin; i < end; ++i) {
      vals.emplace_back(x((*rows)[i], f), y[(*rows)[i]]);
    }
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) continue;

    if (options_.classification) {
      std::vector<double> left_counts(options_.num_classes, 0.0);
      std::vector<double> right_counts = parent_counts;
      for (size_t i = 0; i + 1 < n; ++i) {
        const size_t cls = static_cast<size_t>(vals[i].second);
        left_counts[cls] += 1.0;
        right_counts[cls] -= 1.0;
        if (vals[i].first == vals[i + 1].first) continue;
        const double nl = static_cast<double>(i + 1);
        const double nr = static_cast<double>(n - i - 1);
        if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
          continue;
        }
        const double impurity =
            (nl * Gini(left_counts, nl) + nr * Gini(right_counts, nr)) /
            static_cast<double>(n);
        const double gain = parent_impurity - impurity;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int32_t>(f);
          best_threshold = 0.5 * (vals[i].first + vals[i + 1].first);
        }
      }
    } else {
      double left_sum = 0;
      double left_sum_sq = 0;
      for (size_t i = 0; i + 1 < n; ++i) {
        left_sum += vals[i].second;
        left_sum_sq += vals[i].second * vals[i].second;
        if (vals[i].first == vals[i + 1].first) continue;
        const double nl = static_cast<double>(i + 1);
        const double nr = static_cast<double>(n - i - 1);
        if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
          continue;
        }
        const double right_sum = parent_sum - left_sum;
        const double right_sum_sq = parent_sum_sq - left_sum_sq;
        const double var_l = left_sum_sq / nl - (left_sum / nl) * (left_sum / nl);
        const double var_r =
            right_sum_sq / nr - (right_sum / nr) * (right_sum / nr);
        const double impurity = (nl * var_l + nr * var_r) / static_cast<double>(n);
        const double gain = parent_impurity - impurity;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int32_t>(f);
          best_threshold = 0.5 * (vals[i].first + vals[i + 1].first);
        }
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition rows in place.
  const auto mid_it = std::partition(
      rows->begin() + static_cast<ptrdiff_t>(begin),
      rows->begin() + static_cast<ptrdiff_t>(end), [&](size_t r) {
        return x(r, static_cast<size_t>(best_feature)) <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - rows->begin());
  if (mid == begin || mid == end) return node_id;  // degenerate split

  importances_[static_cast<size_t>(best_feature)] +=
      best_gain * static_cast<double>(n);

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int32_t left = BuildNode(x, y, rows, begin, mid, depth + 1, rng);
  nodes_[node_id].left = left;
  const int32_t right = BuildNode(x, y, rows, mid, end, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

Status DecisionTree::Fit(const Matrix& x, const std::vector<double>& y,
                         Rng* rng) {
  std::vector<size_t> rows(x.rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return FitRows(x, y, std::move(rows), rng);
}

Status DecisionTree::FitRows(const Matrix& x, const std::vector<double>& y,
                             std::vector<size_t> rows, Rng* rng) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("X rows and y size differ");
  }
  if (rows.empty()) return Status::InvalidArgument("empty training set");
  nodes_.clear();
  importances_.assign(x.cols(), 0.0);
  BuildNode(x, y, &rows, 0, rows.size(), 0, rng);
  return Status::OK();
}

double DecisionTree::PredictRow(const double* row) const {
  int32_t node = 0;
  while (nodes_[node].feature >= 0) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

std::vector<double> DecisionTree::Predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out[i] = PredictRow(x.RowPtr(i));
  return out;
}

Status RandomForest::Fit(const Matrix& x, const std::vector<double>& y,
                         Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  num_features_ = x.cols();
  trees_.clear();
  trees_.assign(options_.num_trees, DecisionTree(options_.tree));

  TreeOptions tree_options = options_.tree;
  if (tree_options.max_features == 0) {
    tree_options.max_features = static_cast<size_t>(
        std::max(1.0, std::sqrt(static_cast<double>(x.cols()))));
  }

  // Tree t's bootstrap sample and split choices come from stream (base, t),
  // so the ensemble is independent of how trees are scheduled across threads.
  const uint64_t base_seed = rng->Next();
  const size_t threads = ResolveThreads(options_.threads);
  std::vector<Status> statuses(options_.num_trees, Status::OK());
  ParallelFor(threads, 0, options_.num_trees, 1, [&](size_t t0, size_t t1) {
    for (size_t t = t0; t < t1; ++t) {
      Rng tree_rng = StreamRng(base_seed, rngdomain::kForest, t);
      std::vector<size_t> rows(x.rows());
      if (options_.bootstrap) {
        for (size_t i = 0; i < rows.size(); ++i) {
          rows[i] = tree_rng.UniformInt(x.rows());
        }
      } else {
        for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
      }
      DecisionTree tree(tree_options);
      statuses[t] = tree.FitRows(x, y, std::move(rows), &tree_rng);
      trees_[t] = std::move(tree);
    }
  });
  for (const Status& s : statuses) {
    LEVA_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

std::vector<double> RandomForest::Predict(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  if (trees_.empty()) return out;
  if (options_.tree.classification) {
    std::vector<double> votes(options_.tree.num_classes);
    for (size_t i = 0; i < x.rows(); ++i) {
      std::fill(votes.begin(), votes.end(), 0.0);
      for (const DecisionTree& tree : trees_) {
        ++votes[static_cast<size_t>(tree.PredictRow(x.RowPtr(i)))];
      }
      size_t best = 0;
      for (size_t k = 1; k < votes.size(); ++k) {
        if (votes[k] > votes[best]) best = k;
      }
      out[i] = static_cast<double>(best);
    }
  } else {
    for (size_t i = 0; i < x.rows(); ++i) {
      double sum = 0;
      for (const DecisionTree& tree : trees_) sum += tree.PredictRow(x.RowPtr(i));
      out[i] = sum / static_cast<double>(trees_.size());
    }
  }
  return out;
}

std::vector<double> RandomForest::FeatureImportances() const {
  std::vector<double> imp(num_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto& t = tree.feature_importances();
    for (size_t j = 0; j < imp.size() && j < t.size(); ++j) imp[j] += t[j];
  }
  double total = 0;
  for (double v : imp) total += v;
  if (total > 0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

}  // namespace leva
