#ifndef LEVA_ML_FEATURIZE_H_
#define LEVA_ML_FEATURIZE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/string_util.h"
#include "ml/dataset.h"
#include "table/table.h"

namespace leva {

/// Classic tabular featurization — the encoding behind the Base / Full /
/// Full+FE / Disc baselines: numeric columns pass through (nulls imputed to
/// the training mean, plus a missing indicator), categorical columns one-hot
/// encode their most frequent categories.
struct OneHotOptions {
  size_t max_categories = 20;
  bool add_missing_indicator = true;
};

class OneHotFeaturizer {
 public:
  explicit OneHotFeaturizer(OneHotOptions options = {}) : options_(options) {}

  /// Learns encodings from `table`, excluding `target_column` (which becomes
  /// y). For classification the target's display strings are mapped to class
  /// ids; for regression the target must be numeric.
  Status Fit(const Table& table, const std::string& target_column,
             bool classification);

  /// Encodes `table` (same schema as Fit). Unseen categories map to the
  /// all-zeros one-hot; unseen class labels are an error.
  Result<MLDataset> Transform(const Table& table) const;

  size_t num_classes() const { return label_map_.size(); }

 private:
  struct ColumnEncoding {
    std::string name;
    bool numeric = false;
    double mean = 0.0;                    // imputation value
    std::vector<std::string> categories;  // one-hot order
    std::unordered_map<std::string, size_t> category_index;
  };

  OneHotOptions options_;
  bool classification_ = true;
  std::string target_column_;
  std::vector<ColumnEncoding> encodings_;
  std::unordered_map<std::string, size_t> label_map_;  // classification only
};

/// Maps a target column to y values consistently across train/test slices:
/// class labels are sorted lexicographically so the mapping is deterministic
/// regardless of row order.
class TargetEncoder {
 public:
  Status Fit(const Column& target, bool classification);
  Result<double> Encode(const Value& v) const;

  bool classification() const { return classification_; }
  size_t num_classes() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  bool classification_ = true;
  std::vector<std::string> labels_;
  // Transparent lookup so Encode can probe with a view of the rendered
  // label instead of materializing a std::string per row.
  std::unordered_map<std::string, size_t, TransparentStringHash,
                     std::equal_to<>>
      label_map_;
};

/// Ranks features of `train` by random-forest impurity importance and returns
/// the indices of the top `k` (the Full+FE feature-engineering step).
Result<std::vector<size_t>> SelectTopKFeatures(const MLDataset& train,
                                               size_t k, Rng* rng);

}  // namespace leva

#endif  // LEVA_ML_FEATURIZE_H_
