#include "ml/metrics.h"

#include <cmath>

namespace leva {

double Accuracy(const std::vector<double>& truth,
                const std::vector<double>& pred) {
  if (truth.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == pred[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& pred) {
  if (truth.empty()) return 0.0;
  double sum = 0;
  for (size_t i = 0; i < truth.size(); ++i) sum += std::fabs(truth[i] - pred[i]);
  return sum / static_cast<double>(truth.size());
}

double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& pred) {
  if (truth.empty()) return 0.0;
  double sum = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    sum += d * d;
  }
  return sum / static_cast<double>(truth.size());
}

double R2Score(const std::vector<double>& truth,
               const std::vector<double>& pred) {
  if (truth.empty()) return 0.0;
  double mean = 0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0;
  double ss_tot = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot <= 0) return ss_res <= 0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

namespace {
struct Counts {
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
};
Counts CountBinary(const std::vector<double>& truth,
                   const std::vector<double>& pred, double positive) {
  Counts c;
  for (size_t i = 0; i < truth.size(); ++i) {
    const bool t = truth[i] == positive;
    const bool p = pred[i] == positive;
    if (t && p) ++c.tp;
    else if (!t && p) ++c.fp;
    else if (t && !p) ++c.fn;
  }
  return c;
}
}  // namespace

double PrecisionBinary(const std::vector<double>& truth,
                       const std::vector<double>& pred, double positive) {
  const Counts c = CountBinary(truth, pred, positive);
  return c.tp + c.fp == 0 ? 0.0
                          : static_cast<double>(c.tp) /
                                static_cast<double>(c.tp + c.fp);
}

double RecallBinary(const std::vector<double>& truth,
                    const std::vector<double>& pred, double positive) {
  const Counts c = CountBinary(truth, pred, positive);
  return c.tp + c.fn == 0 ? 0.0
                          : static_cast<double>(c.tp) /
                                static_cast<double>(c.tp + c.fn);
}

double F1Binary(const std::vector<double>& truth,
                const std::vector<double>& pred, double positive) {
  const double p = PrecisionBinary(truth, pred, positive);
  const double r = RecallBinary(truth, pred, positive);
  return p + r <= 0 ? 0.0 : 2.0 * p * r / (p + r);
}

}  // namespace leva
