#ifndef LEVA_ML_TREE_H_
#define LEVA_ML_TREE_H_

#include <vector>

#include "ml/model.h"

namespace leva {

/// CART decision-tree parameters. `min_samples_leaf` is the regularization
/// knob the deployment-strategy ablation (Table 6) exercises for forests.
struct TreeOptions {
  bool classification = true;
  size_t num_classes = 2;
  size_t max_depth = 12;
  size_t min_samples_leaf = 1;
  size_t min_samples_split = 2;
  /// Features examined per split; 0 = all (single trees), forests default to
  /// sqrt(d).
  size_t max_features = 0;
};

/// A CART tree: Gini impurity for classification, variance for regression.
class DecisionTree : public Model {
 public:
  explicit DecisionTree(TreeOptions options = {}) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<double>& y, Rng* rng) override;
  /// Fits on the subset `rows` (supports bootstrap sampling by the forest).
  Status FitRows(const Matrix& x, const std::vector<double>& y,
                 std::vector<size_t> rows, Rng* rng);

  std::vector<double> Predict(const Matrix& x) const override;
  double PredictRow(const double* row) const;

  /// Total impurity decrease contributed by each feature during Fit.
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

 private:
  struct Node {
    int32_t feature = -1;       // -1 for leaves
    double threshold = 0.0;     // go left when x[feature] <= threshold
    int32_t left = -1;
    int32_t right = -1;
    double value = 0.0;         // majority class / mean for leaves
  };

  int32_t BuildNode(const Matrix& x, const std::vector<double>& y,
                    std::vector<size_t>* rows, size_t begin, size_t end,
                    size_t depth, Rng* rng);
  double LeafValue(const std::vector<double>& y,
                   const std::vector<size_t>& rows, size_t begin,
                   size_t end) const;

  TreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
};

/// Bagged ensemble of CART trees with per-split feature subsampling.
struct ForestOptions {
  size_t num_trees = 50;
  bool bootstrap = true;
  TreeOptions tree;
  /// Worker threads for per-tree fitting (0 = hardware). Each tree draws its
  /// bootstrap sample and splits from its own counter-based RNG stream, so
  /// the fitted forest is bit-identical at any thread count.
  size_t threads = 1;
};

class RandomForest : public Model {
 public:
  explicit RandomForest(ForestOptions options = {}) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<double>& y, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;

  /// Mean impurity-decrease importances, normalized to sum 1. Drives the
  /// Full+FE feature-selection baseline.
  std::vector<double> FeatureImportances() const;

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
  size_t num_features_ = 0;
};

}  // namespace leva

#endif  // LEVA_ML_TREE_H_
