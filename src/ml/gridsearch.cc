#include "ml/gridsearch.h"

namespace leva {

std::vector<ParamSet> BuildParamGrid(
    const std::map<std::string, std::vector<double>>& axes) {
  std::vector<ParamSet> grid = {ParamSet{}};
  for (const auto& [name, values] : axes) {
    std::vector<ParamSet> next;
    next.reserve(grid.size() * values.size());
    for (const ParamSet& base : grid) {
      for (const double v : values) {
        ParamSet p = base;
        p[name] = v;
        next.push_back(std::move(p));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

Result<GridSearchResult> GridSearchCV(const ModelFactory& factory,
                                      const std::vector<ParamSet>& grid,
                                      const MLDataset& data, size_t folds,
                                      const ScoreFn& score,
                                      bool higher_is_better, Rng* rng) {
  if (grid.empty()) return Status::InvalidArgument("empty parameter grid");
  if (folds < 2) return Status::InvalidArgument("need >= 2 folds");
  if (data.NumRows() < folds) {
    return Status::InvalidArgument("fewer rows than folds");
  }
  const auto fold_indices = KFoldIndices(data.NumRows(), folds, rng);

  GridSearchResult result;
  bool first = true;
  for (const ParamSet& params : grid) {
    double total = 0;
    for (size_t f = 0; f < folds; ++f) {
      std::vector<size_t> train_rows;
      for (size_t g = 0; g < folds; ++g) {
        if (g == f) continue;
        train_rows.insert(train_rows.end(), fold_indices[g].begin(),
                          fold_indices[g].end());
      }
      const MLDataset train = data.Subset(train_rows);
      const MLDataset valid = data.Subset(fold_indices[f]);
      std::unique_ptr<Model> model = factory(params);
      if (model == nullptr) return Status::Internal("factory returned null");
      LEVA_RETURN_IF_ERROR(model->Fit(train.x, train.y, rng));
      total += score(valid.y, model->Predict(valid.x));
    }
    const double mean = total / static_cast<double>(folds);
    const bool better = higher_is_better ? mean > result.best_score
                                         : mean < result.best_score;
    if (first || better) {
      result.best_score = mean;
      result.best_params = params;
      first = false;
    }
  }
  return result;
}

Result<double> FitAndScore(const ModelFactory& factory, const ParamSet& params,
                           const MLDataset& train, const MLDataset& test,
                           const ScoreFn& score, Rng* rng) {
  std::unique_ptr<Model> model = factory(params);
  if (model == nullptr) return Status::Internal("factory returned null");
  LEVA_RETURN_IF_ERROR(model->Fit(train.x, train.y, rng));
  return score(test.y, model->Predict(test.x));
}

}  // namespace leva
