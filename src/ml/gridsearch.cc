#include "ml/gridsearch.h"

#include "common/parallel.h"

namespace leva {

std::vector<ParamSet> BuildParamGrid(
    const std::map<std::string, std::vector<double>>& axes) {
  std::vector<ParamSet> grid = {ParamSet{}};
  for (const auto& [name, values] : axes) {
    std::vector<ParamSet> next;
    next.reserve(grid.size() * values.size());
    for (const ParamSet& base : grid) {
      for (const double v : values) {
        ParamSet p = base;
        p[name] = v;
        next.push_back(std::move(p));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

Result<GridSearchResult> GridSearchCV(const ModelFactory& factory,
                                      const std::vector<ParamSet>& grid,
                                      const MLDataset& data, size_t folds,
                                      const ScoreFn& score,
                                      bool higher_is_better, Rng* rng,
                                      size_t threads) {
  if (rng == nullptr) return Status::InvalidArgument("rng is required");
  if (grid.empty()) return Status::InvalidArgument("empty parameter grid");
  if (folds < 2) return Status::InvalidArgument("need >= 2 folds");
  if (data.NumRows() < folds) {
    return Status::InvalidArgument("fewer rows than folds");
  }
  const auto fold_indices = KFoldIndices(data.NumRows(), folds, rng);

  // Every candidate sees the same folds; fit (ci, f) uses stream
  // (base, ci * folds + f), so scores never depend on evaluation order.
  const uint64_t base_seed = rng->Next();
  std::vector<double> means(grid.size(), 0.0);
  std::vector<Status> statuses(grid.size(), Status::OK());
  ParallelFor(
      ResolveThreads(threads), 0, grid.size(), 1, [&](size_t c0, size_t c1) {
        for (size_t ci = c0; ci < c1; ++ci) {
          double total = 0;
          for (size_t f = 0; f < folds; ++f) {
            std::vector<size_t> train_rows;
            for (size_t g = 0; g < folds; ++g) {
              if (g == f) continue;
              train_rows.insert(train_rows.end(), fold_indices[g].begin(),
                                fold_indices[g].end());
            }
            const MLDataset train = data.Subset(train_rows);
            const MLDataset valid = data.Subset(fold_indices[f]);
            std::unique_ptr<Model> model = factory(grid[ci]);
            if (model == nullptr) {
              statuses[ci] = Status::Internal("factory returned null");
              break;
            }
            Rng fit_rng =
                StreamRng(base_seed, rngdomain::kGridSearch, ci * folds + f);
            if (Status s = model->Fit(train.x, train.y, &fit_rng); !s.ok()) {
              statuses[ci] = std::move(s);
              break;
            }
            total += score(valid.y, model->Predict(valid.x));
          }
          means[ci] = total / static_cast<double>(folds);
        }
      });
  for (const Status& s : statuses) {
    LEVA_RETURN_IF_ERROR(s);
  }

  GridSearchResult result;
  bool first = true;
  for (size_t ci = 0; ci < grid.size(); ++ci) {
    const bool better = higher_is_better ? means[ci] > result.best_score
                                         : means[ci] < result.best_score;
    if (first || better) {
      result.best_score = means[ci];
      result.best_params = grid[ci];
      first = false;
    }
  }
  return result;
}

Result<double> FitAndScore(const ModelFactory& factory, const ParamSet& params,
                           const MLDataset& train, const MLDataset& test,
                           const ScoreFn& score, Rng* rng) {
  std::unique_ptr<Model> model = factory(params);
  if (model == nullptr) return Status::Internal("factory returned null");
  LEVA_RETURN_IF_ERROR(model->Fit(train.x, train.y, rng));
  return score(test.y, model->Predict(test.x));
}

}  // namespace leva
