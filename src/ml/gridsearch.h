#ifndef LEVA_ML_GRIDSEARCH_H_
#define LEVA_ML_GRIDSEARCH_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/model.h"

namespace leva {

/// A single hyper-parameter assignment.
using ParamSet = std::map<std::string, double>;

/// Constructs a fresh model for a parameter assignment.
using ModelFactory = std::function<std::unique_ptr<Model>(const ParamSet&)>;

/// truth, pred -> score.
using ScoreFn = std::function<double(const std::vector<double>&,
                                     const std::vector<double>&)>;

/// Cartesian product of per-parameter value lists.
std::vector<ParamSet> BuildParamGrid(
    const std::map<std::string, std::vector<double>>& axes);

struct GridSearchResult {
  ParamSet best_params;
  double best_score = 0.0;
};

/// K-fold cross-validated grid search, the paper's hyper-parameter selection
/// protocol ("best performance after configuring model hyper-parameters using
/// grid search"). Candidates are evaluated in parallel across `threads`
/// workers (0 = hardware); every (candidate, fold) fit draws from its own
/// counter-based RNG stream and ties resolve to the earliest grid entry, so
/// the selected winner is identical at any thread count. With `threads > 1`,
/// `factory` and `score` are invoked concurrently and must be thread-safe.
Result<GridSearchResult> GridSearchCV(const ModelFactory& factory,
                                      const std::vector<ParamSet>& grid,
                                      const MLDataset& data, size_t folds,
                                      const ScoreFn& score,
                                      bool higher_is_better, Rng* rng,
                                      size_t threads = 1);

/// Convenience: fits `factory(best)` on `train` and scores on `test`.
Result<double> FitAndScore(const ModelFactory& factory, const ParamSet& params,
                           const MLDataset& train, const MLDataset& test,
                           const ScoreFn& score, Rng* rng);

}  // namespace leva

#endif  // LEVA_ML_GRIDSEARCH_H_
