#ifndef LEVA_DATAGEN_ER_DATA_H_
#define LEVA_DATAGEN_ER_DATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace leva {

/// A labeled entity-resolution task over two dirty tables describing
/// overlapping entities (the Section 6.7 benchmark). The paper's
/// BeerAdvo-RateBeer / Walmart-Amazon / Amazon-Google datasets are not
/// available, so the generator controls matching difficulty through a field
/// perturbation rate (token drops, typos, reformatting, price jitter).
struct ErPair {
  size_t row_a = 0;
  size_t row_b = 0;
  bool match = false;
};

struct ErDataset {
  std::string name;
  Table table_a;
  Table table_b;
  std::vector<ErPair> pairs;  // labeled candidate pairs
};

struct ErConfig {
  std::string name = "er";
  size_t entities = 400;
  /// Per-field probability of perturbation in table B.
  double perturbation = 0.2;
  /// Non-matching candidates per matching one.
  size_t negatives_per_match = 2;
  uint64_t seed = 7;
};

Result<ErDataset> GenerateErDataset(const ErConfig& config);

/// The three Table 8 configurations, ordered easy -> hard like the originals:
/// "beeradvo_ratebeer" (light noise), "walmart_amazon" (moderate),
/// "amazon_google" (heavy).
Result<ErDataset> ErDatasetByName(const std::string& name, uint64_t seed = 7);

}  // namespace leva

#endif  // LEVA_DATAGEN_ER_DATA_H_
