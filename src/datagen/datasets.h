#ifndef LEVA_DATAGEN_DATASETS_H_
#define LEVA_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/synthetic.h"

namespace leva {

/// Named generator configurations mirroring the shape of the paper's
/// evaluation datasets (Table 4): number of tables, classification vs
/// regression, missing data, string-column share. Row counts are scaled
/// down (the paper's Financial has 1M rows) to keep single-core runs
/// tractable; DESIGN.md documents the substitution.
///
///   name        #tables  task  missing  string-heavy
///   genes       3        C(3)  yes      yes
///   kraken      10       C(2)  no       no (numeric sensors)
///   ftp         2        C(2)  yes      mixed
///   financial   8        C(2)  no       mostly numeric
///   restbase    3        R     no       yes
///   bio         3        R     yes      yes
SyntheticConfig GenesConfig(uint64_t seed = 11);
SyntheticConfig KrakenConfig(uint64_t seed = 12);
SyntheticConfig FtpConfig(uint64_t seed = 13);
SyntheticConfig FinancialConfig(uint64_t seed = 14);
SyntheticConfig RestbaseConfig(uint64_t seed = 15);
SyntheticConfig BioConfig(uint64_t seed = 16);

/// Lookup by name ("genes", "kraken", "ftp", "financial", "restbase", "bio").
Result<SyntheticConfig> DatasetConfigByName(const std::string& name,
                                            uint64_t seed_offset = 0);

/// The 3-table/2000-row/5-column synthetic dataset of the scalability
/// experiment (Section 6.4), before replication.
SyntheticConfig ScalabilityBaseConfig(uint64_t seed = 21);

}  // namespace leva

#endif  // LEVA_DATAGEN_DATASETS_H_
