#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/parallel.h"
#include "common/rng.h"

namespace leva {
namespace {

// Standardizes v to zero mean / unit variance in place (no-op when constant).
void Standardize(std::vector<double>* v) {
  if (v->empty()) return;
  double mean = 0;
  for (double x : *v) mean += x;
  mean /= static_cast<double>(v->size());
  double var = 0;
  for (double x : *v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v->size());
  const double stddev = std::sqrt(var);
  if (stddev < 1e-12) return;
  for (double& x : *v) x = (x - mean) / stddev;
}

Column MakeStringColumn(std::string name, std::vector<std::string> values) {
  Column col;
  col.name = std::move(name);
  col.type = DataType::kString;
  col.values.reserve(values.size());
  for (std::string& s : values) col.values.push_back(Value(std::move(s)));
  return col;
}

Column MakeDoubleColumn(std::string name, const std::vector<double>& values) {
  Column col;
  col.name = std::move(name);
  col.type = DataType::kDouble;
  col.values.reserve(values.size());
  for (const double v : values) col.values.push_back(Value(v));
  return col;
}

// Injects missing data into every column of `table` except keys and
// `skip_column`: half true nulls, half the literal string "?" (including in
// numeric columns — the classic dirty-CSV representation the voting
// refinement of Section 3.2 must remove).
void InjectMissing(Table* table, double rate, const std::string& skip_column,
                   Rng* rng) {
  if (rate <= 0) return;
  for (size_t c = 0; c < table->NumColumns(); ++c) {
    Column& col = table->mutable_column(c);
    if (col.name.ends_with("_id") || col.name == skip_column) continue;
    for (Value& v : col.values) {
      if (!rng->Bernoulli(rate)) continue;
      v = rng->Bernoulli(0.5) ? Value("?") : Value::Null();
    }
  }
}

}  // namespace

Result<SyntheticDataset> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.base_rows == 0) {
    return Status::InvalidArgument("base_rows must be positive");
  }
  Rng rng(config.seed);
  SyntheticDataset out;
  out.base_table = "base";
  out.target_column = "target";
  out.classification = config.classification;
  out.num_classes = config.classification ? config.num_classes : 2;

  // --- Dimension tables. ---
  struct DimState {
    const DimTableSpec* spec;
    std::vector<std::string> keys;
    std::vector<double> latent;  // effective latent score per row
  };
  std::vector<DimState> dims;
  dims.reserve(config.dims.size());

  for (const DimTableSpec& spec : config.dims) {
    if (spec.rows == 0) {
      return Status::InvalidArgument("dimension table '" + spec.name +
                                     "' has zero rows");
    }
    DimState state;
    state.spec = &spec;
    state.latent.assign(spec.rows, 0.0);
    Table table(spec.name);

    state.keys.reserve(spec.rows);
    for (size_t r = 0; r < spec.rows; ++r) {
      state.keys.push_back(spec.name + "_" + std::to_string(r));
    }
    LEVA_RETURN_IF_ERROR(
        table.AddColumn(MakeStringColumn(spec.name + "_id", state.keys)));

    for (size_t j = 0; j < spec.predictive_numeric; ++j) {
      const double weight = rng.Uniform(0.6, 1.4);
      std::vector<double> vals(spec.rows);
      for (size_t r = 0; r < spec.rows; ++r) {
        vals[r] = rng.Normal();
        state.latent[r] += weight * vals[r];
      }
      LEVA_RETURN_IF_ERROR(table.AddColumn(
          MakeDoubleColumn(spec.name + "_pnum" + std::to_string(j), vals)));
    }
    for (size_t j = 0; j < spec.predictive_categorical; ++j) {
      std::vector<double> effect(spec.categories);
      for (double& e : effect) e = rng.Normal();
      std::vector<std::string> vals(spec.rows);
      for (size_t r = 0; r < spec.rows; ++r) {
        const size_t k = rng.UniformInt(spec.categories);
        vals[r] = spec.name + "_pcat" + std::to_string(j) + "_" +
                  std::to_string(k);
        state.latent[r] += effect[k];
      }
      LEVA_RETURN_IF_ERROR(table.AddColumn(MakeStringColumn(
          spec.name + "_pcat" + std::to_string(j), std::move(vals))));
    }
    for (size_t j = 0; j < spec.noise_numeric; ++j) {
      std::vector<double> vals(spec.rows);
      for (double& v : vals) v = rng.Normal();
      LEVA_RETURN_IF_ERROR(table.AddColumn(
          MakeDoubleColumn(spec.name + "_nnum" + std::to_string(j), vals)));
    }
    for (size_t j = 0; j < spec.noise_categorical; ++j) {
      std::vector<std::string> vals(spec.rows);
      for (std::string& v : vals) {
        v = spec.name + "_ncat" + std::to_string(j) + "_" +
            std::to_string(rng.UniformInt(spec.categories));
      }
      LEVA_RETURN_IF_ERROR(table.AddColumn(MakeStringColumn(
          spec.name + "_ncat" + std::to_string(j), std::move(vals))));
    }
    LEVA_RETURN_IF_ERROR(out.db.AddTable(std::move(table)));
    dims.push_back(std::move(state));
  }

  // --- Chained dimensions: add FK columns into parents and propagate their
  // latent scores up. Children must be declared after their parents, so a
  // reverse pass handles arbitrary depth. ---
  auto find_dim = [&](const std::string& name) -> DimState* {
    for (DimState& d : dims) {
      if (d.spec->name == name) return &d;
    }
    return nullptr;
  };
  for (size_t i = dims.size(); i-- > 0;) {
    DimState& child = dims[i];
    if (child.spec->parent.empty()) continue;
    DimState* parent = find_dim(child.spec->parent);
    if (parent == nullptr) {
      return Status::NotFound("parent table '" + child.spec->parent +
                              "' not declared before '" + child.spec->name +
                              "'");
    }
    const size_t parent_idx =
        out.db.TableIndex(parent->spec->name).ValueOr(0);
    Table& parent_table = out.db.mutable_tables()[parent_idx];
    std::vector<std::string> fk(parent_table.NumRows());
    for (size_t r = 0; r < fk.size(); ++r) {
      const size_t ref = rng.UniformInt(child.keys.size());
      fk[r] = child.keys[ref];
      parent->latent[r] += 0.8 * child.latent[ref];
    }
    LEVA_RETURN_IF_ERROR(parent_table.AddColumn(
        MakeStringColumn("fk_" + child.spec->name, std::move(fk))));
    out.db.AddForeignKey({parent->spec->name, "fk_" + child.spec->name,
                          child.spec->name, child.spec->name + "_id"});
  }
  for (DimState& d : dims) Standardize(&d.latent);

  // --- Base table. ---
  Table base("base");
  {
    std::vector<std::string> ids(config.base_rows);
    for (size_t r = 0; r < config.base_rows; ++r) {
      ids[r] = "row_" + std::to_string(r);
    }
    LEVA_RETURN_IF_ERROR(base.AddColumn(MakeStringColumn("base_id", ids)));
  }

  out.latent_score.assign(config.base_rows, 0.0);
  size_t base_joined_dims = 0;
  for (DimState& d : dims) {
    if (!d.spec->parent.empty()) continue;
    ++base_joined_dims;
    std::vector<std::string> fk(config.base_rows);
    for (size_t r = 0; r < config.base_rows; ++r) {
      const size_t ref = rng.UniformInt(d.keys.size());
      fk[r] = d.keys[ref];
      out.latent_score[r] += d.latent[ref];
    }
    LEVA_RETURN_IF_ERROR(base.AddColumn(
        MakeStringColumn("fk_" + d.spec->name, std::move(fk))));
    out.db.AddForeignKey(
        {"base", "fk_" + d.spec->name, d.spec->name, d.spec->name + "_id"});
  }
  if (base_joined_dims > 0) {
    for (double& s : out.latent_score) {
      s /= std::sqrt(static_cast<double>(base_joined_dims));
    }
  }

  // Weak in-base signal so the Base baseline beats chance.
  {
    std::vector<double> signal(config.base_rows);
    for (size_t r = 0; r < config.base_rows; ++r) {
      signal[r] = config.base_signal_weight * out.latent_score[r] +
                  (1.0 - config.base_signal_weight) * rng.Normal();
    }
    LEVA_RETURN_IF_ERROR(
        base.AddColumn(MakeDoubleColumn("base_signal", signal)));
  }
  for (size_t j = 0; j < config.base_noise_numeric; ++j) {
    std::vector<double> vals(config.base_rows);
    for (double& v : vals) v = rng.Normal();
    LEVA_RETURN_IF_ERROR(base.AddColumn(
        MakeDoubleColumn("base_nnum" + std::to_string(j), vals)));
  }
  for (size_t j = 0; j < config.base_noise_categorical; ++j) {
    std::vector<std::string> vals(config.base_rows);
    for (std::string& v : vals) {
      v = "base_ncat" + std::to_string(j) + "_" +
          std::to_string(rng.UniformInt(8));
    }
    LEVA_RETURN_IF_ERROR(base.AddColumn(MakeStringColumn(
        "base_ncat" + std::to_string(j), std::move(vals))));
  }

  // Target from the noisy latent score.
  {
    std::vector<double> score(config.base_rows);
    for (size_t r = 0; r < config.base_rows; ++r) {
      score[r] = out.latent_score[r] + config.label_noise * rng.Normal();
    }
    if (config.classification) {
      // Balanced classes via quantile thresholds.
      std::vector<double> sorted = score;
      std::sort(sorted.begin(), sorted.end());
      std::vector<double> cuts;
      for (size_t k = 1; k < config.num_classes; ++k) {
        cuts.push_back(
            sorted[k * sorted.size() / config.num_classes]);
      }
      std::vector<std::string> labels(config.base_rows);
      for (size_t r = 0; r < config.base_rows; ++r) {
        size_t cls = 0;
        while (cls < cuts.size() && score[r] > cuts[cls]) ++cls;
        labels[r] = "class_" + std::to_string(cls);
      }
      LEVA_RETURN_IF_ERROR(
          base.AddColumn(MakeStringColumn("target", std::move(labels))));
    } else {
      for (double& s : score) s = 50.0 + 10.0 * s;
      LEVA_RETURN_IF_ERROR(base.AddColumn(MakeDoubleColumn("target", score)));
    }
  }
  LEVA_RETURN_IF_ERROR(out.db.AddTable(std::move(base)));

  // --- Missing-data injection across all tables; the target column stays
  // clean. ---
  if (config.missing_rate > 0) {
    for (Table& t : out.db.mutable_tables()) {
      InjectMissing(&t, config.missing_rate, "target", &rng);
    }
  }
  return out;
}

Result<SyntheticDataset> GenerateStudent(size_t num_students,
                                         size_t noise_attributes,
                                         uint64_t seed) {
  Rng rng(seed);
  SyntheticDataset out;
  out.base_table = "expenses";
  out.target_column = "total_expenses";
  out.classification = false;

  const size_t num_items = 50;
  std::vector<double> prices(num_items);
  for (double& p : prices) p = rng.Uniform(1.0, 100.0);

  // Price Info.
  Table price_info("price_info");
  {
    std::vector<std::string> items(num_items);
    for (size_t j = 0; j < num_items; ++j) {
      items[j] = "item_" + std::to_string(j);
    }
    LEVA_RETURN_IF_ERROR(price_info.AddColumn(MakeStringColumn("item", items)));
    LEVA_RETURN_IF_ERROR(price_info.AddColumn(MakeDoubleColumn("prices", prices)));
  }

  // Order Info: each student places 2 orders.
  Table order_info("order_info");
  std::vector<std::string> order_names;
  std::vector<std::string> order_items;
  std::vector<double> totals(num_students, 0.0);
  for (size_t s = 0; s < num_students; ++s) {
    for (int o = 0; o < 2; ++o) {
      const size_t item = rng.UniformInt(num_items);
      order_names.push_back("student_" + std::to_string(s));
      order_items.push_back("item_" + std::to_string(item));
      totals[s] += prices[item];
    }
  }
  LEVA_RETURN_IF_ERROR(
      order_info.AddColumn(MakeStringColumn("name", order_names)));
  LEVA_RETURN_IF_ERROR(
      order_info.AddColumn(MakeStringColumn("item", order_items)));

  // Expenses (Base Table). Gender and school are uncorrelated with the
  // target, as in Section 2.1.
  Table expenses("expenses");
  {
    std::vector<std::string> names(num_students);
    std::vector<std::string> gender(num_students);
    std::vector<std::string> school(num_students);
    for (size_t s = 0; s < num_students; ++s) {
      names[s] = "student_" + std::to_string(s);
      gender[s] = rng.Bernoulli(0.5) ? "M" : "F";
      school[s] = "school_" + std::to_string(rng.UniformInt(10));
    }
    LEVA_RETURN_IF_ERROR(expenses.AddColumn(MakeStringColumn("name", names)));
    LEVA_RETURN_IF_ERROR(expenses.AddColumn(MakeStringColumn("gender", gender)));
    LEVA_RETURN_IF_ERROR(
        expenses.AddColumn(MakeStringColumn("school_name", school)));
    LEVA_RETURN_IF_ERROR(
        expenses.AddColumn(MakeDoubleColumn("total_expenses", totals)));
  }
  out.latent_score = totals;

  // White-noise attribute injection (Section 5.2).
  auto add_noise = [&](Table* t, const std::string& prefix) -> Status {
    for (size_t j = 0; j < noise_attributes; ++j) {
      std::vector<double> vals(t->NumRows());
      for (double& v : vals) v = rng.Normal();
      LEVA_RETURN_IF_ERROR(t->AddColumn(MakeDoubleColumn(
          prefix + "_noise" + std::to_string(j), vals)));
    }
    return Status::OK();
  };
  LEVA_RETURN_IF_ERROR(add_noise(&expenses, "exp"));
  LEVA_RETURN_IF_ERROR(add_noise(&order_info, "ord"));
  LEVA_RETURN_IF_ERROR(add_noise(&price_info, "pri"));

  LEVA_RETURN_IF_ERROR(out.db.AddTable(std::move(expenses)));
  LEVA_RETURN_IF_ERROR(out.db.AddTable(std::move(order_info)));
  LEVA_RETURN_IF_ERROR(out.db.AddTable(std::move(price_info)));
  out.db.AddForeignKey({"order_info", "name", "expenses", "name"});
  out.db.AddForeignKey({"order_info", "item", "price_info", "item"});
  return out;
}

Result<Database> ReplicateDatabase(const Database& db, size_t k) {
  if (k == 0) return Status::InvalidArgument("replication factor must be >= 1");
  Database out;
  for (const Table& t : db.tables()) {
    Table copy(t.name());
    // Column ranges for numeric shifting.
    std::vector<double> range(t.NumColumns(), 1.0);
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      double mn = 0;
      double mx = 0;
      bool any = false;
      for (const Value& v : t.column(c).values) {
        if (!v.is_numeric()) continue;
        const double d = v.ToNumeric();
        if (!any) {
          mn = mx = d;
          any = true;
        } else {
          mn = std::min(mn, d);
          mx = std::max(mx, d);
        }
      }
      range[c] = any ? (mx - mn + 1.0) : 1.0;
    }
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      Column col;
      col.name = t.column(c).name;
      col.type = t.column(c).type;
      col.values.reserve(t.NumRows() * k);
      for (size_t version = 1; version <= k; ++version) {
        const std::string suffix = "_v" + std::to_string(version);
        for (const Value& v : t.column(c).values) {
          if (v.is_null()) {
            col.values.push_back(Value::Null());
          } else if (v.is_numeric()) {
            col.values.push_back(Value(
                v.ToNumeric() + static_cast<double>(version - 1) * range[c]));
          } else {
            col.values.push_back(Value(v.as_string() + suffix));
          }
        }
      }
      LEVA_RETURN_IF_ERROR(copy.AddColumn(std::move(col)));
    }
    LEVA_RETURN_IF_ERROR(out.AddTable(std::move(copy)));
  }
  for (const ForeignKey& fk : db.foreign_keys()) out.AddForeignKey(fk);
  return out;
}

namespace {

// Inverse-CDF endpoint draw: node i with probability w_i / W.
inline NodeId SamplePowerLawNode(const std::vector<double>& cum, Rng* rng) {
  const double u = rng->Uniform() * cum.back();
  const auto it = std::upper_bound(cum.begin(), cum.end(), u);
  const size_t idx = static_cast<size_t>(it - cum.begin());
  return static_cast<NodeId>(std::min(idx, cum.size() - 1));
}

}  // namespace

Result<LevaGraph> GeneratePowerLawGraph(const PowerLawGraphConfig& config) {
  const size_t n = config.nodes;
  const size_t num_edges = config.target_edges;
  if (n == 0) return Status::InvalidArgument("nodes must be positive");
  if (n >= static_cast<size_t>(kInvalidNode)) {
    return Status::OutOfRange("node count exceeds the NodeId range");
  }
  if (config.exponent <= 1.0) {
    return Status::InvalidArgument("power-law exponent must exceed 1");
  }
  const size_t threads = ResolveThreads(config.threads);

  // Cumulative Chung–Lu node weights; endpoint draws binary-search this.
  std::vector<double> cum(n);
  const double alpha = 1.0 / (config.exponent - 1.0);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cum[i] = total;
  }

  // Draw endpoints (and per-edge weights) in fixed-size chunks, one
  // counter-based RNG stream per chunk — bit-identical at any thread count.
  std::vector<NodeId> end_a(num_edges);
  std::vector<NodeId> end_b(num_edges);
  std::vector<float> edge_w(config.weighted ? num_edges : 0);
  constexpr size_t kEdgeChunk = 65536;
  const size_t chunks = (num_edges + kEdgeChunk - 1) / kEdgeChunk;
  ParallelFor(threads, 0, chunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      Rng rng = StreamRng(config.seed, rngdomain::kDatagenGraph, c);
      const size_t lo = c * kEdgeChunk;
      const size_t hi = std::min(num_edges, lo + kEdgeChunk);
      for (size_t e = lo; e < hi; ++e) {
        end_a[e] = SamplePowerLawNode(cum, &rng);
        end_b[e] = SamplePowerLawNode(cum, &rng);
        if (config.weighted) {
          edge_w[e] = static_cast<float>(rng.Uniform(0.1, 1.1));
        }
      }
    }
  });
  cum.clear();
  cum.shrink_to_fit();

  // Sequential CSR assembly: count, prefix, place. Deterministic by
  // construction; two streaming passes over the endpoint slab.
  std::vector<uint64_t> offsets(n + 1, 0);
  for (size_t e = 0; e < num_edges; ++e) {
    ++offsets[end_a[e] + 1];
    ++offsets[end_b[e] + 1];
  }
  for (size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
  std::vector<NodeId> targets(offsets[n]);
  std::vector<float> weights(config.weighted ? offsets[n] : 0);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t e = 0; e < num_edges; ++e) {
    const NodeId a = end_a[e];
    const NodeId b = end_b[e];
    targets[cursor[a]] = b;
    targets[cursor[b]] = a;
    if (config.weighted) {
      weights[cursor[a]] = edge_w[e];
      weights[cursor[b]] = edge_w[e];
    }
    ++cursor[a];
    ++cursor[b];
  }

  std::vector<NodeKind> kinds(n, NodeKind::kValue);
  return GraphFromCsr(std::move(kinds), {}, std::move(offsets),
                      std::move(targets), std::move(weights));
}

}  // namespace leva
