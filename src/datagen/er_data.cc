#include "datagen/er_data.h"

#include <algorithm>
#include <cctype>

#include "common/rng.h"
#include "common/string_util.h"

namespace leva {
namespace {

// Small word vocabulary for product names; shared tokens are what link
// matching records in the graph.
std::string Word(size_t i) { return "word" + std::to_string(i); }

struct Entity {
  std::vector<std::string> name_tokens;
  std::string brand;
  std::string category;
  double price = 0.0;
};

Entity MakeEntity(Rng* rng) {
  Entity e;
  const size_t len = 2 + rng->UniformInt(3);  // 2-4 tokens
  for (size_t i = 0; i < len; ++i) {
    e.name_tokens.push_back(Word(rng->UniformInt(220)));
  }
  e.brand = "brand" + std::to_string(rng->UniformInt(25));
  e.category = "cat" + std::to_string(rng->UniformInt(12));
  e.price = rng->Uniform(5.0, 500.0);
  return e;
}

// Applies table-B dirtiness to a copy of `e`.
Entity Perturb(const Entity& e, double rate, Rng* rng) {
  Entity out = e;
  // Name: drop a token and/or typo one token.
  if (out.name_tokens.size() > 1 && rng->Bernoulli(rate)) {
    out.name_tokens.erase(out.name_tokens.begin() +
                          static_cast<ptrdiff_t>(
                              rng->UniformInt(out.name_tokens.size())));
  }
  if (rng->Bernoulli(rate)) {
    std::string& tok = out.name_tokens[rng->UniformInt(out.name_tokens.size())];
    tok[rng->UniformInt(tok.size())] = 'x';  // typo
  }
  if (rng->Bernoulli(rate)) {
    // Case reformatting: purely syntactic dirt that input normalization
    // (EmbDI-F) undoes but raw token matching does not.
    std::string& tok = out.name_tokens[rng->UniformInt(out.name_tokens.size())];
    for (char& c : tok) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (rng->Bernoulli(rate)) {
    // Extra marketing token unrelated to the entity.
    out.name_tokens.push_back("extra" + std::to_string(rng->UniformInt(40)));
  }
  if (rng->Bernoulli(rate)) {
    out.brand = ToLower(out.brand) + "-inc";  // brand reformatting
  }
  if (rng->Bernoulli(rate)) {
    out.price = out.price * rng->Uniform(0.9, 1.1);  // price jitter
  }
  return out;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

// GCC 12 reports a spurious -Wmaybe-uninitialized through the inlined
// std::variant move inside vector::push_back here (GCC bug 105562).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
Status AddEntityRows(Table* table, const std::vector<Entity>& entities) {
  Column name;
  name.name = "name";
  name.type = DataType::kString;
  Column brand;
  brand.name = "brand";
  brand.type = DataType::kString;
  Column category;
  category.name = "category";
  category.type = DataType::kString;
  Column price;
  price.name = "price";
  price.type = DataType::kDouble;
  name.values.reserve(entities.size());
  brand.values.reserve(entities.size());
  category.values.reserve(entities.size());
  price.values.reserve(entities.size());
  for (const Entity& e : entities) {
    name.values.push_back(Value(JoinTokens(e.name_tokens)));
    brand.values.push_back(Value(e.brand));
    category.values.push_back(Value(e.category));
    price.values.push_back(Value(e.price));
  }
  LEVA_RETURN_IF_ERROR(table->AddColumn(std::move(name)));
  LEVA_RETURN_IF_ERROR(table->AddColumn(std::move(brand)));
  LEVA_RETURN_IF_ERROR(table->AddColumn(std::move(category)));
  LEVA_RETURN_IF_ERROR(table->AddColumn(std::move(price)));
  return Status::OK();
}
#pragma GCC diagnostic pop

}  // namespace

Result<ErDataset> GenerateErDataset(const ErConfig& config) {
  if (config.entities < 4) {
    return Status::InvalidArgument("need at least 4 entities");
  }
  Rng rng(config.seed);
  ErDataset out;
  out.name = config.name;
  out.table_a = Table("table_a");
  out.table_b = Table("table_b");

  std::vector<Entity> a_entities;
  std::vector<Entity> b_entities;
  a_entities.reserve(config.entities);
  b_entities.reserve(config.entities);
  for (size_t i = 0; i < config.entities; ++i) {
    const Entity e = MakeEntity(&rng);
    a_entities.push_back(e);
    b_entities.push_back(Perturb(e, config.perturbation, &rng));
  }
  // Shuffle table B so row indices carry no signal.
  std::vector<size_t> b_order = rng.Permutation(config.entities);
  std::vector<Entity> b_shuffled(config.entities);
  std::vector<size_t> a_to_b(config.entities);
  for (size_t i = 0; i < config.entities; ++i) {
    b_shuffled[b_order[i]] = b_entities[i];
    a_to_b[i] = b_order[i];
  }
  LEVA_RETURN_IF_ERROR(AddEntityRows(&out.table_a, a_entities));
  LEVA_RETURN_IF_ERROR(AddEntityRows(&out.table_b, b_shuffled));

  // Candidate pairs: every match plus `negatives_per_match` random negatives.
  for (size_t i = 0; i < config.entities; ++i) {
    out.pairs.push_back({i, a_to_b[i], true});
    for (size_t k = 0; k < config.negatives_per_match; ++k) {
      size_t j = rng.UniformInt(config.entities);
      if (j == a_to_b[i]) j = (j + 1) % config.entities;
      out.pairs.push_back({i, j, false});
    }
  }
  rng.Shuffle(&out.pairs);
  return out;
}

Result<ErDataset> ErDatasetByName(const std::string& name, uint64_t seed) {
  ErConfig config;
  config.name = name;
  config.seed = seed;
  if (name == "beeradvo_ratebeer") {
    config.perturbation = 0.10;
  } else if (name == "walmart_amazon") {
    config.perturbation = 0.25;
  } else if (name == "amazon_google") {
    config.perturbation = 0.45;
  } else {
    return Status::NotFound("unknown ER dataset '" + name + "'");
  }
  return GenerateErDataset(config);
}

}  // namespace leva
