#include "datagen/datasets.h"

namespace leva {

SyntheticConfig GenesConfig(uint64_t seed) {
  SyntheticConfig c;
  c.name = "genes";
  c.base_rows = 1200;
  c.classification = true;
  c.num_classes = 3;
  c.missing_rate = 0.10;
  c.base_noise_categorical = 2;
  c.base_noise_numeric = 0;  // string-heavy dataset (93% string columns)
  c.dims = {
      {.name = "gene_attrs", .rows = 120, .predictive_numeric = 1,
       .predictive_categorical = 3, .noise_numeric = 0,
       .noise_categorical = 2, .categories = 10, .parent = ""},
      {.name = "interactions", .rows = 150, .predictive_numeric = 0,
       .predictive_categorical = 2, .noise_numeric = 0,
       .noise_categorical = 1, .categories = 8, .parent = ""},
  };
  c.seed = seed;
  return c;
}

SyntheticConfig KrakenConfig(uint64_t seed) {
  SyntheticConfig c;
  c.name = "kraken";
  c.base_rows = 2000;
  c.classification = true;
  c.num_classes = 2;
  c.missing_rate = 0.0;
  c.base_noise_categorical = 0;
  c.base_noise_numeric = 2;  // all-numeric sensor data (0% string columns)
  c.dims.reserve(9);
  for (int i = 0; i < 9; ++i) {
    DimTableSpec d;
    d.name = "sensor" + std::to_string(i);
    d.rows = 40;  // dense FK cardinality, as in the 31K-row original
    d.predictive_numeric = i < 3 ? 2 : 0;  // only some sensors matter
    d.predictive_categorical = 0;
    d.noise_numeric = i < 3 ? 1 : 3;
    d.noise_categorical = 0;
    c.dims.push_back(d);
  }
  c.seed = seed;
  return c;
}

SyntheticConfig FtpConfig(uint64_t seed) {
  SyntheticConfig c;
  c.name = "ftp";
  c.base_rows = 2000;
  c.classification = true;
  c.num_classes = 2;  // binary gender label
  c.missing_rate = 0.08;
  c.base_noise_numeric = 1;
  c.base_noise_categorical = 1;
  c.dims = {
      {.name = "sessions", .rows = 500, .predictive_numeric = 1,
       .predictive_categorical = 2, .noise_numeric = 1,
       .noise_categorical = 1, .categories = 12, .parent = ""},
  };
  c.seed = seed;
  return c;
}

SyntheticConfig FinancialConfig(uint64_t seed) {
  SyntheticConfig c;
  c.name = "financial";
  c.base_rows = 2000;  // scaled down from the paper's 1M rows
  c.classification = true;
  c.num_classes = 2;  // loan default
  c.missing_rate = 0.0;
  c.base_noise_numeric = 2;
  c.base_noise_categorical = 1;
  c.dims = {
      {.name = "account", .rows = 120, .predictive_numeric = 2,
       .predictive_categorical = 1, .noise_numeric = 1,
       .noise_categorical = 0, .categories = 8, .parent = ""},
      {.name = "district", .rows = 40, .predictive_numeric = 1,
       .predictive_categorical = 1, .noise_numeric = 1,
       .noise_categorical = 1, .categories = 6, .parent = "account"},
      {.name = "orders", .rows = 100, .predictive_numeric = 1,
       .predictive_categorical = 0, .noise_numeric = 2,
       .noise_categorical = 0, .categories = 8, .parent = ""},
      {.name = "trans", .rows = 120, .predictive_numeric = 2,
       .predictive_categorical = 0, .noise_numeric = 1,
       .noise_categorical = 0, .categories = 8, .parent = ""},
      {.name = "disp", .rows = 80, .predictive_numeric = 0,
       .predictive_categorical = 1, .noise_numeric = 1,
       .noise_categorical = 0, .categories = 6, .parent = ""},
      {.name = "card", .rows = 50, .predictive_numeric = 0,
       .predictive_categorical = 1, .noise_numeric = 1,
       .noise_categorical = 0, .categories = 5, .parent = "disp"},
      {.name = "client", .rows = 80, .predictive_numeric = 1,
       .predictive_categorical = 0, .noise_numeric = 1,
       .noise_categorical = 1, .categories = 8, .parent = "disp"},
  };
  c.seed = seed;
  return c;
}

SyntheticConfig RestbaseConfig(uint64_t seed) {
  SyntheticConfig c;
  c.name = "restbase";
  c.base_rows = 1500;
  c.classification = false;  // review-score regression
  c.missing_rate = 0.0;
  c.base_noise_numeric = 0;
  c.base_noise_categorical = 2;  // string-heavy
  c.dims = {
      {.name = "restaurants", .rows = 200, .predictive_numeric = 1,
       .predictive_categorical = 3, .noise_numeric = 0,
       .noise_categorical = 1, .categories = 10, .parent = ""},
      {.name = "geo", .rows = 60, .predictive_numeric = 0,
       .predictive_categorical = 2, .noise_numeric = 0,
       .noise_categorical = 1, .categories = 8, .parent = "restaurants"},
  };
  c.seed = seed;
  return c;
}

SyntheticConfig BioConfig(uint64_t seed) {
  SyntheticConfig c;
  c.name = "bio";
  c.base_rows = 1500;
  c.classification = false;  // bioactivity regression
  c.missing_rate = 0.12;
  c.base_noise_numeric = 0;
  c.base_noise_categorical = 2;
  c.dims = {
      {.name = "atoms", .rows = 150, .predictive_numeric = 1,
       .predictive_categorical = 2, .noise_numeric = 0,
       .noise_categorical = 1, .categories = 10, .parent = ""},
      {.name = "bonds", .rows = 100, .predictive_numeric = 0,
       .predictive_categorical = 2, .noise_numeric = 0,
       .noise_categorical = 1, .categories = 8, .parent = "atoms"},
  };
  c.seed = seed;
  return c;
}

SyntheticConfig ScalabilityBaseConfig(uint64_t seed) {
  SyntheticConfig c;
  c.name = "scalability";
  c.base_rows = 1000;
  c.classification = true;
  c.num_classes = 2;
  c.base_noise_numeric = 1;
  c.base_noise_categorical = 1;
  c.dims = {
      {.name = "dim_a", .rows = 500, .predictive_numeric = 1,
       .predictive_categorical = 1, .noise_numeric = 0,
       .noise_categorical = 1, .categories = 12, .parent = ""},
      {.name = "dim_b", .rows = 500, .predictive_numeric = 1,
       .predictive_categorical = 1, .noise_numeric = 0,
       .noise_categorical = 1, .categories = 12, .parent = ""},
  };
  c.seed = seed;
  return c;
}

Result<SyntheticConfig> DatasetConfigByName(const std::string& name,
                                            uint64_t seed_offset) {
  if (name == "genes") return GenesConfig(11 + seed_offset);
  if (name == "kraken") return KrakenConfig(12 + seed_offset);
  if (name == "ftp") return FtpConfig(13 + seed_offset);
  if (name == "financial") return FinancialConfig(14 + seed_offset);
  if (name == "restbase") return RestbaseConfig(15 + seed_offset);
  if (name == "bio") return BioConfig(16 + seed_offset);
  return Status::NotFound("unknown dataset '" + name + "'");
}

}  // namespace leva
