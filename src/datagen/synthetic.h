#ifndef LEVA_DATAGEN_SYNTHETIC_H_
#define LEVA_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "table/table.h"

namespace leva {

/// Generic multi-table relational ML-task generator. It reproduces the
/// structural property Leva exploits: the Base Table holds the target and
/// foreign keys, while the predictive attributes live in dimension tables
/// reachable only through (unknown-to-Leva) KFK joins. Ground-truth foreign
/// keys are recorded on the Database so the Full / Full+FE baselines can
/// perform the correct joins, as in the paper's evaluation.
struct DimTableSpec {
  std::string name;
  size_t rows = 200;
  /// Numeric attributes that contribute to the target.
  size_t predictive_numeric = 2;
  /// Categorical attributes with latent per-category effects on the target.
  size_t predictive_categorical = 1;
  /// Irrelevant attributes (white noise / random categories).
  size_t noise_numeric = 1;
  size_t noise_categorical = 1;
  /// Cardinality of each categorical attribute.
  size_t categories = 8;
  /// Chained parent: when set, this table hangs off another dimension table
  /// instead of the base table (multi-hop join paths).
  std::string parent;  // empty = joined from the base table
};

struct SyntheticConfig {
  std::string name = "synthetic";
  size_t base_rows = 2000;
  bool classification = true;
  size_t num_classes = 2;
  std::vector<DimTableSpec> dims;
  /// Irrelevant attributes in the base table itself.
  size_t base_noise_numeric = 1;
  size_t base_noise_categorical = 2;
  /// Weak predictive numeric attribute kept in the base table, so the Base
  /// baseline performs above chance but below Full (Fig. 1's bottom-right).
  double base_signal_weight = 0.25;
  /// Fraction of dimension-table cells replaced by missing values; half
  /// become true nulls, half the literal string "?" (exercising the voting
  /// refinement).
  double missing_rate = 0.0;
  /// Standard deviation of noise added to the latent target score.
  double label_noise = 0.3;
  uint64_t seed = 1;
};

struct SyntheticDataset {
  Database db;
  std::string base_table;
  std::string target_column;
  bool classification = true;
  size_t num_classes = 2;
  /// Latent noise-free score per base row (for oracle / Max-Reported proxy).
  std::vector<double> latent_score;
};

Result<SyntheticDataset> GenerateSynthetic(const SyntheticConfig& config);

/// The STUDENT dataset of Table 1 / Section 5.2: Expenses(Name, Gender,
/// SchoolName, TotalExpenses), OrderInfo(Name -> Expenses, Item -> PriceInfo),
/// PriceInfo(Item, Prices); TotalExpenses is fully explained by the prices of
/// ordered items. `noise_attributes` white-noise numeric columns are appended
/// to every table (the Fig. 3 injection).
Result<SyntheticDataset> GenerateStudent(size_t num_students,
                                         size_t noise_attributes,
                                         uint64_t seed);

/// Synthetic power-law graph for walk-engine benchmarking (Chung–Lu model:
/// both endpoints of every edge are drawn independently with probability
/// proportional to a per-node weight w_i ∝ (i+1)^(-1/(exponent-1)), giving
/// the heavy-tailed degree distribution real value graphs show — a few hub
/// tokens shared by most rows, a long tail of rare ones).
///
/// Memory guide (unweighted; weighted adds 12 B/slot of alias storage at
/// walk time): the CSR is 12 B per directed slot = 24 B per edge, plus an
/// equal-size transient endpoint slab during generation.
///   - CI scale:  nodes = 1<<20, target_edges = 10'000'000  → ~0.5 GiB peak,
///     seconds to generate; the WalkEngineThroughput suite's large arg.
///   - 1B-edge scale: nodes = 1<<26, target_edges = 1'000'000'000 →
///     ~24 GiB CSR + ~16 GiB transient (fits a 64 GiB box). Not run in CI;
///     documented so the batched engine's headline scale is reproducible.
struct PowerLawGraphConfig {
  size_t nodes = size_t{1} << 20;
  /// Undirected edge count (each lands as two directed CSR slots).
  /// Self-loops and parallel edges are kept, as Chung–Lu defines.
  size_t target_edges = 10'000'000;
  /// Degree-distribution exponent gamma; node weights decay as
  /// rank^(-1/(gamma-1)). 2.1 is typical of real shared-token graphs.
  double exponent = 2.1;
  /// Attach a Uniform(0.1, 1.1) weight per undirected edge (exercises the
  /// alias sampling path); otherwise all slots weigh 1.
  bool weighted = true;
  uint64_t seed = 1;
  /// Edge-sampling threads (0 = hardware). The generated graph is
  /// bit-identical at every thread count: edges are drawn in fixed-size
  /// chunks, each from its own counter-based RNG stream
  /// (rngdomain::kDatagenGraph), and CSR assembly is sequential.
  size_t threads = 0;
};

Result<LevaGraph> GeneratePowerLawGraph(const PowerLawGraphConfig& config);

/// Replicates every table K times for the scalability study (Fig. 7a):
/// string tokens of copy k are suffixed "_v<k>" and numeric values shifted by
/// k times the column range, so both rows and distinct tokens grow linearly
/// in K.
Result<Database> ReplicateDatabase(const Database& db, size_t k);

}  // namespace leva

#endif  // LEVA_DATAGEN_SYNTHETIC_H_
