#ifndef LEVA_COMMON_LOGGING_H_
#define LEVA_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace leva {

/// Log verbosity for the whole process. Benchmarks set kWarning to keep the
/// reported tables clean; tests may set kDebug.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level (trivially destructible global).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {
bool ShouldLog(LogLevel level);
}  // namespace internal_logging

}  // namespace leva

/// printf-style leveled logging to stderr.
#define LEVA_LOG(level, ...)                                              \
  do {                                                                    \
    if (::leva::internal_logging::ShouldLog(::leva::LogLevel::level)) {   \
      std::fprintf(stderr, "[%s] ", #level + 1);                          \
      std::fprintf(stderr, __VA_ARGS__);                                  \
      std::fprintf(stderr, "\n");                                         \
    }                                                                     \
  } while (0)

/// Invariant check that survives NDEBUG; aborts with a message on failure.
#define LEVA_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "LEVA_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // LEVA_COMMON_LOGGING_H_
