#ifndef LEVA_COMMON_LOGGING_H_
#define LEVA_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace leva {

/// Log verbosity for the whole process. Benchmarks set kWarning to keep the
/// reported tables clean; tests may set kDebug.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level. Safe to read and set from any thread (the
/// serving daemon's I/O loop, the batch dispatcher, and pool workers all
/// log concurrently).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {
bool ShouldLog(LogLevel level);
/// Formats one record — "[Level HH:MM:SS.mmm tid] message\n" — into a single
/// buffer and emits it with one stdio call, so records from concurrent
/// threads never interleave mid-line. `level_name` is the enumerator name
/// without its leading 'k'.
void LogRecord(const char* level_name, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace internal_logging

}  // namespace leva

/// printf-style leveled logging to stderr. Each invocation emits exactly one
/// write, so concurrent threads cannot produce partial-line interleavings.
#define LEVA_LOG(level, ...)                                              \
  do {                                                                    \
    if (::leva::internal_logging::ShouldLog(::leva::LogLevel::level)) {   \
      ::leva::internal_logging::LogRecord(#level + 1, __VA_ARGS__);       \
    }                                                                     \
  } while (0)

/// Invariant check that survives NDEBUG; aborts with a message on failure.
#define LEVA_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "LEVA_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // LEVA_COMMON_LOGGING_H_
