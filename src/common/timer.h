#ifndef LEVA_COMMON_TIMER_H_
#define LEVA_COMMON_TIMER_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace leva {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named stage durations; used to reproduce the pipeline
/// performance profiles of Fig. 6b/6c.
class StageProfile {
 public:
  /// Adds `seconds` to the accumulator for `stage` (created on first use).
  void Add(const std::string& stage, double seconds) {
    for (auto& [name, secs] : stages_) {
      if (name == stage) {
        secs += seconds;
        return;
      }
    }
    stages_.emplace_back(stage, seconds);
  }

  /// Stages in insertion order with accumulated seconds.
  const std::vector<std::pair<std::string, double>>& stages() const {
    return stages_;
  }

  double TotalSeconds() const {
    double total = 0;
    for (const auto& [name, secs] : stages_) total += secs;
    return total;
  }

  /// Attaches a free-form note to `stage` (e.g. which engine or code path
  /// the stage ran with), replacing any previous note for that stage. Kept
  /// separate from the stage name so timing consumers keyed on stage names
  /// never see variant-dependent keys.
  void Annotate(const std::string& stage, std::string note) {
    for (auto& [name, text] : annotations_) {
      if (name == stage) {
        text = std::move(note);
        return;
      }
    }
    annotations_.emplace_back(stage, std::move(note));
  }

  /// Note attached to `stage`, or an empty string.
  const std::string& annotation(const std::string& stage) const {
    static const std::string kEmpty;
    for (const auto& [name, text] : annotations_) {
      if (name == stage) return text;
    }
    return kEmpty;
  }

  const std::vector<std::pair<std::string, std::string>>& annotations() const {
    return annotations_;
  }

  /// Worker threads the profiled run executed with (resolved, never 0), so
  /// recorded profiles state their parallelism alongside their timings.
  void set_threads(size_t threads) { threads_ = threads; }
  size_t threads() const { return threads_; }

  void Clear() {
    stages_.clear();
    annotations_.clear();
    threads_ = 1;
  }

 private:
  std::vector<std::pair<std::string, double>> stages_;
  std::vector<std::pair<std::string, std::string>> annotations_;
  size_t threads_ = 1;
};

/// RAII helper: times a scope and adds the result to a StageProfile.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageProfile* profile, std::string stage)
      : profile_(profile), stage_(std::move(stage)) {}
  ~ScopedStageTimer() {
    if (profile_ != nullptr) profile_->Add(stage_, timer_.ElapsedSeconds());
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageProfile* profile_;
  std::string stage_;
  WallTimer timer_;
};

}  // namespace leva

#endif  // LEVA_COMMON_TIMER_H_
