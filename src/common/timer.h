#ifndef LEVA_COMMON_TIMER_H_
#define LEVA_COMMON_TIMER_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace leva {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named stage durations; used to reproduce the pipeline
/// performance profiles of Fig. 6b/6c.
class StageProfile {
 public:
  /// Adds `seconds` to the accumulator for `stage` (created on first use).
  void Add(const std::string& stage, double seconds) {
    for (auto& [name, secs] : stages_) {
      if (name == stage) {
        secs += seconds;
        return;
      }
    }
    stages_.emplace_back(stage, seconds);
  }

  /// Stages in insertion order with accumulated seconds.
  const std::vector<std::pair<std::string, double>>& stages() const {
    return stages_;
  }

  double TotalSeconds() const {
    double total = 0;
    for (const auto& [name, secs] : stages_) total += secs;
    return total;
  }

  /// Worker threads the profiled run executed with (resolved, never 0), so
  /// recorded profiles state their parallelism alongside their timings.
  void set_threads(size_t threads) { threads_ = threads; }
  size_t threads() const { return threads_; }

  void Clear() {
    stages_.clear();
    threads_ = 1;
  }

 private:
  std::vector<std::pair<std::string, double>> stages_;
  size_t threads_ = 1;
};

/// RAII helper: times a scope and adds the result to a StageProfile.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageProfile* profile, std::string stage)
      : profile_(profile), stage_(std::move(stage)) {}
  ~ScopedStageTimer() {
    if (profile_ != nullptr) profile_->Add(stage_, timer_.ElapsedSeconds());
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageProfile* profile_;
  std::string stage_;
  WallTimer timer_;
};

}  // namespace leva

#endif  // LEVA_COMMON_TIMER_H_
