#include "common/io.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace leva {
namespace {

// --- CRC32C (Castagnoli, poly 0x82F63B78), slice-by-8 ------------------------

struct Crc32cTables {
  uint32_t t[8][256];
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? 0x82F63B78u : 0);
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "': " + strerror(errno);
}

// --- POSIX Env ---------------------------------------------------------------

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t n = data.size();
    while (n > 0) {
      const ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("write to", path_));
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fsync", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IOError(ErrnoMessage("close", path_));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open for writing", path));
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open for appending", path));
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open", path));
    }
    std::string out;
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      out.reserve(static_cast<size_t>(st.st_size));
    }
    char buf[1 << 16];
    for (;;) {
      const ssize_t r = ::read(fd, buf, sizeof buf);
      if (r < 0) {
        if (errno == EINTR) continue;
        const Status s = Status::IOError(ErrnoMessage("read", path));
        ::close(fd);
        return s;
      }
      if (r == 0) break;
      out.append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return out;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("rename '" + from + "' -> '" + to +
                             "': " + strerror(errno));
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("unlink", path));
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.empty() ? "." : path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open directory", path));
    }
    // Some filesystems refuse fsync on directories (EINVAL); the rename is
    // then as durable as that filesystem can make it.
    if (::fsync(fd) != 0 && errno != EINVAL) {
      const Status s = Status::IOError(ErrnoMessage("fsync directory", path));
      ::close(fd);
      return s;
    }
    ::close(fd);
    return Status::OK();
  }

  Result<std::shared_ptr<const MappedRegion>> NewMmapReadableFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open for mapping", path));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const Status s = Status::IOError(ErrnoMessage("fstat", path));
      ::close(fd);
      return s;
    }
    const size_t len = static_cast<size_t>(st.st_size);
    if (len == 0) {
      ::close(fd);
      return MappedRegion::FromString(std::string());
    }
    void* base = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping keeps its own reference to the file
    if (base == MAP_FAILED) {
      return Status::IOError(ErrnoMessage("mmap", path));
    }
    return MappedRegion::FromMmap(base, len);
  }
};

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& t = Tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (n >= 8) {
    uint64_t v;
    memcpy(&v, p, 8);
    v ^= crc;  // low 4 bytes fold in the running crc (little-endian)
    crc = t.t[7][v & 0xFF] ^ t.t[6][(v >> 8) & 0xFF] ^ t.t[5][(v >> 16) & 0xFF] ^
          t.t[4][(v >> 24) & 0xFF] ^ t.t[3][(v >> 32) & 0xFF] ^
          t.t[2][(v >> 40) & 0xFF] ^ t.t[1][(v >> 48) & 0xFF] ^
          t.t[0][(v >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t.t[0][(crc ^ *p++) & 0xFF];
  return ~crc;
}

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Result<std::shared_ptr<const MappedRegion>> Env::NewMmapReadableFile(
    const std::string& path) {
  // Portable fallback: the whole file in a heap-backed region. Subclasses
  // that wrap a base Env inherit this, so fault-injection reads stay
  // observable; PosixEnv overrides it with a real mmap.
  LEVA_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return MappedRegion::FromString(std::move(bytes));
}

// --- MappedRegion ------------------------------------------------------------

std::shared_ptr<const MappedRegion> MappedRegion::FromString(
    std::string bytes) {
  auto region = std::shared_ptr<MappedRegion>(new MappedRegion());
  region->heap_ = std::move(bytes);
  region->data_ = region->heap_.data();
  region->size_ = region->heap_.size();
  return region;
}

std::shared_ptr<const MappedRegion> MappedRegion::FromMmap(void* base,
                                                           size_t length) {
  auto region = std::shared_ptr<MappedRegion>(new MappedRegion());
  region->map_base_ = base;
  region->map_len_ = length;
  region->data_ = static_cast<const char*>(base);
  region->size_ = length;
  return region;
}

MappedRegion::~MappedRegion() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
}

size_t CurrentRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<size_t>(std::atoll(line.c_str() + 6)) * 1024;
    }
  }
  return 0;
}

Status AtomicWriteChunks(Env* env, const std::string& path,
                         std::span<const std::string_view> chunks) {
  const std::string tmp = path + ".tmp";
  LEVA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(tmp));
  Status s = Status::OK();
  for (const std::string_view chunk : chunks) {
    s = file->Append(chunk);
    if (!s.ok()) break;
  }
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) {
    // Leave no half-written temp file behind; the target is untouched.
    (void)env->DeleteFile(tmp);
    return s;
  }
  LEVA_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  return env->SyncDir(ParentDir(path));
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents) {
  const std::string_view chunks[] = {contents};
  return AtomicWriteChunks(env, path, chunks);
}

}  // namespace leva
