#ifndef LEVA_COMMON_FAULT_INJECTION_H_
#define LEVA_COMMON_FAULT_INJECTION_H_

#include <array>
#include <cstddef>
#include <memory>
#include <string>

#include "common/io.h"

namespace leva {

/// An Env wrapper that injects failures into the snapshot I/O path, in the
/// style of RocksDB's FaultInjectionTestEnv. Tests use it to prove the
/// atomic-write protocol crash-safe: arm it to fail the Nth operation of a
/// given kind, run a save, and check that the previous snapshot is still
/// loadable (or the new one is rejected at load) — never a torn artifact.
///
/// Once an injected fault fires, the env enters a "crashed" state: every
/// further mutating operation fails too, modeling a process that died at
/// that instant (a real crash never gets to run the remaining steps).
/// Reads are exempt from the crashed gate, so a test can immediately
/// "restart" and load — but they are themselves injectable fault points
/// (OpKind::kRead, fail-Nth like the write side) so replay/load paths can be
/// crash-tested too.
class FaultInjectionEnv : public Env {
 public:
  enum class OpKind : size_t {
    kAppend = 0,  ///< WritableFile::Append
    kSync,        ///< WritableFile::Sync
    kClose,       ///< WritableFile::Close
    kRename,      ///< Env::RenameFile
    kSyncDir,     ///< Env::SyncDir
    kRead,        ///< Env::ReadFileToString / Env::NewMmapReadableFile
  };
  static constexpr size_t kNumOpKinds = 6;

  /// How an armed Append fault manifests.
  enum class AppendFault {
    kFailCleanly,  ///< no bytes of the failing Append reach the file
    kTornWrite,    ///< the first half of the failing Append's bytes land
  };

  /// `base` is not owned and must outlive this env. Defaults to the real
  /// filesystem.
  explicit FaultInjectionEnv(Env* base = Env::Default()) : base_(base) {}

  /// Arms the env: the `nth` (1-based) operation of `kind` fails with
  /// kIOError and crashes the env. Passing `nth` larger than the number of
  /// operations a workload performs simply never fires.
  void FailAtOp(OpKind kind, size_t nth) {
    fail_at_[static_cast<size_t>(kind)] = nth;
  }

  void set_append_fault(AppendFault mode) { append_fault_ = mode; }

  /// Operations of `kind` observed so far (including failed ones). Run a
  /// workload against an unarmed env first to learn how many fault points
  /// it has, then iterate FailAtOp over 1..ops(kind).
  size_t ops(OpKind kind) const { return ops_[static_cast<size_t>(kind)]; }

  bool crashed() const { return crashed_; }

  /// Disarms every fault and clears the crashed state (counters persist).
  void Heal() {
    crashed_ = false;
    fail_at_.fill(0);
    bad_page_ = kNoBadPage;
  }

  /// Bad-page mode: every subsequent NewMmapReadableFile serves the file
  /// with one bit flipped inside page `page_index` (0-based, `page_size`-byte
  /// pages), modeling silent media corruption under an mmap'ed snapshot.
  /// Tests use it to prove the per-page checksums localize the damage: the
  /// load (or an on-demand verify) must name exactly this page. Pages past
  /// the end of a file are left untouched (the mode then never fires).
  void CorruptMappedPage(size_t page_index, size_t page_size = 4096) {
    bad_page_ = page_index;
    bad_page_size_ = page_size;
  }

  static constexpr size_t kNoBadPage = static_cast<size_t>(-1);

  // Env interface.
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Result<std::shared_ptr<const MappedRegion>> NewMmapReadableFile(
      const std::string& path) override;

 private:
  friend class FaultInjectionWritableFile;

  // Accounts one operation of `kind`; returns true when it must fail (and
  // flips the env into the crashed state).
  bool ShouldFail(OpKind kind);

  // Read-side variant: counts the op and fires an armed kRead fault, but is
  // NOT gated on the crashed state — reads always pass through after a write
  // crash so a test can immediately "restart" and load. A firing read fault
  // still sets crashed_ (the reading process died mid-load); Heal() clears
  // it as usual.
  bool ShouldFailRead();

  Env* base_;
  std::array<size_t, kNumOpKinds> ops_ = {};
  std::array<size_t, kNumOpKinds> fail_at_ = {};  // 0 = disarmed
  AppendFault append_fault_ = AppendFault::kFailCleanly;
  bool crashed_ = false;
  size_t bad_page_ = kNoBadPage;
  size_t bad_page_size_ = 4096;
};

}  // namespace leva

#endif  // LEVA_COMMON_FAULT_INJECTION_H_
