#ifndef LEVA_COMMON_STRING_UTIL_H_
#define LEVA_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace leva {

/// Transparent hash for string-keyed unordered maps so lookups accept a
/// std::string_view without materializing a std::string (C++20 heterogeneous
/// unordered lookup; pair with std::equal_to<> as the key-equal).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a double, requiring the whole string to be consumed.
std::optional<double> ParseDouble(std::string_view s);

/// Parses an int64, requiring the whole string to be consumed.
std::optional<int64_t> ParseInt(std::string_view s);

/// True if `s` (after trimming and lower-casing) is a common textual
/// representation of a missing value: "", "?", "null", "n/a", "na", "none",
/// "nan", "-". The voting mechanism (Section 3.2) is the primary missing-data
/// defense; this list is only used by dataset generators and tests.
bool LooksLikeMissingToken(std::string_view s);

/// Formats `v` with `precision` decimal digits.
std::string FormatDouble(double v, int precision = 3);

/// Parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS" (also with a 'T' separator)
/// into seconds since the Unix epoch (UTC, proleptic Gregorian). Returns
/// nullopt on malformed input or out-of-range fields.
std::optional<int64_t> ParseIsoDatetime(std::string_view s);

/// Formats an epoch timestamp back to "YYYY-MM-DD HH:MM:SS".
std::string FormatIsoDatetime(int64_t epoch_seconds);

}  // namespace leva

#endif  // LEVA_COMMON_STRING_UTIL_H_
