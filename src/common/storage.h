#ifndef LEVA_COMMON_STORAGE_H_
#define LEVA_COMMON_STORAGE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace leva {

/// Read-only view of a contiguous array, independent of who owns the bytes.
template <typename T>
using ArrayView = std::span<const T>;

/// A refcounted read-only byte region: either a real mmap of a file (the
/// zero-copy serving path — pages live in the kernel page cache and are
/// shared across every process mapping the same snapshot) or a plain heap
/// buffer (the portable fallback, and what fault-injection tests substitute).
/// Arrays borrowed from a region via OwnedOrMapped keep it alive through a
/// shared_ptr, so a hot-swapped model's mapping is only torn down when the
/// last in-flight reader drops its reference.
class MappedRegion {
 public:
  /// Heap-backed region (no page sharing, but identical semantics).
  static std::shared_ptr<const MappedRegion> FromString(std::string bytes);

  /// Adopts an existing mmap'ed range; munmap'ed on destruction. `base` may
  /// be null only when `length` is 0.
  static std::shared_ptr<const MappedRegion> FromMmap(void* base,
                                                     size_t length);

  ~MappedRegion();

  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }

  /// True when the bytes are a real file mapping (page-cache backed).
  bool is_mmap() const { return map_base_ != nullptr; }

 private:
  MappedRegion() = default;

  std::string heap_;            // backing store when heap-based
  void* map_base_ = nullptr;    // backing store when mmap-based
  size_t map_len_ = 0;
  const char* data_ = nullptr;
  size_t size_ = 0;
};

/// Storage for a big read-only-in-serving array that is either owned heap
/// memory (a std::vector — the Fit/training paths, which mutate) or a
/// borrowed span into a refcounted MappedRegion (an mmap-loaded snapshot —
/// load is O(pages touched) and N processes share one physical copy).
///
/// The read API (data/size/operator[]/span) is backing-agnostic, so hot
/// loops keep working on raw pointers either way. The mutating API
/// transparently *detaches* first: the mapped bytes are copied into a fresh
/// owned vector once, after which the array behaves exactly like a vector.
/// Serving paths are const and never detach; only explicit mutation (e.g.
/// Embedding::Put on a loaded model) pays the copy.
template <typename T>
class OwnedOrMapped {
  static_assert(std::is_trivially_copyable_v<T>,
                "mapped storage reinterprets raw file bytes");

 public:
  OwnedOrMapped() = default;
  /*implicit*/ OwnedOrMapped(std::vector<T> v) : vec_(std::move(v)) {}

  /// Borrows `count` elements starting at `data` inside `region`. The caller
  /// guarantees `data` points into the region and is suitably aligned (the
  /// snapshot layer aligns bulk sections to the page size).
  static OwnedOrMapped Mapped(std::shared_ptr<const MappedRegion> region,
                              const T* data, size_t count) {
    OwnedOrMapped s;
    s.region_ = std::move(region);
    s.map_data_ = data;
    s.map_size_ = count;
    return s;
  }

  bool mapped() const { return region_ != nullptr; }

  // --- read API (valid for both backings) -----------------------------------
  const T* data() const { return mapped() ? map_data_ : vec_.data(); }
  size_t size() const { return mapped() ? map_size_ : vec_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  const T& back() const { return data()[size() - 1]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  ArrayView<T> span() const { return {data(), size()}; }
  /// Bytes held (heap capacity when owned, mapped length otherwise).
  size_t capacity() const { return mapped() ? map_size_ : vec_.capacity(); }

  // --- mutation API (detaches mapped storage into an owned copy) ------------

  /// The owned vector, copying out of the mapped region first if needed.
  std::vector<T>& owned() {
    if (mapped()) {
      vec_.assign(map_data_, map_data_ + map_size_);
      DropRegion();
    }
    return vec_;
  }

  void assign(size_t n, const T& value) {
    DropRegion();
    vec_.assign(n, value);
  }
  template <typename It>
  void assign(It first, It last) {
    DropRegion();
    vec_.assign(first, last);
  }
  void clear() {
    DropRegion();
    vec_.clear();
  }
  void reserve(size_t n) { owned().reserve(n); }
  void resize(size_t n) { owned().resize(n); }
  void push_back(const T& value) { owned().push_back(value); }
  T& operator[](size_t i) { return owned()[i]; }
  T* begin() { return owned().data(); }
  T* end() {
    std::vector<T>& v = owned();
    return v.data() + v.size();
  }

 private:
  void DropRegion() {
    region_.reset();
    map_data_ = nullptr;
    map_size_ = 0;
  }

  std::vector<T> vec_;
  std::shared_ptr<const MappedRegion> region_;
  const T* map_data_ = nullptr;
  size_t map_size_ = 0;
};

}  // namespace leva

#endif  // LEVA_COMMON_STORAGE_H_
