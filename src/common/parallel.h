#ifndef LEVA_COMMON_PARALLEL_H_
#define LEVA_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace leva {

/// Fixed-size worker pool shared by every parallel hot path (walks, Word2Vec,
/// SVD matmuls, forests, grid search). Tasks are plain closures; ParallelFor
/// below is the structured entry point almost all callers want.
///
/// Determinism contract: the pool never influences *what* is computed, only
/// *where*. Work is partitioned into chunks whose boundaries depend on the
/// range and grain alone — never on the thread count — and per-task randomness
/// comes from counter-based RNG streams (see StreamRng), so the same seed
/// produces bit-identical results at any thread count.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` for execution on some worker. Never blocks.
  void Submit(std::function<void()> fn);

  /// std::thread::hardware_concurrency(), clamped to >= 1.
  static size_t HardwareConcurrency();

  /// Lazily-created process-wide pool used by ParallelFor. Sized to at least
  /// two workers so parallel code paths genuinely interleave even on
  /// single-core machines (which is what the TSan smoke tests rely on).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Resolves a user-facing thread-count setting: 0 means "use all hardware
/// threads", anything else is taken literally.
size_t ResolveThreads(size_t requested);

/// Runs `fn(chunk_begin, chunk_end)` over [begin, end) split into chunks of at
/// most `grain` indices. Chunk boundaries are a pure function of (begin, end,
/// grain) so any chunk-local state is reproducible at every thread count; with
/// `threads` <= 1 the chunks run inline on the caller. The caller always
/// participates, so at most `threads - 1` pool workers are borrowed. The first
/// exception thrown by `fn` is rethrown on the caller after all in-flight
/// chunks drain.
void ParallelFor(size_t threads, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Domain tags keeping the counter-based streams of unrelated components
/// disjoint even when they share a pipeline seed and index range.
namespace rngdomain {
constexpr uint64_t kWalk = 0xA11CE001;
constexpr uint64_t kWalkShuffle = 0xA11CE002;
constexpr uint64_t kWord2Vec = 0xA11CE003;
constexpr uint64_t kForest = 0xA11CE004;
constexpr uint64_t kGridSearch = 0xA11CE005;
constexpr uint64_t kWord2VecDet = 0xA11CE006;
}  // namespace rngdomain

/// Derives an independent 64-bit seed for task `index` of `domain` from a
/// base seed, via chained SplitMix64 finalizers. Pure function: the stream for
/// (seed, domain, index) never depends on how many tasks run concurrently.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t domain, uint64_t index);

/// Convenience: an Rng positioned at the start of stream (seed, domain, index).
inline Rng StreamRng(uint64_t seed, uint64_t domain, uint64_t index) {
  return Rng(DeriveStreamSeed(seed, domain, index));
}

}  // namespace leva

#endif  // LEVA_COMMON_PARALLEL_H_
