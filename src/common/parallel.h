#ifndef LEVA_COMMON_PARALLEL_H_
#define LEVA_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace leva {

/// Fixed-size worker pool shared by every parallel hot path (walks, Word2Vec,
/// SVD matmuls, forests, grid search). Tasks are plain closures; ParallelFor
/// below is the structured entry point almost all callers want.
///
/// Determinism contract: the pool never influences *what* is computed, only
/// *where*. Work is partitioned into chunks whose boundaries depend on the
/// range and grain alone — never on the thread count — and per-task randomness
/// comes from counter-based RNG streams (see StreamRng), so the same seed
/// produces bit-identical results at any thread count.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` for execution on some worker. Never blocks.
  void Submit(std::function<void()> fn);

  /// std::thread::hardware_concurrency(), clamped to >= 1.
  static size_t HardwareConcurrency();

  /// Lazily-created process-wide pool used by ParallelFor. Sized to at least
  /// two workers so parallel code paths genuinely interleave even on
  /// single-core machines (which is what the TSan smoke tests rely on).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Resolves a user-facing thread-count setting: 0 means "use all hardware
/// threads", anything else is taken literally.
size_t ResolveThreads(size_t requested);

/// Runs `fn(chunk_begin, chunk_end)` over [begin, end) split into chunks of at
/// most `grain` indices. Chunk boundaries are a pure function of (begin, end,
/// grain) so any chunk-local state is reproducible at every thread count; with
/// `threads` <= 1 the chunks run inline on the caller. The caller always
/// participates, so at most `threads - 1` pool workers are borrowed. The first
/// exception thrown by `fn` is rethrown on the caller after all in-flight
/// chunks drain.
void ParallelFor(size_t threads, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

// ---------------------------------------------------------------------------
// NUMA-aware placement
//
// Large walk/embedding working sets are bandwidth-bound, so on multi-socket
// machines it matters which socket's memory a page lands on and which
// socket's cores stream through it. The primitives below expose just enough
// of the machine to co-locate both: the node->cpu map, per-node first-touch
// allocation, and a ParallelFor variant whose shards run pinned to the node
// owning their pages. Everything degrades to a no-op on single-node machines
// and on platforms without the Linux sysfs/affinity interfaces, so callers
// write one code path and non-NUMA CI exercises it unchanged.
// ---------------------------------------------------------------------------

/// The machine's NUMA layout as exposed by sysfs
/// (/sys/devices/system/node/node*/cpulist), detected once per process.
/// When the interface is absent (non-Linux, restricted container) or reports
/// a single node, the topology collapses to one pseudo-node holding every
/// cpu id — the graceful fallback every primitive below inherits.
class NumaTopology {
 public:
  /// Cached process-wide topology.
  static const NumaTopology& Get();

  size_t num_nodes() const { return node_cpus_.size(); }
  /// CPU ids of `node` (never empty).
  const std::vector<int>& cpus(size_t node) const { return node_cpus_[node]; }
  /// True when more than one memory node is visible — the only case where
  /// pinning or placement can change anything.
  bool multi_node() const { return node_cpus_.size() > 1; }

  /// Parses a sysfs-style cpulist ("0-3,8,10-11"); exposed for tests.
  static std::vector<int> ParseCpuList(const std::string& list);

 private:
  NumaTopology();
  std::vector<std::vector<int>> node_cpus_;
};

/// Pins the calling thread to the cpus of one NUMA node for the lifetime of
/// the guard and restores the previous affinity mask on destruction. No-op
/// (but safe) on single-node machines and where sched_{get,set}affinity is
/// unavailable.
class ScopedNodeAffinity {
 public:
  explicit ScopedNodeAffinity(size_t node);
  ~ScopedNodeAffinity();

  ScopedNodeAffinity(const ScopedNodeAffinity&) = delete;
  ScopedNodeAffinity& operator=(const ScopedNodeAffinity&) = delete;

  /// True when the pin actually took effect (multi-node machine and the
  /// affinity syscall succeeded); tests assert the fallback never errors.
  bool pinned() const { return pinned_; }

 private:
  bool pinned_ = false;
  std::vector<unsigned char> saved_mask_;  // opaque cpu_set_t bytes
};

/// A page-aligned buffer of `count` T whose pages are first-touched in
/// node-contiguous stripes: stripe s (an equal 1/num_nodes slice, rounded to
/// page boundaries) is faulted in by a thread pinned to node s, so with a
/// first-touch NUMA policy the physical pages land on the socket that
/// ParallelForNuma will later run over that stripe. On single-node machines
/// this is an ordinary zero-initialized allocation. T must be trivially
/// copyable/destructible — the buffer never runs constructors beyond the
/// zero fill.
class NumaFirstTouchBytes {
 public:
  NumaFirstTouchBytes() = default;
  explicit NumaFirstTouchBytes(size_t bytes);
  ~NumaFirstTouchBytes();

  NumaFirstTouchBytes(NumaFirstTouchBytes&& other) noexcept;
  NumaFirstTouchBytes& operator=(NumaFirstTouchBytes&& other) noexcept;
  NumaFirstTouchBytes(const NumaFirstTouchBytes&) = delete;
  NumaFirstTouchBytes& operator=(const NumaFirstTouchBytes&) = delete;

  void* data() const { return data_; }
  size_t size() const { return bytes_; }

 private:
  void* data_ = nullptr;
  size_t bytes_ = 0;
  bool mmapped_ = false;
};

/// Typed wrapper over NumaFirstTouchBytes: a flat array of `count` Ts with
/// node-striped first-touch placement. Grows by whole reallocation (contents
/// are not preserved) — callers size it once per phase and reuse it.
template <typename T>
class NumaArray {
 public:
  NumaArray() = default;

  /// Ensures capacity for `count` elements; contents after a (re)allocation
  /// are zero bytes. Never shrinks.
  void EnsureSize(size_t count) {
    if (count <= capacity_) return;
    storage_ = NumaFirstTouchBytes(count * sizeof(T));
    capacity_ = count;
  }

  T* data() { return static_cast<T*>(storage_.data()); }
  const T* data() const { return static_cast<const T*>(storage_.data()); }
  size_t capacity() const { return capacity_; }
  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }

 private:
  NumaFirstTouchBytes storage_;
  size_t capacity_ = 0;
};

/// ParallelFor with socket-pinned shards: [begin, end) is cut into one
/// contiguous stripe per NUMA node, stripe boundaries rounded to multiples
/// of `grain` so the union of every stripe's chunks is exactly the chunk
/// grid ParallelFor would produce — chunk boundaries stay a pure function of
/// (begin, end, grain), never of the node count or thread count, so results
/// are bit-identical across machines whenever `fn` writes only chunk-owned
/// state. Stripe s runs as a plain ParallelFor whose workers pin themselves
/// to node s's cpus; an index space backed by a NumaFirstTouchBytes buffer
/// of matching extent is then read mostly node-locally (the grain-rounded
/// and page-rounded splits coincide up to one grain/page of slack). On
/// single-node machines this is exactly ParallelFor.
void ParallelForNuma(size_t threads, size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t, size_t)>& fn);

/// Domain tags keeping the counter-based streams of unrelated components
/// disjoint even when they share a pipeline seed and index range.
namespace rngdomain {
constexpr uint64_t kWalk = 0xA11CE001;
constexpr uint64_t kWalkShuffle = 0xA11CE002;
constexpr uint64_t kWord2Vec = 0xA11CE003;
constexpr uint64_t kForest = 0xA11CE004;
constexpr uint64_t kGridSearch = 0xA11CE005;
constexpr uint64_t kWord2VecDet = 0xA11CE006;
constexpr uint64_t kDatagenGraph = 0xA11CE007;
}  // namespace rngdomain

/// Derives an independent 64-bit seed for task `index` of `domain` from a
/// base seed, via chained SplitMix64 finalizers. Pure function: the stream for
/// (seed, domain, index) never depends on how many tasks run concurrently.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t domain, uint64_t index);

/// Convenience: an Rng positioned at the start of stream (seed, domain, index).
inline Rng StreamRng(uint64_t seed, uint64_t domain, uint64_t index) {
  return Rng(DeriveStreamSeed(seed, domain, index));
}

}  // namespace leva

#endif  // LEVA_COMMON_PARALLEL_H_
