#ifndef LEVA_COMMON_IO_H_
#define LEVA_COMMON_IO_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/storage.h"

namespace leva {

/// CRC32C (Castagnoli) of `data`, chainable through `seed` (pass a previous
/// return value to extend the checksum over a new chunk). Software
/// slice-by-8; the same polynomial RocksDB/LevelDB frame their blocks with.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);
inline uint32_t Crc32c(std::string_view s, uint32_t seed = 0) {
  return Crc32c(s.data(), s.size(), seed);
}

/// An open file being written sequentially. Obtained from Env; every method
/// follows the Status idiom. Close() is idempotent; the destructor closes
/// without syncing (an abandoned temp file needs no durability).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  /// Appends `data` at the current end of the file.
  virtual Status Append(std::string_view data) = 0;
  /// fsync(): force written data to stable storage.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Minimal filesystem abstraction, in the RocksDB Env style: all snapshot
/// I/O goes through one of these so tests can substitute a
/// FaultInjectionEnv and prove crash safety mechanically. The default
/// implementation is POSIX.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates (truncating) `path` for sequential writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Opens `path` for appending, creating it if missing and preserving any
  /// existing contents. The write-ahead-log path: records accumulate across
  /// process lifetimes and only ever grow at the end.
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;

  /// Reads the whole of `path` into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// fsync() on a directory, making a prior rename within it durable.
  virtual Status SyncDir(const std::string& path) = 0;

  /// Maps the whole of `path` for read-only random access. The base
  /// implementation reads the file into a heap-backed MappedRegion — correct
  /// for any Env (fault-injection wrappers inherit it) but without page
  /// sharing; PosixEnv overrides it with a real mmap(2), so loading a
  /// snapshot touches only the pages actually read and N serving processes
  /// share one physical copy of the file's page-cache pages.
  virtual Result<std::shared_ptr<const MappedRegion>> NewMmapReadableFile(
      const std::string& path);

  /// The process-wide POSIX environment.
  static Env* Default();
};

/// Writes `contents` to `path` crash-atomically: the bytes go to
/// `path + ".tmp"`, are fsync'ed, the temp file is renamed over `path`, and
/// the parent directory is fsync'ed. A crash at any step leaves either the
/// old `path` (intact) or the new one — never a partial file under the
/// final name. The stale temp file a crash can leave behind is ignored by
/// readers and overwritten by the next save.
Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents);

/// AtomicWriteFile for content assembled as multiple chunks (e.g. a snapshot
/// manifest followed by page-aligned bulk arrays): every chunk is appended to
/// the same temp file in order, then fsync + rename + dir-sync as above. The
/// chunks never need to be concatenated in memory, so a multi-GB section can
/// be streamed straight out of the store that owns it.
Status AtomicWriteChunks(Env* env, const std::string& path,
                         std::span<const std::string_view> chunks);

/// Current resident set size of this process in bytes (VmRSS from
/// /proc/self/status), or 0 when unavailable. Used by the serving bench and
/// leva_cli to report the physical-memory cost of a model load.
size_t CurrentRssBytes();

/// Append-only binary serialization buffer. Fixed-width little-endian
/// integers; floating-point values are stored as their exact bit patterns,
/// so a round trip is bit-identical. Writes cannot fail (the buffer grows);
/// durability and framing are the caller's concern.
class BufferWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof v); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof v); }
  void PutFloat(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    PutU32(bits);
  }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    PutU64(bits);
  }
  /// Length-prefixed (u64) byte string.
  void PutString(std::string_view s) {
    PutU64(s.size());
    buf_.append(s.data(), s.size());
  }
  /// Raw bytes, no length prefix (caller frames them).
  void PutBytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  /// Appends zero bytes until size() is a multiple of `alignment` (a power
  /// of two) — how the snapshot writer pads bulk sections to page boundaries
  /// so they can be mapped directly.
  void AlignTo(size_t alignment) {
    buf_.append((alignment - buf_.size() % alignment) % alignment, '\0');
  }

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutFixed(const void* v, size_t n) {
    // Little-endian hosts (everything we target) append the bytes directly.
    buf_.append(static_cast<const char*>(v), n);
  }

  std::string buf_;
};

/// Cursor over a serialized buffer. Every Get validates the remaining length
/// first, so a truncated or corrupt buffer yields a descriptive
/// kInvalidArgument instead of reading past the end — length prefixes are
/// checked against the remaining bytes before any allocation, so a
/// corrupted length cannot trigger a huge allocation.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v) {
    LEVA_RETURN_IF_ERROR(Need(1, "u8"));
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }
  Status GetBool(bool* v) {
    uint8_t b;
    LEVA_RETURN_IF_ERROR(GetU8(&b));
    if (b > 1) {
      return Status::InvalidArgument("corrupt bool value " + std::to_string(b));
    }
    *v = b != 0;
    return Status::OK();
  }
  Status GetU32(uint32_t* v) { return GetFixed(v, sizeof *v, "u32"); }
  Status GetU64(uint64_t* v) { return GetFixed(v, sizeof *v, "u64"); }
  Status GetFloat(float* v) {
    uint32_t bits;
    LEVA_RETURN_IF_ERROR(GetU32(&bits));
    std::memcpy(v, &bits, sizeof *v);
    return Status::OK();
  }
  Status GetDouble(double* v) {
    uint64_t bits;
    LEVA_RETURN_IF_ERROR(GetU64(&bits));
    std::memcpy(v, &bits, sizeof *v);
    return Status::OK();
  }
  Status GetString(std::string* s) {
    uint64_t n;
    LEVA_RETURN_IF_ERROR(GetU64(&n));
    LEVA_RETURN_IF_ERROR(Need(n, "string body"));
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  /// A view of the next `n` raw bytes (no copy); invalidated with `data`.
  Status GetBytes(size_t n, std::string_view* out) {
    LEVA_RETURN_IF_ERROR(Need(n, "raw bytes"));
    *out = data_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  Status Need(uint64_t n, const char* what) {
    if (n > remaining()) {
      return Status::InvalidArgument(
          "truncated buffer: need " + std::to_string(n) + " byte(s) for " +
          what + " at offset " + std::to_string(pos_) + ", have " +
          std::to_string(remaining()));
    }
    return Status::OK();
  }
  Status GetFixed(void* v, size_t n, const char* what) {
    LEVA_RETURN_IF_ERROR(Need(n, what));
    std::memcpy(v, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace leva

#endif  // LEVA_COMMON_IO_H_
