#ifndef LEVA_COMMON_RESULT_H_
#define LEVA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace leva {

/// A value-or-Status container (the StatusOr / arrow::Result idiom).
///
/// Usage:
///   Result<Graph> g = BuildGraph(db);
///   if (!g.ok()) return g.status();
///   Use(*g);
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so `return value;` and
  /// `return Status::...;` both work.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {   // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when holding an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace leva

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define LEVA_ASSIGN_OR_RETURN(lhs, expr)          \
  LEVA_ASSIGN_OR_RETURN_IMPL(                     \
      LEVA_CONCAT_NAME(_leva_result_, __LINE__), lhs, expr)

#define LEVA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define LEVA_CONCAT_NAME(a, b) LEVA_CONCAT_NAME_INNER(a, b)
#define LEVA_CONCAT_NAME_INNER(a, b) a##b

#endif  // LEVA_COMMON_RESULT_H_
