#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace leva {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+.
  double value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

bool LooksLikeMissingToken(std::string_view s) {
  const std::string t = ToLower(Trim(s));
  return t.empty() || t == "?" || t == "null" || t == "n/a" || t == "na" ||
         t == "none" || t == "nan" || t == "-";
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

namespace {

// Days since 1970-01-01 for a proleptic-Gregorian civil date (Howard
// Hinnant's days_from_civil).
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

bool IsLeap(int64_t y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

unsigned DaysInMonth(int64_t y, unsigned m) {
  constexpr unsigned kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

std::optional<int64_t> ParseIsoDatetime(std::string_view s) {
  s = Trim(s);
  int year = 0;
  int month = 0;
  int day = 0;
  int hour = 0;
  int minute = 0;
  int second = 0;
  char sep = 0;
  const std::string str(s);
  int consumed = 0;
  int fields = std::sscanf(str.c_str(), "%4d-%2d-%2d%c%2d:%2d:%2d%n", &year,
                           &month, &day, &sep, &hour, &minute, &second,
                           &consumed);
  if (fields == 7) {
    if (sep != ' ' && sep != 'T') return std::nullopt;
    if (static_cast<size_t>(consumed) != str.size()) return std::nullopt;
  } else {
    consumed = 0;
    fields = std::sscanf(str.c_str(), "%4d-%2d-%2d%n", &year, &month, &day,
                         &consumed);
    if (fields != 3 || static_cast<size_t>(consumed) != str.size()) {
      return std::nullopt;
    }
    hour = minute = second = 0;
  }
  if (month < 1 || month > 12 || day < 1 ||
      day > static_cast<int>(DaysInMonth(year, static_cast<unsigned>(month))) ||
      hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 60) {
    return std::nullopt;
  }
  const int64_t days = DaysFromCivil(year, static_cast<unsigned>(month),
                                     static_cast<unsigned>(day));
  return days * 86400 + hour * 3600 + minute * 60 + second;
}

std::string FormatIsoDatetime(int64_t epoch_seconds) {
  int64_t days = epoch_seconds / 86400;
  int64_t rem = epoch_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  // civil_from_days (Hinnant).
  const int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  const int64_t year = y + (m <= 2);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u %02lld:%02lld:%02lld",
                static_cast<long long>(year), m, d,
                static_cast<long long>(rem / 3600),
                static_cast<long long>((rem / 60) % 60),
                static_cast<long long>(rem % 60));
  return buf;
}

}  // namespace leva
