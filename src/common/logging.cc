#include "common/logging.h"

namespace leva {
namespace {
LogLevel g_level = LogLevel::kWarning;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {
bool ShouldLog(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level);
}
}  // namespace internal_logging

}  // namespace leva
