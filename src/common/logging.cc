#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <ctime>
#include <string>

#ifdef __linux__
#include <sys/syscall.h>
#include <unistd.h>
#else
#include <functional>
#include <thread>
#endif

namespace leva {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

unsigned long CurrentThreadId() {
#ifdef __linux__
  return static_cast<unsigned long>(::syscall(SYS_gettid));
#else
  return static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
#endif
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}
void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {
bool ShouldLog(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void LogRecord(const char* level_name, const char* fmt, ...) {
  // Prefix: "[Info 12:34:56.789 1234] ".
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  struct tm tm_buf;
  localtime_r(&ts.tv_sec, &tm_buf);
  char prefix[64];
  const int prefix_len = std::snprintf(
      prefix, sizeof prefix, "[%s %02d:%02d:%02d.%03ld %lu] ", level_name,
      tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec, ts.tv_nsec / 1000000,
      CurrentThreadId());

  // Render the message once to learn its length, into a stack buffer that
  // covers virtually every record; spill to the heap for the rare long one.
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  char stack_msg[512];
  const int msg_len = std::vsnprintf(stack_msg, sizeof stack_msg, fmt, args);
  va_end(args);
  if (msg_len < 0) {
    va_end(args_copy);
    return;
  }

  std::string line;
  line.reserve(static_cast<size_t>(prefix_len) + static_cast<size_t>(msg_len) +
               1);
  line.assign(prefix, static_cast<size_t>(prefix_len));
  if (static_cast<size_t>(msg_len) < sizeof stack_msg) {
    line.append(stack_msg, static_cast<size_t>(msg_len));
  } else {
    std::string big(static_cast<size_t>(msg_len) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, args_copy);
    big.resize(static_cast<size_t>(msg_len));
    line.append(big);
  }
  va_end(args_copy);
  line.push_back('\n');

  // One call, one record: stdio locks the stream per call, so concurrent
  // threads emit whole lines, never interleaved fragments.
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace internal_logging

}  // namespace leva
