#ifndef LEVA_COMMON_STATUS_H_
#define LEVA_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace leva {

/// Error categories used throughout Leva. Mirrors the RocksDB/Arrow style of
/// exception-free error propagation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kNotImplemented,
  kIOError,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. All fallible Leva APIs return a
/// Status (or a Result<T>, see result.h) instead of throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace leva

/// Propagates a non-OK Status from the enclosing function.
#define LEVA_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::leva::Status _leva_status = (expr);         \
    if (!_leva_status.ok()) return _leva_status;  \
  } while (0)

#endif  // LEVA_COMMON_STATUS_H_
