#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace leva {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::HardwareConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool =
      new ThreadPool(std::max<size_t>(2, HardwareConcurrency()));
  return *pool;
}

size_t ResolveThreads(size_t requested) {
  return requested == 0 ? ThreadPool::HardwareConcurrency() : requested;
}

namespace {

// Completion state shared between the caller and borrowed pool workers.
struct ForState {
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};
  size_t chunks = 0;
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first exception, guarded by mu
};

}  // namespace

void ParallelFor(size_t threads, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  const size_t count = end - begin;
  grain = std::max<size_t>(1, grain);
  const size_t chunks = (count + grain - 1) / grain;
  threads = std::max<size_t>(1, ResolveThreads(threads));

  // The chunk layout below is identical for every thread count; only the
  // assignment of chunks to threads varies, and chunks are independent.
  if (threads == 1 || chunks == 1) {
    for (size_t c = 0; c < chunks; ++c) {
      const size_t b = begin + c * grain;
      fn(b, std::min(end, b + grain));
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->chunks = chunks;
  auto work = [state, begin, end, grain, &fn] {
    for (;;) {
      const size_t c = state->next_chunk.fetch_add(1);
      if (c >= state->chunks) return;
      const size_t b = begin + c * grain;
      try {
        fn(b, std::min(end, b + grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->chunks_done.fetch_add(1) + 1 == state->chunks) {
        state->done_cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(threads, chunks) - 1;
  for (size_t h = 0; h < helpers; ++h) {
    // Helpers copy `state` but reference `fn`; the caller blocks below until
    // every chunk completes, so `fn` outlives them. A helper that only gets
    // scheduled afterwards finds no chunk left and exits immediately.
    ThreadPool::Shared().Submit(work);
  }
  work();  // the caller drains chunks too — no idle waiting on a busy pool

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] {
    return state->chunks_done.load() == state->chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t domain, uint64_t index) {
  auto mix = [](uint64_t z) {
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  return mix(mix(mix(seed) ^ domain) ^ index);
}

}  // namespace leva
