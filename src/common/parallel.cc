#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace leva {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::HardwareConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool =
      new ThreadPool(std::max<size_t>(2, HardwareConcurrency()));
  return *pool;
}

size_t ResolveThreads(size_t requested) {
  return requested == 0 ? ThreadPool::HardwareConcurrency() : requested;
}

namespace {

// Completion state shared between the caller and borrowed pool workers.
struct ForState {
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};
  size_t chunks = 0;
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first exception, guarded by mu
};

}  // namespace

void ParallelFor(size_t threads, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  const size_t count = end - begin;
  grain = std::max<size_t>(1, grain);
  const size_t chunks = (count + grain - 1) / grain;
  threads = std::max<size_t>(1, ResolveThreads(threads));

  // The chunk layout below is identical for every thread count; only the
  // assignment of chunks to threads varies, and chunks are independent.
  if (threads == 1 || chunks == 1) {
    for (size_t c = 0; c < chunks; ++c) {
      const size_t b = begin + c * grain;
      fn(b, std::min(end, b + grain));
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->chunks = chunks;
  auto work = [state, begin, end, grain, &fn] {
    for (;;) {
      const size_t c = state->next_chunk.fetch_add(1);
      if (c >= state->chunks) return;
      const size_t b = begin + c * grain;
      try {
        fn(b, std::min(end, b + grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->chunks_done.fetch_add(1) + 1 == state->chunks) {
        state->done_cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(threads, chunks) - 1;
  for (size_t h = 0; h < helpers; ++h) {
    // Helpers copy `state` but reference `fn`; the caller blocks below until
    // every chunk completes, so `fn` outlives them. A helper that only gets
    // scheduled afterwards finds no chunk left and exits immediately.
    ThreadPool::Shared().Submit(work);
  }
  work();  // the caller drains chunks too — no idle waiting on a busy pool

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] {
    return state->chunks_done.load() == state->chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

// ---------------------------------------------------------------------------
// NUMA-aware placement
// ---------------------------------------------------------------------------

std::vector<int> NumaTopology::ParseCpuList(const std::string& list) {
  // sysfs cpulist syntax: comma-separated decimal ids and inclusive ranges,
  // e.g. "0-3,8,10-11". Anything malformed yields an empty vector and the
  // caller falls back to the single-node topology.
  std::vector<int> cpus;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t end = list.find(',', pos);
    if (end == std::string::npos) end = list.size();
    const std::string item = list.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const size_t dash = item.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(item));
      } else {
        const int lo = std::stoi(item.substr(0, dash));
        const int hi = std::stoi(item.substr(dash + 1));
        if (hi < lo || hi - lo > 4095) return {};
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      return {};
    }
  }
  return cpus;
}

NumaTopology::NumaTopology() {
#if defined(__linux__)
  // Probe node directories in order; a gap ends the scan (sysfs numbers
  // online nodes contiguously on every machine we care about, and a missing
  // node0 means the interface is absent entirely).
  for (size_t node = 0;; ++node) {
    const std::string path = "/sys/devices/system/node/node" +
                             std::to_string(node) + "/cpulist";
    std::ifstream in(path);
    if (!in.is_open()) break;
    std::string list;
    std::getline(in, list);
    std::vector<int> cpus = ParseCpuList(list);
    // Memory-only nodes (CXL, pmem) expose an empty cpulist; walkers cannot
    // run there, so they are skipped rather than given an empty shard.
    if (!cpus.empty()) node_cpus_.push_back(std::move(cpus));
  }
#endif
  if (node_cpus_.empty()) {
    // Fallback pseudo-node: every cpu id we can name. Affinity guards treat
    // the single-node case as a no-op, so the ids only need to be plausible.
    std::vector<int> all;
    const size_t n = ThreadPool::HardwareConcurrency();
    all.reserve(n);
    for (size_t c = 0; c < n; ++c) all.push_back(static_cast<int>(c));
    node_cpus_.push_back(std::move(all));
  }
}

const NumaTopology& NumaTopology::Get() {
  static const NumaTopology* topo = new NumaTopology();
  return *topo;
}

ScopedNodeAffinity::ScopedNodeAffinity(size_t node) {
#if defined(__linux__)
  const NumaTopology& topo = NumaTopology::Get();
  if (!topo.multi_node() || node >= topo.num_nodes()) return;
  cpu_set_t saved;
  CPU_ZERO(&saved);
  if (sched_getaffinity(0, sizeof(saved), &saved) != 0) return;
  cpu_set_t target;
  CPU_ZERO(&target);
  for (int cpu : topo.cpus(node)) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &target);
  }
  if (CPU_COUNT(&target) == 0) return;
  if (sched_setaffinity(0, sizeof(target), &target) != 0) return;
  saved_mask_.resize(sizeof(saved));
  std::memcpy(saved_mask_.data(), &saved, sizeof(saved));
  pinned_ = true;
#else
  (void)node;
#endif
}

ScopedNodeAffinity::~ScopedNodeAffinity() {
#if defined(__linux__)
  if (!pinned_) return;
  cpu_set_t saved;
  std::memcpy(&saved, saved_mask_.data(), sizeof(saved));
  sched_setaffinity(0, sizeof(saved), &saved);
#endif
}

namespace {

constexpr size_t kPageBytes = 4096;

// Node-contiguous stripe [begin, end) for `node` of `num_nodes`, boundaries
// rounded down to `align` multiples (except the final end). Shared by the
// first-touch fill and ParallelForNuma so placement and execution agree.
std::pair<size_t, size_t> NodeStripe(size_t begin, size_t end, size_t node,
                                     size_t num_nodes, size_t align) {
  const size_t count = end - begin;
  const size_t per = count / num_nodes;
  auto cut = [&](size_t k) {
    if (k == 0) return begin;
    if (k >= num_nodes) return end;
    return begin + (per * k) / align * align;
  };
  return {cut(node), cut(node + 1)};
}

}  // namespace

NumaFirstTouchBytes::NumaFirstTouchBytes(size_t bytes) : bytes_(bytes) {
  if (bytes == 0) return;
#if defined(__linux__)
  void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    data_ = p;
    mmapped_ = true;
  }
#endif
  if (data_ == nullptr) {
    // Portable fallback: page-aligned heap memory, zeroed below. Placement
    // is then whatever the allocator already faulted, which is the best a
    // platform without mmap control offers.
    data_ = ::operator new(bytes, std::align_val_t(kPageBytes));
  }
  const NumaTopology& topo = NumaTopology::Get();
  const size_t nodes = topo.num_nodes();
  if (!topo.multi_node()) {
    if (!mmapped_) std::memset(data_, 0, bytes);
    // Fresh anonymous pages are already zero; fault them lazily on first
    // real use instead of paying an eager O(bytes) touch here.
    return;
  }
  // First-touch each node's stripe from a thread pinned to that node, in
  // parallel: the fault (not the allocation) decides the backing node.
  ParallelFor(nodes, 0, nodes, 1, [&](size_t b, size_t e) {
    for (size_t node = b; node < e; ++node) {
      const auto [lo, hi] = NodeStripe(0, bytes, node, nodes, kPageBytes);
      if (lo >= hi) continue;
      ScopedNodeAffinity pin(node);
      std::memset(static_cast<char*>(data_) + lo, 0, hi - lo);
    }
  });
}

NumaFirstTouchBytes::~NumaFirstTouchBytes() {
  if (data_ == nullptr) return;
#if defined(__linux__)
  if (mmapped_) {
    munmap(data_, bytes_);
    return;
  }
#endif
  ::operator delete(data_, std::align_val_t(kPageBytes));
}

NumaFirstTouchBytes::NumaFirstTouchBytes(NumaFirstTouchBytes&& other) noexcept
    : data_(other.data_), bytes_(other.bytes_), mmapped_(other.mmapped_) {
  other.data_ = nullptr;
  other.bytes_ = 0;
  other.mmapped_ = false;
}

NumaFirstTouchBytes& NumaFirstTouchBytes::operator=(
    NumaFirstTouchBytes&& other) noexcept {
  if (this == &other) return *this;
  this->~NumaFirstTouchBytes();
  data_ = other.data_;
  bytes_ = other.bytes_;
  mmapped_ = other.mmapped_;
  other.data_ = nullptr;
  other.bytes_ = 0;
  other.mmapped_ = false;
  return *this;
}

namespace {

// Per-node chunk queue of a ParallelForNuma call. Chunks inside a stripe lie
// on the global grain grid (see NodeStripe), so the union over stripes is
// exactly ParallelFor's chunk layout.
struct NumaStripe {
  size_t begin = 0;
  size_t end = 0;
  size_t chunks = 0;
  std::atomic<size_t> next{0};
};

struct NumaForState {
  std::unique_ptr<NumaStripe[]> stripes;
  size_t num_stripes = 0;
  size_t total_chunks = 0;
  std::atomic<size_t> chunks_done{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first exception, guarded by mu
};

}  // namespace

void ParallelForNuma(size_t threads, size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  const NumaTopology& topo = NumaTopology::Get();
  const size_t nodes = topo.num_nodes();
  grain = std::max<size_t>(1, grain);
  threads = std::max<size_t>(1, ResolveThreads(threads));
  // Single-node machines and ranges too small to give every node a chunk
  // take the plain path — same chunk grid, no pinning overhead.
  if (!topo.multi_node() || (end - begin) < grain * nodes || threads < nodes) {
    ParallelFor(threads, begin, end, grain, fn);
    return;
  }

  auto state = std::make_shared<NumaForState>();
  state->stripes = std::make_unique<NumaStripe[]>(nodes);
  state->num_stripes = nodes;
  for (size_t node = 0; node < nodes; ++node) {
    const auto [lo, hi] = NodeStripe(begin, end, node, nodes, grain);
    NumaStripe& s = state->stripes[node];
    s.begin = lo;
    s.end = hi;
    s.chunks = lo < hi ? (hi - lo + grain - 1) / grain : 0;
    state->total_chunks += s.chunks;
  }

  // Each worker pins itself to its home node and drains that node's stripe;
  // once the home stripe is dry it steals from the other stripes (still
  // pinned — remote reads beat idle cores). A worker scheduled only after
  // the caller returned finds every cursor exhausted and exits without ever
  // touching `fn`, which is why `fn` may be captured by reference.
  auto run = [state, grain, &fn](size_t home) {
    for (size_t off = 0; off < state->num_stripes; ++off) {
      NumaStripe& s = state->stripes[(home + off) % state->num_stripes];
      for (;;) {
        const size_t c = s.next.fetch_add(1);
        if (c >= s.chunks) break;
        const size_t b = s.begin + c * grain;
        try {
          fn(b, std::min(s.end, b + grain));
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mu);
          if (!state->error) state->error = std::current_exception();
        }
        if (state->chunks_done.fetch_add(1) + 1 == state->total_chunks) {
          state->done_cv.notify_all();
        }
      }
    }
  };

  const size_t workers = std::min(threads, state->total_chunks);
  for (size_t w = 1; w < workers; ++w) {
    ThreadPool::Shared().Submit([state, run, w] {
      ScopedNodeAffinity pin(w % state->num_stripes);
      run(w % state->num_stripes);
    });
  }
  {
    ScopedNodeAffinity pin(0);
    run(0);
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] {
    return state->chunks_done.load() == state->total_chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t domain, uint64_t index) {
  auto mix = [](uint64_t z) {
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  return mix(mix(mix(seed) ^ domain) ^ index);
}

}  // namespace leva
