#ifndef LEVA_COMMON_SIMD_H_
#define LEVA_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

// Shared SIMD plumbing for the hot kernels (featurize gather, skip-gram
// training): a multi-versioning macro, a prefetch shim, and the inline
// skip-gram primitives.
//
// LEVA_TARGET_CLONES: runtime-dispatched function multi-versioning. Apply it
// to the HOT OUTER FUNCTION (the loop that calls the kernels below), not to
// the kernels themselves: the kernels are plain `inline`, so each clone
// inlines them and compiles their loops with its own ISA — the "avx2" clone
// gets 256-bit vmulpd/vaddpd with zero per-call dispatch overhead.
//
// Bit-exactness contract: the "avx2" clone only enables element-wise
// operations — correctly-rounded IEEE mul/add, so it produces the same bits
// as the "default" clone. FMA-capable targets (avx512f, or avx2+fma) are
// deliberately excluded: contracting mul+add into a single-rounding fma
// would change the bits, and the differential tests pin bit-identity against
// the scalar reference paths. Reductions (Dot below) are written in strict
// source order — without -ffast-math the compiler cannot reassociate them,
// so every clone rounds them identically too.
//
// ThreadSanitizer exclusion: target_clones dispatches through an IFUNC whose
// resolver runs during relocation, before the TSan runtime is initialized —
// any instrumented binary segfaults at startup. Under LEVA_SANITIZE=thread
// the macro collapses to the single "default" version, which is the code
// path TSan needs to race-check anyway.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define LEVA_TARGET_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define LEVA_TARGET_CLONES
#endif

#if defined(__GNUC__)
#define LEVA_PREFETCH(p) __builtin_prefetch(p)
#else
#define LEVA_PREFETCH(p)
#endif

// Marks a function whose data races are by design — the Hogwild SGD path
// updates weight rows lock-free and tolerates collisions (Recht et al.,
// NIPS'11). Only used on those kernels, so the deterministic trainer and the
// rest of the execution layer stay fully TSan-instrumented; code inlined into
// an annotated function is likewise uninstrumented, which covers the inline
// kernels above when they land in a Hogwild caller.
#if defined(__SANITIZE_THREAD__)
#define LEVA_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define LEVA_NO_SANITIZE_THREAD
#endif

// The kernels below must actually inline for two reasons: the target_clones
// caller pattern (each clone recompiles the kernel loops with its ISA) and
// the TSan exemption above (instrumentation is decided per containing
// function, so a kernel only escapes it when inlined into an annotated
// caller — out-of-line it would be instrumented even in Hogwild, or worse,
// exempted everywhere if annotated directly). always_inline holds at -O0,
// which is how sanitizer builds compile.
#if defined(__GNUC__)
#define LEVA_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define LEVA_ALWAYS_INLINE inline
#endif

namespace leva {
namespace simd {

// None of these kernels may use FMA contraction or reassociation: each is
// the bit-exact element-wise form of a scalar reference loop (see above).
// The two-stream skip-gram updates vectorize because node and context rows
// come from distinct matrices (never aliased) and the gradient buffer is
// caller-private — stated to the compiler via the __restrict locals.

/// Strict-order dot product sum_j a[j]*b[j]. The accumulation order is the
/// plain source order at every ISA level, so the result is bit-identical to
/// the scalar reference loop.
LEVA_ALWAYS_INLINE double Dot(const double* a, const double* b, size_t n) {
  double dot = 0.0;
  for (size_t j = 0; j < n; ++j) dot += a[j] * b[j];
  return dot;
}

/// Strict-order dot products of `c` against `nt` DISTINCT rows:
///   out[t] = sum_j c[j] * rows[t][j]
/// with each sum accumulated in plain source order, so every out[t] is
/// bit-identical to Dot(c, rows[t], n). Rows are processed in interleaved
/// groups (6/4/2-wide) whose serial FP-add chains overlap in the pipeline:
/// a single dot's chain of dependent adds is the latency bottleneck of the
/// skip-gram loop, and six independent chains run in roughly the time of
/// one. Callers must guarantee the rows are pairwise distinct (aliased rows
/// would still produce the same bits here, but the skip-gram caller relies
/// on distinctness so later row UPDATES cannot feed earlier dots).
LEVA_ALWAYS_INLINE void DotBatch(const double* c, double* const* rows, size_t nt,
                     size_t n, double* out) {
  size_t t = 0;
  for (; t + 6 <= nt; t += 6) {
    const double* __restrict r0 = rows[t];
    const double* __restrict r1 = rows[t + 1];
    const double* __restrict r2 = rows[t + 2];
    const double* __restrict r3 = rows[t + 3];
    const double* __restrict r4 = rows[t + 4];
    const double* __restrict r5 = rows[t + 5];
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0, s4 = 0.0, s5 = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double cj = c[j];
      s0 += cj * r0[j];
      s1 += cj * r1[j];
      s2 += cj * r2[j];
      s3 += cj * r3[j];
      s4 += cj * r4[j];
      s5 += cj * r5[j];
    }
    out[t] = s0;
    out[t + 1] = s1;
    out[t + 2] = s2;
    out[t + 3] = s3;
    out[t + 4] = s4;
    out[t + 5] = s5;
  }
  for (; t + 4 <= nt; t += 4) {
    const double* __restrict r0 = rows[t];
    const double* __restrict r1 = rows[t + 1];
    const double* __restrict r2 = rows[t + 2];
    const double* __restrict r3 = rows[t + 3];
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double cj = c[j];
      s0 += cj * r0[j];
      s1 += cj * r1[j];
      s2 += cj * r2[j];
      s3 += cj * r3[j];
    }
    out[t] = s0;
    out[t + 1] = s1;
    out[t + 2] = s2;
    out[t + 3] = s3;
  }
  for (; t + 2 <= nt; t += 2) {
    const double* __restrict r0 = rows[t];
    const double* __restrict r1 = rows[t + 1];
    double s0 = 0.0, s1 = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double cj = c[j];
      s0 += cj * r0[j];
      s1 += cj * r1[j];
    }
    out[t] = s0;
    out[t + 1] = s1;
  }
  for (; t < nt; ++t) out[t] = Dot(c, rows[t], n);
}

/// First (positive-sample) step of a skip-gram pair:
///   grad[j]   = g * target[j] + 0.0;
///   target[j] += g * center[j];
/// The `+ 0.0` reproduces the reference path's zeroed-buffer accumulation
/// (`0.0 + x` normalizes -0.0 exactly like the fill-then-add it replaces)
/// without paying a separate std::fill pass over the gradient buffer.
LEVA_ALWAYS_INLINE void SkipGramInit(double g, const double* center, double* target,
                         double* grad, size_t n) {
  const double* __restrict c = center;
  double* __restrict t = target;
  double* __restrict d = grad;
  for (size_t j = 0; j < n; ++j) {
    d[j] = g * t[j] + 0.0;
    t[j] += g * c[j];
  }
}

/// Negative-sample step of a skip-gram pair:
///   grad[j]   += g * target[j];
///   target[j] += g * center[j];
LEVA_ALWAYS_INLINE void SkipGramAccum(double g, const double* center, double* target,
                          double* grad, size_t n) {
  const double* __restrict c = center;
  double* __restrict t = target;
  double* __restrict d = grad;
  for (size_t j = 0; j < n; ++j) {
    d[j] += g * t[j];
    t[j] += g * c[j];
  }
}

/// x[j] += d[j]. Applies the accumulated pair gradient to the center vector.
LEVA_ALWAYS_INLINE void VecAdd(double* x, const double* d, size_t n) {
  double* __restrict out = x;
  const double* __restrict in = d;
  for (size_t j = 0; j < n; ++j) out[j] += in[j];
}

/// x[j] += a[j] - b[j]. Merges one shard's weight delta (local minus
/// round-start snapshot) into the shared matrix in the deterministic
/// parallel trainer.
LEVA_ALWAYS_INLINE void VecAddDelta(double* x, const double* a, const double* b,
                        size_t n) {
  double* __restrict out = x;
  const double* __restrict cur = a;
  const double* __restrict orig = b;
  for (size_t j = 0; j < n; ++j) out[j] += cur[j] - orig[j];
}

// ---------------------------------------------------------------------------
// Quantized-tier primitives (storage tiers of the embedding matrix; see
// DESIGN.md "Quantized serving"). bf16 is the upper 16 bits of an IEEE fp32:
// widening bf16 -> fp32 -> fp64 is exact (a bit shift plus a lossless float
// promotion), so only the encode direction rounds. int8 rows carry a per-row
// scale: value = scale * q with q in [-127, 127]. The fused gather kernels
// below compute `acc[j] += w * (scale * q[j])` with exactly the rounding
// sequence of the reference path (dequantize the element, then weight it,
// then accumulate) — folding `w * scale` into one factor would round
// differently and break the fast-vs-legacy bit-parity tests.

/// Widens a bf16 pattern to fp32. Exact: bf16 is a truncated fp32.
LEVA_ALWAYS_INLINE float Bf16ToFloat(uint16_t b) {
  const uint32_t u = static_cast<uint32_t>(b) << 16;
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

/// Narrows fp32 to bf16 with round-to-nearest-even on the dropped 16 bits.
/// Callers feed finite values only (the embedding store rejects NaN/Inf);
/// for finite inputs the carry out of the rounding add is the correct
/// exponent increment, so no special cases are needed.
LEVA_ALWAYS_INLINE uint16_t Bf16FromFloat(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  u += 0x7FFFu + ((u >> 16) & 1u);
  return static_cast<uint16_t>(u >> 16);
}

/// acc[j] += w * widen(src[j]) over a bf16 row. The widen is exact, so each
/// element costs the same two roundings (mul, add) as the fp64 gather.
LEVA_ALWAYS_INLINE void GatherAddBf16(double* acc, const uint16_t* src, double w,
                                      size_t n) {
  double* __restrict a = acc;
  const uint16_t* __restrict s = src;
  for (size_t j = 0; j < n; ++j) {
    a[j] += w * static_cast<double>(Bf16ToFloat(s[j]));
  }
}

/// acc[j] += w * (scale * src[j]) over an int8 row with per-row scale.
/// `scale * q` is rounded first (matching the reference dequantize-then-
/// weight order), then weighted, then accumulated — do not reassociate.
LEVA_ALWAYS_INLINE void DequantGatherAdd(double* acc, const int8_t* src,
                                         double scale, double w, size_t n) {
  double* __restrict a = acc;
  const int8_t* __restrict s = src;
  for (size_t j = 0; j < n; ++j) {
    a[j] += w * (scale * static_cast<double>(s[j]));
  }
}

/// out[j] = widen(src[j]): materializes one bf16 row as fp64 (exact).
LEVA_ALWAYS_INLINE void DequantRowBf16(double* out, const uint16_t* src,
                                       size_t n) {
  double* __restrict o = out;
  const uint16_t* __restrict s = src;
  for (size_t j = 0; j < n; ++j) o[j] = static_cast<double>(Bf16ToFloat(s[j]));
}

/// out[j] = scale * src[j]: materializes one int8 row as fp64. One rounding
/// per element — the same bits every consumer of a dequantized row sees.
LEVA_ALWAYS_INLINE void DequantRowI8(double* out, const int8_t* src,
                                     double scale, size_t n) {
  double* __restrict o = out;
  const int8_t* __restrict s = src;
  for (size_t j = 0; j < n; ++j) o[j] = scale * static_cast<double>(s[j]);
}

}  // namespace simd
}  // namespace leva

#endif  // LEVA_COMMON_SIMD_H_
