#include "common/fault_injection.h"

#include <utility>

namespace leva {
namespace {

Status InjectedError(const char* what) {
  return Status::IOError(std::string("injected fault: ") + what);
}

}  // namespace

/// Wraps the real file so Append/Sync/Close consult the env's fault plan.
class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(std::unique_ptr<WritableFile> base,
                             FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(std::string_view data) override {
    if (env_->ShouldFail(FaultInjectionEnv::OpKind::kAppend)) {
      if (env_->append_fault_ == FaultInjectionEnv::AppendFault::kTornWrite) {
        // A torn write: the kernel persisted a prefix of the buffer before
        // the "crash". Half the bytes land, then the failure surfaces.
        (void)base_->Append(data.substr(0, data.size() / 2));
      }
      return InjectedError("write");
    }
    return base_->Append(data);
  }

  Status Sync() override {
    if (env_->ShouldFail(FaultInjectionEnv::OpKind::kSync)) {
      return InjectedError("fsync");
    }
    return base_->Sync();
  }

  Status Close() override {
    if (env_->ShouldFail(FaultInjectionEnv::OpKind::kClose)) {
      return InjectedError("close");
    }
    return base_->Close();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

bool FaultInjectionEnv::ShouldFail(OpKind kind) {
  if (crashed_) return true;
  const size_t k = static_cast<size_t>(kind);
  ++ops_[k];
  if (fail_at_[k] != 0 && ops_[k] == fail_at_[k]) {
    crashed_ = true;
    return true;
  }
  return false;
}

bool FaultInjectionEnv::ShouldFailRead() {
  const size_t k = static_cast<size_t>(OpKind::kRead);
  ++ops_[k];
  if (fail_at_[k] != 0 && ops_[k] == fail_at_[k]) {
    crashed_ = true;
    return true;
  }
  return false;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  if (crashed_) return InjectedError("open after crash");
  LEVA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                        base_->NewWritableFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultInjectionWritableFile(std::move(base), this));
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewAppendableFile(
    const std::string& path) {
  if (crashed_) return InjectedError("open after crash");
  LEVA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                        base_->NewAppendableFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultInjectionWritableFile(std::move(base), this));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  if (ShouldFailRead()) return InjectedError("read");
  return base_->ReadFileToString(path);
}

Result<std::shared_ptr<const MappedRegion>>
FaultInjectionEnv::NewMmapReadableFile(const std::string& path) {
  // Reads pass through even after a write crash (the "restarted" process
  // maps the file fresh) but are themselves injectable (kRead). They go via
  // a heap-backed region so the bad-page mode can corrupt the served bytes
  // without touching the file on disk.
  if (ShouldFailRead()) return InjectedError("read for mapping");
  LEVA_ASSIGN_OR_RETURN(std::string bytes, base_->ReadFileToString(path));
  if (bad_page_ != kNoBadPage) {
    const size_t pos = bad_page_ * bad_page_size_;
    if (pos < bytes.size()) {
      bytes[pos] = static_cast<char>(bytes[pos] ^ 0x10);
    }
  }
  return MappedRegion::FromString(std::move(bytes));
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (ShouldFail(OpKind::kRename)) return InjectedError("rename");
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  // Cleanup of an abandoned temp file is best-effort in the protocol and a
  // crashed process cannot run it; model that by failing after a crash but
  // not counting deletes as an injectable step of their own.
  if (crashed_) return InjectedError("unlink after crash");
  return base_->DeleteFile(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  if (ShouldFail(OpKind::kSyncDir)) return InjectedError("fsync directory");
  return base_->SyncDir(path);
}

}  // namespace leva
