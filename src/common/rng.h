#ifndef LEVA_COMMON_RNG_H_
#define LEVA_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace leva {

/// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
/// Every stochastic component in Leva draws from an explicitly passed Rng so
/// experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller.
  double Normal() {
    double u1 = Uniform();
    while (u1 <= 1e-300) u1 = Uniform();
    const double u2 = Uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Returns a random permutation of {0, ..., n-1}.
  std::vector<size_t> Permutation(size_t n) {
    std::vector<size_t> p(n);
    for (size_t i = 0; i < n; ++i) p[i] = i;
    Shuffle(&p);
    return p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace leva

#endif  // LEVA_COMMON_RNG_H_
