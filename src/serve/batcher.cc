#include "serve/batcher.h"

#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "ml/featurize.h"

namespace leva::serve {

namespace {
uint64_t HashCombine(uint64_t seed, std::string_view s) {
  // FNV-1a over the bytes, folded into the running seed (splitmix-style mix).
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  seed ^= h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  return seed;
}
}  // namespace

uint64_t RequestBatcher::SchemaSignature(const FeaturizeRequest& request) {
  uint64_t sig = HashCombine(0, request.rows.name());
  sig = HashCombine(sig, request.target_column);
  for (const Column& c : request.rows.columns()) {
    sig = HashCombine(sig, c.name);
    const char type = static_cast<char>(c.type);
    sig = HashCombine(sig, std::string_view(&type, 1));
  }
  return sig;
}

RequestBatcher::RequestBatcher(BatcherOptions options, Executor executor,
                               CompletionSink sink, ServerStats* stats)
    : options_(options),
      executor_(std::move(executor)),
      sink_(std::move(sink)),
      stats_(stats) {}

RequestBatcher::~RequestBatcher() { Stop(); }

void RequestBatcher::Start() {
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

bool RequestBatcher::TryEnqueue(FeaturizeJob job) {
  const size_t rows = job.request.rows.NumRows();
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_ || pending_rows_ + rows > options_.max_pending_rows) return false;
  job.schema_sig = SchemaSignature(job.request);
  job.enqueued_at = std::chrono::steady_clock::now();
  pending_rows_ += rows;
  queue_.push_back(std::move(job));
  cv_.notify_all();
  return true;
}

void RequestBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

size_t RequestBatcher::PendingRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_rows_;
}

void RequestBatcher::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopped and drained

    // Hold the oldest request for up to max_delay_us hoping peers arrive to
    // coalesce with — unless it already has a full batch behind it, can
    // never coalesce (rows_in_graph), or we are draining.
    if (!stop_ && !queue_.front().request.rows_in_graph &&
        pending_rows_ < options_.max_batch_rows) {
      const auto deadline =
          queue_.front().enqueued_at +
          std::chrono::microseconds(options_.max_delay_us);
      cv_.wait_until(lock, deadline, [&] {
        return stop_ || pending_rows_ >= options_.max_batch_rows;
      });
      if (queue_.empty()) continue;
    }

    // Collect the maximal same-schema prefix within the row budget. The
    // first job always ships (even oversized, even in-graph) so nothing can
    // starve; in-graph jobs ship alone.
    std::vector<FeaturizeJob> batch;
    size_t rows = 0;
    while (!queue_.empty()) {
      FeaturizeJob& front = queue_.front();
      const size_t front_rows = front.request.rows.NumRows();
      const bool solo = front.request.rows_in_graph;
      if (!batch.empty() &&
          (solo || front.schema_sig != batch.front().schema_sig ||
           rows + front_rows > options_.max_batch_rows)) {
        break;
      }
      rows += front_rows;
      batch.push_back(std::move(front));
      queue_.pop_front();
      if (solo || rows >= options_.max_batch_rows) break;
    }
    pending_rows_ -= rows;

    lock.unlock();
    ExecuteBatch(std::move(batch), rows);
    lock.lock();
  }
}

void RequestBatcher::ExecuteBatch(std::vector<FeaturizeJob> batch,
                                  size_t total_rows) {
  // Coalesce: a singleton batch executes on its own table (no copy); a
  // coalesced one moves every job's cells into one concatenated table.
  Table combined;
  const FeaturizeJob& first = batch.front();
  const Table* exec_table = &first.request.rows;
  if (batch.size() > 1) {
    combined.set_name(first.request.rows.name());
    for (size_t c = 0; c < first.request.rows.NumColumns(); ++c) {
      Column col;
      col.name = first.request.rows.column(c).name;
      col.type = first.request.rows.column(c).type;
      col.values.reserve(total_rows);
      for (FeaturizeJob& job : batch) {
        auto& src = job.request.rows.mutable_column(c).values;
        for (Value& v : src) col.values.push_back(std::move(v));
      }
      (void)combined.AddColumn(std::move(col));
    }
    exec_table = &combined;
  }

  WallTimer exec_timer;
  Result<MLDataset> result = executor_(*exec_table, first.request.target_column,
                                       first.request.rows_in_graph);
  const double exec_seconds = exec_timer.ElapsedSeconds();
  const auto done = std::chrono::steady_clock::now();

  if (result.ok() && result->NumRows() != total_rows) {
    result = Status::Internal(
        "featurize returned " + std::to_string(result->NumRows()) +
        " row(s) for a " + std::to_string(total_rows) + "-row batch");
  }

  std::vector<Completion> completions;
  completions.reserve(batch.size());
  size_t row_offset = 0;
  for (const FeaturizeJob& job : batch) {
    const size_t job_rows = job.request.rows.NumRows();
    Completion c;
    c.conn_id = job.conn_id;
    c.request_id = job.request.request_id;
    c.latency_seconds =
        std::chrono::duration<double>(done - job.enqueued_at).count();
    if (result.ok()) {
      c.payload = EncodeFeaturizeResponse(
          c.request_id, job_rows, result->NumFeatures(),
          result->x.RowPtr(row_offset));
    } else {
      c.payload = EncodeErrorResponse(Opcode::kFeaturize, c.request_id,
                                      result.status());
    }
    row_offset += job_rows;
    if (stats_ != nullptr) stats_->request_latency.Record(c.latency_seconds);
    completions.push_back(std::move(c));
  }

  if (stats_ != nullptr) {
    stats_->batches_executed.fetch_add(1, std::memory_order_relaxed);
    stats_->rows_featurized.fetch_add(total_rows, std::memory_order_relaxed);
    stats_->batch_latency.Record(exec_seconds);
    if (!result.ok()) {
      stats_->featurize_errors.fetch_add(batch.size(),
                                         std::memory_order_relaxed);
    }
  }
  if (!result.ok()) {
    LEVA_LOG(kWarning, "featurize batch of %zu request(s), %zu row(s): %s",
             batch.size(), total_rows, result.status().ToString().c_str());
  }
  sink_(std::move(completions));
}

Result<MLDataset> ExecuteFeaturize(const LevaPipeline& pipeline, Table rows,
                                   std::string target_column,
                                   bool rows_in_graph) {
  if (rows.NumRows() == 0) {
    return Status::InvalidArgument("FEATURIZE request with zero rows");
  }
  bool synthetic_target = false;
  if (target_column.empty()) {
    target_column = kSyntheticTargetColumn;
    Column y;
    y.name = target_column;
    y.type = DataType::kDouble;
    y.values.assign(rows.NumRows(), Value(0.0));
    LEVA_RETURN_IF_ERROR(rows.AddColumn(std::move(y)));
    synthetic_target = true;
  }
  const Column* target = rows.FindColumn(target_column);
  if (target == nullptr) {
    return Status::NotFound("no target column '" + target_column +
                            "' in FEATURIZE rows");
  }
  // The synthetic target is numeric by construction; a client-supplied one
  // follows the CLI convention — classification first, regression fallback.
  TargetEncoder encoder;
  if (synthetic_target) {
    LEVA_RETURN_IF_ERROR(encoder.Fit(*target, /*classification=*/false));
  } else if (!encoder.Fit(*target, /*classification=*/true).ok()) {
    LEVA_RETURN_IF_ERROR(encoder.Fit(*target, /*classification=*/false));
  }
  return pipeline.Featurize(rows, target_column, encoder, rows_in_graph);
}

}  // namespace leva::serve
