#include "serve/protocol.h"

#include <cstring>

#include "common/status.h"

namespace leva::serve {

namespace {

constexpr uint8_t kCellNull = 0;
constexpr uint8_t kCellInt = 1;
constexpr uint8_t kCellDouble = 2;
constexpr uint8_t kCellString = 3;

void EncodeValue(const Value& v, BufferWriter* w) {
  if (v.is_null()) {
    w->PutU8(kCellNull);
  } else if (v.is_int()) {
    w->PutU8(kCellInt);
    w->PutU64(static_cast<uint64_t>(v.as_int()));
  } else if (v.is_double()) {
    w->PutU8(kCellDouble);
    w->PutDouble(v.as_double());
  } else {
    w->PutU8(kCellString);
    w->PutString(v.as_string());
  }
}

Status DecodeValue(BufferReader* r, Value* v) {
  uint8_t tag;
  LEVA_RETURN_IF_ERROR(r->GetU8(&tag));
  switch (tag) {
    case kCellNull:
      *v = Value::Null();
      return Status::OK();
    case kCellInt: {
      uint64_t bits;
      LEVA_RETURN_IF_ERROR(r->GetU64(&bits));
      *v = Value(static_cast<int64_t>(bits));
      return Status::OK();
    }
    case kCellDouble: {
      double d;
      LEVA_RETURN_IF_ERROR(r->GetDouble(&d));
      *v = Value(d);
      return Status::OK();
    }
    case kCellString: {
      std::string s;
      LEVA_RETURN_IF_ERROR(r->GetString(&s));
      *v = Value(std::move(s));
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("corrupt cell tag " + std::to_string(tag));
  }
}

void PutResponseHeader(Opcode opcode, uint64_t request_id,
                       const Status& status, BufferWriter* w) {
  w->PutU8(static_cast<uint8_t>(opcode));
  w->PutU64(request_id);
  w->PutU8(static_cast<uint8_t>(status.code()));
  w->PutString(status.ok() ? std::string_view{} : status.message());
}

}  // namespace

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kInvalid:
      return "INVALID";
    case Opcode::kPing:
      return "PING";
    case Opcode::kFeaturize:
      return "FEATURIZE";
    case Opcode::kStats:
      return "STATS";
    case Opcode::kReload:
      return "RELOAD";
    case Opcode::kDrain:
      return "DRAIN";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(std::string_view payload) {
  BufferWriter w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32c(payload));
  w.PutBytes(payload.data(), payload.size());
  return w.Release();
}

Result<FrameDecode> DecodeFrame(std::string_view buffer) {
  FrameDecode out;
  if (buffer.size() < kFrameHeaderSize) return out;
  uint32_t len, crc;
  std::memcpy(&len, buffer.data(), sizeof len);
  std::memcpy(&crc, buffer.data() + sizeof len, sizeof crc);
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload length " + std::to_string(len) + " exceeds limit " +
        std::to_string(kMaxFramePayload));
  }
  if (buffer.size() < kFrameHeaderSize + len) return out;
  const std::string_view payload = buffer.substr(kFrameHeaderSize, len);
  if (Crc32c(payload) != crc) {
    return Status::InvalidArgument("frame checksum mismatch over " +
                                   std::to_string(len) + " payload byte(s)");
  }
  out.complete = true;
  out.payload = payload;
  out.consumed = kFrameHeaderSize + len;
  return out;
}

Status DecodeRequestHeader(BufferReader* reader, RequestHeader* header) {
  uint8_t op;
  LEVA_RETURN_IF_ERROR(reader->GetU8(&op));
  LEVA_RETURN_IF_ERROR(reader->GetU64(&header->request_id));
  header->opcode = static_cast<Opcode>(op);
  return Status::OK();
}

std::string EncodeFeaturizeRequest(const FeaturizeRequest& request) {
  BufferWriter w;
  w.PutU8(static_cast<uint8_t>(Opcode::kFeaturize));
  w.PutU64(request.request_id);
  w.PutBool(request.rows_in_graph);
  w.PutString(request.rows.name());
  w.PutString(request.target_column);
  EncodeTable(request.rows, &w);
  return w.Release();
}

Status DecodeFeaturizeBody(BufferReader* reader, FeaturizeRequest* request) {
  LEVA_RETURN_IF_ERROR(reader->GetBool(&request->rows_in_graph));
  std::string table_name;
  LEVA_RETURN_IF_ERROR(reader->GetString(&table_name));
  LEVA_RETURN_IF_ERROR(reader->GetString(&request->target_column));
  LEVA_RETURN_IF_ERROR(DecodeTable(reader, &request->rows));
  request->rows.set_name(std::move(table_name));
  return Status::OK();
}

std::string EncodeReloadRequest(const ReloadRequest& request) {
  BufferWriter w;
  w.PutU8(static_cast<uint8_t>(Opcode::kReload));
  w.PutU64(request.request_id);
  w.PutString(request.path);
  w.PutBool(request.use_mmap);
  w.PutBool(request.verify_pages);
  w.PutBool(request.require_same_tier);
  return w.Release();
}

Status DecodeReloadBody(BufferReader* reader, ReloadRequest* request) {
  LEVA_RETURN_IF_ERROR(reader->GetString(&request->path));
  LEVA_RETURN_IF_ERROR(reader->GetBool(&request->use_mmap));
  LEVA_RETURN_IF_ERROR(reader->GetBool(&request->verify_pages));
  LEVA_RETURN_IF_ERROR(reader->GetBool(&request->require_same_tier));
  return Status::OK();
}

std::string EncodeBodylessRequest(Opcode opcode, uint64_t request_id) {
  BufferWriter w;
  w.PutU8(static_cast<uint8_t>(opcode));
  w.PutU64(request_id);
  return w.Release();
}

std::string EncodeErrorResponse(Opcode opcode, uint64_t request_id,
                                const Status& status) {
  BufferWriter w;
  PutResponseHeader(opcode, request_id, status, &w);
  return w.Release();
}

std::string EncodeOkResponse(Opcode opcode, uint64_t request_id) {
  BufferWriter w;
  PutResponseHeader(opcode, request_id, Status::OK(), &w);
  return w.Release();
}

std::string EncodeFeaturizeResponse(uint64_t request_id, size_t rows,
                                    size_t width, const double* features) {
  BufferWriter w;
  PutResponseHeader(Opcode::kFeaturize, request_id, Status::OK(), &w);
  w.PutU32(static_cast<uint32_t>(rows));
  w.PutU32(static_cast<uint32_t>(width));
  w.PutBytes(features, rows * width * sizeof(double));
  return w.Release();
}

std::string EncodeStatsResponse(
    uint64_t request_id,
    const std::vector<std::pair<std::string, double>>& fields) {
  BufferWriter w;
  PutResponseHeader(Opcode::kStats, request_id, Status::OK(), &w);
  w.PutU32(static_cast<uint32_t>(fields.size()));
  for (const auto& [name, value] : fields) {
    w.PutString(name);
    w.PutDouble(value);
  }
  return w.Release();
}

Status DecodeResponse(std::string_view payload, DecodedResponse* response) {
  BufferReader r(payload);
  uint8_t op, code;
  LEVA_RETURN_IF_ERROR(r.GetU8(&op));
  LEVA_RETURN_IF_ERROR(r.GetU64(&response->request_id));
  LEVA_RETURN_IF_ERROR(r.GetU8(&code));
  std::string message;
  LEVA_RETURN_IF_ERROR(r.GetString(&message));
  response->opcode = static_cast<Opcode>(op);
  if (code != 0) {
    response->status = Status(static_cast<StatusCode>(code), std::move(message));
    return Status::OK();
  }
  response->status = Status::OK();
  switch (response->opcode) {
    case Opcode::kFeaturize: {
      uint32_t rows, width;
      LEVA_RETURN_IF_ERROR(r.GetU32(&rows));
      LEVA_RETURN_IF_ERROR(r.GetU32(&width));
      std::string_view raw;
      LEVA_RETURN_IF_ERROR(
          r.GetBytes(size_t{rows} * width * sizeof(double), &raw));
      response->rows = rows;
      response->width = width;
      response->features.resize(size_t{rows} * width);
      std::memcpy(response->features.data(), raw.data(), raw.size());
      break;
    }
    case Opcode::kStats: {
      uint32_t count;
      LEVA_RETURN_IF_ERROR(r.GetU32(&count));
      response->stats.clear();
      response->stats.reserve(std::min<size_t>(count, 1024));
      for (uint32_t i = 0; i < count; ++i) {
        std::string name;
        double value;
        LEVA_RETURN_IF_ERROR(r.GetString(&name));
        LEVA_RETURN_IF_ERROR(r.GetDouble(&value));
        response->stats.emplace_back(std::move(name), value);
      }
      break;
    }
    default:
      break;  // bodyless
  }
  return Status::OK();
}

void EncodeTable(const Table& table, BufferWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(table.NumColumns()));
  for (const Column& c : table.columns()) {
    writer->PutString(c.name);
    writer->PutU8(static_cast<uint8_t>(c.type));
  }
  writer->PutU32(static_cast<uint32_t>(table.NumRows()));
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      EncodeValue(table.at(r, c), writer);
    }
  }
}

Status DecodeTable(BufferReader* reader, Table* table) {
  uint32_t num_columns;
  LEVA_RETURN_IF_ERROR(reader->GetU32(&num_columns));
  std::vector<Column> columns;
  // Every column header costs at least 9 bytes on the wire, so a corrupt
  // count cannot force a huge reservation past this sanity check.
  if (size_t{num_columns} * 9 > reader->remaining()) {
    return Status::InvalidArgument("corrupt column count " +
                                   std::to_string(num_columns));
  }
  columns.resize(num_columns);
  for (Column& c : columns) {
    LEVA_RETURN_IF_ERROR(reader->GetString(&c.name));
    uint8_t type;
    LEVA_RETURN_IF_ERROR(reader->GetU8(&type));
    if (type > static_cast<uint8_t>(DataType::kDatetime)) {
      return Status::InvalidArgument("corrupt column type " +
                                     std::to_string(type));
    }
    c.type = static_cast<DataType>(type);
  }
  uint32_t num_rows;
  LEVA_RETURN_IF_ERROR(reader->GetU32(&num_rows));
  if (size_t{num_rows} * num_columns > reader->remaining()) {
    return Status::InvalidArgument("corrupt row count " +
                                   std::to_string(num_rows));
  }
  for (Column& c : columns) c.values.reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    for (Column& c : columns) {
      Value v;
      LEVA_RETURN_IF_ERROR(DecodeValue(reader, &v));
      c.values.push_back(std::move(v));
    }
  }
  Table out(table->name());
  for (Column& c : columns) {
    LEVA_RETURN_IF_ERROR(out.AddColumn(std::move(c)));
  }
  *table = std::move(out);
  return Status::OK();
}

}  // namespace leva::serve
