#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "core/pipeline.h"

namespace leva::serve {

namespace {
constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;
/// Slow-reader guard: a client that stops reading while pipelining requests
/// accumulates framed responses; past this many queued frames the connection
/// is dropped instead of buffering without bound.
constexpr size_t kMaxQueuedResponses = 4096;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}
}  // namespace

Server::Server(LevaPipeline* pipeline, ServerOptions options)
    : pipeline_(pipeline), options_(std::move(options)) {}

Server::~Server() {
  Shutdown();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status Server::Start() {
  batcher_ = std::make_unique<RequestBatcher>(
      options_.batcher,
      [this](Table rows, std::string target, bool rows_in_graph) {
        return ExecuteFeaturize(*pipeline_, std::move(rows), std::move(target),
                                rows_in_graph);
      },
      [this](std::vector<Completion> completions) {
        {
          std::lock_guard<std::mutex> lock(completions_mu_);
          for (Completion& c : completions) {
            completions_.push_back(std::move(c));
          }
        }
        const uint64_t one = 1;
        [[maybe_unused]] const ssize_t n =
            ::write(wake_fd_, &one, sizeof one);
      },
      &stats_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable host '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (::listen(listen_fd_, options_.backlog) < 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Errno("epoll_ctl(wake)");
  }

  started_at_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  batcher_->Start();
  io_thread_ = std::thread([this] { EventLoop(); });
  started_ = true;
  LEVA_LOG(kInfo, "leva_served listening on %s:%u (max_batch_rows=%zu, "
           "max_delay_us=%zu, max_pending_rows=%zu)",
           options_.host.c_str(), unsigned{port_},
           options_.batcher.max_batch_rows, options_.batcher.max_delay_us,
           options_.batcher.max_pending_rows);
  return Status::OK();
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
}

void Server::Shutdown() {
  RequestShutdown();
  Join();
}

void Server::Join() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (io_thread_.joinable()) io_thread_.join();
  if (started_ && !joined_) {
    batcher_->Stop();  // already stopped by the drain; idempotent
    joined_ = true;
  }
}

void Server::EventLoop() {
  std::vector<epoll_event> events(64);
  while (true) {
    int timeout_ms = -1;
    if (draining_) {
      if (conns_.empty()) break;
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(drain_deadline_ -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        LEVA_LOG(kWarning, "drain deadline reached with %zu connection(s) "
                 "unflushed; force-closing",
                 conns_.size());
        break;
      }
      timeout_ms = static_cast<int>(remaining.count());
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      LEVA_LOG(kError, "epoll_wait: %s", std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        HandleAccept();
      } else if (id == kWakeId) {
        uint64_t counter;
        while (::read(wake_fd_, &counter, sizeof counter) > 0) {
        }
        DrainCompletions();
      } else {
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          // Flush whatever the peer can still receive, then drop.
          auto it = conns_.find(id);
          if (it != conns_.end() && (events[i].events & EPOLLERR) != 0) {
            CloseConn(id);
            continue;
          }
        }
        if ((events[i].events & EPOLLIN) != 0) HandleReadable(id);
        if ((events[i].events & EPOLLOUT) != 0) HandleWritable(id);
      }
    }
    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
    }
    if (draining_) {
      std::vector<uint64_t> flushed;
      for (const auto& [id, conn] : conns_) {
        if (conn.outq.empty()) flushed.push_back(id);
      }
      for (const uint64_t id : flushed) CloseConn(id);
      if (conns_.empty()) break;
    }
  }
  // Force-close anything left (drain deadline or loop error).
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const uint64_t id : ids) CloseConn(id);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
  LEVA_LOG(kInfo, "leva_served event loop exited");
}

void Server::HandleAccept() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      LEVA_LOG(kWarning, "accept: %s", std::strerror(errno));
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const uint64_t id = next_conn_id_++;
    Conn conn;
    conn.id = id;
    conn.fd = fd;
    conn.epoll_mask = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::HandleReadable(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = &it->second;
  if (conn->close_after_flush) return;

  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof buf) break;
    } else if (n == 0) {
      CloseConn(conn_id);
      return;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else if (errno == EINTR) {
      continue;
    } else {
      CloseConn(conn_id);
      return;
    }
  }

  size_t consumed = 0;
  while (true) {
    const Result<FrameDecode> frame =
        DecodeFrame(std::string_view(conn->inbuf).substr(consumed));
    if (!frame.ok()) {
      // The frame boundary itself is untrustworthy (oversized length or
      // checksum mismatch): answer once with a stream-level error and close
      // after the response flushes. Nothing past this point is parsed.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      LEVA_LOG(kWarning, "conn %llu: %s — closing",
               static_cast<unsigned long long>(conn_id),
               frame.status().ToString().c_str());
      QueueResponse(conn, EncodeErrorResponse(Opcode::kInvalid, 0,
                                              frame.status()));
      conn->close_after_flush = true;
      conn->inbuf.clear();
      consumed = 0;
      ::shutdown(conn->fd, SHUT_RD);
      break;
    }
    if (!frame->complete) break;
    HandlePayload(conn, frame->payload);
    consumed += frame->consumed;
    if (conn->close_after_flush) break;
  }
  if (consumed > 0) conn->inbuf.erase(0, consumed);
  FlushConn(conn);
}

void Server::HandleWritable(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  FlushConn(&it->second);
}

void Server::HandlePayload(Conn* conn, std::string_view payload) {
  BufferReader reader(payload);
  RequestHeader header;
  if (Status s = DecodeRequestHeader(&reader, &header); !s.ok()) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn, EncodeErrorResponse(Opcode::kInvalid, 0, s));
    return;
  }
  switch (header.opcode) {
    case Opcode::kPing:
      stats_.requests_ping.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(conn, EncodeOkResponse(Opcode::kPing, header.request_id));
      return;
    case Opcode::kStats: {
      stats_.requests_stats.fetch_add(1, std::memory_order_relaxed);
      const double uptime = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - started_at_)
                                .count();
      QueueResponse(conn, EncodeStatsResponse(header.request_id,
                                              stats_.Render(uptime)));
      return;
    }
    case Opcode::kReload: {
      stats_.requests_reload.fetch_add(1, std::memory_order_relaxed);
      ReloadRequest request;
      if (Status s = DecodeReloadBody(&reader, &request); !s.ok()) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        QueueResponse(conn, EncodeErrorResponse(Opcode::kReload,
                                                header.request_id, s));
        return;
      }
      SnapshotLoadOptions load;
      load.use_mmap = request.use_mmap;
      load.verify_pages = request.verify_pages;
      load.require_same_tier = request.require_same_tier;
      // Runs on the I/O thread while the dispatcher keeps featurizing: the
      // pipeline's hot swap is documented safe against concurrent Featurize,
      // and in-flight batches finish on the model they pinned.
      const Status s = pipeline_->ReloadSnapshot(request.path, nullptr, load);
      if (s.ok()) {
        stats_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
        stats_.model_generation.fetch_add(1, std::memory_order_relaxed);
        LEVA_LOG(kInfo, "hot-swapped model to %s (generation %llu)",
                 request.path.c_str(),
                 static_cast<unsigned long long>(
                     stats_.model_generation.load()));
        QueueResponse(conn,
                      EncodeOkResponse(Opcode::kReload, header.request_id));
      } else {
        stats_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
        LEVA_LOG(kWarning, "reload %s failed: %s — incumbent keeps serving",
                 request.path.c_str(), s.ToString().c_str());
        QueueResponse(conn, EncodeErrorResponse(Opcode::kReload,
                                                header.request_id, s));
      }
      return;
    }
    case Opcode::kDrain:
      stats_.requests_drain.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(conn, EncodeOkResponse(Opcode::kDrain, header.request_id));
      shutdown_requested_.store(true, std::memory_order_release);
      return;
    case Opcode::kFeaturize: {
      stats_.requests_featurize.fetch_add(1, std::memory_order_relaxed);
      FeaturizeJob job;
      job.conn_id = conn->id;
      job.request.request_id = header.request_id;
      if (Status s = DecodeFeaturizeBody(&reader, &job.request); !s.ok()) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        QueueResponse(conn, EncodeErrorResponse(Opcode::kFeaturize,
                                                header.request_id, s));
        return;
      }
      if (job.request.rows.NumRows() == 0) {
        QueueResponse(conn, EncodeErrorResponse(
                                Opcode::kFeaturize, header.request_id,
                                Status::InvalidArgument(
                                    "FEATURIZE request with zero rows")));
        return;
      }
      if (!batcher_->TryEnqueue(std::move(job))) {
        stats_.overload_rejections.fetch_add(1, std::memory_order_relaxed);
        QueueResponse(
            conn,
            EncodeErrorResponse(
                Opcode::kFeaturize, header.request_id,
                Status::ResourceExhausted(
                    "server overloaded: admission queue full "
                    "(max_pending_rows=" +
                    std::to_string(options_.batcher.max_pending_rows) + ")")));
      }
      return;
    }
    case Opcode::kInvalid:
      break;
  }
  stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  QueueResponse(conn,
                EncodeErrorResponse(
                    header.opcode, header.request_id,
                    Status::InvalidArgument(
                        "unknown opcode " +
                        std::to_string(static_cast<unsigned>(
                            static_cast<uint8_t>(header.opcode))))));
}

void Server::QueueResponse(Conn* conn, std::string payload) {
  if (conn->outq.size() >= kMaxQueuedResponses) {
    LEVA_LOG(kWarning, "conn %llu: %zu unread responses queued — dropping "
             "slow reader",
             static_cast<unsigned long long>(conn->id), conn->outq.size());
    conn->close_after_flush = true;
    return;
  }
  conn->outq.push_back(EncodeFrame(payload));
}

bool Server::FlushConn(Conn* conn) {
  while (!conn->outq.empty()) {
    const std::string& front = conn->outq.front();
    const ssize_t n = ::send(conn->fd, front.data() + conn->out_off,
                             front.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      if (conn->out_off == front.size()) {
        conn->outq.pop_front();
        conn->out_off = 0;
      }
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      CloseConn(conn->id);
      return false;
    }
  }
  if (conn->outq.empty() && conn->close_after_flush) {
    CloseConn(conn->id);
    return false;
  }
  const uint32_t mask = (conn->close_after_flush ? 0u : EPOLLIN) |
                        (conn->outq.empty() ? 0u : EPOLLOUT);
  UpdateEpollMask(conn, mask);
  return true;
}

void Server::UpdateEpollMask(Conn* conn, uint32_t mask) {
  if (mask == conn->epoll_mask) return;
  epoll_event ev{};
  ev.events = mask;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->epoll_mask = mask;
  }
}

void Server::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // client vanished mid-flight
    QueueResponse(&it->second, std::move(c.payload));
    FlushConn(&it->second);
  }
}

void Server::BeginDrain() {
  draining_ = true;
  drain_deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.drain_timeout_ms);
  LEVA_LOG(kInfo, "drain: closing listener, finishing %zu pending row(s)",
           batcher_->PendingRows());
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Blocks until every admitted FEATURIZE executed; their completions land
  // in the queue below. New arrivals are rejected OVERLOADED from here on.
  batcher_->Stop();
  DrainCompletions();
  for (auto& [id, conn] : conns_) conn.close_after_flush = true;
}

}  // namespace leva::serve
