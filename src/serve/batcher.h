#ifndef LEVA_SERVE_BATCHER_H_
#define LEVA_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "serve/protocol.h"
#include "serve/stats.h"

namespace leva {
class LevaPipeline;
}  // namespace leva

namespace leva::serve {

/// Batching and backpressure policy.
struct BatcherOptions {
  /// Coalescing target: a batch flushes as soon as its rows reach this.
  /// 1 disables coalescing — every request executes alone (the baseline the
  /// serving bench compares against).
  size_t max_batch_rows = 256;
  /// How long the oldest pending request may wait for peers to coalesce
  /// with before the batch flushes anyway.
  size_t max_delay_us = 1000;
  /// Admission bound: total rows admitted-but-unexecuted. An arrival that
  /// would exceed it is rejected (the server answers OVERLOADED) instead of
  /// buffered, so a saturated daemon holds constant memory.
  size_t max_pending_rows = 8192;
};

/// One admitted FEATURIZE request awaiting execution.
struct FeaturizeJob {
  uint64_t conn_id = 0;
  FeaturizeRequest request;
  std::chrono::steady_clock::time_point enqueued_at{};
  uint64_t schema_sig = 0;  ///< set on admission; batches never cross it
};

/// A finished request: the encoded (unframed) response payload routed back
/// to `conn_id`.
struct Completion {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  std::string payload;
  double latency_seconds = 0;
};

/// Coalesces concurrent FEATURIZE requests into one blocked-gather Featurize
/// call. Requests are admitted from the I/O loop into a bounded queue; a
/// dispatcher thread forms batches under a max-rows/max-delay policy —
/// flush when `max_batch_rows` are pending, or when the oldest request has
/// waited `max_delay_us` — executes them through the supplied executor (the
/// pipeline's batched Featurize, whose gather fans out on the common
/// parallel.h pool), slices the result matrix back per request, and hands
/// the completions to the sink.
///
/// Coalescing is sound because a row's feature vector is a pure function of
/// the row and the served model — Featurize output is documented invariant
/// to batch composition — with one exception: rows_in_graph requests address
/// row nodes by table position, so they always execute as singleton batches.
/// Batches also never mix schemas (table name, target column, column
/// names/types): a schema change cuts the batch.
class RequestBatcher {
 public:
  using Executor = std::function<Result<MLDataset>(
      Table rows, std::string target_column, bool rows_in_graph)>;
  using CompletionSink = std::function<void(std::vector<Completion>)>;

  RequestBatcher(BatcherOptions options, Executor executor,
                 CompletionSink sink, ServerStats* stats);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Spawns the dispatcher thread.
  void Start();

  /// Admits `job` unless the pending-rows bound would be exceeded (or the
  /// batcher is stopping). Returns false on rejection — the caller responds
  /// OVERLOADED; nothing was buffered.
  bool TryEnqueue(FeaturizeJob job);

  /// Drains: already-admitted jobs execute to completion (their completions
  /// reach the sink), then the dispatcher exits and is joined. Idempotent.
  /// New TryEnqueue calls fail once stopping begins.
  void Stop();

  size_t PendingRows() const;

  /// Schema fingerprint two requests must share to share a batch.
  static uint64_t SchemaSignature(const FeaturizeRequest& request);

 private:
  void DispatchLoop();
  void ExecuteBatch(std::vector<FeaturizeJob> batch, size_t total_rows);

  const BatcherOptions options_;
  const Executor executor_;
  const CompletionSink sink_;
  ServerStats* const stats_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<FeaturizeJob> queue_;
  size_t pending_rows_ = 0;
  bool stop_ = false;
  std::thread dispatcher_;
};

/// The canonical executor: featurizes `rows` against `pipeline` exactly as
/// the offline path would. An empty `target_column` appends a synthetic
/// all-zero regression target (Featurize requires one; pure serving requests
/// have none — the target never influences the feature matrix, only the
/// unused y). Exposed so differential tests and benches can compute the
/// expected bits offline through the identical code path.
Result<MLDataset> ExecuteFeaturize(const LevaPipeline& pipeline, Table rows,
                                   std::string target_column,
                                   bool rows_in_graph);

/// Column name ExecuteFeaturize appends when no target is given.
inline constexpr const char* kSyntheticTargetColumn = "__leva_served_y";

}  // namespace leva::serve

#endif  // LEVA_SERVE_BATCHER_H_
