#ifndef LEVA_SERVE_PROTOCOL_H_
#define LEVA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "table/table.h"

namespace leva::serve {

// ---------------------------------------------------------------------------
// Wire format
//
// Every message — request or response, either direction — is one frame:
//
//     u32 payload_length | u32 crc32c(payload) | payload bytes
//
// (little-endian, the same framing the update log uses). The payload begins
// with a u8 opcode and a u64 request id; the id is chosen by the client and
// echoed verbatim in the response, so a connection may pipeline requests and
// match responses arriving out of order (batching completes FEATURIZE
// requests when their batch executes, not in arrival order).
//
// Response payloads carry, after the echoed opcode and id, a u8 status code
// (leva::StatusCode; 0 = OK) and a length-prefixed message (empty on OK),
// then the opcode-specific body. A server that cannot trust the stream
// (oversized length, CRC mismatch — the frame boundary itself is gone) sends
// one final error response with opcode kInvalid / id 0 and closes; a
// well-framed but unintelligible payload (unknown opcode, truncated body)
// gets an error response and the connection stays usable.
// ---------------------------------------------------------------------------

/// Hard ceiling on a frame payload; a length prefix beyond it is treated as
/// stream corruption, not an allocation request (bounded memory).
constexpr uint32_t kMaxFramePayload = 32u << 20;
constexpr size_t kFrameHeaderSize = 8;

enum class Opcode : uint8_t {
  kInvalid = 0,  ///< response-only: stream-level error, no request to echo
  kPing = 1,
  kFeaturize = 2,
  kStats = 3,
  kReload = 4,
  kDrain = 5,
};

const char* OpcodeName(Opcode op);

/// Wraps `payload` in a length + CRC32C frame.
std::string EncodeFrame(std::string_view payload);

/// Outcome of scanning a receive buffer for one complete frame.
struct FrameDecode {
  bool complete = false;     ///< false: keep reading, payload/consumed unset
  std::string_view payload;  ///< view into the input buffer
  size_t consumed = 0;       ///< bytes (header + payload) to drop from buffer
};

/// Tries to decode one frame from the front of `buffer`. Returns an error —
/// the connection is unrecoverable — when the length prefix exceeds
/// kMaxFramePayload or the payload fails its checksum.
Result<FrameDecode> DecodeFrame(std::string_view buffer);

// --- requests --------------------------------------------------------------

struct RequestHeader {
  Opcode opcode = Opcode::kInvalid;
  uint64_t request_id = 0;
};

/// Reads opcode + request id. Unknown opcode values are returned as-is (the
/// server answers them with an error naming the byte); only truncation fails.
Status DecodeRequestHeader(BufferReader* reader, RequestHeader* header);

/// FEATURIZE: featurize `rows` against the served model. `target_column`
/// names a column of `rows` excluded from the features (its values are
/// ignored); when empty the server featurizes every column. `rows_in_graph`
/// selects the fit-time row-node path (row i of `rows` must be row i of the
/// fitted base table); such requests are never coalesced with others because
/// row indices are table-positional.
struct FeaturizeRequest {
  uint64_t request_id = 0;
  bool rows_in_graph = false;
  std::string target_column;
  Table rows;
};

std::string EncodeFeaturizeRequest(const FeaturizeRequest& request);
/// Decodes the body (after the header) into `request` (request_id is not
/// touched — the caller has it from the header).
Status DecodeFeaturizeBody(BufferReader* reader, FeaturizeRequest* request);

/// RELOAD: hot-swap the served model to the snapshot at `path` (a path on
/// the server's filesystem), with the same knobs leva_cli exposes.
struct ReloadRequest {
  uint64_t request_id = 0;
  std::string path;
  bool use_mmap = false;
  bool verify_pages = true;
  bool require_same_tier = true;
};

std::string EncodeReloadRequest(const ReloadRequest& request);
Status DecodeReloadBody(BufferReader* reader, ReloadRequest* request);

/// PING / STATS / DRAIN have no body.
std::string EncodeBodylessRequest(Opcode opcode, uint64_t request_id);

// --- responses -------------------------------------------------------------

std::string EncodeErrorResponse(Opcode opcode, uint64_t request_id,
                                const Status& status);
/// OK response for PING / RELOAD / DRAIN (no body).
std::string EncodeOkResponse(Opcode opcode, uint64_t request_id);
/// OK response for FEATURIZE: u32 rows, u32 width, then rows*width doubles
/// (row-major, exact bit patterns — the transport preserves bit-identity
/// with the offline Featurize).
std::string EncodeFeaturizeResponse(uint64_t request_id, size_t rows,
                                    size_t width, const double* features);
/// OK response for STATS: u32 count of (string name, double value) fields.
std::string EncodeStatsResponse(
    uint64_t request_id,
    const std::vector<std::pair<std::string, double>>& fields);

/// A fully decoded response; which tail fields are meaningful depends on the
/// opcode. `status` carries the server-side error when not OK.
struct DecodedResponse {
  Opcode opcode = Opcode::kInvalid;
  uint64_t request_id = 0;
  Status status;
  // kFeaturize:
  size_t rows = 0;
  size_t width = 0;
  std::vector<double> features;  ///< row-major rows x width
  // kStats:
  std::vector<std::pair<std::string, double>> stats;
};

/// Decodes a response payload. Fails only on a malformed payload; a
/// well-formed error response decodes OK with `response->status` set.
Status DecodeResponse(std::string_view payload, DecodedResponse* response);

// --- table serialization ---------------------------------------------------

/// Schema + row-major cells: u32 columns, per column (name, u8 type);
/// u32 rows, then per cell a u8 tag (0 null / 1 int / 2 double / 3 string)
/// and the tagged payload. Datetimes travel as ints with a kDatetime column
/// type, exactly as they live in Table.
void EncodeTable(const Table& table, BufferWriter* writer);
Status DecodeTable(BufferReader* reader, Table* table);

}  // namespace leva::serve

#endif  // LEVA_SERVE_PROTOCOL_H_
