#ifndef LEVA_SERVE_SERVER_H_
#define LEVA_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/batcher.h"
#include "serve/stats.h"

namespace leva {
class LevaPipeline;
}  // namespace leva

namespace leva::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reports the one actually bound.
  uint16_t port = 0;
  int backlog = 128;
  BatcherOptions batcher;
  /// How long a graceful drain waits for response buffers to flush before
  /// force-closing lingering connections.
  size_t drain_timeout_ms = 5000;
};

/// The serving daemon's network front end: a single epoll I/O thread speaking
/// the length-prefixed CRC32C-framed protocol of serve/protocol.h over TCP.
/// PING/STATS/RELOAD/DRAIN are answered inline on the I/O thread (RELOAD is
/// the pipeline's atomic hot swap — safe against the Featurize calls the
/// dispatcher thread runs concurrently); FEATURIZE requests are admitted
/// into the RequestBatcher, coalesced, and completed asynchronously, with
/// OVERLOADED rejections once the admission queue is full.
///
/// Shutdown is a graceful drain — triggered by Shutdown(), a DRAIN request,
/// or RequestShutdown() from a signal handler: the listener closes, admitted
/// featurize work executes to completion, every response buffer flushes
/// (bounded by drain_timeout_ms), then connections close and the I/O thread
/// exits.
class Server {
 public:
  Server(LevaPipeline* pipeline, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens, then spawns the I/O thread and the batch dispatcher.
  /// On return port() is valid and the server accepts connections.
  Status Start();

  /// Async-signal-safe shutdown request (an atomic flag plus an eventfd
  /// write): safe to call from a SIGTERM handler. The drain happens on the
  /// I/O thread; use Join() to wait for it.
  void RequestShutdown();

  /// RequestShutdown() + Join(). Idempotent.
  void Shutdown();

  /// Blocks until the I/O thread has exited (drain complete).
  void Join();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  const ServerStats& stats() const { return stats_; }

 private:
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    std::string inbuf;
    std::deque<std::string> outq;  ///< framed responses awaiting send
    size_t out_off = 0;            ///< bytes of outq.front() already sent
    bool close_after_flush = false;
    uint32_t epoll_mask = 0;
  };

  void EventLoop();
  void HandleAccept();
  void HandleReadable(uint64_t conn_id);
  void HandleWritable(uint64_t conn_id);
  /// Parses one request payload and queues its response(s).
  void HandlePayload(Conn* conn, std::string_view payload);
  void QueueResponse(Conn* conn, std::string payload);
  /// Sends as much queued output as the socket accepts; closes on error.
  /// Returns false when the connection was closed.
  bool FlushConn(Conn* conn);
  void UpdateEpollMask(Conn* conn, uint32_t mask);
  void CloseConn(uint64_t conn_id);
  void DrainCompletions();
  void BeginDrain();

  LevaPipeline* const pipeline_;
  const ServerOptions options_;
  ServerStats stats_;
  std::unique_ptr<RequestBatcher> batcher_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 2;  ///< 0/1 are the listen/wake sentinels
  std::unordered_map<uint64_t, Conn> conns_;
  std::chrono::steady_clock::time_point started_at_{};
  std::chrono::steady_clock::time_point drain_deadline_{};
  bool draining_ = false;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> running_{false};
  std::thread io_thread_;
  bool started_ = false;
  bool joined_ = false;
  std::mutex lifecycle_mu_;
};

}  // namespace leva::serve

#endif  // LEVA_SERVE_SERVER_H_
