#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace leva::serve {

namespace {
Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}
}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_id_(other.next_id_),
      inbuf_(std::move(other.inbuf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    inbuf_ = std::move(other.inbuf_);
    other.fd_ = -1;
  }
  return *this;
}

Status Client::Connect(const std::string& host, uint16_t port,
                       int timeout_ms) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("unparseable host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const Status s = Errno("connect " + host + ":" + std::to_string(port));
    Close();
    return s;
  }
  inbuf_.clear();
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

Status Client::SendAll(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return Errno("send");
    }
  }
  return Status::OK();
}

Result<std::string> Client::RecvFrame() {
  char buf[65536];
  while (true) {
    LEVA_ASSIGN_OR_RETURN(const FrameDecode frame, DecodeFrame(inbuf_));
    if (frame.complete) {
      std::string payload(frame.payload);
      inbuf_.erase(0, frame.consumed);
      return payload;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
    } else if (n == 0) {
      return Status::IOError("connection closed by server");
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("timed out waiting for response");
    } else {
      return Errno("recv");
    }
  }
}

Result<DecodedResponse> Client::RoundTrip(std::string_view payload,
                                          uint64_t expect_id) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  LEVA_RETURN_IF_ERROR(SendAll(EncodeFrame(payload)));
  LEVA_ASSIGN_OR_RETURN(const std::string response_payload, RecvFrame());
  DecodedResponse response;
  LEVA_RETURN_IF_ERROR(DecodeResponse(response_payload, &response));
  // kInvalid carries a stream-level error (the server is about to hang up);
  // surface it regardless of the id it rode in on.
  if (response.opcode != Opcode::kInvalid &&
      response.request_id != expect_id) {
    return Status::Internal(
        "response id " + std::to_string(response.request_id) +
        " does not match request id " + std::to_string(expect_id));
  }
  return response;
}

Status Client::Send(std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  return SendAll(EncodeFrame(payload));
}

Result<DecodedResponse> Client::ReadResponse() {
  LEVA_ASSIGN_OR_RETURN(const std::string payload, RecvFrame());
  DecodedResponse response;
  LEVA_RETURN_IF_ERROR(DecodeResponse(payload, &response));
  return response;
}

Status Client::Ping() {
  const uint64_t id = NextRequestId();
  LEVA_ASSIGN_OR_RETURN(const DecodedResponse r,
                        RoundTrip(EncodeBodylessRequest(Opcode::kPing, id),
                                  id));
  return r.status;
}

Result<DecodedResponse> Client::Featurize(const FeaturizeRequest& request) {
  FeaturizeRequest req = request;
  req.request_id = NextRequestId();
  LEVA_ASSIGN_OR_RETURN(DecodedResponse r,
                        RoundTrip(EncodeFeaturizeRequest(req),
                                  req.request_id));
  return r;
}

Result<std::vector<std::pair<std::string, double>>> Client::Stats() {
  const uint64_t id = NextRequestId();
  LEVA_ASSIGN_OR_RETURN(DecodedResponse r,
                        RoundTrip(EncodeBodylessRequest(Opcode::kStats, id),
                                  id));
  LEVA_RETURN_IF_ERROR(r.status);
  return std::move(r.stats);
}

Status Client::Reload(const ReloadRequest& request) {
  ReloadRequest req = request;
  req.request_id = NextRequestId();
  LEVA_ASSIGN_OR_RETURN(const DecodedResponse r,
                        RoundTrip(EncodeReloadRequest(req), req.request_id));
  return r.status;
}

Status Client::Drain() {
  const uint64_t id = NextRequestId();
  LEVA_ASSIGN_OR_RETURN(const DecodedResponse r,
                        RoundTrip(EncodeBodylessRequest(Opcode::kDrain, id),
                                  id));
  return r.status;
}

}  // namespace leva::serve
