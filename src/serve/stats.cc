#include "serve/stats.h"

#include "bench/bench_util.h"

namespace leva::serve {

std::vector<std::pair<std::string, double>> ServerStats::Render(
    double uptime_seconds) const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(24);
  auto put = [&out](const char* name, double v) { out.emplace_back(name, v); };
  put("uptime_seconds", uptime_seconds);
  put("connections_accepted", double(connections_accepted.load()));
  put("connections_active", double(connections_active.load()));
  put("requests_ping", double(requests_ping.load()));
  put("requests_featurize", double(requests_featurize.load()));
  put("requests_stats", double(requests_stats.load()));
  put("requests_reload", double(requests_reload.load()));
  put("requests_drain", double(requests_drain.load()));
  const double rows = double(rows_featurized.load());
  const double batches = double(batches_executed.load());
  put("rows_featurized", rows);
  put("batches_executed", batches);
  put("rows_per_batch", batches > 0 ? rows / batches : 0.0);
  put("overload_rejections", double(overload_rejections.load()));
  put("protocol_errors", double(protocol_errors.load()));
  put("featurize_errors", double(featurize_errors.load()));
  put("reloads_ok", double(reloads_ok.load()));
  put("reloads_failed", double(reloads_failed.load()));
  put("model_generation", double(model_generation.load()));

  // The percentile cut rides the shared bench helper so STATS, the paper
  // tables, and the load generator all agree on the definition.
  const bench::LatencySummary request =
      bench::SummarizeLatencies(request_latency.Snapshot());
  put("request_latency_p50_ms", request.p50 * 1e3);
  put("request_latency_p95_ms", request.p95 * 1e3);
  put("request_latency_p99_ms", request.p99 * 1e3);
  const bench::LatencySummary batch =
      bench::SummarizeLatencies(batch_latency.Snapshot());
  put("batch_latency_p50_ms", batch.p50 * 1e3);
  put("batch_latency_p95_ms", batch.p95 * 1e3);
  put("batch_latency_p99_ms", batch.p99 * 1e3);
  return out;
}

double StatsField(const std::vector<std::pair<std::string, double>>& fields,
                  const std::string& name) {
  for (const auto& [key, value] : fields) {
    if (key == name) return value;
  }
  return 0.0;
}

}  // namespace leva::serve
