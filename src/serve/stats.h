#ifndef LEVA_SERVE_STATS_H_
#define LEVA_SERVE_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace leva::serve {

/// Bounded sliding window of recent latency samples: a fixed-capacity ring
/// the recording threads overwrite in arrival order, snapshotted on demand
/// for percentile computation. Memory is constant regardless of uptime.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t capacity = 4096) : capacity_(capacity) {}

  void Record(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(seconds);
    } else {
      ring_[count_ % capacity_] = seconds;
    }
    ++count_;
  }

  /// Unordered copy of the window's samples.
  std::vector<double> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_;
  }

  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  std::vector<double> ring_;
  uint64_t count_ = 0;  ///< lifetime samples (>= ring_.size())
};

/// Live counters for the serving daemon, updated lock-free from the I/O loop
/// and the batch dispatcher, and rendered into the STATS response as named
/// (string, double) fields so the wire format never needs a version bump for
/// a new counter.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> requests_ping{0};
  std::atomic<uint64_t> requests_featurize{0};
  std::atomic<uint64_t> requests_stats{0};
  std::atomic<uint64_t> requests_reload{0};
  std::atomic<uint64_t> requests_drain{0};
  std::atomic<uint64_t> rows_featurized{0};
  std::atomic<uint64_t> batches_executed{0};
  std::atomic<uint64_t> overload_rejections{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> featurize_errors{0};
  std::atomic<uint64_t> reloads_ok{0};
  std::atomic<uint64_t> reloads_failed{0};
  /// Bumped on every successful RELOAD: lets clients observe which model
  /// generation is serving.
  std::atomic<uint64_t> model_generation{0};

  /// FEATURIZE request latency, enqueue to response-encoded (seconds).
  LatencyReservoir request_latency;
  /// Coalesced-batch execution latency, one sample per Featurize call.
  LatencyReservoir batch_latency;

  /// Renders every counter plus p50/p95/p99 of both latency reservoirs (in
  /// milliseconds) as named fields, ready for EncodeStatsResponse.
  std::vector<std::pair<std::string, double>> Render(
      double uptime_seconds) const;
};

/// Field accessor for decoded STATS responses (client side, benches, tests).
double StatsField(const std::vector<std::pair<std::string, double>>& fields,
                  const std::string& name);

}  // namespace leva::serve

#endif  // LEVA_SERVE_STATS_H_
