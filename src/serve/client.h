#ifndef LEVA_SERVE_CLIENT_H_
#define LEVA_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "serve/protocol.h"

namespace leva::serve {

/// Minimal blocking client for the serving protocol: one TCP connection, one
/// outstanding request at a time (RoundTrip verifies the echoed request id).
/// Benches and tests that want pipelining or concurrency open one Client per
/// thread. Movable, not copyable; Close() (or destruction) drops the socket.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects and applies `timeout_ms` as both send and receive timeout;
  /// a server that stops responding surfaces as an IOError, not a hang.
  Status Connect(const std::string& host, uint16_t port,
                 int timeout_ms = 5000);
  void Close();
  bool connected() const { return fd_ >= 0; }

  Status Ping();
  /// Featurizes `request.rows`; the request id is assigned by the client.
  /// On success the response carries rows x width features (bit-exact).
  Result<DecodedResponse> Featurize(const FeaturizeRequest& request);
  Result<std::vector<std::pair<std::string, double>>> Stats();
  Status Reload(const ReloadRequest& request);
  /// Asks the server to drain and shut down (acknowledged before the drain).
  Status Drain();

  /// Sends one framed request payload and blocks for the matching response.
  Result<DecodedResponse> RoundTrip(std::string_view payload,
                                    uint64_t expect_id);

  /// Pipelining primitives: send without waiting, then collect responses in
  /// whatever order the server completes them (match by request_id — the
  /// batcher completes FEATURIZE requests when their batch executes).
  Status Send(std::string_view payload);
  Result<DecodedResponse> ReadResponse();

  uint64_t NextRequestId() { return next_id_++; }

 private:
  Status SendAll(std::string_view bytes);
  /// Blocks until one complete frame arrives; hands back its payload.
  Result<std::string> RecvFrame();

  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::string inbuf_;
};

}  // namespace leva::serve

#endif  // LEVA_SERVE_CLIENT_H_
