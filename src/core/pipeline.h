#ifndef LEVA_CORE_PIPELINE_H_
#define LEVA_CORE_PIPELINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "common/storage.h"
#include "common/timer.h"
#include "core/token_resolver.h"
#include "embed/embedding.h"
#include "embed/line.h"
#include "embed/mf.h"
#include "embed/walks.h"
#include "embed/word2vec.h"
#include "graph/graph.h"
#include "ml/dataset.h"
#include "ml/featurize.h"
#include "table/table.h"
#include "text/textifier.h"

namespace leva {

class UpdateLog;
struct UpdateRecord;

/// Which embedding method the construction stage uses (Section 4.2).
enum class EmbeddingMethod {
  kAuto,                 ///< MF when the estimated memory fits, else RW
  kMatrixFactorization,  ///< randomized SVD of the proximity matrix
  kRandomWalk,           ///< random walks + Word2Vec
  kLine,                 ///< LINE-style edge sampling (plug-in extension)
};

/// How Base-Table rows are featurized at deployment (Section 4.4).
enum class Featurization {
  kRowOnly,       ///< the row-node embedding
  kRowPlusValue,  ///< row embedding ++ mean of adjacent value-node embeddings
};

/// End-to-end configuration (Table 2 defaults).
struct LevaConfig {
  TextifyOptions textify;
  GraphOptions graph;
  EmbeddingMethod method = EmbeddingMethod::kAuto;
  size_t embedding_dim = 100;
  Featurization featurization = Featurization::kRowPlusValue;
  /// Memory budget steering the kAuto MF/RW decision.
  size_t memory_budget_bytes = size_t{1} << 30;
  WalkOptions walks;
  Word2VecOptions word2vec;
  MfOptions mf;
  LineOptions line;
  uint64_t seed = 42;
  /// Worker threads for every parallel stage (walk generation, Word2Vec,
  /// SVD matmuls, batched featurization). 0 = hardware_concurrency. All
  /// stages except Hogwild Word2Vec (see Word2VecOptions::deterministic)
  /// produce bit-identical results at any thread count for a fixed seed.
  size_t threads = 0;
  /// Rows per serving batch in Featurize: tokens are textified, interned, and
  /// resolved batch by batch, bounding the textified-column working set on
  /// huge tables (the resolver cache itself is bounded by an eviction cap).
  /// 0 = the whole table as one batch. Output is identical for any value.
  size_t featurize_batch_size = 0;
  /// Storage tier SaveSnapshot writes the embedding matrix at (and therefore
  /// the tier a loaded snapshot serves from — dequantization is fused into
  /// the featurize gather, no fp64 matrix is ever materialized). Fitting is
  /// always fp64; quantization happens at save time. Recorded in the
  /// snapshot's serialized config.
  StorageTier quantize_tier = StorageTier::kFp64;
};

/// Counters from the most recent (batched) Featurize call. `store_lookups`
/// counts hash probes into the embedding/graph stores; it equals
/// `distinct_tokens` — the tokens newly resolved by this call — and never
/// `token_occurrences`, the fast path's cost model. On a warm resolver cache
/// (a repeat Featurize over the same vocabulary) both drop to zero.
struct FeaturizeStats {
  size_t rows = 0;
  size_t batches = 0;
  size_t token_occurrences = 0;
  size_t distinct_tokens = 0;
  size_t store_lookups = 0;
};

/// Outcome of one LevaPipeline::Update batch (or one replayed WAL record).
struct UpdateResult {
  size_t rows_applied = 0;
  size_t new_row_nodes = 0;
  size_t new_value_nodes = 0;
  /// Undirected edges appended to the graph's delta segment.
  size_t new_edges = 0;
  /// Embedding rows written back (new nodes plus touched existing nodes).
  size_t refreshed_vectors = 0;
  /// Delta segments were merged into the base CSR (ratio policy, or the
  /// full-refit path below, which always compacts).
  bool compacted = false;
  /// The chosen method cannot continue training incrementally (MF/LINE), so
  /// the whole graph was re-embedded from scratch.
  bool full_refit = false;
  /// WAL byte offset acknowledging this batch (0 when no log was attached).
  /// A snapshot saved now records it, so recovery replays only later records.
  uint64_t wal_offset = 0;
};

/// How LoadSnapshot/ReloadSnapshot materialize a snapshot's bulk arrays
/// (the embedding matrix and the graph's CSR adjacency).
struct SnapshotLoadOptions {
  /// Map the snapshot file (Env::NewMmapReadableFile) and serve the bulk
  /// arrays as zero-copy views into it, instead of copying them onto the
  /// heap. Load cost becomes O(metadata) and N processes serving the same
  /// snapshot share one physical copy of its pages.
  bool use_mmap = false;
  /// Verify the per-page CRCs of every bulk section (and the components'
  /// structural invariants) at load time. Touches every page — O(model
  /// size) — so the zero-copy fast path turns it off and relies on the
  /// save-time page checksums staying valid on disk; VerifyStorage() runs
  /// the deferred check on demand.
  bool verify_pages = true;
  /// ReloadSnapshot only: reject the swap (leaving the incumbent model
  /// serving) when the snapshot's embedding storage tier differs from the
  /// currently served one. Mixed-tier swaps are fully supported — this is an
  /// operator guard (leva_cli --reload-model sets it) against silently
  /// changing the serving precision of a live endpoint.
  bool require_same_tier = false;
};

/// The Leva system (Fig. 2): textification -> graph construction ->
/// refinement -> embedding construction -> deployment. Fit consumes the
/// whole database (which must contain the Base Table, minus any held-out
/// test rows); Featurize turns Base-Table slices into training datasets.
///
/// Concurrency: Featurize (and FeaturizeLegacy/RowVector) may be called from
/// any number of threads concurrently, and concurrently with ReloadSnapshot
/// and set_serving_options. Each call snapshots the current fitted model (an
/// atomically published, immutable ServingState) at entry and runs against
/// it to completion, so a reload mid-call never mixes models. Fit and
/// LoadSnapshot require external exclusion (they reset profiling and the
/// serving knobs); accessors returning references (embedding(), graph(),
/// textifier()) are valid until the next successful Fit/Load/ReloadSnapshot.
/// The publication point for an immutable, shared model: writers swap in a
/// fresh shared_ptr, readers pin whatever is current and keep it alive for
/// the duration of their call (RCU by refcount). Semantically this is
/// std::atomic<std::shared_ptr<T>>, but libstdc++ 12's _Sp_atomic unlocks
/// its spinlock with relaxed ordering in load(), which ThreadSanitizer
/// reports as a race against store(); a plain mutex around the two-refcount
/// critical section has identical semantics, is sanitizer-clean, and is
/// invisible next to the cost of a Featurize call.
template <typename T>
class SharedPtrSlot {
 public:
  SharedPtrSlot() = default;

  std::shared_ptr<T> load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  void store(std::shared_ptr<T> next) {
    // Swap under the lock, destroy outside it: a retired model's destructor
    // (potentially unmapping gigabytes) must not stall concurrent pins.
    std::shared_ptr<T> retired;
    {
      std::lock_guard<std::mutex> lock(mu_);
      retired = std::move(state_);
      state_ = std::move(next);
    }
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<T> state_;
};

class LevaPipeline {
 public:
  explicit LevaPipeline(LevaConfig config = {})
      : config_(std::move(config)),
        serving_threads_(config_.threads),
        serving_batch_(config_.featurize_batch_size) {}

  // Copies (and moves) share the fitted model: it is immutable once
  // published, so both pipelines serve identical results and the resolver
  // cache stays warm across the copy. Not safe concurrently with writes to
  // the source's stats (i.e. an in-flight Featurize on it).
  LevaPipeline(const LevaPipeline& other)
      : config_(other.config_),
        serving_threads_(
            other.serving_threads_.load(std::memory_order_relaxed)),
        serving_batch_(other.serving_batch_.load(std::memory_order_relaxed)),
        profile_(other.profile_),
        featurize_stats_(other.featurize_stats_) {
    serving_.store(other.serving_.load());
  }
  LevaPipeline& operator=(const LevaPipeline& other) {
    if (this == &other) return *this;
    config_ = other.config_;
    serving_threads_.store(
        other.serving_threads_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    serving_batch_.store(other.serving_batch_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    profile_ = other.profile_;
    featurize_stats_ = other.featurize_stats_;
    serving_.store(other.serving_.load());
    return *this;
  }
  LevaPipeline(LevaPipeline&& other) noexcept
      : LevaPipeline(static_cast<const LevaPipeline&>(other)) {}
  LevaPipeline& operator=(LevaPipeline&& other) noexcept {
    return *this = static_cast<const LevaPipeline&>(other);
  }

  /// One page-aligned bulk section of an open snapshot: where its payload
  /// lives in the file and the CRC32C of each of its (padded) pages, kept so
  /// a lazily loaded model can be re-verified on demand (VerifyStorage).
  struct BulkPages {
    std::string name;
    size_t file_offset = 0;
    size_t page_size = 0;
    size_t payload_len = 0;  // unpadded bytes
    std::vector<uint32_t> page_crcs;
  };

  /// The immutable fitted model plus its warm serving cache — everything a
  /// Featurize call needs. Published through an atomic shared_ptr: readers
  /// pin the state they started with, ReloadSnapshot swaps in a fresh one,
  /// and the old model (and any snapshot mapping backing it) is torn down
  /// when the last in-flight call drops its reference.
  struct ServingState {
    LevaConfig config;  // the configuration the model was fitted under
    Textifier textifier;
    LevaGraph graph;
    Embedding embedding;
    EmbeddingMethod chosen = EmbeddingMethod::kAuto;
    // Pure function of (dim, featurization); rendered once at publish time.
    std::vector<std::string> feature_names;
    // Set only for mmap-backed loads: the mapping the stores borrow from,
    // and the page-CRC table for deferred verification.
    std::shared_ptr<const MappedRegion> region;
    std::vector<BulkPages> bulk_pages;
    // WAL position this model is consistent with: every log record up to
    // byte `wal_offset` (`wal_records` of them) is applied, none past it.
    // Snapshot v5 persists the pair, so a reload knows where replay resumes.
    uint64_t wal_offset = 0;
    uint64_t wal_records = 0;
    // Serving-side token cache shared across Featurize calls on this model.
    // Resolution is a pure function of the stores above, so the cache lives
    // (and dies) with them. Guarded: the sequential resolve phase of each
    // batch runs under the mutex; the parallel gather phase only reads.
    mutable std::mutex resolver_mu;
    mutable TokenResolver resolver{nullptr, nullptr, false};
  };

  /// Runs stages 1-4 over `db`. Test data must not be part of `db`
  /// (Section 2.4). Builds the whole model off to the side and publishes it
  /// only on success: a failed Fit leaves the previous model serving.
  Status Fit(const Database& db);

  /// Streaming ingest (the crash-safe incremental alternative to a full
  /// re-Fit): appends `new_rows` — a batch of fresh rows for a table the
  /// model was fitted on — to the served model. The batch is first made
  /// durable in `log` (append + fsync; the acknowledgment point), then
  /// applied to a successor model built entirely off to the side: the frozen
  /// textifier tokenizes the rows, the graph grows by one row node per row
  /// plus value nodes/edges in its delta segment (base CSR untouched — it
  /// may be an mmap view), and the embedding is refreshed warm — under the
  /// random-walk method, walks seeded at the new/touched nodes continue SGNS
  /// training from the served vectors and only those nodes' rows are
  /// rewritten; MF/LINE cannot train incrementally, so they compact and
  /// re-embed (UpdateResult::full_refit). The resolver cache carries over
  /// with only the touched tokens re-resolved. Publication is the same
  /// atomic swap ReloadSnapshot uses: concurrent Featurize calls see either
  /// the old model or the new one, never a half-applied delta; on any error
  /// the incumbent keeps serving untouched (though an acknowledged record
  /// stays in the log and will re-apply on recovery).
  ///
  /// `log` may be null (apply without durability — replay and tests).
  /// Requires the same external exclusion as Fit against other writers;
  /// readers need none. Deterministic: the refresh RNG is seeded from the
  /// config seed and the record index, so replaying the same log from the
  /// same snapshot reproduces the same model.
  Result<UpdateResult> Update(const Table& new_rows, UpdateLog* log = nullptr);

  /// Replays every WAL record past the served model's recorded position
  /// (ServingState::wal_offset — what the snapshot stored) through the same
  /// apply path as Update, publishing once at the end. Returns the number of
  /// records applied. Idempotent: a second call finds the position already
  /// at the log's end and applies nothing, and re-running recovery from the
  /// same snapshot yields a byte-identical model (the per-record RNG seeds
  /// depend only on the record index). A torn trailing record — a crash
  /// mid-append, never acknowledged — is skipped cleanly.
  Result<size_t> RecoverFromLog(const std::string& wal_path,
                                Env* env = nullptr);

  /// Deploys the embedding on `table` (stage 5). When `rows_in_graph` is
  /// true, row i maps to the row node "<table>:<i>" created at Fit time;
  /// otherwise (held-out data) each row's vector is composed from the value
  /// node embeddings of its textified tokens, with unseen numeric values
  /// falling into existing histogram bins and unseen strings contributing
  /// nothing (the paper's unseen-data handling).
  ///
  /// This is the batched serving fast path: columns are textified in one
  /// pass per batch (Textifier::TransformColumn), each distinct token is
  /// resolved to (embedding row id, inverse-degree weight) once across the
  /// model's lifetime (a persistent TokenResolver cache — resolution is a
  /// pure function of the fitted stores), and rows are gathered into the
  /// MLDataset matrix by a cache-blocked ParallelFor with no per-row
  /// allocation. Output is bit-identical to FeaturizeLegacy at any thread
  /// count / batch size. Records a "featurize" stage in profile() and
  /// updates featurize_stats(); safe to call concurrently (see the class
  /// comment), though the stats then reflect whichever call finished last.
  Result<MLDataset> Featurize(const Table& table,
                              const std::string& target_column,
                              const TargetEncoder& encoder,
                              bool rows_in_graph) const;

  /// Reference row-at-a-time implementation (one RowVector call per row),
  /// kept compiled as the differential-testing and benchmarking baseline for
  /// the batched path.
  Result<MLDataset> FeaturizeLegacy(const Table& table,
                                    const std::string& target_column,
                                    const TargetEncoder& encoder,
                                    bool rows_in_graph) const;

  /// Vector for one row under the current featurization strategy.
  Result<std::vector<double>> RowVector(const Table& table, size_t row,
                                        const std::string& target_column,
                                        bool rows_in_graph) const;

  const Embedding& embedding() const { return state_or_empty().embedding; }
  const LevaGraph& graph() const { return state_or_empty().graph; }
  const Textifier& textifier() const { return state_or_empty().textifier; }
  EmbeddingMethod chosen_method() const { return state_or_empty().chosen; }
  /// Wall-clock per pipeline stage (Fig. 6b/6c), including the serving-side
  /// "featurize" stage accumulated across Featurize calls.
  const StageProfile& profile() const { return profile_; }
  /// Resolver hit counts from the most recent Featurize call.
  const FeaturizeStats& featurize_stats() const { return featurize_stats_; }
  /// The configuration this pipeline was constructed with (Fit's recipe);
  /// replaced wholesale by LoadSnapshot. Serving-knob overrides applied via
  /// set_serving_options are tracked separately and not reflected here.
  const LevaConfig& config() const { return config_; }

  /// Retunes the serving-only knobs (they never affect the fitted state,
  /// only how Featurize schedules its work). Safe to call while Featurize
  /// runs: calls already in flight keep their scheduling, later calls pick
  /// up the new values.
  void set_serving_options(size_t threads, size_t featurize_batch_size) {
    serving_threads_.store(threads, std::memory_order_relaxed);
    serving_batch_.store(featurize_batch_size, std::memory_order_relaxed);
  }

  /// Writes the whole fitted pipeline (config, textifier, graph, embedding,
  /// warm resolver cache) to `path` as one versioned, checksummed snapshot,
  /// crash-atomically: the bytes land under a temp name and are fsync'ed
  /// before a rename over `path`, so a crash at any point leaves either the
  /// previous snapshot or the new one — never a torn file. The big arrays
  /// (embedding matrix, CSR adjacency) are written as page-aligned bulk
  /// sections with per-page CRC32C so a loader can mmap them in place. A
  /// loaded snapshot serves Featurize bit-identically to this pipeline.
  /// `env` defaults to the real filesystem; tests pass a FaultInjectionEnv.
  /// The embedding matrix is written at the served config's quantize_tier,
  /// quantizing on the fly when that differs from the served tier (the
  /// serving store is never touched); the tier actually written is recorded
  /// in the snapshot's config. The explicit-tier overload requantizes to
  /// `tier` regardless of the config (leva_cli --quantize on a loaded
  /// model).
  Status SaveSnapshot(const std::string& path, Env* env = nullptr) const;
  Status SaveSnapshot(const std::string& path, StorageTier tier,
                      Env* env = nullptr) const;

  /// Restores a pipeline saved by SaveSnapshot, replacing this pipeline's
  /// state and marking it fitted (serving can skip Fit entirely). Every
  /// checksum (per-page for bulk sections), the format version, and — when
  /// `options.verify_pages` — the structural invariants of each component
  /// are validated before any member is touched: a corrupt, truncated, or
  /// version-skewed file is rejected with a descriptive error and the
  /// pipeline is left exactly as it was. Also resets profiling/stats and
  /// the serving knobs to the snapshot's configuration, so it requires the
  /// same external exclusion as Fit; use ReloadSnapshot to swap models
  /// under live traffic.
  Status LoadSnapshot(const std::string& path, Env* env = nullptr,
                      SnapshotLoadOptions options = {});

  /// Hot model swap: loads `path` into a shadow model and atomically
  /// publishes it. Featurize calls already in flight finish on the model
  /// they started with; calls entering afterwards see the new one. Nothing
  /// else on the pipeline is touched — profiling keeps accumulating and the
  /// serving knobs keep their current values. On error the previous model
  /// keeps serving untouched.
  Status ReloadSnapshot(const std::string& path, Env* env = nullptr,
                        SnapshotLoadOptions options = {});

  /// Verifies the per-page CRCs of the currently served model's mapped bulk
  /// sections — the check a lazy load (verify_pages = false) deferred.
  /// Returns OK for a model with no mapped storage (fitted, or loaded by
  /// copy). Names the section and page index of the first mismatch.
  Status VerifyStorage() const;

  /// True when the served model's bulk arrays are views into a mapped
  /// snapshot region rather than owned heap copies.
  bool uses_mmap() const {
    const std::shared_ptr<const ServingState> s = serving_.load();
    return s != nullptr && s->region != nullptr;
  }

  /// Snapshot format version written by SaveSnapshot. Version 2 introduced
  /// page-aligned, per-page-checksummed bulk sections (mmap-able); version 3
  /// added the walk-engine selection fields to the serialized config;
  /// version 4 added quantized embedding storage tiers (the tier byte in the
  /// config and embedding sections, and per-tier bulk sections); version 5
  /// added the applied-WAL position (offset + record count) to the meta
  /// section so recovery after a crash replays exactly the unapplied tail of
  /// the update log. Older versions are rejected with an error naming both
  /// versions.
  static constexpr uint32_t kSnapshotVersion = 5;

 private:
  // Mean of the value-node embeddings of `tokens` into `out` (zeros when no
  // token is known).
  void ComposeFromTokens(const ServingState& s,
                         const std::vector<std::string>& tokens,
                         std::vector<double>* out) const;
  Result<std::vector<double>> RowVectorImpl(const ServingState& s,
                                            const Table& table, size_t row,
                                            const std::string& target_column,
                                            bool rows_in_graph) const;

  // Builds the successor ServingState for one update batch (shared by Update
  // and RecoverFromLog — the latter passes the replayed record's position).
  // Pure with respect to the pipeline: nothing is published here.
  Result<std::shared_ptr<const ServingState>> ApplyUpdateBatch(
      const ServingState& s, const Table& new_rows, uint64_t wal_offset,
      uint64_t wal_records, UpdateResult* result) const;

  /// The published model, or a static empty state so accessors on an
  /// unfitted pipeline return empty components instead of crashing.
  const ServingState& state_or_empty() const;

  LevaConfig config_;
  // The fitted model. Null until the first successful Fit/LoadSnapshot.
  SharedPtrSlot<const ServingState> serving_;
  // Serving knobs, split out of config_ so set_serving_options can retune
  // them while Featurize calls are in flight.
  std::atomic<size_t> serving_threads_;
  std::atomic<size_t> serving_batch_;
  // Guards the profile/stats accumulators against concurrent Featurize
  // calls. Fit writes profile_ without the lock (it requires exclusion).
  mutable std::mutex stats_mu_;
  mutable StageProfile profile_;
  mutable FeaturizeStats featurize_stats_;
};

}  // namespace leva

#endif  // LEVA_CORE_PIPELINE_H_
