#ifndef LEVA_CORE_PIPELINE_H_
#define LEVA_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "common/timer.h"
#include "core/token_resolver.h"
#include "embed/embedding.h"
#include "embed/line.h"
#include "embed/mf.h"
#include "embed/walks.h"
#include "embed/word2vec.h"
#include "graph/graph.h"
#include "ml/dataset.h"
#include "ml/featurize.h"
#include "table/table.h"
#include "text/textifier.h"

namespace leva {

/// Which embedding method the construction stage uses (Section 4.2).
enum class EmbeddingMethod {
  kAuto,                 ///< MF when the estimated memory fits, else RW
  kMatrixFactorization,  ///< randomized SVD of the proximity matrix
  kRandomWalk,           ///< random walks + Word2Vec
  kLine,                 ///< LINE-style edge sampling (plug-in extension)
};

/// How Base-Table rows are featurized at deployment (Section 4.4).
enum class Featurization {
  kRowOnly,       ///< the row-node embedding
  kRowPlusValue,  ///< row embedding ++ mean of adjacent value-node embeddings
};

/// End-to-end configuration (Table 2 defaults).
struct LevaConfig {
  TextifyOptions textify;
  GraphOptions graph;
  EmbeddingMethod method = EmbeddingMethod::kAuto;
  size_t embedding_dim = 100;
  Featurization featurization = Featurization::kRowPlusValue;
  /// Memory budget steering the kAuto MF/RW decision.
  size_t memory_budget_bytes = size_t{1} << 30;
  WalkOptions walks;
  Word2VecOptions word2vec;
  MfOptions mf;
  LineOptions line;
  uint64_t seed = 42;
  /// Worker threads for every parallel stage (walk generation, Word2Vec,
  /// SVD matmuls, batched featurization). 0 = hardware_concurrency. All
  /// stages except Hogwild Word2Vec (see Word2VecOptions::deterministic)
  /// produce bit-identical results at any thread count for a fixed seed.
  size_t threads = 0;
  /// Rows per serving batch in Featurize: tokens are textified, interned, and
  /// resolved batch by batch, bounding the textified-column working set on
  /// huge tables (the resolver cache itself is bounded by an eviction cap).
  /// 0 = the whole table as one batch. Output is identical for any value.
  size_t featurize_batch_size = 0;
};

/// Counters from the most recent (batched) Featurize call. `store_lookups`
/// counts hash probes into the embedding/graph stores; it equals
/// `distinct_tokens` — the tokens newly resolved by this call — and never
/// `token_occurrences`, the fast path's cost model. On a warm resolver cache
/// (a repeat Featurize over the same vocabulary) both drop to zero.
struct FeaturizeStats {
  size_t rows = 0;
  size_t batches = 0;
  size_t token_occurrences = 0;
  size_t distinct_tokens = 0;
  size_t store_lookups = 0;
};

/// The Leva system (Fig. 2): textification -> graph construction ->
/// refinement -> embedding construction -> deployment. Fit consumes the
/// whole database (which must contain the Base Table, minus any held-out
/// test rows); Featurize turns Base-Table slices into training datasets.
class LevaPipeline {
 public:
  explicit LevaPipeline(LevaConfig config = {}) : config_(std::move(config)) {}

  /// Runs stages 1-4 over `db`. Test data must not be part of `db`
  /// (Section 2.4).
  Status Fit(const Database& db);

  /// Deploys the embedding on `table` (stage 5). When `rows_in_graph` is
  /// true, row i maps to the row node "<table>:<i>" created at Fit time;
  /// otherwise (held-out data) each row's vector is composed from the value
  /// node embeddings of its textified tokens, with unseen numeric values
  /// falling into existing histogram bins and unseen strings contributing
  /// nothing (the paper's unseen-data handling).
  ///
  /// This is the batched serving fast path: columns are textified in one
  /// pass per batch (Textifier::TransformColumn), each distinct token is
  /// resolved to (embedding row id, inverse-degree weight) once across the
  /// pipeline's lifetime (a persistent TokenResolver cache — resolution is a
  /// pure function of the fitted stores), and rows are gathered into the
  /// MLDataset matrix by a cache-blocked ParallelFor with no per-row
  /// allocation. Output is bit-identical to FeaturizeLegacy at any thread
  /// count / batch size. Records a "featurize" stage in profile() and
  /// updates featurize_stats() and the resolver cache, so calls on the same
  /// pipeline must not overlap.
  Result<MLDataset> Featurize(const Table& table,
                              const std::string& target_column,
                              const TargetEncoder& encoder,
                              bool rows_in_graph) const;

  /// Reference row-at-a-time implementation (one RowVector call per row),
  /// kept compiled as the differential-testing and benchmarking baseline for
  /// the batched path.
  Result<MLDataset> FeaturizeLegacy(const Table& table,
                                    const std::string& target_column,
                                    const TargetEncoder& encoder,
                                    bool rows_in_graph) const;

  /// Vector for one row under the current featurization strategy.
  Result<std::vector<double>> RowVector(const Table& table, size_t row,
                                        const std::string& target_column,
                                        bool rows_in_graph) const;

  const Embedding& embedding() const { return embedding_; }
  const LevaGraph& graph() const { return graph_; }
  const Textifier& textifier() const { return textifier_; }
  EmbeddingMethod chosen_method() const { return chosen_; }
  /// Wall-clock per pipeline stage (Fig. 6b/6c), including the serving-side
  /// "featurize" stage accumulated across Featurize calls.
  const StageProfile& profile() const { return profile_; }
  /// Resolver hit counts from the most recent Featurize call.
  const FeaturizeStats& featurize_stats() const { return featurize_stats_; }
  const LevaConfig& config() const { return config_; }

  /// Retunes the serving-only knobs after Fit (they never affect the fitted
  /// state, only how Featurize schedules its work).
  void set_serving_options(size_t threads, size_t featurize_batch_size) {
    config_.threads = threads;
    config_.featurize_batch_size = featurize_batch_size;
  }

  /// Writes the whole fitted pipeline (config, textifier, graph, embedding,
  /// warm resolver cache) to `path` as one versioned, per-section-checksummed
  /// snapshot, crash-atomically: the bytes land under a temp name and are
  /// fsync'ed before a rename over `path`, so a crash at any point leaves
  /// either the previous snapshot or the new one — never a torn file. A
  /// loaded snapshot serves Featurize bit-identically to this pipeline.
  /// `env` defaults to the real filesystem; tests pass a FaultInjectionEnv.
  Status SaveSnapshot(const std::string& path, Env* env = nullptr) const;

  /// Restores a pipeline saved by SaveSnapshot, replacing this pipeline's
  /// state and marking it fitted (serving can skip Fit entirely). Every
  /// section checksum, the format version, and the structural invariants of
  /// each component are validated before any member is touched: a corrupt,
  /// truncated, or version-skewed file is rejected with a descriptive error
  /// and the pipeline is left exactly as it was.
  Status LoadSnapshot(const std::string& path, Env* env = nullptr);

  /// Snapshot format version written by SaveSnapshot.
  static constexpr uint32_t kSnapshotVersion = 1;

 private:
  // Mean of the value-node embeddings of `tokens` into `out` (zeros when no
  // token is known).
  void ComposeFromTokens(const std::vector<std::string>& tokens,
                         std::vector<double>* out) const;

  LevaConfig config_;
  Textifier textifier_;
  LevaGraph graph_;
  Embedding embedding_;
  EmbeddingMethod chosen_ = EmbeddingMethod::kAuto;
  // Mutable so const Featurize can account its "featurize" stage; updated on
  // the calling thread only.
  mutable StageProfile profile_;
  mutable FeaturizeStats featurize_stats_;
  // Serving-side token cache shared across Featurize calls. Rebuilt whenever
  // its store pointers no longer match this pipeline's members (fresh
  // pipeline, copy, move) and reset by Fit; bounded by an eviction cap.
  mutable TokenResolver resolver_cache_{nullptr, nullptr, false};
  // Feature names are a pure function of (dim, width); built once and copied
  // into each MLDataset instead of re-rendering ~2*dim strings per call.
  mutable std::vector<std::string> feature_names_cache_;
  bool fitted_ = false;
};

}  // namespace leva

#endif  // LEVA_CORE_PIPELINE_H_
