#ifndef LEVA_CORE_PIPELINE_H_
#define LEVA_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "embed/embedding.h"
#include "embed/line.h"
#include "embed/mf.h"
#include "embed/walks.h"
#include "embed/word2vec.h"
#include "graph/graph.h"
#include "ml/dataset.h"
#include "ml/featurize.h"
#include "table/table.h"
#include "text/textifier.h"

namespace leva {

/// Which embedding method the construction stage uses (Section 4.2).
enum class EmbeddingMethod {
  kAuto,                 ///< MF when the estimated memory fits, else RW
  kMatrixFactorization,  ///< randomized SVD of the proximity matrix
  kRandomWalk,           ///< random walks + Word2Vec
  kLine,                 ///< LINE-style edge sampling (plug-in extension)
};

/// How Base-Table rows are featurized at deployment (Section 4.4).
enum class Featurization {
  kRowOnly,       ///< the row-node embedding
  kRowPlusValue,  ///< row embedding ++ mean of adjacent value-node embeddings
};

/// End-to-end configuration (Table 2 defaults).
struct LevaConfig {
  TextifyOptions textify;
  GraphOptions graph;
  EmbeddingMethod method = EmbeddingMethod::kAuto;
  size_t embedding_dim = 100;
  Featurization featurization = Featurization::kRowPlusValue;
  /// Memory budget steering the kAuto MF/RW decision.
  size_t memory_budget_bytes = size_t{1} << 30;
  WalkOptions walks;
  Word2VecOptions word2vec;
  MfOptions mf;
  LineOptions line;
  uint64_t seed = 42;
  /// Worker threads for every parallel stage (walk generation, Word2Vec,
  /// SVD matmuls). 0 = hardware_concurrency. All stages except Hogwild
  /// Word2Vec (see Word2VecOptions::deterministic) produce bit-identical
  /// results at any thread count for a fixed seed.
  size_t threads = 0;
};

/// The Leva system (Fig. 2): textification -> graph construction ->
/// refinement -> embedding construction -> deployment. Fit consumes the
/// whole database (which must contain the Base Table, minus any held-out
/// test rows); Featurize turns Base-Table slices into training datasets.
class LevaPipeline {
 public:
  explicit LevaPipeline(LevaConfig config = {}) : config_(std::move(config)) {}

  /// Runs stages 1-4 over `db`. Test data must not be part of `db`
  /// (Section 2.4).
  Status Fit(const Database& db);

  /// Deploys the embedding on `table` (stage 5). When `rows_in_graph` is
  /// true, row i maps to the row node "<table>:<i>" created at Fit time;
  /// otherwise (held-out data) each row's vector is composed from the value
  /// node embeddings of its textified tokens, with unseen numeric values
  /// falling into existing histogram bins and unseen strings contributing
  /// nothing (the paper's unseen-data handling).
  Result<MLDataset> Featurize(const Table& table,
                              const std::string& target_column,
                              const TargetEncoder& encoder,
                              bool rows_in_graph) const;

  /// Vector for one row under the current featurization strategy.
  Result<std::vector<double>> RowVector(const Table& table, size_t row,
                                        const std::string& target_column,
                                        bool rows_in_graph) const;

  const Embedding& embedding() const { return embedding_; }
  const LevaGraph& graph() const { return graph_; }
  const Textifier& textifier() const { return textifier_; }
  EmbeddingMethod chosen_method() const { return chosen_; }
  /// Wall-clock per pipeline stage (Fig. 6b/6c).
  const StageProfile& profile() const { return profile_; }
  const LevaConfig& config() const { return config_; }

 private:
  // Mean of the value-node embeddings of `tokens` into `out` (zeros when no
  // token is known).
  void ComposeFromTokens(const std::vector<std::string>& tokens,
                         std::vector<double>* out) const;

  LevaConfig config_;
  Textifier textifier_;
  LevaGraph graph_;
  Embedding embedding_;
  EmbeddingMethod chosen_ = EmbeddingMethod::kAuto;
  StageProfile profile_;
  bool fitted_ = false;
};

}  // namespace leva

#endif  // LEVA_CORE_PIPELINE_H_
