#ifndef LEVA_CORE_UPDATE_LOG_H_
#define LEVA_CORE_UPDATE_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "table/table.h"

namespace leva {

/// One acknowledged batch of rows appended to a single table. The unit of
/// durability for streaming updates: `LevaPipeline::Update` logs the batch
/// before applying it, so a crash at any later point can replay it.
struct UpdateRecord {
  std::string table;                      ///< target table name
  std::vector<std::string> columns;       ///< column names, for shape checks
  std::vector<std::vector<Value>> rows;   ///< row-major cells
};

/// Append-only write-ahead row log, riding the io.h Env/CRC32C machinery.
///
/// File layout: an 8-byte magic ("LEVAWAL1") followed by records. Each
/// record is framed as
///
///     u32 payload_length | u32 crc32c(payload) | payload bytes
///
/// with the payload a BufferWriter serialization of one UpdateRecord. A
/// record is acknowledged only after Append returns OK, which implies the
/// bytes were written *and* fsync'ed. Replay addresses records by byte
/// offset: the snapshot stores the offset up to which records were applied,
/// and recovery re-reads only the tail past it — re-running recovery from
/// the same offset is a no-op (idempotent replay).
///
/// Torn tails: a crash mid-append can leave a partial record at the end of
/// the file. Such bytes were never acknowledged, so Read stops cleanly at
/// the first record that fails its length or checksum frame, and Open
/// truncates the tail (crash-atomically, via AtomicWriteFile of the valid
/// prefix) before appending anything new.
class UpdateLog {
 public:
  static constexpr char kMagic[8] = {'L', 'E', 'V', 'A', 'W', 'A', 'L', '1'};
  static constexpr uint64_t kHeaderSize = 8;

  /// Opens (creating if missing) the log at `path` for appending. An
  /// existing file is scanned: the magic must match, and any torn tail left
  /// by a crash is truncated away before the log accepts new records.
  static Result<std::unique_ptr<UpdateLog>> Open(const std::string& path,
                                                 Env* env = Env::Default());

  /// Serializes and appends one record (a single WritableFile::Append of
  /// frame+payload together, so an injected torn write produces a torn
  /// *record*), then fsyncs. On OK the record is durable and end_offset()
  /// has advanced past it; on error nothing is acknowledged.
  Status Append(const UpdateRecord& record);

  Status Close();

  /// Byte offset just past the last acknowledged record — the position a
  /// snapshot taken now should record as fully applied.
  uint64_t end_offset() const { return end_offset_; }

  /// Records acknowledged over the lifetime of the file (valid records found
  /// at Open plus records appended since).
  uint64_t record_count() const { return record_count_; }

  const std::string& path() const { return path_; }

  struct ReplayResult {
    std::vector<UpdateRecord> records;  ///< valid records past `from_offset`
    uint64_t end_offset = 0;            ///< offset just past the last one
    uint64_t record_count = 0;  ///< valid records in the whole file
    bool torn_tail = false;     ///< trailing bytes failed to parse
  };

  /// Reads every valid record starting at byte offset `from_offset` (pass
  /// kHeaderSize — or a snapshot's applied offset — never 0 into the magic).
  /// A record that fails its frame (truncated length, bad CRC, short
  /// payload) terminates the scan with torn_tail=true; everything before it
  /// is the consistent acknowledged prefix.
  static Result<ReplayResult> Read(const std::string& path,
                                   uint64_t from_offset,
                                   Env* env = Env::Default());

 private:
  UpdateLog(std::string path, Env* env) : path_(std::move(path)), env_(env) {}

  std::string path_;
  Env* env_;
  std::unique_ptr<WritableFile> file_;
  uint64_t end_offset_ = 0;
  uint64_t record_count_ = 0;
};

}  // namespace leva

#endif  // LEVA_CORE_UPDATE_LOG_H_
