#include "core/update_log.h"

#include <cstring>
#include <utility>

namespace leva {
namespace {

// Value wire tags. Stable: the WAL outlives the process that wrote it.
enum : uint8_t {
  kTagNull = 0,
  kTagInt = 1,
  kTagDouble = 2,
  kTagString = 3,
};

void PutValue(BufferWriter* w, const Value& v) {
  if (v.is_null()) {
    w->PutU8(kTagNull);
  } else if (v.is_int()) {
    w->PutU8(kTagInt);
    w->PutU64(static_cast<uint64_t>(v.as_int()));
  } else if (v.is_double()) {
    w->PutU8(kTagDouble);
    w->PutDouble(v.as_double());
  } else {
    w->PutU8(kTagString);
    w->PutString(v.as_string());
  }
}

Status GetValue(BufferReader* r, Value* out) {
  uint8_t tag;
  LEVA_RETURN_IF_ERROR(r->GetU8(&tag));
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return Status::OK();
    case kTagInt: {
      uint64_t bits;
      LEVA_RETURN_IF_ERROR(r->GetU64(&bits));
      *out = Value(static_cast<int64_t>(bits));
      return Status::OK();
    }
    case kTagDouble: {
      double d;
      LEVA_RETURN_IF_ERROR(r->GetDouble(&d));
      *out = Value(d);
      return Status::OK();
    }
    case kTagString: {
      std::string s;
      LEVA_RETURN_IF_ERROR(r->GetString(&s));
      *out = Value(std::move(s));
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("update log: unknown value tag " +
                                     std::to_string(tag));
  }
}

std::string SerializeRecord(const UpdateRecord& record) {
  BufferWriter w;
  w.PutString(record.table);
  w.PutU32(static_cast<uint32_t>(record.columns.size()));
  for (const std::string& c : record.columns) w.PutString(c);
  w.PutU64(record.rows.size());
  for (const std::vector<Value>& row : record.rows) {
    for (size_t c = 0; c < record.columns.size(); ++c) {
      PutValue(&w, c < row.size() ? row[c] : Value::Null());
    }
  }
  return w.Release();
}

Status ParseRecord(std::string_view payload, UpdateRecord* out) {
  BufferReader r(payload);
  LEVA_RETURN_IF_ERROR(r.GetString(&out->table));
  uint32_t num_cols;
  LEVA_RETURN_IF_ERROR(r.GetU32(&num_cols));
  out->columns.clear();
  out->columns.reserve(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    std::string name;
    LEVA_RETURN_IF_ERROR(r.GetString(&name));
    out->columns.push_back(std::move(name));
  }
  uint64_t num_rows;
  LEVA_RETURN_IF_ERROR(r.GetU64(&num_rows));
  out->rows.clear();
  for (uint64_t i = 0; i < num_rows; ++i) {
    std::vector<Value> row(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c) {
      LEVA_RETURN_IF_ERROR(GetValue(&r, &row[c]));
    }
    out->rows.push_back(std::move(row));
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("update log: record payload has " +
                                   std::to_string(r.remaining()) +
                                   " trailing byte(s)");
  }
  return Status::OK();
}

// Scans `bytes` (a whole log file) from `from_offset`, appending parsed
// records to *out. Returns false (with *out partially filled up to the last
// valid record) when a torn/corrupt frame terminates the scan.
bool ScanRecords(std::string_view bytes, uint64_t from_offset,
                 UpdateLog::ReplayResult* out) {
  size_t pos = static_cast<size_t>(from_offset);
  out->end_offset = from_offset;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) return false;  // torn frame header
    uint32_t len, crc;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (bytes.size() - pos - 8 < len) return false;  // torn payload
    const std::string_view payload = bytes.substr(pos + 8, len);
    if (Crc32c(payload) != crc) return false;  // corrupt payload
    UpdateRecord record;
    if (!ParseRecord(payload, &record).ok()) return false;
    out->records.push_back(std::move(record));
    pos += 8 + len;
    out->end_offset = pos;
  }
  return true;
}

}  // namespace

constexpr char UpdateLog::kMagic[8];

Result<std::unique_ptr<UpdateLog>> UpdateLog::Open(const std::string& path,
                                                   Env* env) {
  std::unique_ptr<UpdateLog> log(new UpdateLog(path, env));
  if (env->FileExists(path)) {
    // Scan the existing file: validate the magic, count the acknowledged
    // prefix, and truncate any torn tail a crash left behind before new
    // records land after it (appending past a torn record would make them
    // unreachable to replay).
    LEVA_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
    if (bytes.size() < kHeaderSize) {
      // A crash during log creation can leave the magic itself torn (any
      // strict prefix, including an empty file). Nothing was ever
      // acknowledged, so rewrite it as a fresh empty log. Anything else
      // under 8 bytes is not ours.
      if (std::memcmp(bytes.data(), kMagic, bytes.size()) != 0) {
        return Status::InvalidArgument(
            "'" + path + "' is not a Leva update log (bad magic)");
      }
      LEVA_RETURN_IF_ERROR(AtomicWriteFile(
          env, path, std::string_view(kMagic, sizeof kMagic)));
      log->end_offset_ = kHeaderSize;
      LEVA_ASSIGN_OR_RETURN(log->file_, env->NewAppendableFile(path));
      return log;
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
      return Status::InvalidArgument("'" + path +
                                     "' is not a Leva update log (bad magic)");
    }
    ReplayResult scan;
    const bool clean = ScanRecords(bytes, kHeaderSize, &scan);
    log->end_offset_ = scan.end_offset;
    log->record_count_ = scan.records.size();
    if (!clean) {
      LEVA_RETURN_IF_ERROR(AtomicWriteFile(
          env, path, std::string_view(bytes.data(), scan.end_offset)));
    }
    LEVA_ASSIGN_OR_RETURN(log->file_, env->NewAppendableFile(path));
  } else {
    LEVA_ASSIGN_OR_RETURN(log->file_, env->NewAppendableFile(path));
    LEVA_RETURN_IF_ERROR(
        log->file_->Append(std::string_view(kMagic, sizeof kMagic)));
    LEVA_RETURN_IF_ERROR(log->file_->Sync());
    log->end_offset_ = kHeaderSize;
  }
  return log;
}

Status UpdateLog::Append(const UpdateRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("update log is closed");
  }
  const std::string payload = SerializeRecord(record);
  BufferWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32c(payload));
  frame.PutBytes(payload.data(), payload.size());
  LEVA_RETURN_IF_ERROR(file_->Append(frame.data()));
  LEVA_RETURN_IF_ERROR(file_->Sync());
  end_offset_ += frame.size();
  ++record_count_;
  return Status::OK();
}

Status UpdateLog::Close() {
  if (file_ == nullptr) return Status::OK();
  std::unique_ptr<WritableFile> file = std::move(file_);
  return file->Close();
}

Result<UpdateLog::ReplayResult> UpdateLog::Read(const std::string& path,
                                                uint64_t from_offset,
                                                Env* env) {
  LEVA_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  if (bytes.size() < kHeaderSize) {
    // Torn magic from a crash during creation (see Open): an empty log as
    // far as replay is concerned — no record was ever acknowledged.
    if (std::memcmp(bytes.data(), kMagic, bytes.size()) != 0) {
      return Status::InvalidArgument(
          "'" + path + "' is not a Leva update log (bad magic)");
    }
    ReplayResult out;
    out.end_offset = from_offset;
    out.torn_tail = true;
    return out;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a Leva update log (bad magic)");
  }
  if (from_offset < kHeaderSize || from_offset > bytes.size()) {
    return Status::InvalidArgument(
        "update log replay offset " + std::to_string(from_offset) +
        " out of range for '" + path + "' (" + std::to_string(bytes.size()) +
        " bytes)");
  }
  ReplayResult full;  // count from the top so record_count covers the file
  ScanRecords(bytes, kHeaderSize, &full);
  ReplayResult out;
  out.torn_tail = !ScanRecords(bytes, from_offset, &out);
  out.record_count = full.records.size();
  return out;
}

}  // namespace leva
