#include "core/pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace leva {

Status LevaPipeline::Fit(const Database& db) {
  Rng rng(config_.seed);
  profile_.Clear();
  const size_t threads = ResolveThreads(config_.threads);
  profile_.set_threads(threads);
  LEVA_LOG(kDebug, "pipeline threads: %zu (requested %zu)", threads,
           config_.threads);

  // Stage 1: input & textification.
  std::vector<TextifiedTable> textified;
  {
    ScopedStageTimer timer(&profile_, "textify");
    textifier_ = Textifier(config_.textify);
    LEVA_RETURN_IF_ERROR(textifier_.Fit(db));
    textified.reserve(db.tables().size());
    for (const Table& t : db.tables()) {
      LEVA_ASSIGN_OR_RETURN(TextifiedTable tt, textifier_.Transform(t));
      textified.push_back(std::move(tt));
    }
  }

  // Stages 2-3: graph construction & refinement (Algorithm 1).
  {
    ScopedStageTimer timer(&profile_, "graph");
    LEVA_ASSIGN_OR_RETURN(
        graph_,
        BuildGraph(textified, textifier_.NumAttributes(), config_.graph));
  }

  // Method selection: MF when the estimated memory fits the budget
  // (Section 4.2 "Why Two Methods?").
  chosen_ = config_.method;
  if (chosen_ == EmbeddingMethod::kAuto) {
    const size_t mf_bytes = EstimateMfMemoryBytes(
        graph_.NumNodes(), graph_.NumEdges(), config_.embedding_dim);
    chosen_ = mf_bytes <= config_.memory_budget_bytes
                  ? EmbeddingMethod::kMatrixFactorization
                  : EmbeddingMethod::kRandomWalk;
    LEVA_LOG(kDebug, "auto method: MF estimate %zu bytes -> %s", mf_bytes,
             chosen_ == EmbeddingMethod::kMatrixFactorization ? "MF" : "RW");
  }

  // Stage 4: embedding construction.
  Matrix node_vectors;
  if (chosen_ == EmbeddingMethod::kMatrixFactorization) {
    ScopedStageTimer timer(&profile_, "factorization");
    MfOptions mf = config_.mf;
    mf.dim = config_.embedding_dim;
    mf.threads = threads;
    LEVA_ASSIGN_OR_RETURN(node_vectors,
                          MatrixFactorizationEmbed(graph_, mf, &rng));
  } else if (chosen_ == EmbeddingMethod::kLine) {
    ScopedStageTimer timer(&profile_, "edge_sampling");
    LineOptions line = config_.line;
    line.dim = config_.embedding_dim;
    LEVA_ASSIGN_OR_RETURN(node_vectors, LineEmbed(graph_, line, &rng));
  } else {
    WalkCorpus corpus;
    {
      ScopedStageTimer timer(&profile_, "walk_generation");
      WalkOptions walk_options = config_.walks;
      walk_options.weighted = config_.graph.weighted && walk_options.weighted;
      walk_options.threads = threads;
      WalkGenerator generator(&graph_, walk_options);
      LEVA_ASSIGN_OR_RETURN(corpus, generator.Generate(&rng));
    }
    {
      ScopedStageTimer timer(&profile_, "embedding_training");
      Word2VecOptions w2v = config_.word2vec;
      w2v.dim = config_.embedding_dim;
      w2v.threads = threads;
      Word2Vec model(w2v);
      LEVA_RETURN_IF_ERROR(model.Train(corpus, graph_.NumNodes(), &rng));
      node_vectors = model.node_vectors();
    }
  }

  // Store vectors keyed by node label.
  {
    ScopedStageTimer timer(&profile_, "deploy_index");
    embedding_ = Embedding(node_vectors.cols());
    for (NodeId n = 0; n < graph_.NumNodes(); ++n) {
      LEVA_RETURN_IF_ERROR(embedding_.Put(
          graph_.label(n), {node_vectors.RowPtr(n), node_vectors.cols()}));
    }
  }
  fitted_ = true;
  return Status::OK();
}

void LevaPipeline::ComposeFromTokens(const std::vector<std::string>& tokens,
                                     std::vector<double>* out) const {
  const size_t dim = embedding_.dim();
  out->assign(dim, 0.0);
  double total_weight = 0.0;
  for (const std::string& token : tokens) {
    const auto vec = embedding_.Get(token);
    if (vec.empty()) continue;
    // Hub value nodes shared by many rows carry little inclusion-dependency
    // signal, so the aggregation mirrors the edge weighting of Section 3.2:
    // inverse to the value node's degree.
    double w = 1.0;
    if (config_.graph.weighted) {
      const NodeId vn = graph_.ValueNode(token);
      if (vn != kInvalidNode && graph_.Degree(vn) > 0) {
        w = 1.0 / static_cast<double>(graph_.Degree(vn));
      }
    }
    total_weight += w;
    for (size_t j = 0; j < dim; ++j) (*out)[j] += w * vec[j];
  }
  if (total_weight > 0) {
    for (double& v : *out) v /= total_weight;
  }
}

Result<std::vector<double>> LevaPipeline::RowVector(
    const Table& table, size_t row, const std::string& target_column,
    bool rows_in_graph) const {
  if (!fitted_) return Status::FailedPrecondition("pipeline is not fitted");
  const size_t dim = embedding_.dim();

  // Collect the row's tokens, skipping the target column (no label leakage).
  std::vector<std::string> tokens;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Column& col = table.column(c);
    if (col.name == target_column) continue;
    LEVA_ASSIGN_OR_RETURN(
        std::vector<std::string> cell,
        textifier_.TransformCell(table.name(), col.name, col.values[row]));
    for (std::string& t : cell) tokens.push_back(std::move(t));
  }

  // "Row" featurization: the row-node embedding (Section 6.5.1). Rows not
  // present in the fitted graph — genuinely unseen deployment data — fall
  // back to the mean of their tokens' value-node embeddings, with unseen
  // numeric values quantized into existing bins (Section 2.4).
  std::vector<double> row_vec;
  if (rows_in_graph) {
    const auto vec = embedding_.Get(table.name() + ":" + std::to_string(row));
    if (vec.empty()) {
      return Status::NotFound("row node missing for '" + table.name() + ":" +
                              std::to_string(row) + "'");
    }
    row_vec.assign(vec.begin(), vec.end());
  } else {
    ComposeFromTokens(tokens, &row_vec);
  }
  if (config_.featurization == Featurization::kRowOnly) return row_vec;

  // Row + Value: concatenate the value-node embeddings that share edges with
  // the row (aggregated by mean).
  std::vector<double> value_vec;
  ComposeFromTokens(tokens, &value_vec);
  row_vec.reserve(2 * dim);
  row_vec.insert(row_vec.end(), value_vec.begin(), value_vec.end());
  return row_vec;
}

Result<MLDataset> LevaPipeline::Featurize(const Table& table,
                                          const std::string& target_column,
                                          const TargetEncoder& encoder,
                                          bool rows_in_graph) const {
  if (!fitted_) return Status::FailedPrecondition("pipeline is not fitted");
  LEVA_ASSIGN_OR_RETURN(const size_t target_idx,
                        table.ColumnIndex(target_column));

  const size_t dim = embedding_.dim();
  const size_t width =
      config_.featurization == Featurization::kRowPlusValue ? 2 * dim : dim;

  MLDataset ds;
  ds.classification = encoder.classification();
  ds.num_classes = encoder.classification() ? encoder.num_classes() : 2;
  ds.x = Matrix(table.NumRows(), width);
  ds.y.resize(table.NumRows());
  ds.feature_names.reserve(width);
  for (size_t j = 0; j < dim; ++j) {
    ds.feature_names.push_back("emb" + std::to_string(j));
  }
  if (width == 2 * dim) {
    for (size_t j = 0; j < dim; ++j) {
      ds.feature_names.push_back("val" + std::to_string(j));
    }
  }

  for (size_t r = 0; r < table.NumRows(); ++r) {
    LEVA_ASSIGN_OR_RETURN(
        const std::vector<double> vec,
        RowVector(table, r, target_column, rows_in_graph));
    for (size_t j = 0; j < width; ++j) ds.x(r, j) = vec[j];
    LEVA_ASSIGN_OR_RETURN(ds.y[r], encoder.Encode(table.at(r, target_idx)));
  }
  return ds;
}

}  // namespace leva
