#include "core/pipeline.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/token_resolver.h"
#include "embed/walks_batched.h"

namespace leva {
namespace {

// Rows per ParallelFor chunk in the batched gather. Small enough to balance
// across workers on modest tables and to keep a chunk's output rows
// cache-resident through the column passes, large enough to amortize
// dispatch.
constexpr size_t kFeaturizeGrain = 64;

// Distinct tokens the serving resolver cache may hold before it is evicted
// wholesale (entry + key + slot is ~70 bytes, so this is a few hundred MB at
// the cap — far beyond any fitted vocabulary that fits in the store anyway).
constexpr size_t kResolverCacheCap = size_t{1} << 22;

std::vector<std::string> FeatureNames(size_t dim, size_t width) {
  std::vector<std::string> names;
  names.reserve(width);
  for (size_t j = 0; j < dim; ++j) names.push_back("emb" + std::to_string(j));
  if (width == 2 * dim) {
    for (size_t j = 0; j < dim; ++j) names.push_back("val" + std::to_string(j));
  }
  return names;
}

// How many occurrences ahead the gather prefetches embedding rows. The
// resolved arrays are padded by this much so the loop needs no bounds check.
constexpr size_t kPrefetchDist = 4;

// Resolved occurrences of one textified column over a batch of rows:
// (embedding row pointer, weight) per token — null for unseen tokens — with
// offsets local to the batch. Resolving down to raw row pointers in phase 1
// turns the phase-2 gather into a flat array walk whose loads software
// prefetch can cover. The pointer is typed by the store's tier (fp64, bf16,
// or int8 row — the gather dispatches once per chunk, not per token); for
// int8 rows `scale` carries the per-row dequantization factor so the hot
// loop never touches the scales array.
struct ResolvedColumn {
  struct Occ {
    const void* vec;
    double weight;
    double scale;
  };
  std::vector<Occ> occ;
  std::vector<size_t> offsets;
};

// Weighted-mean gather over one chunk of rows [begin, end): accumulate every
// resolved token of every column into a chunk-local row buffer, divide by the
// accumulated weight, and store the scaled vector into the value slot (column
// offset `off`) of its row in the row-major matrix `x` (row stride `width`).
// Accumulating in the L1-resident buffer instead of the matrix row turns ~one
// read-modify-write pass per column plus a division pass into a single store
// per output element. Per row the accumulation order is untouched — columns
// in schema order, tokens in cell order, then one division — so the bits
// match the row-at-a-time path, which also does the separately-rounded
// mul+add and a final per-element division (not a multiply by the
// reciprocal). Rows of `x` must be zero on entry (freshly allocated dataset
// rows are): a row with no resolved tokens is left untouched. One clone
// dispatch covers the whole chunk, so no per-token indirect calls.
// When `dup_to_row` is set (held-out rows under Row+Value), the scaled
// vector is stored to the row half in the same pass instead of a separate
// copy loop — same values, one less sweep over the matrix.
//
// The accumulate step is tier-templated: quantized stores (bf16/int8) fuse
// element-wise dequantization into the same pass via the simd.h kernels, so
// a quantized row costs one load of its compressed bytes — no fp64 row is
// ever materialized. The dequantize-then-weight rounding order matches what
// the row-at-a-time path sees through Embedding::Get, keeping the fast and
// legacy paths bit-identical at every tier. Each LEVA_TARGET_CLONES wrapper
// below instantiates one tier, dispatched once per chunk.
template <StorageTier kTier>
LEVA_ALWAYS_INLINE void GatherChunkImpl(const ResolvedColumn* cols,
                                        size_t num_cols, size_t dim, double* x,
                                        size_t width, size_t off, size_t b0,
                                        size_t begin, size_t end,
                                        bool dup_to_row) {
  std::vector<double> acc(dim);  // zero-initialized; re-zeroed after each row
  for (size_t r = begin; r < end; ++r) {
    double* __restrict a = acc.data();
    double total_weight = 0.0;
    bool touched = false;
    for (size_t c = 0; c < num_cols; ++c) {
      const ResolvedColumn& col = cols[c];
      const size_t cell_end = col.offsets[r - b0 + 1];
      for (size_t t = col.offsets[r - b0]; t < cell_end; ++t) {
        const ResolvedColumn::Occ& o = col.occ[t];
        // Occurrences are walked in order, so pull the row a few tokens
        // ahead into cache (the padded tail makes the unguarded look-ahead
        // safe; prefetching null never faults).
        LEVA_PREFETCH(col.occ[t + kPrefetchDist].vec);
        if (o.vec == nullptr) continue;
        const double w = o.weight;
        total_weight += w;
        touched = true;
        if constexpr (kTier == StorageTier::kBf16) {
          simd::GatherAddBf16(a, static_cast<const uint16_t*>(o.vec), w, dim);
        } else if constexpr (kTier == StorageTier::kInt8) {
          simd::DequantGatherAdd(a, static_cast<const int8_t*>(o.vec), o.scale,
                                 w, dim);
        } else {
          const double* __restrict vec = static_cast<const double*>(o.vec);
          for (size_t j = 0; j < dim; ++j) a[j] += w * vec[j];
        }
      }
    }
    // total_weight == 0 leaves the (already zero) matrix row untouched,
    // exactly like the row-at-a-time path skipping its division.
    if (total_weight > 0) {
      double* __restrict value_out = x + r * width + off;
      if (dup_to_row) {
        double* __restrict row_out = x + r * width;
        for (size_t j = 0; j < dim; ++j) {
          const double v = a[j] / total_weight;
          value_out[j] = v;
          row_out[j] = v;
          a[j] = 0.0;
        }
      } else {
        for (size_t j = 0; j < dim; ++j) {
          value_out[j] = a[j] / total_weight;
          a[j] = 0.0;
        }
      }
    } else if (touched) {
      // Accumulated but zero total weight: reset the buffer for the next row.
      for (size_t j = 0; j < dim; ++j) a[j] = 0.0;
    }
  }
}

// One multi-versioned outer function per tier (the clones recompile the
// inlined kernels with their ISA — see simd.h), plus the per-chunk dispatch.
LEVA_TARGET_CLONES
void GatherChunkF64(const ResolvedColumn* cols, size_t num_cols, size_t dim,
                    double* x, size_t width, size_t off, size_t b0,
                    size_t begin, size_t end, bool dup_to_row) {
  GatherChunkImpl<StorageTier::kFp64>(cols, num_cols, dim, x, width, off, b0,
                                      begin, end, dup_to_row);
}

LEVA_TARGET_CLONES
void GatherChunkBf16(const ResolvedColumn* cols, size_t num_cols, size_t dim,
                     double* x, size_t width, size_t off, size_t b0,
                     size_t begin, size_t end, bool dup_to_row) {
  GatherChunkImpl<StorageTier::kBf16>(cols, num_cols, dim, x, width, off, b0,
                                      begin, end, dup_to_row);
}

LEVA_TARGET_CLONES
void GatherChunkI8(const ResolvedColumn* cols, size_t num_cols, size_t dim,
                   double* x, size_t width, size_t off, size_t b0,
                   size_t begin, size_t end, bool dup_to_row) {
  GatherChunkImpl<StorageTier::kInt8>(cols, num_cols, dim, x, width, off, b0,
                                      begin, end, dup_to_row);
}

void GatherChunk(StorageTier tier, const ResolvedColumn* cols, size_t num_cols,
                 size_t dim, double* x, size_t width, size_t off, size_t b0,
                 size_t begin, size_t end, bool dup_to_row) {
  switch (tier) {
    case StorageTier::kBf16:
      GatherChunkBf16(cols, num_cols, dim, x, width, off, b0, begin, end,
                      dup_to_row);
      return;
    case StorageTier::kInt8:
      GatherChunkI8(cols, num_cols, dim, x, width, off, b0, begin, end,
                    dup_to_row);
      return;
    case StorageTier::kFp64:
      break;
  }
  GatherChunkF64(cols, num_cols, dim, x, width, off, b0, begin, end,
                 dup_to_row);
}

}  // namespace

const LevaPipeline::ServingState& LevaPipeline::state_or_empty() const {
  static const ServingState kEmpty;
  const std::shared_ptr<const ServingState> s =
      serving_.load();
  // The reference stays valid because `serving_` keeps its own reference
  // until the next publish — callers must not hold it across a reload.
  return s == nullptr ? kEmpty : *s;
}

Status LevaPipeline::Fit(const Database& db) {
  Rng rng(config_.seed);
  profile_.Clear();
  const size_t threads = ResolveThreads(config_.threads);
  profile_.set_threads(threads);
  LEVA_LOG(kDebug, "pipeline threads: %zu (requested %zu)", threads,
           config_.threads);

  // The whole model is assembled in a shadow state and only published at the
  // end, so a failed Fit never leaves a half-built model serving.
  auto state = std::make_shared<ServingState>();
  state->config = config_;

  // Stage 1: input & textification.
  std::vector<TextifiedTable> textified;
  {
    ScopedStageTimer timer(&profile_, "textify");
    state->textifier = Textifier(config_.textify);
    LEVA_RETURN_IF_ERROR(state->textifier.Fit(db));
    textified.reserve(db.tables().size());
    for (const Table& t : db.tables()) {
      LEVA_ASSIGN_OR_RETURN(TextifiedTable tt, state->textifier.Transform(t));
      textified.push_back(std::move(tt));
    }
  }

  // Stages 2-3: graph construction & refinement (Algorithm 1).
  {
    ScopedStageTimer timer(&profile_, "graph");
    LEVA_ASSIGN_OR_RETURN(
        state->graph,
        BuildGraph(textified, state->textifier.NumAttributes(), config_.graph));
  }
  const LevaGraph& graph = state->graph;

  // Method selection: MF when the estimated memory fits the budget
  // (Section 4.2 "Why Two Methods?").
  EmbeddingMethod chosen = config_.method;
  if (chosen == EmbeddingMethod::kAuto) {
    const size_t mf_bytes = EstimateMfMemoryBytes(
        graph.NumNodes(), graph.NumEdges(), config_.embedding_dim);
    chosen = mf_bytes <= config_.memory_budget_bytes
                 ? EmbeddingMethod::kMatrixFactorization
                 : EmbeddingMethod::kRandomWalk;
    LEVA_LOG(kDebug, "auto method: MF estimate %zu bytes -> %s", mf_bytes,
             chosen == EmbeddingMethod::kMatrixFactorization ? "MF" : "RW");
  }
  state->chosen = chosen;

  // Stage 4: embedding construction.
  Matrix node_vectors;
  if (chosen == EmbeddingMethod::kMatrixFactorization) {
    ScopedStageTimer timer(&profile_, "factorization");
    MfOptions mf = config_.mf;
    mf.dim = config_.embedding_dim;
    mf.threads = threads;
    LEVA_ASSIGN_OR_RETURN(node_vectors,
                          MatrixFactorizationEmbed(graph, mf, &rng));
  } else if (chosen == EmbeddingMethod::kLine) {
    ScopedStageTimer timer(&profile_, "edge_sampling");
    LineOptions line = config_.line;
    line.dim = config_.embedding_dim;
    LEVA_ASSIGN_OR_RETURN(node_vectors, LineEmbed(graph, line, &rng));
  } else {
    FlatCorpus corpus;
    {
      ScopedStageTimer timer(&profile_, "walk_generation");
      WalkOptions walk_options = config_.walks;
      walk_options.weighted = config_.graph.weighted && walk_options.weighted;
      walk_options.threads = threads;
      // Both engines emit bit-identical corpora (pinned by the differential
      // suite), so this choice is pure throughput — recorded in the profile
      // for the perf reports, invisible to the fitted model.
      const WalkEngine engine = ResolveWalkEngine(graph, walk_options);
      profile_.Annotate("walk_generation", engine == WalkEngine::kBatched
                                               ? "engine=batched"
                                               : "engine=walker");
      if (engine == WalkEngine::kBatched) {
        BatchedWalkGenerator generator(&graph, walk_options);
        LEVA_ASSIGN_OR_RETURN(corpus, generator.Generate(&rng));
      } else {
        WalkGenerator generator(&graph, walk_options);
        LEVA_ASSIGN_OR_RETURN(corpus, generator.Generate(&rng));
      }
    }
    {
      ScopedStageTimer timer(&profile_, "embedding_training");
      Word2VecOptions w2v = config_.word2vec;
      w2v.dim = config_.embedding_dim;
      w2v.threads = threads;
      Word2Vec model(w2v);
      LEVA_RETURN_IF_ERROR(model.Train(corpus, graph.NumNodes(), &rng));
      node_vectors = model.node_vectors();
    }
  }

  // Store vectors keyed by node label.
  {
    ScopedStageTimer timer(&profile_, "deploy_index");
    state->embedding = Embedding(node_vectors.cols());
    for (NodeId n = 0; n < graph.NumNodes(); ++n) {
      LEVA_RETURN_IF_ERROR(state->embedding.Put(
          graph.label(n), {node_vectors.RowPtr(n), node_vectors.cols()}));
    }
  }
  // The serving cache resolves against this state's stores; their addresses
  // are stable because the state is heap-allocated and immutable once
  // published.
  state->resolver =
      TokenResolver(&state->embedding, &state->graph, config_.graph.weighted);
  const size_t dim = state->embedding.dim();
  const size_t width =
      config_.featurization == Featurization::kRowPlusValue ? 2 * dim : dim;
  state->feature_names = FeatureNames(dim, width);
  serving_.store(std::move(state));
  return Status::OK();
}

void LevaPipeline::ComposeFromTokens(const ServingState& s,
                                     const std::vector<std::string>& tokens,
                                     std::vector<double>* out) const {
  const size_t dim = s.embedding.dim();
  out->assign(dim, 0.0);
  double total_weight = 0.0;
  for (const std::string& token : tokens) {
    const auto vec = s.embedding.Get(token);
    if (vec.empty()) continue;
    // Hub value nodes shared by many rows carry little inclusion-dependency
    // signal, so the aggregation mirrors the edge weighting of Section 3.2:
    // inverse to the value node's degree.
    double w = 1.0;
    if (s.config.graph.weighted) {
      const NodeId vn = s.graph.ValueNode(token);
      if (vn != kInvalidNode && s.graph.Degree(vn) > 0) {
        w = 1.0 / static_cast<double>(s.graph.Degree(vn));
      }
    }
    total_weight += w;
    for (size_t j = 0; j < dim; ++j) (*out)[j] += w * vec[j];
  }
  if (total_weight > 0) {
    for (double& v : *out) v /= total_weight;
  }
}

Result<std::vector<double>> LevaPipeline::RowVector(
    const Table& table, size_t row, const std::string& target_column,
    bool rows_in_graph) const {
  const std::shared_ptr<const ServingState> s =
      serving_.load();
  if (s == nullptr) return Status::FailedPrecondition("pipeline is not fitted");
  return RowVectorImpl(*s, table, row, target_column, rows_in_graph);
}

Result<std::vector<double>> LevaPipeline::RowVectorImpl(
    const ServingState& s, const Table& table, size_t row,
    const std::string& target_column, bool rows_in_graph) const {
  const size_t dim = s.embedding.dim();

  // Collect the row's tokens, skipping the target column (no label leakage).
  // Rows already in the graph under kRowOnly never consult the tokens, so
  // skip textification entirely on that branch.
  std::vector<std::string> tokens;
  const bool need_tokens =
      !(rows_in_graph && s.config.featurization == Featurization::kRowOnly);
  if (need_tokens) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      const Column& col = table.column(c);
      if (col.name == target_column) continue;
      LEVA_ASSIGN_OR_RETURN(
          std::vector<std::string> cell,
          s.textifier.TransformCell(table.name(), col.name, col.values[row]));
      for (std::string& t : cell) tokens.push_back(std::move(t));
    }
  }

  // "Row" featurization: the row-node embedding (Section 6.5.1). Rows not
  // present in the fitted graph — genuinely unseen deployment data — fall
  // back to the mean of their tokens' value-node embeddings, with unseen
  // numeric values quantized into existing bins (Section 2.4).
  std::vector<double> row_vec;
  if (rows_in_graph) {
    const auto vec = s.embedding.Get(table.name() + ":" + std::to_string(row));
    if (vec.empty()) {
      return Status::NotFound("row node missing for '" + table.name() + ":" +
                              std::to_string(row) + "'");
    }
    row_vec.assign(vec.begin(), vec.end());
  } else {
    ComposeFromTokens(s, tokens, &row_vec);
  }
  if (s.config.featurization == Featurization::kRowOnly) return row_vec;

  // Row + Value: concatenate the value-node embeddings that share edges with
  // the row (aggregated by mean).
  std::vector<double> value_vec;
  ComposeFromTokens(s, tokens, &value_vec);
  row_vec.reserve(2 * dim);
  row_vec.insert(row_vec.end(), value_vec.begin(), value_vec.end());
  return row_vec;
}

Result<MLDataset> LevaPipeline::Featurize(const Table& table,
                                          const std::string& target_column,
                                          const TargetEncoder& encoder,
                                          bool rows_in_graph) const {
  // Pin the model this call runs against: a concurrent ReloadSnapshot swaps
  // the pipeline's pointer but cannot touch this state, so the whole call
  // sees one consistent model (and keeps its backing mapping alive).
  const std::shared_ptr<const ServingState> state =
      serving_.load();
  if (state == nullptr) {
    return Status::FailedPrecondition("pipeline is not fitted");
  }
  const ServingState& s = *state;
  WallTimer call_timer;
  LEVA_ASSIGN_OR_RETURN(const size_t target_idx,
                        table.ColumnIndex(target_column));

  const size_t dim = s.embedding.dim();
  const bool row_plus_value =
      s.config.featurization == Featurization::kRowPlusValue;
  const size_t width = row_plus_value ? 2 * dim : dim;
  const size_t num_rows = table.NumRows();
  const size_t threads =
      ResolveThreads(serving_threads_.load(std::memory_order_relaxed));
  const size_t batch_opt = serving_batch_.load(std::memory_order_relaxed);
  const size_t batch = batch_opt == 0 ? num_rows : batch_opt;

  FeaturizeStats fs;
  fs.rows = num_rows;

  MLDataset ds;
  ds.classification = encoder.classification();
  ds.num_classes = encoder.classification() ? encoder.num_classes() : 2;
  ds.x = Matrix(num_rows, width);
  ds.y.resize(num_rows);
  ds.feature_names = s.feature_names;

  // Hoisted row-node resolution: one table-name hash for the whole call.
  // Row node ids are contiguous, and the embedding built by Fit stores node
  // vectors in node-id order, so when that alignment holds (verified once on
  // the first row's label) row r's vector is store row `first + r` — no
  // per-row "<table>:<row>" string is ever built. The label-based fallback
  // keeps the legacy lookup semantics for any non-aligned store.
  const auto [first_row_node, row_node_count] = s.graph.TableRows(table.name());
  const bool aligned = rows_in_graph && first_row_node != kInvalidNode &&
                       row_node_count >= num_rows &&
                       s.embedding.size() >= s.graph.NumNodes() &&
                       num_rows > 0 &&
                       s.embedding.IdOf(s.graph.label(first_row_node)) ==
                           first_row_node;

  std::vector<size_t> row_ids(rows_in_graph ? num_rows : 0);
  for (size_t r = 0; r < num_rows; ++r) {
    if (rows_in_graph) {
      if (aligned) {
        row_ids[r] = first_row_node + r;
      } else {
        const std::string label = table.name() + ":" + std::to_string(r);
        row_ids[r] = s.embedding.IdOf(label);
        if (row_ids[r] == Embedding::kInvalidId) {
          return Status::NotFound("row node missing for '" + label + "'");
        }
      }
    }
    LEVA_ASSIGN_OR_RETURN(ds.y[r], encoder.Encode(table.at(r, target_idx)));
  }

  // Hoisted tier dispatch: the store's precision is fixed for the life of
  // this pinned state, so phase 1 resolves to tier-typed row pointers and
  // phase 2 picks the matching gather clone once per chunk.
  const StorageTier tier = s.embedding.tier();

  // Row-only featurization of in-graph rows never consults the tokens.
  const bool need_tokens = row_plus_value || !rows_in_graph;
  std::vector<const Column*> token_cols;
  if (need_tokens) {
    token_cols.reserve(table.NumColumns());
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (c != target_idx) token_cols.push_back(&table.column(c));
    }
  }

  for (size_t b0 = 0; b0 < num_rows; b0 += batch) {
    const size_t b1 = std::min(num_rows, b0 + batch);
    ++fs.batches;

    // Phase 1 (serialized per model): column-wise textify + per-distinct-
    // token resolution straight down to (embedding row pointer, weight)
    // pairs. The resolver cache persists across calls — resolution is a pure
    // function of the fitted stores — so a warm cache turns repeat serving
    // over the same vocabulary into pure id arithmetic. Interning mutates
    // the cache, hence the model-level mutex; the heavy gather below runs
    // outside it.
    std::vector<ResolvedColumn> cols(token_cols.size());
    {
      std::lock_guard<std::mutex> lock(s.resolver_mu);
      TokenResolver& resolver = s.resolver;
      resolver.EvictIfAbove(kResolverCacheCap);
      const TokenResolver::Stats stats_before = resolver.stats();
      for (size_t i = 0; i < token_cols.size(); ++i) {
        LEVA_ASSIGN_OR_RETURN(
            TextifiedColumn tc,
            s.textifier.TransformColumn(table.name(), *token_cols[i], b0, b1));
        cols[i].offsets = std::move(tc.offsets);
        cols[i].occ.reserve(tc.tokens.size() + kPrefetchDist);
        fs.token_occurrences += tc.tokens.size();
        const auto resolved = [&](uint32_t id) -> ResolvedColumn::Occ {
          const TokenResolver::Entry& e = resolver.entry(id);
          if (e.embedding_id == Embedding::kInvalidId) {
            return {nullptr, e.weight, 0.0};
          }
          switch (tier) {
            case StorageTier::kBf16:
              return {s.embedding.Bf16RowPtr(e.embedding_id), e.weight, 0.0};
            case StorageTier::kInt8:
              return {s.embedding.Int8RowPtr(e.embedding_id), e.weight,
                      static_cast<double>(s.embedding.RowScale(e.embedding_id))};
            case StorageTier::kFp64:
              break;
          }
          return {s.embedding.RowPtr(e.embedding_id), e.weight, 0.0};
        };
        if (!tc.dict_ids.empty()) {
          // Dictionary-encoded (binned) column: resolve each distinct dict
          // entry once, then map occurrences by array index — no hashing.
          std::vector<ResolvedColumn::Occ> dict_occ(tc.dict.size());
          for (size_t d = 0; d < tc.dict.size(); ++d) {
            dict_occ[d] = resolved(resolver.Intern(tc.dict[d]));
          }
          for (const uint32_t d : tc.dict_ids) {
            cols[i].occ.push_back(dict_occ[d]);
          }
        } else {
          for (const std::string_view token : tc.tokens) {
            cols[i].occ.push_back(resolved(resolver.Intern(token)));
          }
        }
        // Pad so the gather's look-ahead prefetch never needs a bounds check.
        cols[i].occ.resize(cols[i].occ.size() + kPrefetchDist,
                           ResolvedColumn::Occ{nullptr, 0.0, 0.0});
      }
      // Per-batch deltas of the cache's monotonic lifetime totals: they sum
      // to the call's cost even across evictions, and stay per-call accurate
      // because the lock spans the whole resolve phase.
      fs.distinct_tokens += resolver.stats().distinct - stats_before.distinct;
      fs.store_lookups +=
          resolver.stats().store_lookups - stats_before.store_lookups;
    }

    // Phase 2 (parallel): blocked gather straight into the dataset matrix.
    // Each row writes only its own matrix row; the resolver and stores are
    // read-only here, so the result is bit-identical at any thread count.
    ParallelFor(threads, b0, b1, kFeaturizeGrain, [&](size_t begin,
                                                      size_t end) {
      if (need_tokens) {
        // The composed vector lands in the value slot; under kRowOnly for
        // held-out rows the row half *is* the value slot. Held-out rows
        // under Row+Value duplicate the composed vector into the row half.
        const size_t off = row_plus_value ? dim : 0;
        GatherChunk(tier, cols.data(), cols.size(), dim, ds.x.RowPtr(0), width,
                    off, b0, begin, end,
                    /*dup_to_row=*/!rows_in_graph && row_plus_value);
      }
      if (rows_in_graph) {
        if (tier == StorageTier::kFp64) {
          for (size_t r = begin; r < end; ++r) {
            const double* src = s.embedding.RowPtr(row_ids[r]);
            std::copy(src, src + dim, ds.x.RowPtr(r));
          }
        } else {
          // Quantized row halves: materialize each row once, with the same
          // per-element rounding the legacy path sees through Get.
          for (size_t r = begin; r < end; ++r) {
            s.embedding.DequantizeRow(row_ids[r], ds.x.RowPtr(r));
          }
        }
      }
    });
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    featurize_stats_ = fs;
    profile_.Add("featurize", call_timer.ElapsedSeconds());
  }
  return ds;
}

Result<MLDataset> LevaPipeline::FeaturizeLegacy(const Table& table,
                                                const std::string& target_column,
                                                const TargetEncoder& encoder,
                                                bool rows_in_graph) const {
  const std::shared_ptr<const ServingState> state =
      serving_.load();
  if (state == nullptr) {
    return Status::FailedPrecondition("pipeline is not fitted");
  }
  const ServingState& s = *state;
  LEVA_ASSIGN_OR_RETURN(const size_t target_idx,
                        table.ColumnIndex(target_column));

  const size_t dim = s.embedding.dim();
  const size_t width =
      s.config.featurization == Featurization::kRowPlusValue ? 2 * dim : dim;

  MLDataset ds;
  ds.classification = encoder.classification();
  ds.num_classes = encoder.classification() ? encoder.num_classes() : 2;
  ds.x = Matrix(table.NumRows(), width);
  ds.y.resize(table.NumRows());
  ds.feature_names = FeatureNames(dim, width);

  for (size_t r = 0; r < table.NumRows(); ++r) {
    LEVA_ASSIGN_OR_RETURN(
        const std::vector<double> vec,
        RowVectorImpl(s, table, r, target_column, rows_in_graph));
    for (size_t j = 0; j < width; ++j) ds.x(r, j) = vec[j];
    LEVA_ASSIGN_OR_RETURN(ds.y[r], encoder.Encode(table.at(r, target_idx)));
  }
  return ds;
}

}  // namespace leva
