// Crash-safe streaming updates: LevaPipeline::Update / RecoverFromLog.
//
// The durability contract is write-ahead: a batch is appended to the
// UpdateLog (fsync'ed, the acknowledgment point) BEFORE any in-memory state
// moves, and the successor model is assembled entirely off to the side and
// published with the same atomic swap ReloadSnapshot uses. A crash therefore
// leaves one of exactly two observable worlds — the batch durable-but-
// unapplied (recovery replays it) or durable-and-applied (the next snapshot
// records the advanced WAL offset, so recovery skips it). Concurrent
// Featurize calls pin whichever complete model is current; there is no
// intermediate state to expose.
//
// Incrementality: the graph grows through its delta segments (the base CSR —
// possibly an mmap view of a snapshot — is never touched), and under the
// random-walk method the embedding refresh is warm: walks seeded only at the
// new/touched nodes continue SGNS training from the served vectors, and only
// those nodes' rows are rewritten. MF/LINE have no incremental form, so they
// compact and re-embed (UpdateResult::full_refit).
//
// Approximations, by design (repaired at compaction / full refit):
//   - Edge weights of a value node that gains edges are recomputed for the
//     *new* edges (1/deg over the post-batch degree); the node's pre-existing
//     edges keep their stored weight until Compacted(reweight) runs. Only
//     weighted walk transition probabilities see the stale values —
//     ComposeFromTokens and the resolver read Degree() live.
//   - New tokens become value nodes only when shared by >= 2 rows of the
//     batch or already present in the graph (the Algorithm 1 "unshared"
//     refinement applied batch-locally; the theta votes are not re-run).
#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "core/update_log.h"
#include "embed/walks_batched.h"

namespace leva {
namespace {

// Delta slots may grow to this fraction of the base CSR's directed slots
// before Update folds them in (Compacted). Keeps the two-segment walk/degree
// overhead bounded without compacting — an O(edges) copy — on every batch.
constexpr double kCompactDeltaRatio = 0.25;

// Decorrelates per-record refresh seeds from the fitting seed. The seed is a
// pure function of (config seed, record index), never of wall clock or
// address space, so replaying a log reproduces the exact published model.
uint64_t UpdateSeed(uint64_t config_seed, uint64_t record_index) {
  return config_seed ^ (0x9E3779B97F4A7C15ull * (record_index + 1));
}

// True when embedding row id n holds the vector of graph node n — the layout
// Fit and every snapshot load produce. The warm-start path depends on it (it
// hands Word2Vec the store as a node-indexed matrix); a store that ever
// diverged falls back to the full-refit path below.
bool NodeAligned(const Embedding& emb, const LevaGraph& graph) {
  const size_t n = graph.NumNodes();
  if (n == 0 || emb.size() != n) return false;
  return emb.IdOf(graph.label(0)) == 0 &&
         emb.IdOf(graph.label(static_cast<NodeId>(n - 1))) == n - 1;
}

}  // namespace

Result<std::shared_ptr<const LevaPipeline::ServingState>>
LevaPipeline::ApplyUpdateBatch(const ServingState& s, const Table& new_rows,
                               uint64_t wal_offset, uint64_t wal_records,
                               UpdateResult* result) const {
  const std::string& table = new_rows.name();
  const auto [base_first, base_count] = s.graph.TableRows(table);
  if (base_first == kInvalidNode) {
    return Status::InvalidArgument("cannot update table '" + table +
                                   "': the fitted model has no row nodes for "
                                   "it");
  }
  const size_t num_rows = new_rows.NumRows();
  const size_t dim = s.embedding.dim();

  // The successor starts as a full (cheap) copy: the big arrays are
  // OwnedOrMapped views whose copies share any backing snapshot region, so
  // this never duplicates a mapped model's bulk bytes.
  auto next = std::make_shared<ServingState>();
  next->config = s.config;
  next->textifier = s.textifier;
  next->graph = s.graph;
  next->embedding = s.embedding;
  next->chosen = s.chosen;
  next->feature_names = s.feature_names;
  next->region = s.region;
  next->bulk_pages = s.bulk_pages;
  next->wal_offset = wal_offset;
  next->wal_records = wal_records;

  result->rows_applied = num_rows;
  result->wal_offset = wal_offset;

  // 1. Textify the batch with the FROZEN textifier: bins, types, and
  // attribute ids are exactly the fitted ones, so tokens land in the same
  // vocabulary space the graph was built from (the paper's unseen-data
  // handling, Section 2.4).
  LEVA_ASSIGN_OR_RETURN(TextifiedTable textified,
                        s.textifier.Transform(new_rows));

  // 2. Stage the graph delta. Per row: one row node plus edges to the value
  // node of every distinct token. A token without a value node earns one
  // only when >= 2 rows of this batch share it.
  const size_t global_first_row = s.graph.TableRowCount(table);
  const NodeId first_new_node = static_cast<NodeId>(s.graph.NumNodes());

  std::vector<std::vector<std::string>> row_tokens(num_rows);
  std::unordered_map<std::string, size_t> rows_with_token;
  for (size_t r = 0; r < num_rows; ++r) {
    std::vector<std::string>& toks = row_tokens[r];
    toks.reserve(textified.rows[r].size());
    for (const TextToken& t : textified.rows[r]) toks.push_back(t.token);
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    for (const std::string& t : toks) ++rows_with_token[t];
  }

  std::vector<NodeKind> kinds(num_rows, NodeKind::kRow);
  std::vector<std::string> labels;
  labels.reserve(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    labels.push_back(table + ":" + std::to_string(global_first_row + r));
  }

  // New value nodes in sorted token order: node ids (hence the published
  // model) become a pure function of the batch, independent of hash-map
  // iteration order.
  std::vector<std::string> fresh_tokens;
  std::unordered_map<std::string, NodeId> token_node;
  for (const auto& [tok, cnt] : rows_with_token) {
    const NodeId vn = s.graph.ValueNode(tok);
    if (vn != kInvalidNode) {
      token_node.emplace(tok, vn);
    } else if (cnt >= 2) {
      fresh_tokens.push_back(tok);
    }
  }
  std::sort(fresh_tokens.begin(), fresh_tokens.end());
  for (const std::string& tok : fresh_tokens) {
    token_node.emplace(
        tok, static_cast<NodeId>(first_new_node + kinds.size()));
    kinds.push_back(NodeKind::kValue);
    labels.push_back(tok);
  }

  std::vector<GraphDeltaEdge> edges;
  std::vector<std::string> touched_tokens = fresh_tokens;
  std::vector<NodeId> touched_values;  // existing value nodes gaining edges
  for (size_t r = 0; r < num_rows; ++r) {
    const NodeId row_node = static_cast<NodeId>(first_new_node + r);
    for (const std::string& tok : row_tokens[r]) {
      const auto it = token_node.find(tok);
      if (it == token_node.end()) continue;  // unshared fresh token: dropped
      const NodeId vn = it->second;
      float w = 1.0f;
      if (s.config.graph.weighted) {
        // Post-batch degree of the value endpoint: existing degree plus the
        // one edge per batch row sharing the token.
        const size_t deg =
            (vn < first_new_node ? s.graph.Degree(vn) : 0) +
            rows_with_token.at(tok);
        w = 1.0f / static_cast<float>(deg);
      }
      edges.push_back({row_node, vn, w});
      if (vn < first_new_node) touched_values.push_back(vn);
    }
  }
  std::sort(touched_values.begin(), touched_values.end());
  touched_values.erase(
      std::unique(touched_values.begin(), touched_values.end()),
      touched_values.end());
  for (const NodeId vn : touched_values) {
    touched_tokens.push_back(s.graph.label(vn));
  }

  LEVA_RETURN_IF_ERROR(next->graph.ApplyDelta(kinds, labels, edges));
  next->graph.RegisterExtraTableRows(table, global_first_row, first_new_node,
                                     num_rows);
  result->new_row_nodes = num_rows;
  result->new_value_nodes = fresh_tokens.size();
  result->new_edges = edges.size();

  // 3. Embedding refresh.
  const size_t threads = ResolveThreads(s.config.threads);
  Rng rng(UpdateSeed(s.config.seed, wal_records));
  const bool warm_capable =
      s.chosen == EmbeddingMethod::kRandomWalk &&
      NodeAligned(s.embedding, s.graph);
  if (warm_capable) {
    // Seed walks at every new node and every existing value node whose
    // neighborhood changed; walks roam the whole graph from there, so the
    // SGNS continuation sees fresh context without re-walking every node.
    std::vector<NodeId> starts;
    starts.reserve(kinds.size() + touched_values.size());
    for (size_t i = 0; i < kinds.size(); ++i) {
      starts.push_back(static_cast<NodeId>(first_new_node + i));
    }
    starts.insert(starts.end(), touched_values.begin(), touched_values.end());

    WalkOptions walk_options = s.config.walks;
    walk_options.weighted = s.config.graph.weighted && walk_options.weighted;
    walk_options.threads = threads;
    walk_options.start_nodes = starts;

    FlatCorpus corpus;
    const WalkEngine engine = ResolveWalkEngine(next->graph, walk_options);
    if (engine == WalkEngine::kBatched) {
      BatchedWalkGenerator generator(&next->graph, walk_options);
      LEVA_ASSIGN_OR_RETURN(corpus, generator.Generate(&rng));
    } else {
      WalkGenerator generator(&next->graph, walk_options);
      LEVA_ASSIGN_OR_RETURN(corpus, generator.Generate(&rng));
    }

    Word2VecOptions w2v = s.config.word2vec;
    w2v.dim = dim;
    w2v.threads = threads;
    Word2Vec model(w2v);
    // Continue from the served vectors: row id == node id (checked above),
    // quantized tiers dequantize to exactly the values they serve.
    Matrix warm(s.embedding.size(), dim);
    for (size_t id = 0; id < s.embedding.size(); ++id) {
      s.embedding.DequantizeRow(id, warm.RowPtr(id));
    }
    model.WarmStart(std::move(warm));
    LEVA_RETURN_IF_ERROR(model.Train(corpus, next->graph.NumNodes(), &rng));

    // Write back only the refreshed rows: new nodes plus touched existing
    // ones. Untouched vectors keep their served bits, bounding the
    // perturbation a single batch can cause. (Put detaches a quantized or
    // mapped store to owned fp64 — the snapshot writer re-quantizes to the
    // configured tier on save.)
    for (const NodeId n : starts) {
      LEVA_RETURN_IF_ERROR(next->embedding.Put(
          next->graph.label(n), {model.node_vectors().RowPtr(n), dim}));
    }
    result->refreshed_vectors = starts.size();

    if (next->graph.DeltaSlots() >
        kCompactDeltaRatio *
            static_cast<double>(next->graph.targets().size())) {
      LEVA_ASSIGN_OR_RETURN(LevaGraph compacted,
                            next->graph.Compacted(s.config.graph.weighted));
      next->graph = std::move(compacted);
      result->compacted = true;
    }
  } else {
    // MF/LINE (or a store whose row ids diverged from node ids): no
    // incremental form. Compact the delta into a base CSR — the spectral
    // paths consume base adjacency only — and re-embed everything, exactly
    // as Fit would.
    LEVA_ASSIGN_OR_RETURN(LevaGraph compacted,
                          next->graph.Compacted(s.config.graph.weighted));
    next->graph = std::move(compacted);
    result->compacted = true;
    result->full_refit = true;

    Matrix node_vectors;
    if (s.chosen == EmbeddingMethod::kMatrixFactorization) {
      MfOptions mf = s.config.mf;
      mf.dim = dim;
      mf.threads = threads;
      LEVA_ASSIGN_OR_RETURN(node_vectors,
                            MatrixFactorizationEmbed(next->graph, mf, &rng));
    } else if (s.chosen == EmbeddingMethod::kLine) {
      LineOptions line = s.config.line;
      line.dim = dim;
      LEVA_ASSIGN_OR_RETURN(node_vectors, LineEmbed(next->graph, line, &rng));
    } else {
      WalkOptions walk_options = s.config.walks;
      walk_options.weighted = s.config.graph.weighted && walk_options.weighted;
      walk_options.threads = threads;
      FlatCorpus corpus;
      const WalkEngine engine = ResolveWalkEngine(next->graph, walk_options);
      if (engine == WalkEngine::kBatched) {
        BatchedWalkGenerator generator(&next->graph, walk_options);
        LEVA_ASSIGN_OR_RETURN(corpus, generator.Generate(&rng));
      } else {
        WalkGenerator generator(&next->graph, walk_options);
        LEVA_ASSIGN_OR_RETURN(corpus, generator.Generate(&rng));
      }
      Word2VecOptions w2v = s.config.word2vec;
      w2v.dim = dim;
      w2v.threads = threads;
      Word2Vec model(w2v);
      LEVA_RETURN_IF_ERROR(model.Train(corpus, next->graph.NumNodes(), &rng));
      node_vectors = model.node_vectors();
    }
    next->embedding = Embedding(node_vectors.cols());
    for (NodeId n = 0; n < next->graph.NumNodes(); ++n) {
      LEVA_RETURN_IF_ERROR(next->embedding.Put(
          next->graph.label(n),
          {node_vectors.RowPtr(n), node_vectors.cols()}));
    }
    result->refreshed_vectors = next->graph.NumNodes();
  }

  // 4. Serving cache: carry the warm entries over, re-resolving only the
  // tokens this batch embedded for the first time or whose degree changed.
  // After a full refit every id was reassigned, so re-intern the keys from
  // scratch instead (Load re-resolves each one against the new stores).
  {
    std::lock_guard<std::mutex> lock(s.resolver_mu);
    if (result->full_refit) {
      BufferWriter keys;
      s.resolver.Save(&keys);
      next->resolver = TokenResolver(&next->embedding, &next->graph,
                                     s.config.graph.weighted);
      BufferReader in(keys.data());
      LEVA_RETURN_IF_ERROR(next->resolver.Load(&in));
    } else {
      next->resolver = s.resolver;
    }
  }
  if (!result->full_refit) {
    next->resolver.Rebind(&next->embedding, &next->graph, touched_tokens);
  }
  return std::shared_ptr<const ServingState>(std::move(next));
}

Result<UpdateResult> LevaPipeline::Update(const Table& new_rows,
                                          UpdateLog* log) {
  const std::shared_ptr<const ServingState> cur = serving_.load();
  if (cur == nullptr) {
    return Status::FailedPrecondition("pipeline is not fitted");
  }
  UpdateResult result;
  result.wal_offset = cur->wal_offset;
  if (new_rows.NumRows() == 0) return result;  // nothing to log or apply

  // Durability first: once Append returns, the batch survives any crash —
  // recovery replays it through this same apply path. Only then does any
  // in-memory state move.
  uint64_t ack_offset = cur->wal_offset;
  uint64_t ack_records = cur->wal_records;
  if (log != nullptr) {
    UpdateRecord record;
    record.table = new_rows.name();
    record.columns.reserve(new_rows.NumColumns());
    for (const Column& col : new_rows.columns()) {
      record.columns.push_back(col.name);
    }
    record.rows.reserve(new_rows.NumRows());
    for (size_t r = 0; r < new_rows.NumRows(); ++r) {
      record.rows.push_back(new_rows.Row(r));
    }
    LEVA_RETURN_IF_ERROR(log->Append(record));
    ack_offset = log->end_offset();
    ack_records = log->record_count();
  } else {
    // Logless updates still advance the record index so successive batches
    // draw distinct refresh seeds.
    ++ack_records;
  }

  LEVA_ASSIGN_OR_RETURN(
      std::shared_ptr<const ServingState> next,
      ApplyUpdateBatch(*cur, new_rows, ack_offset, ack_records, &result));
  serving_.store(std::move(next));
  return result;
}

Result<size_t> LevaPipeline::RecoverFromLog(const std::string& wal_path,
                                            Env* env) {
  if (env == nullptr) env = Env::Default();
  const std::shared_ptr<const ServingState> cur = serving_.load();
  if (cur == nullptr) {
    return Status::FailedPrecondition(
        "pipeline is not fitted — load the snapshot before replaying its "
        "log");
  }
  const uint64_t from =
      std::max<uint64_t>(cur->wal_offset, UpdateLog::kHeaderSize);
  LEVA_ASSIGN_OR_RETURN(UpdateLog::ReplayResult replay,
                        UpdateLog::Read(wal_path, from, env));
  if (replay.records.empty()) return size_t{0};

  // Apply the whole tail off to the side and publish once: a crash during
  // replay leaves the pre-recovery model serving and the log intact, so
  // recovery simply reruns (idempotent — it reads from the same offset).
  std::shared_ptr<const ServingState> state = cur;
  uint64_t records_applied = cur->wal_records;
  size_t applied = 0;
  for (const UpdateRecord& rec : replay.records) {
    Table batch(rec.table);
    for (const std::string& name : rec.columns) {
      Column col;
      col.name = name;
      LEVA_RETURN_IF_ERROR(batch.AddColumn(std::move(col)));
    }
    for (const std::vector<Value>& row : rec.rows) {
      LEVA_RETURN_IF_ERROR(batch.AddRow(row));
    }
    ++records_applied;
    UpdateResult result;
    LEVA_ASSIGN_OR_RETURN(
        state, ApplyUpdateBatch(*state, batch, replay.end_offset,
                                records_applied, &result));
    ++applied;
  }
  serving_.store(std::move(state));
  return applied;
}

}  // namespace leva
