#include "core/token_resolver.h"

#include <cstring>
#include <utility>

namespace leva {
namespace {

constexpr size_t kInitialSlots = 1024;  // power of two

// Multiply–xorshift hash tuned for the short tokens this resolver sees
// (cell values and bin labels, typically under 16 bytes): word-at-a-time
// loads instead of std::hash's byte-wise Murmur loop. Only distribution
// matters here, not stability — ids are assigned in first-sight order either
// way, and a 64-bit hash compare guards the string compare in the table.
uint64_t HashToken(std::string_view token) {
  constexpr uint64_t kMul = 0x9E3779B97F4A7C15ull;
  const char* p = token.data();
  size_t n = token.size();
  uint64_t h = (uint64_t{n} + 1) * kMul;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    h = (h ^ v) * kMul;
    h ^= h >> 32;
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    // Two possibly-overlapping 4-byte loads cover the 4..7 tail.
    uint32_t a, b;
    std::memcpy(&a, p, 4);
    std::memcpy(&b, p + n - 4, 4);
    h = (h ^ (uint64_t{a} | (uint64_t{b} << 32))) * kMul;
    h ^= h >> 32;
  } else if (n > 0) {
    const uint64_t v = (uint64_t{static_cast<unsigned char>(p[0])}) |
                       (uint64_t{static_cast<unsigned char>(p[n >> 1])} << 8) |
                       (uint64_t{static_cast<unsigned char>(p[n - 1])} << 16);
    h = (h ^ v) * kMul;
    h ^= h >> 32;
  }
  // The slot index is h masked to its low bits, so finish by folding the
  // well-mixed high bits downward.
  h *= kMul;
  h ^= h >> 29;
  return h;
}

}  // namespace

TokenResolver::Entry TokenResolver::Resolve(std::string_view token) const {
  Entry entry;
  entry.embedding_id = embedding_->IdOf(token);
  if (entry.embedding_id != Embedding::kInvalidId && weighted_ &&
      graph_ != nullptr) {
    const NodeId vn = graph_->ValueNode(token);
    if (vn != kInvalidNode && graph_->Degree(vn) > 0) {
      entry.weight = 1.0 / static_cast<double>(graph_->Degree(vn));
    }
  }
  return entry;
}

uint32_t TokenResolver::FindId(std::string_view token) const {
  if (slots_.empty()) return UINT32_MAX;
  const uint64_t hash = HashToken(token);
  const size_t mask = slots_.size() - 1;
  for (size_t i = hash & mask; slots_[i].id_plus_1 != 0; i = (i + 1) & mask) {
    const Slot& slot = slots_[i];
    if (slot.hash != hash) continue;
    if (slot.len != Slot::kOverflowLen
            ? (slot.len == token.size() &&
               std::memcmp(slot.key, token.data(), slot.len) == 0)
            : keys_[slot.id_plus_1 - 1] == token) {
      return slot.id_plus_1 - 1;
    }
  }
  return UINT32_MAX;
}

void TokenResolver::Rebind(const Embedding* embedding, const LevaGraph* graph,
                           const std::vector<std::string>& touched) {
  embedding_ = embedding;
  graph_ = graph;
  for (const std::string& token : touched) {
    const uint32_t id = FindId(token);
    if (id == UINT32_MAX) continue;  // never cached: resolves on first sight
    ++stats_.store_lookups;
    entries_[id] = Resolve(token);
  }
}

uint32_t TokenResolver::Intern(std::string_view token) {
  ++stats_.occurrences;
  if (slots_.empty()) slots_.resize(kInitialSlots);
  const uint64_t hash = HashToken(token);
  const size_t mask = slots_.size() - 1;
  size_t i = hash & mask;
  for (; slots_[i].id_plus_1 != 0; i = (i + 1) & mask) {
    const Slot& slot = slots_[i];
    if (slot.hash != hash) continue;
    if (slot.len != Slot::kOverflowLen
            ? (slot.len == token.size() &&
               std::memcmp(slot.key, token.data(), slot.len) == 0)
            : keys_[slot.id_plus_1 - 1] == token) {
      return slot.id_plus_1 - 1;
    }
  }

  ++stats_.distinct;
  ++stats_.store_lookups;
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  keys_.emplace_back(token);
  entries_.push_back(Resolve(keys_.back()));
  Slot& slot = slots_[i];
  slot.hash = hash;
  slot.id_plus_1 = id + 1;
  if (token.size() <= Slot::kInlineKey) {
    slot.len = static_cast<uint8_t>(token.size());
    std::memcpy(slot.key, token.data(), token.size());
  } else {
    slot.len = Slot::kOverflowLen;
  }
  // Keep the load factor under ~0.7 so linear probe chains stay short.
  if (entries_.size() * 10 >= slots_.size() * 7) Grow();
  return id;
}

void TokenResolver::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const size_t mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.id_plus_1 == 0) continue;
    size_t i = slot.hash & mask;
    while (slots_[i].id_plus_1 != 0) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

void TokenResolver::Save(BufferWriter* out) const {
  out->PutU64(keys_.size());
  for (const std::string& key : keys_) out->PutString(key);
}

Status TokenResolver::Load(BufferReader* in) {
  Clear();
  uint64_t count = 0;
  LEVA_RETURN_IF_ERROR(in->GetU64(&count));
  std::string key;
  for (uint64_t i = 0; i < count; ++i) {
    LEVA_RETURN_IF_ERROR(in->GetString(&key));
    // Keys were saved in id order, so re-interning assigns the same ids;
    // a duplicate would break that bijection.
    if (Intern(key) != i) {
      return Status::InvalidArgument("corrupt resolver cache: duplicate key '" +
                                     key + "'");
    }
  }
  return Status::OK();
}

void TokenResolver::Clear() {
  slots_.clear();
  keys_.clear();
  entries_.clear();
  // stats_ deliberately persists: it accumulates across the resolver's
  // lifetime so callers can report per-call deltas.
}

void TokenResolver::EvictIfAbove(size_t max_entries) {
  if (entries_.size() > max_entries) Clear();
}

}  // namespace leva
