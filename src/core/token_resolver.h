#ifndef LEVA_CORE_TOKEN_RESOLVER_H_
#define LEVA_CORE_TOKEN_RESOLVER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "embed/embedding.h"
#include "graph/graph.h"

namespace leva {

/// Token interner for the batched featurization fast path. Each *distinct*
/// token pays the embedding-index hash lookup and (when weighted) the graph
/// value-node lookup plus degree read exactly once; every further occurrence
/// resolves through the interner's own open-addressing index to a dense id.
/// The resolved entry carries the contiguous-store row id and the
/// precomputed 1/deg(value node) aggregation weight, so the row-gather loop
/// is pure arithmetic over ids — no strings, no store hashes, no allocation.
///
/// Resolution is a pure function of the fitted embedding/graph, so entries
/// stay valid for the lifetime of those stores and the interner doubles as a
/// cross-call serving cache (see EvictIfAbove for the memory bound).
class TokenResolver {
 public:
  struct Entry {
    /// Row into the embedding store, or Embedding::kInvalidId when the token
    /// is unseen (it then contributes nothing to the composed vector).
    size_t embedding_id = Embedding::kInvalidId;
    /// Inverse-degree composition weight (1.0 when unweighted or the token
    /// has no value node), mirroring ComposeFromTokens.
    double weight = 1.0;
  };

  /// Hit counters proving the per-distinct-token (not per-occurrence) cost
  /// model: `store_lookups` — hash probes into the embedding/graph stores —
  /// equals `distinct`, never `occurrences`.
  struct Stats {
    size_t occurrences = 0;    // Intern() calls
    size_t distinct = 0;       // unique tokens resolved
    size_t store_lookups = 0;  // embedding-index probes (== distinct)
  };

  /// `graph` may be null when `weighted` is false. Neither is owned; both
  /// must outlive any Intern call.
  TokenResolver(const Embedding* embedding, const LevaGraph* graph,
                bool weighted)
      : embedding_(embedding), graph_(graph), weighted_(weighted) {}

  /// Dense id of `token`, resolving against the stores on first sight. Takes
  /// a view so repeat occurrences (the common case) are hashed without ever
  /// materializing a string; the token is copied only on first sight.
  uint32_t Intern(std::string_view token);

  const Entry& entry(uint32_t id) const { return entries_[id]; }
  size_t NumDistinct() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

  /// The stores this resolver was built against (used by callers to detect a
  /// stale cache after a re-Fit, copy, or move).
  const Embedding* embedding() const { return embedding_; }
  const LevaGraph* graph() const { return graph_; }
  bool weighted() const { return weighted_; }

  /// Serializes the interned keys in id order. Entries are NOT stored: they
  /// are a pure function of the fitted stores, so Load re-resolves them —
  /// the snapshot stays valid even across store-layout changes and carries
  /// no redundant (hence corruptible) derived state.
  void Save(BufferWriter* out) const;

  /// Clears this resolver and re-interns the keys written by Save against
  /// the current stores, reproducing identical ids. Counts as store lookups
  /// in stats() (it performs them).
  Status Load(BufferReader* in);

  /// Rebinds the cache to successor stores after a streaming update,
  /// re-resolving only the `touched` tokens — the value labels the update
  /// embedded for the first time or whose node degree (hence 1/deg weight)
  /// it changed. Every other entry is carried over verbatim: resolution is a
  /// pure function of the stores, the update appends to them without
  /// renumbering, so untouched entries stay correct by construction. Tokens
  /// in `touched` that were never interned cost nothing (they resolve on
  /// first sight as usual). Re-resolutions count as store lookups in
  /// stats().
  void Rebind(const Embedding* embedding, const LevaGraph* graph,
              const std::vector<std::string>& touched);

  /// Forgets every interned token. Stats persist so call totals survive.
  void Clear();

  /// Clear(), but only once more than `max_entries` tokens are cached —
  /// bounds a long-lived serving cache fed by a stream of fresh keys.
  void EvictIfAbove(size_t max_entries);

 private:
  // Open-addressing slot: `id_plus_1` == 0 marks an empty slot, so a stored
  // hash of 0 needs no special casing. Short keys — cell values are almost
  // always a handful of bytes — live inline so a warm probe compares within
  // the slot's own cache line instead of chasing the backing store; longer
  // keys (len == kOverflowLen) compare against `keys_[id]`.
  struct Slot {
    static constexpr size_t kInlineKey = 19;
    static constexpr uint8_t kOverflowLen = 0xFF;

    uint64_t hash = 0;
    uint32_t id_plus_1 = 0;
    uint8_t len = 0;
    char key[kInlineKey] = {};
  };
  static_assert(sizeof(Slot) == 32, "two slots per cache line");

  // Probes the embedding store (and, when weighted, the graph) for `token`.
  Entry Resolve(std::string_view token) const;

  // Id of an already-interned token, or UINT32_MAX when never seen. Pure
  // lookup: no id is assigned, no stats move.
  uint32_t FindId(std::string_view token) const;

  // Doubles the slot table, reinserting from the stored hashes (token
  // strings are never re-hashed).
  void Grow();

  const Embedding* embedding_;
  const LevaGraph* graph_;
  bool weighted_;
  std::vector<Slot> slots_;       // power-of-two size, linear probing
  std::deque<std::string> keys_;  // aligned with entries_
  std::vector<Entry> entries_;
  Stats stats_;
};

}  // namespace leva

#endif  // LEVA_CORE_TOKEN_RESOLVER_H_
